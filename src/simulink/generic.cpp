#include "simulink/generic.hpp"

#include <map>
#include <stdexcept>

namespace uhcg::simulink {
namespace {

using model::AttrType;
using model::Metamodel;
using model::Object;
using model::ObjectModel;

Metamodel build_metamodel() {
    Metamodel mm("SimulinkCAAM");

    auto& m = mm.add_class("Model");
    m.add_attribute({"name", AttrType::String, {}, std::nullopt});
    m.add_attribute({"stopTime", AttrType::Real, {}, "10"});
    m.add_attribute({"fixedStep", AttrType::Real, {}, "1"});
    m.add_attribute({"solver", AttrType::String, {}, "FixedStepDiscrete"});
    m.add_reference({"system", "System", true, false, true});

    auto& s = mm.add_class("System");
    s.add_attribute({"name", AttrType::String, {}, std::nullopt});
    s.add_reference({"blocks", "Block", true, true, false});
    s.add_reference({"lines", "Line", true, true, false});

    auto& b = mm.add_class("Block");
    b.add_attribute({"name", AttrType::String, {}, std::nullopt});
    b.add_attribute({"type",
                     AttrType::Enum,
                     {"SubSystem", "Inport", "Outport", "S-Function", "Product",
                      "Sum", "Gain", "UnitDelay", "Constant", "Scope",
                      "CommChannel"},
                     std::nullopt});
    b.add_attribute({"role",
                     AttrType::Enum,
                     {"None", "CPU-SS", "Thread-SS", "InterCPU", "IntraCPU"},
                     "None"});
    b.add_attribute({"inputs", AttrType::Int, {}, "0"});
    b.add_attribute({"outputs", AttrType::Int, {}, "0"});
    b.add_reference({"params", "Param", true, true, false});
    b.add_reference({"portNames", "PortName", true, true, false});
    b.add_reference({"system", "System", true, false, false});

    auto& p = mm.add_class("Param");
    p.add_attribute({"key", AttrType::String, {}, std::nullopt});
    p.add_attribute({"value", AttrType::String, {}, std::nullopt});

    auto& pn = mm.add_class("PortName");
    pn.add_attribute({"index", AttrType::Int, {}, std::nullopt});
    pn.add_attribute({"isInput", AttrType::Bool, {}, std::nullopt});
    pn.add_attribute({"name", AttrType::String, {}, std::nullopt});

    auto& l = mm.add_class("Line");
    l.add_attribute({"name", AttrType::String, {}, ""});
    l.add_reference({"src", "Endpoint", true, false, true});
    l.add_reference({"dsts", "Endpoint", true, true, true});

    auto& e = mm.add_class("Endpoint");
    e.add_attribute({"port", AttrType::Int, {}, "1"});
    e.add_reference({"block", "Block", false, false, true});

    return mm;
}

void write_system(ObjectModel& out, Object& gsys, const System& system,
                  const std::string& id_prefix);

Object& write_block(ObjectModel& out, const Block& block,
                    const std::string& id_prefix) {
    std::string id = id_prefix + ".b." + block.name();
    Object& gb = out.create("Block", id);
    gb.set("name", block.name());
    gb.set("type", std::string(to_string(block.type())));
    gb.set("role", std::string(to_string(block.role())));
    gb.set("inputs", static_cast<std::int64_t>(block.input_count()));
    gb.set("outputs", static_cast<std::int64_t>(block.output_count()));
    std::size_t pindex = 0;
    for (const auto& [key, value] : block.parameters()) {
        Object& gp = out.create("Param", id + ".param" + std::to_string(pindex++));
        gp.set("key", key);
        gp.set("value", value);
        gb.add_ref("params", gp);
    }
    auto emit_port_name = [&](int index, bool is_input, const std::string& name) {
        if (name.empty()) return;
        Object& gpn = out.create(
            "PortName", id + (is_input ? ".in" : ".out") + std::to_string(index));
        gpn.set("index", static_cast<std::int64_t>(index));
        gpn.set("isInput", is_input);
        gpn.set("name", name);
        gb.add_ref("portNames", gpn);
    };
    for (int i = 1; i <= block.input_count(); ++i)
        emit_port_name(i, true, block.input_name(i));
    for (int i = 1; i <= block.output_count(); ++i)
        emit_port_name(i, false, block.output_name(i));
    if (block.system()) {
        Object& gsys = out.create("System", id + ".sys");
        gsys.set("name", block.system()->name());
        gb.add_ref("system", gsys);
        write_system(out, gsys, *block.system(), id);
    }
    return gb;
}

void write_system(ObjectModel& out, Object& gsys, const System& system,
                  const std::string& id_prefix) {
    std::map<const Block*, Object*> block_map;
    for (const Block* b : system.blocks()) {
        Object& gb = write_block(out, *b, id_prefix);
        gsys.add_ref("blocks", gb);
        block_map[b] = &gb;
    }
    std::size_t lindex = 0;
    for (const Line* line : system.lines()) {
        std::string lid = id_prefix + ".line" + std::to_string(lindex++);
        Object& gl = out.create("Line", lid);
        gl.set("name", line->name());
        Object& gsrc = out.create("Endpoint", lid + ".src");
        gsrc.set("port", static_cast<std::int64_t>(line->source().port));
        gsrc.set_ref("block", block_map.at(line->source().block));
        gl.add_ref("src", gsrc);
        std::size_t dindex = 0;
        for (const PortRef& dst : line->destinations()) {
            Object& gdst = out.create("Endpoint", lid + ".d" + std::to_string(dindex++));
            gdst.set("port", static_cast<std::int64_t>(dst.port));
            gdst.set_ref("block", block_map.at(dst.block));
            gl.add_ref("dsts", gdst);
        }
        gsys.add_ref("lines", gl);
    }
}

void read_system(System& system, const Object& gsys,
                 std::map<const Object*, Block*>& block_map);

void read_block(System& system, const Object& gb,
                std::map<const Object*, Block*>& block_map) {
    auto type = block_type_from_string(gb.get_string("type"));
    if (!type)
        throw std::runtime_error("unknown block type: " + gb.get_string("type"));
    Block& block = system.add_block(gb.get_string("name"), *type);
    auto role = caam_role_from_string(gb.get_string("role"));
    if (!role)
        throw std::runtime_error("unknown CAAM role: " + gb.get_string("role"));
    block.set_role(*role);
    block.set_ports(static_cast<int>(gb.get_int("inputs")),
                    static_cast<int>(gb.get_int("outputs")));
    for (const Object* gp : gb.refs("params"))
        block.set_parameter(gp->get_string("key"), gp->get_string("value"));
    for (const Object* gpn : gb.refs("portNames")) {
        int index = static_cast<int>(gpn->get_int("index"));
        if (gpn->get_bool("isInput"))
            block.set_input_name(index, gpn->get_string("name"));
        else
            block.set_output_name(index, gpn->get_string("name"));
    }
    block_map[&gb] = &block;
    if (const Object* gsys = gb.ref("system")) {
        if (!block.system())
            throw std::runtime_error("non-subsystem block '" + block.name() +
                                     "' carries a nested system");
        read_system(*block.system(), *gsys, block_map);
    }
}

void read_system(System& system, const Object& gsys,
                 std::map<const Object*, Block*>& block_map) {
    for (const Object* gb : gsys.refs("blocks")) read_block(system, *gb, block_map);
    for (const Object* gl : gsys.refs("lines")) {
        const Object* gsrc = gl->ref("src");
        if (!gsrc) throw std::runtime_error("line without source endpoint");
        PortRef src{block_map.at(gsrc->ref("block")),
                    static_cast<int>(gsrc->get_int("port"))};
        for (const Object* gdst : gl->refs("dsts")) {
            PortRef dst{block_map.at(gdst->ref("block")),
                        static_cast<int>(gdst->get_int("port"))};
            system.add_line(src, dst, gl->get_string("name"));
        }
    }
}

}  // namespace

const Metamodel& caam_metamodel() {
    static const Metamodel mm = build_metamodel();
    return mm;
}

ObjectModel to_generic(const Model& typed) {
    ObjectModel out(caam_metamodel());
    Object& root = out.create("Model", "mdl." + typed.name());
    root.set("name", typed.name());
    root.set("stopTime", typed.stop_time);
    root.set("fixedStep", typed.fixed_step);
    root.set("solver", typed.solver);
    Object& gsys = out.create("System", "mdl." + typed.name() + ".root");
    gsys.set("name", typed.root().name());
    root.add_ref("system", gsys);
    write_system(out, gsys, typed.root(), "mdl." + typed.name());
    return out;
}

Model from_generic(const ObjectModel& generic) {
    const auto roots = generic.all_of("Model");
    if (roots.size() != 1)
        throw std::runtime_error(
            "generic Simulink model must contain exactly one Model");
    const Object& root = *roots.front();
    Model out(root.get_string("name"));
    out.stop_time = root.get_real("stopTime");
    out.fixed_step = root.get_real("fixedStep");
    out.solver = root.get_string("solver");
    const Object* gsys = root.ref("system");
    if (!gsys) throw std::runtime_error("Model without root system");
    std::map<const Object*, Block*> block_map;
    read_system(out.root(), *gsys, block_map);
    return out;
}

}  // namespace uhcg::simulink
