#include "simulink/library.hpp"

namespace uhcg::simulink {

const std::vector<LibraryEntry>& block_library() {
    // The paper's example uses "mult" → Product; the rest of the table
    // covers the arithmetic/delay blocks a CAAM thread layer is built from.
    static const std::vector<LibraryEntry> table = {
        {"mult", BlockType::Product, 2, 1},
        {"product", BlockType::Product, 2, 1},
        {"add", BlockType::Sum, 2, 1},
        {"sum", BlockType::Sum, 2, 1},
        {"sub", BlockType::Sum, 2, 1},  // Sum with "+-" Inputs parameter
        {"gain", BlockType::Gain, 1, 1},
        {"delay", BlockType::UnitDelay, 1, 1},
        {"unitdelay", BlockType::UnitDelay, 1, 1},
        {"constant", BlockType::Constant, 0, 1},
        {"scope", BlockType::Scope, 1, 0},
    };
    return table;
}

std::optional<LibraryEntry> lookup_platform_method(std::string_view method) {
    for (const LibraryEntry& e : block_library())
        if (e.method == method) return e;
    return std::nullopt;
}

bool is_predefined(std::string_view method) {
    return lookup_platform_method(method).has_value();
}

}  // namespace uhcg::simulink
