#include <fstream>
#include <sstream>

#include "simulink/mdl.hpp"

namespace uhcg::simulink {
namespace {

void indent(std::ostream& out, int depth) {
    for (int i = 0; i < depth; ++i) out << "  ";
}

std::string quoted(const std::string& s) {
    std::string out = "\"";
    for (char c : s) {
        // Newlines are escaped so multi-line values (S-function C sources)
        // survive the line-oriented mdl format.
        if (c == '\n') {
            out += "\\n";
            continue;
        }
        if (c == '"' || c == '\\') out += '\\';
        out += c;
    }
    out += '"';
    return out;
}

void write_system(std::ostream& out, const System& system, int depth);

void write_block(std::ostream& out, const Block& block, int depth) {
    indent(out, depth);
    out << "Block {\n";
    indent(out, depth + 1);
    out << "BlockType " << to_string(block.type()) << '\n';
    indent(out, depth + 1);
    out << "Name " << quoted(block.name()) << '\n';
    indent(out, depth + 1);
    out << "Ports [" << block.input_count() << ", " << block.output_count()
        << "]\n";
    if (block.role() != CaamRole::None) {
        indent(out, depth + 1);
        out << "Tag " << quoted(std::string(to_string(block.role()))) << '\n';
    }
    for (const auto& [key, value] : block.parameters()) {
        indent(out, depth + 1);
        out << key << ' ' << quoted(value) << '\n';
    }
    // Port names are serialized as PortName lines so the parser can
    // restore S-function argument labels.
    for (int p = 1; p <= block.input_count(); ++p) {
        std::string n = block.input_name(p);
        if (n.empty()) continue;
        indent(out, depth + 1);
        out << "InPortName [" << p << "] " << quoted(n) << '\n';
    }
    for (int p = 1; p <= block.output_count(); ++p) {
        std::string n = block.output_name(p);
        if (n.empty()) continue;
        indent(out, depth + 1);
        out << "OutPortName [" << p << "] " << quoted(n) << '\n';
    }
    if (block.system()) write_system(out, *block.system(), depth + 1);
    indent(out, depth);
    out << "}\n";
}

void write_line(std::ostream& out, const Line& line, int depth) {
    indent(out, depth);
    out << "Line {\n";
    if (!line.name().empty()) {
        indent(out, depth + 1);
        out << "Name " << quoted(line.name()) << '\n';
    }
    indent(out, depth + 1);
    out << "SrcBlock " << quoted(line.source().block->name()) << '\n';
    indent(out, depth + 1);
    out << "SrcPort " << line.source().port << '\n';
    if (line.destinations().size() == 1) {
        const PortRef& dst = line.destinations().front();
        indent(out, depth + 1);
        out << "DstBlock " << quoted(dst.block->name()) << '\n';
        indent(out, depth + 1);
        out << "DstPort " << dst.port << '\n';
    } else {
        for (const PortRef& dst : line.destinations()) {
            indent(out, depth + 1);
            out << "Branch {\n";
            indent(out, depth + 2);
            out << "DstBlock " << quoted(dst.block->name()) << '\n';
            indent(out, depth + 2);
            out << "DstPort " << dst.port << '\n';
            indent(out, depth + 1);
            out << "}\n";
        }
    }
    indent(out, depth);
    out << "}\n";
}

void write_system(std::ostream& out, const System& system, int depth) {
    indent(out, depth);
    out << "System {\n";
    indent(out, depth + 1);
    out << "Name " << quoted(system.name()) << '\n';
    for (const Block* b : system.blocks()) write_block(out, *b, depth + 1);
    for (const Line* l : system.lines()) write_line(out, *l, depth + 1);
    indent(out, depth);
    out << "}\n";
}

}  // namespace

std::string write_mdl(const Model& model) {
    std::ostringstream out;
    out << "Model {\n";
    out << "  Name " << quoted(model.name()) << '\n';
    out << "  Solver " << quoted(model.solver) << '\n';
    out << "  StopTime " << quoted(std::to_string(model.stop_time)) << '\n';
    out << "  FixedStep " << quoted(std::to_string(model.fixed_step)) << '\n';
    write_system(out, model.root(), 1);
    out << "}\n";
    return out.str();
}

void save_mdl(const Model& model, const std::string& path) {
    std::ofstream out(path, std::ios::binary);
    if (!out) throw std::runtime_error("cannot open mdl file for writing: " + path);
    out << write_mdl(model);
    if (!out) throw std::runtime_error("failed writing mdl file: " + path);
}

}  // namespace uhcg::simulink
