#include "simulink/dot.hpp"

#include <map>
#include <sstream>

namespace uhcg::simulink {
namespace {

/// Graphviz node id for a block: unique across the hierarchy.
std::string node_id(const Block& b,
                    std::map<const Block*, std::string>& ids) {
    auto it = ids.find(&b);
    if (it != ids.end()) return it->second;
    std::string id = "n" + std::to_string(ids.size());
    ids.emplace(&b, id);
    return id;
}

std::string shape_of(const Block& b) {
    switch (b.type()) {
        case BlockType::Inport: return "rarrow";
        case BlockType::Outport: return "larrow";
        case BlockType::CommChannel: return "cds";
        case BlockType::UnitDelay: return "square";
        default: return "box";
    }
}

/// Edges cannot point at clusters in Graphviz; anchor subsystem endpoints
/// on their first inner block (valid CAAMs always have boundary ports).
std::string edge_anchor(const Block& b,
                        std::map<const Block*, std::string>& ids) {
    if (!b.is_subsystem()) return node_id(b, ids);
    auto inner = b.system()->blocks();
    if (inner.empty()) return node_id(b, ids);  // degenerate: implicit node
    return edge_anchor(*inner.front(), ids);
}

void emit_system(std::ostringstream& out, const System& sys,
                 const DotOptions& options,
                 std::map<const Block*, std::string>& ids, int depth) {
    std::string pad(static_cast<std::size_t>(depth) * 2, ' ');
    for (const Block* b : sys.blocks()) {
        if (b->is_subsystem()) {
            out << pad << "subgraph cluster_" << node_id(*b, ids) << " {\n"
                << pad << "  label=\"" << b->name();
            if (b->role() != CaamRole::None)
                out << " <" << to_string(b->role()) << ">";
            out << "\";\n" << pad << "  style=rounded;\n";
            emit_system(out, *b->system(), options, ids, depth + 1);
            out << pad << "}\n";
        } else {
            out << pad << node_id(*b, ids) << " [shape=" << shape_of(*b)
                << " label=\"" << b->name();
            if (options.show_block_types && b->type() != BlockType::Inport &&
                b->type() != BlockType::Outport)
                out << "\\n[" << to_string(b->type()) << "]";
            out << "\"];\n";
        }
    }
    for (const Line* line : sys.lines()) {
        const Block* src = line->source().block;
        // Subsystem endpoints are clusters; anchor edges on a port proxy:
        // Graphviz cannot point at clusters directly, so draw from/to the
        // subsystem's first inner port block when available.
        for (const PortRef& dst : line->destinations()) {
            out << pad << edge_anchor(*src, ids) << " -> "
                << edge_anchor(*dst.block, ids);
            if (options.show_signal_names && !line->name().empty())
                out << " [label=\"" << line->name() << "\"]";
            out << ";\n";
        }
    }
}

}  // namespace

std::string to_dot(const Model& model, const DotOptions& options) {
    std::ostringstream out;
    std::map<const Block*, std::string> ids;
    out << "digraph \"" << model.name() << "\" {\n"
        << "  rankdir=LR;\n  compound=true;\n  node [fontsize=10];\n";
    emit_system(out, model.root(), options, ids, 1);
    out << "}\n";
    return out.str();
}

}  // namespace uhcg::simulink
