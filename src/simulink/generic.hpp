// generic.hpp — bridge between the typed simulink::Model API and the
// reflective model layer. This is the "Simulink meta-model" of Fig. 2: the
// model-to-model transformation produces generic objects conforming to
// this metamodel, which are then lifted into the typed API for the
// optimization and mdl-generation steps (and can be round-tripped through
// the E-core XML interchange of model/ecore_io.hpp).
#pragma once

#include "model/metamodel.hpp"
#include "model/object.hpp"
#include "simulink/model.hpp"

namespace uhcg::simulink {

/// The Simulink CAAM metamodel, registered once.
const model::Metamodel& caam_metamodel();

/// Deep-copies a typed model into the generic representation.
model::ObjectModel to_generic(const Model& model);

/// Rebuilds a typed model; throws std::runtime_error on non-conformant
/// graphs (unknown block types, dangling line endpoints, ...).
Model from_generic(const model::ObjectModel& generic);

}  // namespace uhcg::simulink
