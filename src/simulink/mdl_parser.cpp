#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "simulink/mdl.hpp"

namespace uhcg::simulink {
namespace {

// The mdl dialect is line-oriented: each line is either `Key values...`,
// `Key {` (opening a nested section) or `}`. Parsing happens in two
// stages: lines → generic section tree → Model.

struct Section {
    std::string name;
    std::size_t line = 0;  // 1-based source line of the opening brace
    // key → value token list (strings unquoted, arrays split into items)
    std::vector<std::pair<std::string, std::vector<std::string>>> entries;
    std::vector<Section> children;

    const std::vector<std::string>* find(const std::string& key) const {
        for (const auto& [k, v] : entries)
            if (k == key) return &v;
        return nullptr;
    }
    std::string get_string(const std::string& key, std::size_t src_line) const {
        const auto* v = find(key);
        if (!v || v->empty())
            throw std::runtime_error("mdl line " + std::to_string(src_line) +
                                     ": section '" + name + "' missing '" + key +
                                     "'");
        return v->front();
    }
};

[[noreturn]] void fail(std::size_t line, const std::string& message) {
    throw std::runtime_error("mdl line " + std::to_string(line) + ": " + message);
}

/// Numeric field parsers that keep the source line in the error instead
/// of letting a bare std::invalid_argument("stoi") escape.
int parse_int(const std::string& text, std::size_t line, const char* what) {
    try {
        std::size_t used = 0;
        int value = std::stoi(text, &used);
        if (used != text.size()) throw std::invalid_argument(text);
        return value;
    } catch (const std::exception&) {
        fail(line, std::string(what) + " is not an integer (got '" + text + "')");
    }
}

double parse_double(const std::string& text, std::size_t line, const char* what) {
    try {
        std::size_t used = 0;
        double value = std::stod(text, &used);
        if (used != text.size()) throw std::invalid_argument(text);
        return value;
    } catch (const std::exception&) {
        fail(line, std::string(what) + " is not a number (got '" + text + "')");
    }
}

/// Splits one line into tokens: bare words, "quoted strings" (unescaped),
/// and bracketed arrays whose items become individual tokens.
std::vector<std::string> tokenize(const std::string& line, std::size_t line_no) {
    std::vector<std::string> tokens;
    std::size_t i = 0;
    while (i < line.size()) {
        char c = line[i];
        if (std::isspace(static_cast<unsigned char>(c)) || c == ',') {
            ++i;
        } else if (c == '"') {
            std::string tok;
            ++i;
            while (i < line.size() && line[i] != '"') {
                if (line[i] == '\\' && i + 1 < line.size()) {
                    ++i;
                    // Inverse of the writer's escaping; \n restores a newline.
                    tok += (line[i] == 'n') ? '\n' : line[i];
                    ++i;
                    continue;
                }
                tok += line[i++];
            }
            if (i >= line.size()) fail(line_no, "unterminated string");
            ++i;
            tokens.push_back(std::move(tok));
        } else if (c == '[' || c == ']') {
            ++i;  // arrays flatten into their items
        } else {
            std::string tok;
            while (i < line.size() && !std::isspace(static_cast<unsigned char>(line[i])) &&
                   line[i] != ',' && line[i] != '[' && line[i] != ']' &&
                   line[i] != '"')
                tok += line[i++];
            tokens.push_back(std::move(tok));
        }
    }
    return tokens;
}

Section parse_sections(const std::string& text) {
    Section root;
    root.name = "(file)";
    std::vector<Section*> stack{&root};
    std::istringstream in(text);
    std::string raw;
    std::size_t line_no = 0;
    while (std::getline(in, raw)) {
        ++line_no;
        // Strip comments (# to end of line, outside strings is enough for
        // this dialect) and whitespace.
        bool in_string = false;
        std::string line;
        for (char c : raw) {
            if (c == '"') in_string = !in_string;
            if (c == '#' && !in_string) break;
            line += c;
        }
        std::size_t first = line.find_first_not_of(" \t\r");
        if (first == std::string::npos) continue;
        std::size_t last = line.find_last_not_of(" \t\r");
        line = line.substr(first, last - first + 1);

        if (line == "}") {
            if (stack.size() == 1) fail(line_no, "unmatched '}'");
            stack.pop_back();
            continue;
        }
        if (line.back() == '{') {
            std::string name = line.substr(0, line.size() - 1);
            std::size_t end = name.find_last_not_of(" \t");
            name = name.substr(0, end + 1);
            if (name.empty()) fail(line_no, "section without a name");
            stack.back()->children.push_back({});
            Section& child = stack.back()->children.back();
            child.name = name;
            child.line = line_no;
            stack.push_back(&child);
            continue;
        }
        std::vector<std::string> tokens = tokenize(line, line_no);
        if (tokens.empty()) continue;
        std::string key = tokens.front();
        tokens.erase(tokens.begin());
        stack.back()->entries.emplace_back(std::move(key), std::move(tokens));
    }
    if (stack.size() != 1) fail(line_no, "unterminated section '" +
                                             stack.back()->name + "'");
    return root;
}

// Keys consumed structurally; everything else becomes a block parameter.
bool is_structural_key(const std::string& key) {
    return key == "BlockType" || key == "Name" || key == "Ports" ||
           key == "Tag" || key == "InPortName" || key == "OutPortName";
}

void build_system(System& system, const Section& section);

void build_block(System& system, const Section& section) {
    std::string type_name = section.get_string("BlockType", section.line);
    auto type = block_type_from_string(type_name);
    if (!type) fail(section.line, "unknown BlockType '" + type_name + "'");
    std::string name = section.get_string("Name", section.line);
    Block& block = system.add_block(name, *type);

    if (const auto* ports = section.find("Ports")) {
        if (ports->size() != 2) fail(section.line, "Ports must have two items");
        block.set_ports(parse_int((*ports)[0], section.line, "Ports[0]"),
                        parse_int((*ports)[1], section.line, "Ports[1]"));
    }
    if (const auto* tag = section.find("Tag")) {
        auto role = caam_role_from_string(tag->front());
        if (!role) fail(section.line, "unknown Tag '" + tag->front() + "'");
        block.set_role(*role);
    }
    for (const auto& [key, values] : section.entries) {
        if (is_structural_key(key)) continue;
        if (values.size() != 1)
            fail(section.line, "parameter '" + key + "' must have one value");
        block.set_parameter(key, values.front());
    }
    for (const auto& [key, values] : section.entries) {
        if (key == "InPortName") {
            if (values.size() != 2) fail(section.line, "InPortName needs [n] name");
            block.set_input_name(parse_int(values[0], section.line, "InPortName"),
                                 values[1]);
        } else if (key == "OutPortName") {
            if (values.size() != 2) fail(section.line, "OutPortName needs [n] name");
            block.set_output_name(parse_int(values[0], section.line, "OutPortName"),
                                  values[1]);
        }
    }
    if (block.is_subsystem()) {
        for (const Section& child : section.children)
            if (child.name == "System") build_system(*block.system(), child);
    }
}

PortRef resolve_port(System& system, const Section& section,
                     const std::string& block_key, const std::string& port_key) {
    std::string block_name = section.get_string(block_key, section.line);
    Block* block = system.find_block(block_name);
    if (!block)
        fail(section.line, "line references unknown block '" + block_name + "'");
    int port =
        parse_int(section.get_string(port_key, section.line), section.line, port_key.c_str());
    return {block, port};
}

void build_line(System& system, const Section& section) {
    PortRef src = resolve_port(system, section, "SrcBlock", "SrcPort");
    std::string name;
    if (const auto* n = section.find("Name")) name = n->front();
    bool any_dst = false;
    if (section.find("DstBlock")) {
        system.add_line(src, resolve_port(system, section, "DstBlock", "DstPort"),
                        name);
        any_dst = true;
    }
    for (const Section& branch : section.children) {
        if (branch.name != "Branch") continue;
        system.add_line(src, resolve_port(system, branch, "DstBlock", "DstPort"),
                        name);
        any_dst = true;
    }
    if (!any_dst) fail(section.line, "Line has no destination");
}

void build_system(System& system, const Section& section) {
    // Blocks first so that lines can resolve endpoints.
    for (const Section& child : section.children)
        if (child.name == "Block") build_block(system, child);
    for (const Section& child : section.children)
        if (child.name == "Line") build_line(system, child);
}

}  // namespace

Model parse_mdl(const std::string& text) {
    Section file = parse_sections(text);
    const Section* model_section = nullptr;
    for (const Section& child : file.children)
        if (child.name == "Model") model_section = &child;
    if (!model_section) throw std::runtime_error("mdl file has no Model section");

    Model model(model_section->get_string("Name", model_section->line));
    if (const auto* s = model_section->find("Solver")) model.solver = s->front();
    if (const auto* s = model_section->find("StopTime"))
        model.stop_time = parse_double(s->front(), model_section->line, "StopTime");
    if (const auto* s = model_section->find("FixedStep"))
        model.fixed_step = parse_double(s->front(), model_section->line, "FixedStep");

    for (const Section& child : model_section->children)
        if (child.name == "System") build_system(model.root(), child);
    return model;
}

Model load_mdl(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw std::runtime_error("cannot open mdl file: " + path);
    std::ostringstream buf;
    buf << in.rdbuf();
    return parse_mdl(buf.str());
}

}  // namespace uhcg::simulink
