#include "simulink/caam.hpp"

#include <functional>

namespace uhcg::simulink {
namespace {

void walk(const System& system,
          const std::function<void(const Block&, const System&)>& visit) {
    for (const Block* b : system.blocks()) {
        visit(*b, system);
        if (b->system()) walk(*b->system(), visit);
    }
}

}  // namespace

std::vector<Block*> cpu_subsystems(Model& model) {
    return model.root().blocks_with_role(CaamRole::CpuSubsystem);
}

std::vector<const Block*> cpu_subsystems(const Model& model) {
    std::vector<const Block*> out;
    for (const Block* b : model.root().blocks())
        if (b->role() == CaamRole::CpuSubsystem) out.push_back(b);
    return out;
}

std::vector<Block*> thread_subsystems(Block& cpu) {
    if (!cpu.system()) return {};
    return cpu.system()->blocks_with_role(CaamRole::ThreadSubsystem);
}

std::vector<const Block*> thread_subsystems(const Block& cpu) {
    std::vector<const Block*> out;
    if (!cpu.system()) return out;
    for (const Block* b : cpu.system()->blocks())
        if (b->role() == CaamRole::ThreadSubsystem) out.push_back(b);
    return out;
}

std::vector<const Block*> inter_cpu_channels(const Model& model) {
    std::vector<const Block*> out;
    walk(model.root(), [&](const Block& b, const System&) {
        if (b.role() == CaamRole::InterCpuChannel) out.push_back(&b);
    });
    return out;
}

std::vector<const Block*> intra_cpu_channels(const Model& model) {
    std::vector<const Block*> out;
    walk(model.root(), [&](const Block& b, const System&) {
        if (b.role() == CaamRole::IntraCpuChannel) out.push_back(&b);
    });
    return out;
}

CaamStats caam_stats(const Model& model) {
    CaamStats s;
    s.total_blocks = model.root().total_blocks();
    s.total_lines = model.root().total_lines();
    for (const Block* b : model.root().blocks()) {
        if (b->type() == BlockType::Inport) ++s.system_inports;
        if (b->type() == BlockType::Outport) ++s.system_outports;
    }
    walk(model.root(), [&](const Block& b, const System&) {
        switch (b.role()) {
            case CaamRole::CpuSubsystem: ++s.cpus; break;
            case CaamRole::ThreadSubsystem: ++s.threads; break;
            case CaamRole::InterCpuChannel: ++s.inter_channels; break;
            case CaamRole::IntraCpuChannel: ++s.intra_channels; break;
            case CaamRole::None: break;
        }
        switch (b.type()) {
            case BlockType::SFunction: ++s.sfunctions; break;
            case BlockType::UnitDelay: ++s.unit_delays; break;
            case BlockType::Product:
            case BlockType::Sum:
            case BlockType::Gain:
            case BlockType::Constant:
            case BlockType::Scope: ++s.predefined_blocks; break;
            default: break;
        }
    });
    return s;
}

std::vector<std::string> validate_caam(const Model& model) {
    std::vector<std::string> problems;

    walk(model.root(), [&](const Block& b, const System& owner) {
        bool at_root = (&owner == &model.root());
        bool in_cpu = owner.owner_block() != nullptr &&
                      owner.owner_block()->role() == CaamRole::CpuSubsystem;
        switch (b.role()) {
            case CaamRole::CpuSubsystem:
                if (!at_root)
                    problems.push_back("C1: CPU-SS '" + b.name() +
                                       "' is nested inside '" + owner.name() + "'");
                break;
            case CaamRole::ThreadSubsystem:
                if (!in_cpu)
                    problems.push_back("C1: Thread-SS '" + b.name() +
                                       "' is not directly inside a CPU-SS");
                break;
            case CaamRole::InterCpuChannel:
                if (!at_root)
                    problems.push_back("C2: inter-CPU channel '" + b.name() +
                                       "' is not at the architecture layer");
                if (b.parameter_or("Protocol", "") != kProtocolGFifo)
                    problems.push_back("C2: inter-CPU channel '" + b.name() +
                                       "' protocol is not GFIFO");
                break;
            case CaamRole::IntraCpuChannel:
                if (!in_cpu)
                    problems.push_back("C3: intra-CPU channel '" + b.name() +
                                       "' is not inside a CPU-SS");
                if (b.parameter_or("Protocol", "") != kProtocolSwFifo)
                    problems.push_back("C3: intra-CPU channel '" + b.name() +
                                       "' protocol is not SWFIFO");
                break;
            case CaamRole::None:
                break;
        }
        if (b.is_channel() && (b.input_count() != 1 || b.output_count() != 1))
            problems.push_back("C6: channel '" + b.name() +
                               "' must have exactly one input and one output");
        // C4: subsystem port counts match the Inport/Outport blocks inside.
        if (b.is_subsystem()) {
            int inports = 0;
            int outports = 0;
            for (const Block* child : b.system()->blocks()) {
                if (child->type() == BlockType::Inport) ++inports;
                if (child->type() == BlockType::Outport) ++outports;
            }
            if (inports != b.input_count() || outports != b.output_count())
                problems.push_back(
                    "C4: subsystem '" + b.name() + "' declares (" +
                    std::to_string(b.input_count()) + "," +
                    std::to_string(b.output_count()) + ") ports but contains (" +
                    std::to_string(inports) + "," + std::to_string(outports) +
                    ") Inport/Outport blocks");
        }
        // C5: all inputs driven.
        for (int port = 1; port <= b.input_count(); ++port) {
            if (!owner.line_into({const_cast<Block*>(&b), port}))
                problems.push_back("C5: input " + std::to_string(port) +
                                   " of block '" + b.name() + "' in system '" +
                                   owner.name() + "' is undriven");
        }
    });

    return problems;
}

}  // namespace uhcg::simulink
