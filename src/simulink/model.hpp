// model.hpp — Simulink model representation, including the CAAM (Combined
// Architecture Algorithm Model) extensions of the Simulink-based MPSoC
// design flow the paper targets (Huang et al., DAC'07).
//
// A Model owns a tree of Systems; each System contains Blocks and Lines.
// SubSystem blocks own a nested System. CAAM adds *roles* to subsystems
// (CPU-SS, Thread-SS) and communication-channel blocks parameterized by a
// protocol (SWFIFO for intra-CPU, GFIFO for inter-CPU) — exactly the
// vocabulary of the paper's Fig. 3(c).
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace uhcg::simulink {

class System;
class Model;

/// Block types used by generated CAAMs. `SFunction` covers user-defined
/// behaviour (C code compiled and linked, §4.1); `CommChannel` is the CAAM
/// communication block whose `Protocol` parameter selects SWFIFO/GFIFO.
enum class BlockType {
    SubSystem,
    Inport,
    Outport,
    SFunction,
    Product,
    Sum,
    Gain,
    UnitDelay,
    Constant,
    Scope,
    CommChannel,
};

std::string_view to_string(BlockType type);
std::optional<BlockType> block_type_from_string(std::string_view name);

/// CAAM structural role of a subsystem or channel block.
enum class CaamRole {
    None,
    CpuSubsystem,     ///< CPU-SS: one per processor
    ThreadSubsystem,  ///< Thread-SS: one per thread, nested in a CPU-SS
    InterCpuChannel,  ///< inter-SS communication (GFIFO)
    IntraCpuChannel,  ///< intra-SS communication (SWFIFO)
};

std::string_view to_string(CaamRole role);
std::optional<CaamRole> caam_role_from_string(std::string_view name);

/// Communication protocols the flow instantiates (§4.2.1).
inline constexpr const char* kProtocolSwFifo = "SWFIFO";
inline constexpr const char* kProtocolGFifo = "GFIFO";

class Block;

/// A port reference: block + 1-based port number (Simulink convention).
struct PortRef {
    Block* block = nullptr;
    int port = 1;

    friend bool operator==(const PortRef&, const PortRef&) = default;
};

/// One block inside a System.
class Block {
public:
    friend class System;

    Block(std::string name, BlockType type, System* parent);
    ~Block();
    Block(const Block&) = delete;
    Block& operator=(const Block&) = delete;

    const std::string& name() const { return name_; }
    void rename(std::string name);
    BlockType type() const { return type_; }
    System* parent() const { return parent_; }

    CaamRole role() const { return role_; }
    void set_role(CaamRole role) { role_ = role; }

    /// Free-form Simulink block parameters ("Gain", "Value", "Protocol",
    /// "FunctionName", "SampleTime", ...), serialized into the mdl file.
    void set_parameter(std::string_view key, std::string_view value);
    const std::string* find_parameter(std::string_view key) const;
    std::string parameter_or(std::string_view key, std::string fallback) const;
    const std::map<std::string, std::string, std::less<>>& parameters() const {
        return params_;
    }

    /// Port counts. Inport/Outport blocks have fixed (0,1)/(1,0) shapes;
    /// other blocks are sized by the mapping.
    int input_count() const { return inputs_; }
    int output_count() const { return outputs_; }
    void set_ports(int inputs, int outputs);

    /// Names attached to ports (used for generated Inport/Outport labels
    /// and for S-function argument names). 1-based lookup; empty when the
    /// port is unnamed.
    void set_input_name(int port, std::string name);
    void set_output_name(int port, std::string name);
    std::string input_name(int port) const;
    std::string output_name(int port) const;
    /// 1-based index of the input/output with this name, or 0.
    int input_named(std::string_view name) const;
    int output_named(std::string_view name) const;

    /// Nested system; non-null exactly for SubSystem blocks.
    System* system() { return system_.get(); }
    const System* system() const { return system_.get(); }

    bool is_subsystem() const { return type_ == BlockType::SubSystem; }
    bool is_channel() const { return type_ == BlockType::CommChannel; }

private:
    std::string name_;
    BlockType type_;
    System* parent_;
    CaamRole role_ = CaamRole::None;
    int inputs_ = 0;
    int outputs_ = 0;
    std::map<std::string, std::string, std::less<>> params_;
    std::map<int, std::string> input_names_;
    std::map<int, std::string> output_names_;
    std::unique_ptr<System> system_;
};

/// A signal line from one source port to one or more destination ports
/// (Simulink branches).
class Line {
public:
    Line(PortRef src, std::string name) : src_(src), name_(std::move(name)) {}

    const PortRef& source() const { return src_; }
    const std::vector<PortRef>& destinations() const { return dsts_; }
    void add_destination(PortRef dst) { dsts_.push_back(dst); }
    bool remove_destination(const PortRef& dst);

    /// Signal name (the UML argument name that produced the link).
    const std::string& name() const { return name_; }
    void set_name(std::string name) { name_ = std::move(name); }

private:
    PortRef src_;
    std::vector<PortRef> dsts_;
    std::string name_;
};

/// A container of blocks and lines: the model root or a subsystem body.
class System {
public:
    friend class Model;
    System(std::string name, Block* owner_block, Model* model)
        : name_(std::move(name)), owner_(owner_block), model_(model) {}
    System(const System&) = delete;
    System& operator=(const System&) = delete;

    const std::string& name() const { return name_; }
    /// SubSystem block owning this system; nullptr for the model root.
    Block* owner_block() const { return owner_; }
    Model* model() const { return model_; }

    Block& add_block(std::string name, BlockType type);
    /// Convenience: adds a SubSystem block (its nested System is created).
    Block& add_subsystem(std::string name, CaamRole role = CaamRole::None);
    Block* find_block(std::string_view name);
    const Block* find_block(std::string_view name) const;
    std::vector<Block*> blocks();
    std::vector<const Block*> blocks() const;
    std::vector<Block*> blocks_of(BlockType type);
    std::vector<Block*> blocks_with_role(CaamRole role);
    /// Removes a block and every line endpoint touching it. Invalidates
    /// pointers to that block.
    void remove_block(Block& block);

    Line& add_line(PortRef src, PortRef dst, std::string name = {});
    /// Line driven by this source port, or nullptr.
    Line* line_from(const PortRef& src);
    const Line* line_from(const PortRef& src) const;
    /// Line feeding this destination port, or nullptr.
    Line* line_into(const PortRef& dst);
    const Line* line_into(const PortRef& dst) const;
    std::vector<Line*> lines();
    std::vector<const Line*> lines() const;
    void remove_line(Line& line);

    /// Deep counts over this system and all nested subsystems.
    std::size_t total_blocks() const;
    std::size_t total_lines() const;

private:
    std::string name_;
    Block* owner_;
    Model* model_;
    std::vector<std::unique_ptr<Block>> blocks_;
    std::vector<std::unique_ptr<Line>> lines_;
};

/// A Simulink model: solver settings + the root system.
class Model {
public:
    explicit Model(std::string name);
    Model(const Model&) = delete;
    Model& operator=(const Model&) = delete;
    Model(Model&& other) noexcept { *this = std::move(other); }
    Model& operator=(Model&& other) noexcept;

    const std::string& name() const { return name_; }
    System& root() { return *root_; }
    const System& root() const { return *root_; }

    /// Fixed-step discrete solver settings serialized into the mdl.
    double stop_time = 10.0;
    double fixed_step = 1.0;
    std::string solver = "FixedStepDiscrete";

private:
    void reanchor(System& system);

    std::string name_;
    std::unique_ptr<System> root_;
};

}  // namespace uhcg::simulink
