// library.hpp — the Simulink block library facade.
//
// §4.1: "To use pre-defined blocks, the designer needs to indicate its
// usage by the invocation of a method from the special object Platform,
// which represents the Simulink library. When the method name does not
// match the pre-defined component names, a user-defined Simulink block
// called S-function is instantiated."
//
// This table is that name-matching: Platform method name → pre-defined
// block type, plus the default shape and semantic notes the execution
// engine (uhcg::sim) uses.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "simulink/model.hpp"

namespace uhcg::simulink {

struct LibraryEntry {
    std::string method;  ///< Platform method name used in the UML model
    BlockType type;      ///< pre-defined block instantiated
    int inputs;          ///< default input port count
    int outputs;         ///< default output port count
};

/// The full library table, stable order.
const std::vector<LibraryEntry>& block_library();

/// Looks up a Platform method name ("mult", "add", "gain", ...). Empty
/// optional means: not a pre-defined block, instantiate an S-function.
std::optional<LibraryEntry> lookup_platform_method(std::string_view method);

/// True when `method` names a pre-defined block.
bool is_predefined(std::string_view method);

}  // namespace uhcg::simulink
