// caam.hpp — CAAM-level queries and structural validation.
//
// The CAAM architecture layer (Fig. 3(c)): the root system holds CPU-SS
// subsystems and inter-CPU channels; each CPU-SS holds Thread-SS
// subsystems and intra-CPU channels; each Thread-SS holds the thread layer
// of functional blocks. These helpers navigate and check that shape.
#pragma once

#include <string>
#include <vector>

#include "simulink/model.hpp"

namespace uhcg::simulink {

/// CPU subsystems of the top-level architecture layer, model order.
std::vector<Block*> cpu_subsystems(Model& model);
std::vector<const Block*> cpu_subsystems(const Model& model);

/// Thread subsystems nested in one CPU-SS.
std::vector<Block*> thread_subsystems(Block& cpu);
std::vector<const Block*> thread_subsystems(const Block& cpu);

/// All communication channel blocks in the model, grouped by role.
std::vector<const Block*> inter_cpu_channels(const Model& model);
std::vector<const Block*> intra_cpu_channels(const Model& model);

/// Total counts used by the experiment harness.
struct CaamStats {
    std::size_t cpus = 0;
    std::size_t threads = 0;
    std::size_t inter_channels = 0;
    std::size_t intra_channels = 0;
    std::size_t sfunctions = 0;
    std::size_t predefined_blocks = 0;  // Product/Sum/Gain/... in thread layers
    std::size_t unit_delays = 0;
    std::size_t system_inports = 0;   // environment inputs at model root
    std::size_t system_outports = 0;  // environment outputs at model root
    std::size_t total_blocks = 0;
    std::size_t total_lines = 0;
};

CaamStats caam_stats(const Model& model);

/// Structural rules:
///  C1 CPU-SS blocks appear only at the root; Thread-SS only inside CPU-SS;
///  C2 inter-CPU channels live at the root and carry Protocol=GFIFO;
///  C3 intra-CPU channels live inside a CPU-SS and carry Protocol=SWFIFO;
///  C4 every SubSystem's Inport/Outport children match its declared ports;
///  C5 every block input port is driven by exactly one line (no dangling
///     inputs in a synthesizable model);
///  C6 channels have exactly 1 input and 1 output.
/// Returns human-readable problem descriptions; empty = valid CAAM.
std::vector<std::string> validate_caam(const Model& model);

}  // namespace uhcg::simulink
