// mdl.hpp — model-to-text generation of Simulink .mdl files (Fig. 2, step
// 4) and the inverse parser used for round-trip testing and for importing
// hand-built CAAMs.
//
// The emitted dialect is the classic pre-SLX textual format:
//
//   Model {
//     Name "crane"
//     System {
//       Name "crane"
//       Block { BlockType SubSystem  Name "CPU1"  Ports [1, 1]  System {...} }
//       Line  { SrcBlock "calc"  SrcPort 1  DstBlock "mult"  DstPort 1 }
//       Line  { SrcBlock "x"  SrcPort 1
//               Branch { DstBlock "a"  DstPort 1 }
//               Branch { DstBlock "b"  DstPort 1 } }
//     }
//   }
//
// CAAM roles ride along as an annotation parameter (Tag "CPU-SS") so that
// parsing a generated file reconstructs the architecture layer exactly.
#pragma once

#include <string>

#include "simulink/model.hpp"

namespace uhcg::simulink {

/// Serializes the model to mdl text.
std::string write_mdl(const Model& model);
void save_mdl(const Model& model, const std::string& path);

/// Parses mdl text back into a Model. Throws std::runtime_error (with line
/// information) on malformed input.
Model parse_mdl(const std::string& text);
Model load_mdl(const std::string& path);

}  // namespace uhcg::simulink
