// dot.hpp — Graphviz export of Simulink/CAAM models: the block diagram a
// Simulink GUI would draw (Fig. 3(c)/5/8), as nested cluster subgraphs.
// `dot -Tpng` renders the architecture layer with CPU-SS and Thread-SS
// boxes, channels, and signal lines labeled by variable.
#pragma once

#include <string>

#include "simulink/model.hpp"

namespace uhcg::simulink {

struct DotOptions {
    /// Label lines with their signal names.
    bool show_signal_names = true;
    /// Include block type in node labels ("calc\n[S-Function]").
    bool show_block_types = true;
};

std::string to_dot(const Model& model, const DotOptions& options = {});

}  // namespace uhcg::simulink
