#include "simulink/model.hpp"

#include <algorithm>
#include <stdexcept>

namespace uhcg::simulink {

std::string_view to_string(BlockType type) {
    switch (type) {
        case BlockType::SubSystem: return "SubSystem";
        case BlockType::Inport: return "Inport";
        case BlockType::Outport: return "Outport";
        case BlockType::SFunction: return "S-Function";
        case BlockType::Product: return "Product";
        case BlockType::Sum: return "Sum";
        case BlockType::Gain: return "Gain";
        case BlockType::UnitDelay: return "UnitDelay";
        case BlockType::Constant: return "Constant";
        case BlockType::Scope: return "Scope";
        case BlockType::CommChannel: return "CommChannel";
    }
    return "?";
}

std::optional<BlockType> block_type_from_string(std::string_view name) {
    if (name == "SubSystem") return BlockType::SubSystem;
    if (name == "Inport") return BlockType::Inport;
    if (name == "Outport") return BlockType::Outport;
    if (name == "S-Function") return BlockType::SFunction;
    if (name == "Product") return BlockType::Product;
    if (name == "Sum") return BlockType::Sum;
    if (name == "Gain") return BlockType::Gain;
    if (name == "UnitDelay") return BlockType::UnitDelay;
    if (name == "Constant") return BlockType::Constant;
    if (name == "Scope") return BlockType::Scope;
    if (name == "CommChannel") return BlockType::CommChannel;
    return std::nullopt;
}

std::string_view to_string(CaamRole role) {
    switch (role) {
        case CaamRole::None: return "None";
        case CaamRole::CpuSubsystem: return "CPU-SS";
        case CaamRole::ThreadSubsystem: return "Thread-SS";
        case CaamRole::InterCpuChannel: return "InterCPU";
        case CaamRole::IntraCpuChannel: return "IntraCPU";
    }
    return "?";
}

std::optional<CaamRole> caam_role_from_string(std::string_view name) {
    if (name == "None") return CaamRole::None;
    if (name == "CPU-SS") return CaamRole::CpuSubsystem;
    if (name == "Thread-SS") return CaamRole::ThreadSubsystem;
    if (name == "InterCPU") return CaamRole::InterCpuChannel;
    if (name == "IntraCPU") return CaamRole::IntraCpuChannel;
    return std::nullopt;
}

// --- Block -------------------------------------------------------------------

Block::Block(std::string name, BlockType type, System* parent)
    : name_(std::move(name)), type_(type), parent_(parent) {
    // Sensible default port shapes per type; the mapping resizes as needed.
    switch (type_) {
        case BlockType::Inport: inputs_ = 0; outputs_ = 1; break;
        case BlockType::Outport: inputs_ = 1; outputs_ = 0; break;
        case BlockType::Product:
        case BlockType::Sum: inputs_ = 2; outputs_ = 1; break;
        case BlockType::Gain:
        case BlockType::UnitDelay:
        case BlockType::CommChannel: inputs_ = 1; outputs_ = 1; break;
        case BlockType::Constant: inputs_ = 0; outputs_ = 1; break;
        case BlockType::Scope: inputs_ = 1; outputs_ = 0; break;
        case BlockType::SubSystem:
        case BlockType::SFunction: inputs_ = 0; outputs_ = 0; break;
    }
    if (type_ == BlockType::SubSystem)
        system_ = std::make_unique<System>(name_, this,
                                           parent_ ? parent_->model() : nullptr);
}

Block::~Block() = default;

void Block::rename(std::string name) { name_ = std::move(name); }

void Block::set_parameter(std::string_view key, std::string_view value) {
    params_.insert_or_assign(std::string(key), std::string(value));
}

const std::string* Block::find_parameter(std::string_view key) const {
    auto it = params_.find(key);
    return it == params_.end() ? nullptr : &it->second;
}

std::string Block::parameter_or(std::string_view key, std::string fallback) const {
    if (const std::string* v = find_parameter(key)) return *v;
    return fallback;
}

void Block::set_ports(int inputs, int outputs) {
    if (inputs < 0 || outputs < 0)
        throw std::invalid_argument("negative port count on block " + name_);
    inputs_ = inputs;
    outputs_ = outputs;
}

void Block::set_input_name(int port, std::string name) {
    if (port < 1 || port > inputs_)
        throw std::out_of_range("input port " + std::to_string(port) +
                                " out of range on block " + name_);
    input_names_[port] = std::move(name);
}

void Block::set_output_name(int port, std::string name) {
    if (port < 1 || port > outputs_)
        throw std::out_of_range("output port " + std::to_string(port) +
                                " out of range on block " + name_);
    output_names_[port] = std::move(name);
}

std::string Block::input_name(int port) const {
    auto it = input_names_.find(port);
    return it == input_names_.end() ? std::string() : it->second;
}

std::string Block::output_name(int port) const {
    auto it = output_names_.find(port);
    return it == output_names_.end() ? std::string() : it->second;
}

int Block::input_named(std::string_view name) const {
    for (const auto& [port, n] : input_names_)
        if (n == name) return port;
    return 0;
}

int Block::output_named(std::string_view name) const {
    for (const auto& [port, n] : output_names_)
        if (n == name) return port;
    return 0;
}

// --- System ------------------------------------------------------------------

Block& System::add_block(std::string name, BlockType type) {
    if (find_block(name))
        throw std::invalid_argument("duplicate block name '" + name +
                                    "' in system " + name_);
    blocks_.push_back(std::make_unique<Block>(std::move(name), type, this));
    return *blocks_.back();
}

Block& System::add_subsystem(std::string name, CaamRole role) {
    Block& b = add_block(std::move(name), BlockType::SubSystem);
    b.set_role(role);
    return b;
}

Block* System::find_block(std::string_view name) {
    for (const auto& b : blocks_)
        if (b->name() == name) return b.get();
    return nullptr;
}

const Block* System::find_block(std::string_view name) const {
    for (const auto& b : blocks_)
        if (b->name() == name) return b.get();
    return nullptr;
}

std::vector<Block*> System::blocks() {
    std::vector<Block*> out;
    for (const auto& b : blocks_) out.push_back(b.get());
    return out;
}

std::vector<const Block*> System::blocks() const {
    std::vector<const Block*> out;
    for (const auto& b : blocks_) out.push_back(b.get());
    return out;
}

std::vector<Block*> System::blocks_of(BlockType type) {
    std::vector<Block*> out;
    for (const auto& b : blocks_)
        if (b->type() == type) out.push_back(b.get());
    return out;
}

std::vector<Block*> System::blocks_with_role(CaamRole role) {
    std::vector<Block*> out;
    for (const auto& b : blocks_)
        if (b->role() == role) out.push_back(b.get());
    return out;
}

void System::remove_block(Block& block) {
    // Drop every line endpoint referring to the block first.
    for (auto it = lines_.begin(); it != lines_.end();) {
        Line& line = **it;
        if (line.source().block == &block) {
            it = lines_.erase(it);
            continue;
        }
        auto dsts = line.destinations();
        for (const PortRef& d : dsts)
            if (d.block == &block) line.remove_destination(d);
        if (line.destinations().empty()) {
            it = lines_.erase(it);
            continue;
        }
        ++it;
    }
    auto it = std::find_if(blocks_.begin(), blocks_.end(),
                           [&](const auto& b) { return b.get() == &block; });
    if (it == blocks_.end())
        throw std::invalid_argument("block '" + block.name() +
                                    "' is not in system " + name_);
    blocks_.erase(it);
}

bool Line::remove_destination(const PortRef& dst) {
    auto it = std::find(dsts_.begin(), dsts_.end(), dst);
    if (it == dsts_.end()) return false;
    dsts_.erase(it);
    return true;
}

Line& System::add_line(PortRef src, PortRef dst, std::string name) {
    if (!src.block || !dst.block)
        throw std::invalid_argument("line endpoints must reference blocks");
    if (src.block->parent() != this || dst.block->parent() != this)
        throw std::invalid_argument(
            "line endpoints must live in this system (" + name_ + ")");
    if (src.port < 1 || src.port > src.block->output_count())
        throw std::invalid_argument("source port " + std::to_string(src.port) +
                                    " out of range on block " + src.block->name());
    if (dst.port < 1 || dst.port > dst.block->input_count())
        throw std::invalid_argument("destination port " + std::to_string(dst.port) +
                                    " out of range on block " + dst.block->name());
    if (line_into(dst))
        throw std::invalid_argument("input port " + std::to_string(dst.port) +
                                    " of block " + dst.block->name() +
                                    " is already driven");
    // Simulink semantics: one line per source port; further sinks branch.
    if (Line* existing = line_from(src)) {
        existing->add_destination(dst);
        if (existing->name().empty() && !name.empty())
            existing->set_name(std::move(name));
        return *existing;
    }
    lines_.push_back(std::make_unique<Line>(src, std::move(name)));
    lines_.back()->add_destination(dst);
    return *lines_.back();
}

Line* System::line_from(const PortRef& src) {
    for (const auto& l : lines_)
        if (l->source() == src) return l.get();
    return nullptr;
}

const Line* System::line_from(const PortRef& src) const {
    for (const auto& l : lines_)
        if (l->source() == src) return l.get();
    return nullptr;
}

Line* System::line_into(const PortRef& dst) {
    for (const auto& l : lines_)
        for (const PortRef& d : l->destinations())
            if (d == dst) return l.get();
    return nullptr;
}

const Line* System::line_into(const PortRef& dst) const {
    for (const auto& l : lines_)
        for (const PortRef& d : l->destinations())
            if (d == dst) return l.get();
    return nullptr;
}

std::vector<Line*> System::lines() {
    std::vector<Line*> out;
    for (const auto& l : lines_) out.push_back(l.get());
    return out;
}

std::vector<const Line*> System::lines() const {
    std::vector<const Line*> out;
    for (const auto& l : lines_) out.push_back(l.get());
    return out;
}

void System::remove_line(Line& line) {
    auto it = std::find_if(lines_.begin(), lines_.end(),
                           [&](const auto& l) { return l.get() == &line; });
    if (it == lines_.end())
        throw std::invalid_argument("line is not in system " + name_);
    lines_.erase(it);
}

std::size_t System::total_blocks() const {
    std::size_t count = blocks_.size();
    for (const auto& b : blocks_)
        if (b->system()) count += b->system()->total_blocks();
    return count;
}

std::size_t System::total_lines() const {
    std::size_t count = lines_.size();
    for (const auto& b : blocks_)
        if (b->system()) count += b->system()->total_lines();
    return count;
}

// --- Model -----------------------------------------------------------------

Model::Model(std::string name)
    : name_(std::move(name)),
      root_(std::make_unique<System>(name_, nullptr, this)) {}

void Model::reanchor(System& system) {
    system.model_ = this;
    for (Block* b : system.blocks())
        if (b->system()) reanchor(*b->system());
}

Model& Model::operator=(Model&& other) noexcept {
    name_ = std::move(other.name_);
    root_ = std::move(other.root_);
    stop_time = other.stop_time;
    fixed_step = other.fixed_step;
    solver = std::move(other.solver);
    if (root_) reanchor(*root_);  // System back pointers must follow the move
    return *this;
}

}  // namespace uhcg::simulink
