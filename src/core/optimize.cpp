#include "core/optimize.hpp"

#include <map>
#include <set>
#include <tuple>

#include "core/mapping.hpp"
#include "simulink/caam.hpp"

namespace uhcg::core {

using simulink::Block;
using simulink::BlockType;
using simulink::CaamRole;
using simulink::PortRef;
using simulink::System;

namespace {

/// Unique block name within a system.
std::string unique_block_name(System& sys, const std::string& hint) {
    if (!sys.find_block(hint)) return hint;
    int i = 1;
    while (sys.find_block(hint + "_" + std::to_string(i))) ++i;
    return hint + "_" + std::to_string(i);
}

/// Thread-SS block for a thread name, anywhere under the root.
Block* find_thread_ss(simulink::Model& model, const std::string& thread) {
    for (Block* cpu : simulink::cpu_subsystems(model)) {
        if (Block* t = cpu->system()->find_block(thread);
            t && t->role() == CaamRole::ThreadSubsystem)
            return t;
    }
    return nullptr;
}

}  // namespace

int add_subsystem_input(Block& sub, const std::string& name, PortRef inner_dst) {
    System& sys = *sub.system();
    int index = sub.input_count() + 1;
    sub.set_ports(index, sub.output_count());
    sub.set_input_name(index, name);
    Block& in = sys.add_block(unique_block_name(sys, name), BlockType::Inport);
    in.set_parameter("Port", std::to_string(index));
    sys.add_line({&in, 1}, inner_dst, name);
    return index;
}

int add_subsystem_output(Block& sub, const std::string& name, PortRef inner_src) {
    System& sys = *sub.system();
    int index = sub.output_count() + 1;
    sub.set_ports(sub.input_count(), index);
    sub.set_output_name(index, name);
    Block& out =
        sys.add_block(unique_block_name(sys, name + "_out"), BlockType::Outport);
    out.set_parameter("Port", std::to_string(index));
    sys.add_line(inner_src, {&out, 1}, name);
    return index;
}

ChannelReport infer_channels(simulink::Model& model, const CommModel& comm) {
    ChannelReport report;
    System& root = model.root();

    // CPU-SS boundary ports created so far: (cpu block, var, direction) →
    // port index, so fan-out across consumers reuses the producer port.
    std::map<std::tuple<Block*, std::string, bool>, int> cpu_ports;

    auto cpu_of = [](Block& thread_ss) { return thread_ss.parent()->owner_block(); };

    auto get_cpu_output = [&](Block& producer_tss, const std::string& var) -> int {
        Block* cpu = cpu_of(producer_tss);
        auto key = std::make_tuple(cpu, var, false);
        if (auto it = cpu_ports.find(key); it != cpu_ports.end()) return it->second;
        int tss_port = producer_tss.output_named(var);
        int index = add_subsystem_output(*cpu, var, {&producer_tss, tss_port});
        cpu_ports[key] = index;
        return index;
    };

    // --- §4.2.1 channel inference -------------------------------------------
    std::set<std::tuple<std::string, std::string, std::string>> seen;
    for (const Channel& c : comm.channels()) {
        // Set on one side and Get on the other both describe the same data
        // link; instantiate each (producer, consumer, var) channel once.
        if (!seen.insert(std::make_tuple(c.producer->name(), c.consumer->name(),
                                         c.variable))
                 .second)
            continue;

        Block* p_tss = find_thread_ss(model, c.producer->name());
        Block* c_tss = find_thread_ss(model, c.consumer->name());
        if (!p_tss || !c_tss) {
            report.warnings.push_back("channel " + c.producer->name() + "->" +
                                      c.consumer->name() + " [" + c.variable +
                                      "]: thread subsystem missing");
            continue;
        }
        int src_port = p_tss->output_named(c.variable);
        int dst_port = c_tss->input_named(c.variable);
        if (src_port == 0) {
            report.warnings.push_back("channel variable '" + c.variable +
                                      "' is never produced by thread '" +
                                      c.producer->name() + "'");
            continue;
        }
        if (dst_port == 0) {
            report.warnings.push_back("channel variable '" + c.variable +
                                      "' is never consumed by thread '" +
                                      c.consumer->name() + "'");
            continue;
        }

        // Defensive: a contended consumer port (two producers for one
        // variable — rejected by uml::check E7, but tolerated here when
        // enforcement is off) is reported instead of crashing the wiring.
        if (c_tss->parent()->line_into({c_tss, dst_port})) {
            report.warnings.push_back(
                "channel variable '" + c.variable + "' of thread '" +
                c.consumer->name() + "' already driven; skipping producer '" +
                c.producer->name() + "'");
            continue;
        }

        Block* p_cpu = cpu_of(*p_tss);
        Block* c_cpu = cpu_of(*c_tss);
        if (p_cpu == c_cpu) {
            // Intra-SS channel (SWFIFO) inside the shared CPU-SS.
            System& sys = *p_cpu->system();
            Block& chan = sys.add_block(
                unique_block_name(sys, "chan_" + c.producer->name() + "_" +
                                           c.consumer->name() + "_" + c.variable),
                BlockType::CommChannel);
            chan.set_role(CaamRole::IntraCpuChannel);
            chan.set_parameter("Protocol", simulink::kProtocolSwFifo);
            chan.set_parameter("Var", c.variable);
            sys.add_line({p_tss, src_port}, {&chan, 1}, c.variable);
            sys.add_line({&chan, 1}, {c_tss, dst_port}, c.variable);
            ++report.intra_channels;
        } else {
            // Inter-SS channel (GFIFO) at the architecture layer.
            int p_cpu_out = get_cpu_output(*p_tss, c.variable);
            int c_cpu_in = add_subsystem_input(*c_cpu, c.variable, {c_tss, dst_port});
            Block& chan = root.add_block(
                unique_block_name(root, "chan_" + c.producer->name() + "_" +
                                            c.consumer->name() + "_" + c.variable),
                BlockType::CommChannel);
            chan.set_role(CaamRole::InterCpuChannel);
            chan.set_parameter("Protocol", simulink::kProtocolGFifo);
            chan.set_parameter("Var", c.variable);
            root.add_line({p_cpu, p_cpu_out}, {&chan, 1}, c.variable);
            root.add_line({&chan, 1}, {c_cpu, c_cpu_in}, c.variable);
            ++report.inter_channels;
        }
    }

    // --- environment plumbing (<<IO>> and open inputs → system ports) --------
    int next_in = 1, next_out = 1;
    for (Block* cpu : simulink::cpu_subsystems(model)) {
        for (Block* tss : simulink::thread_subsystems(*cpu)) {
            for (Block* boundary : tss->system()->blocks()) {
                const std::string* kind = boundary->find_parameter("CommKind");
                if (!kind || *kind == kCommKindChannel) continue;
                const std::string var = boundary->parameter_or("Var", "?");
                int tss_port = std::stoi(boundary->parameter_or("Port", "0"));
                if (boundary->type() == BlockType::Inport) {
                    // Thread input ← CPU input ← system Inport block.
                    int cpu_in = add_subsystem_input(*cpu, var, {tss, tss_port});
                    Block& sys_in = root.add_block(
                        unique_block_name(root, "In" + std::to_string(next_in)),
                        BlockType::Inport);
                    sys_in.set_parameter("Port", std::to_string(next_in));
                    sys_in.set_parameter("Var", var);
                    root.add_line({&sys_in, 1}, {cpu, cpu_in}, var);
                    ++next_in;
                    ++report.system_inputs;
                } else if (boundary->type() == BlockType::Outport &&
                           *kind == kCommKindIo) {
                    int cpu_out = add_subsystem_output(*cpu, var, {tss, tss_port});
                    Block& sys_out = root.add_block(
                        unique_block_name(root, "Out" + std::to_string(next_out)),
                        BlockType::Outport);
                    sys_out.set_parameter("Port", std::to_string(next_out));
                    sys_out.set_parameter("Var", var);
                    root.add_line({cpu, cpu_out}, {&sys_out, 1}, var);
                    ++next_out;
                    ++report.system_outputs;
                }
            }
        }
    }

    return report;
}

}  // namespace uhcg::core
