#include "core/pipeline.hpp"

#include <stdexcept>

#include "simulink/generic.hpp"
#include "simulink/mdl.hpp"
#include "uml/wellformed.hpp"

namespace uhcg::core {

simulink::Model map_to_caam(const uml::Model& model, const MapperOptions& options,
                            MapperReport* report) {
    MapperReport local;
    MapperReport& r = report ? *report : local;

    // Gate: the conventions of §4.1 must hold or the mapping mis-wires.
    auto issues = uml::check(model);
    for (const uml::Issue& i : issues)
        if (i.severity == uml::Severity::Warning)
            r.warnings.push_back("uml: [" + i.where + "] " + i.message);
    if (options.enforce_wellformedness && !uml::only_warnings(issues))
        throw std::runtime_error("UML model is ill-formed:\n" +
                                 uml::format_issues(issues));

    // Analyses feeding the mapping.
    CommModel comm = analyze_communication(model);
    r.allocation = options.auto_allocate
                       ? auto_allocate(model, comm, options.max_processors)
                       : allocation_from_deployment(model);

    // Step 2: model-to-model transformation.
    MappingOutput mapped = run_mapping(model, comm, r.allocation);
    r.rule_stats = mapped.stats;
    r.warnings.insert(r.warnings.end(), mapped.warnings.begin(),
                      mapped.warnings.end());

    // Lift the generic CAAM into the typed API for optimization.
    simulink::Model caam = simulink::from_generic(mapped.caam);

    // Step 3: optimizations.
    if (options.infer_channels) {
        r.channels = infer_channels(caam, comm);
        r.warnings.insert(r.warnings.end(), r.channels.warnings.begin(),
                          r.channels.warnings.end());
    }
    if (options.insert_delays) r.delays = insert_temporal_barriers(caam);

    return caam;
}

std::string generate_mdl(const uml::Model& model, const MapperOptions& options,
                         MapperReport* report) {
    simulink::Model caam = map_to_caam(model, options, report);
    return simulink::write_mdl(caam);  // step 4: model-to-text
}

}  // namespace uhcg::core
