#include "core/pipeline.hpp"

#include <stdexcept>

#include "simulink/caam.hpp"
#include "simulink/generic.hpp"
#include "simulink/mdl.hpp"
#include "uml/wellformed.hpp"

namespace uhcg::core {

std::optional<simulink::Model> map_to_caam(const uml::Model& model,
                                           const MapperOptions& options,
                                           diag::DiagnosticEngine& engine,
                                           MapperReport* report) {
    MapperReport local;
    MapperReport& r = report ? *report : local;

    // Gate: the conventions of §4.1 must hold or the mapping mis-wires.
    // All issues are collected before deciding whether to abort, so a model
    // with three independent defects yields three diagnostics in one run.
    auto issues = uml::check(model);
    for (const uml::Issue& i : issues) {
        std::string code = "uml.";
        code += (i.rule && i.rule[0]) ? i.rule : "wellformed";
        engine.report(i.severity == uml::Severity::Error ? diag::Severity::Error
                                                         : diag::Severity::Warning,
                      std::move(code), "[" + i.where + "] " + i.message);
        if (i.severity == uml::Severity::Warning)
            r.warnings.push_back("uml: [" + i.where + "] " + i.message);
    }
    if (options.enforce_wellformedness && !uml::only_warnings(issues))
        return std::nullopt;

    try {
        // Analyses feeding the mapping.
        CommModel comm = analyze_communication(model);
        r.allocation = options.auto_allocate
                           ? auto_allocate(model, comm, options.max_processors)
                           : allocation_from_deployment(model);

        // Step 2: model-to-model transformation.
        MappingOutput mapped = run_mapping(model, comm, r.allocation);
        r.rule_stats = mapped.stats;
        for (const std::string& w : mapped.warnings)
            engine.warning(diag::codes::kMapRule, w);
        r.warnings.insert(r.warnings.end(), mapped.warnings.begin(),
                          mapped.warnings.end());

        // Lift the generic CAAM into the typed API for optimization.
        simulink::Model caam = simulink::from_generic(mapped.caam);

        // Step 3: optimizations.
        if (options.infer_channels) {
            r.channels = infer_channels(caam, comm);
            for (const std::string& w : r.channels.warnings)
                engine.warning(diag::codes::kMapChannels, w);
            r.warnings.insert(r.warnings.end(), r.channels.warnings.begin(),
                              r.channels.warnings.end());
        }
        if (options.insert_delays) r.delays = insert_temporal_barriers(caam);

        // Conformance of the produced CAAM before handing it onward.
        for (const std::string& p : simulink::validate_caam(caam))
            engine.error(diag::codes::kCaamInvalid, p);
        if (engine.has_errors() && options.enforce_wellformedness)
            return std::nullopt;
        return caam;
    } catch (const std::exception& e) {
        // A mapping stage gave up on a structure the checks above let
        // through — degrade to a diagnostic so the driver reports instead
        // of crashing.
        engine.report(diag::Severity::Fatal, diag::codes::kMapInternal, e.what());
        return std::nullopt;
    }
}

std::optional<std::string> generate_mdl(const uml::Model& model,
                                        const MapperOptions& options,
                                        diag::DiagnosticEngine& engine,
                                        MapperReport* report) {
    auto caam = map_to_caam(model, options, engine, report);
    if (!caam) return std::nullopt;
    try {
        return simulink::write_mdl(*caam);  // step 4: model-to-text
    } catch (const std::exception& e) {
        engine.report(diag::Severity::Fatal, diag::codes::kMapInternal, e.what());
        return std::nullopt;
    }
}

simulink::Model map_to_caam(const uml::Model& model, const MapperOptions& options,
                            MapperReport* report) {
    MapperReport local;
    MapperReport& r = report ? *report : local;

    // Gate: the conventions of §4.1 must hold or the mapping mis-wires.
    auto issues = uml::check(model);
    for (const uml::Issue& i : issues)
        if (i.severity == uml::Severity::Warning)
            r.warnings.push_back("uml: [" + i.where + "] " + i.message);
    if (options.enforce_wellformedness && !uml::only_warnings(issues))
        throw std::runtime_error("UML model is ill-formed:\n" +
                                 uml::format_issues(issues));

    // Analyses feeding the mapping.
    CommModel comm = analyze_communication(model);
    r.allocation = options.auto_allocate
                       ? auto_allocate(model, comm, options.max_processors)
                       : allocation_from_deployment(model);

    // Step 2: model-to-model transformation.
    MappingOutput mapped = run_mapping(model, comm, r.allocation);
    r.rule_stats = mapped.stats;
    r.warnings.insert(r.warnings.end(), mapped.warnings.begin(),
                      mapped.warnings.end());

    // Lift the generic CAAM into the typed API for optimization.
    simulink::Model caam = simulink::from_generic(mapped.caam);

    // Step 3: optimizations.
    if (options.infer_channels) {
        r.channels = infer_channels(caam, comm);
        r.warnings.insert(r.warnings.end(), r.channels.warnings.begin(),
                          r.channels.warnings.end());
    }
    if (options.insert_delays) r.delays = insert_temporal_barriers(caam);

    return caam;
}

std::string generate_mdl(const uml::Model& model, const MapperOptions& options,
                         MapperReport* report) {
    simulink::Model caam = map_to_caam(model, options, report);
    return simulink::write_mdl(caam);  // step 4: model-to-text
}

}  // namespace uhcg::core
