// comm.hpp — communication analysis over UML sequence diagrams.
//
// The §4.1 conventions make inter-thread and environment communication
// syntactically recognizable:
//  * `Set*` message thread A → thread B carrying argument v:
//        A sends v to B            ⇒ data channel A --v--> B;
//  * `Get*` message thread A → thread B binding result v:
//        A receives v from B       ⇒ data channel B --v--> A;
//  * `get*` on an <<IO>> object binding result v: environment input to the
//    invoking thread;
//  * `set*` on an <<IO>> object carrying argument v: environment output.
//
// The analysis produces the channel/IO tables every later stage consumes:
// channel inference (§4.2.1), the task graph for thread allocation
// (§4.2.3), and the Thread-SS port synthesis of the mapping itself.
#pragma once

#include <string>
#include <vector>

#include "uml/model.hpp"

namespace uhcg::core {

/// One inter-thread data channel (producer's variable v flows to consumer).
struct Channel {
    const uml::ObjectInstance* producer = nullptr;
    const uml::ObjectInstance* consumer = nullptr;
    std::string variable;
    double data_size = 1.0;
};

/// One environment access by a thread through an <<IO>> device.
struct IoAccess {
    const uml::ObjectInstance* thread = nullptr;
    const uml::ObjectInstance* device = nullptr;
    std::string variable;
    bool is_input = false;  ///< true for get* (environment → thread)
};

/// Result of the analysis.
class CommModel {
public:
    const std::vector<Channel>& channels() const { return channels_; }
    const std::vector<IoAccess>& io_accesses() const { return io_; }

    /// Channels consumed / produced by one thread.
    std::vector<const Channel*> incoming(const uml::ObjectInstance& thread) const;
    std::vector<const Channel*> outgoing(const uml::ObjectInstance& thread) const;
    /// True when `thread` receives variable `v` over some channel.
    bool receives(const uml::ObjectInstance& thread, std::string_view v) const;
    /// True when some channel requires `thread` to produce `v`.
    bool must_produce(const uml::ObjectInstance& thread, std::string_view v) const;
    /// IO inputs (get*) of one thread.
    std::vector<const IoAccess*> io_inputs(const uml::ObjectInstance& thread) const;
    std::vector<const IoAccess*> io_outputs(const uml::ObjectInstance& thread) const;

    /// Sum of data sizes between an ordered thread pair.
    double traffic(const uml::ObjectInstance& from,
                   const uml::ObjectInstance& to) const;

    void add_channel(Channel c) { channels_.push_back(std::move(c)); }
    void add_io(IoAccess a) { io_.push_back(std::move(a)); }

private:
    std::vector<Channel> channels_;
    std::vector<IoAccess> io_;
};

/// Runs the analysis. Messages violating the conventions are skipped here;
/// uml::check reports them as errors beforehand.
CommModel analyze_communication(const uml::Model& model);

}  // namespace uhcg::core
