// delays.hpp — §4.2.2 "Insertion of temporal barriers".
//
// "When describing a dataflow model, cyclic paths need to be found and
// temporal barriers are required to avoid deadlocks. ... Our tool
// automatically detects the cyclic paths and inserts a Simulink UnitDelay
// block in the data link where the loop is detected."
//
// Detection is port-accurate: a SubSystem contributes an in→out dependency
// only when a combinational path actually exists through its contents
// (computed recursively), so parallel paths through a subsystem do not
// produce false cycles. UnitDelay blocks (including previously inserted
// ones) and nothing else break combinational paths; communication channels
// are pass-through within a step, which is exactly why an undelayed cycle
// deadlocks the execution engine (uhcg::sim) — the property the crane
// experiment demonstrates.
#pragma once

#include <string>
#include <vector>

#include "simulink/model.hpp"

namespace uhcg::core {

struct DelayReport {
    std::size_t inserted = 0;
    /// "system-name: src-block.port -> dst-block.port" per inserted delay.
    std::vector<std::string> locations;
};

/// Breaks every combinational cycle in the model by inserting UnitDelay
/// blocks; idempotent (a second call inserts nothing).
DelayReport insert_temporal_barriers(simulink::Model& model);

/// True when the model still contains a combinational cycle somewhere.
bool has_combinational_cycle(const simulink::Model& model);

}  // namespace uhcg::core
