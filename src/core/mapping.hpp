// mapping.hpp — the §4.1 model-to-model mapping, UML → Simulink CAAM,
// expressed as rules on the uhcg::transform engine (Fig. 2, step 2).
//
// Matched rules (registration order = execution order):
//   Model2Caam        — UML Model → CAAM Model + root System + one CPU-SS
//                       per allocated processor (<<SAengine>> nodes or the
//                       clusters of the automatic allocation);
//   Thread2ThreadSS   — <<SASchedRes>> object → Thread-SS subsystem inside
//                       its processor's CPU-SS;
//   Interaction2Layer — sequence diagram → the thread layer: one block per
//                       method call on a passive object (pre-defined block
//                       for Platform methods, S-function otherwise),
//                       parameter directions → block ports, message
//                       arguments → data links, Set/Get and <<IO>> get/set
//                       → Thread-SS boundary ports annotated for the
//                       optimizer.
//
// The output is *generic* (conforms to simulink::caam_metamodel()) and not
// yet synthesizable: boundary ports carry CommKind/Var annotations, and
// channels, system ports and temporal barriers are materialized by the
// optimization step (core/optimize.hpp, core/delays.hpp), mirroring the
// paper's step 2 / step 3 split.
#pragma once

#include "core/allocation.hpp"
#include "core/comm.hpp"
#include "model/object.hpp"
#include "transform/engine.hpp"
#include "uml/model.hpp"

namespace uhcg::core {

/// Values of the "CommKind" annotation on Thread-SS boundary Inport and
/// Outport blocks. The optimizer dispatches on them.
inline constexpr const char* kCommKindChannel = "channel";  ///< inter-thread
inline constexpr const char* kCommKindIo = "io";            ///< <<IO>> device
inline constexpr const char* kCommKindSystem = "system";    ///< open input

struct MappingOutput {
    model::ObjectModel caam;      ///< generic CAAM (pre-optimization)
    transform::RunStats stats;    ///< rule application counts
    std::vector<std::string> warnings;
};

/// Runs the mapping rules. `model` must pass uml::check without errors;
/// `comm` and `allocation` are the precomputed analysis results (every
/// thread must be allocated).
MappingOutput run_mapping(const uml::Model& model, const CommModel& comm,
                          const Allocation& allocation);

}  // namespace uhcg::core
