// optimize.hpp — step-3 optimizations on the typed CAAM (§4.2.1 channel
// inference plus the port plumbing it implies).
//
// The mapping (step 2) leaves Thread-SS boundary ports annotated with
// CommKind/Var. This pass materializes the communication structure:
//
//  * channel inference (§4.2.1): for every inter-thread data dependency,
//    instantiate a communication block — intra-SS (SWFIFO) inside the
//    shared CPU-SS when producer and consumer are co-located, inter-SS
//    (GFIFO) at the architecture layer otherwise, growing CPU-SS boundary
//    ports as needed;
//  * environment plumbing: <<IO>> and open ("system") thread ports are
//    propagated through the CPU-SS boundary up to numbered system Inport /
//    Outport blocks (Fig. 3(c)'s In1/In2/Out1).
#pragma once

#include <string>
#include <vector>

#include "core/allocation.hpp"
#include "core/comm.hpp"
#include "simulink/model.hpp"

namespace uhcg::core {

struct ChannelReport {
    std::size_t intra_channels = 0;
    std::size_t inter_channels = 0;
    std::size_t system_inputs = 0;
    std::size_t system_outputs = 0;
    std::vector<std::string> warnings;
};

/// Runs channel inference + environment plumbing in place.
ChannelReport infer_channels(simulink::Model& model, const CommModel& comm);

/// Grows subsystem `sub` by one named input port wired inside to
/// `inner_dst`; returns the new port index. Exposed for reuse/testing.
int add_subsystem_input(simulink::Block& sub, const std::string& name,
                        simulink::PortRef inner_dst);
/// Grows subsystem `sub` by one named output port fed inside from
/// `inner_src`; returns the new port index.
int add_subsystem_output(simulink::Block& sub, const std::string& name,
                         simulink::PortRef inner_src);

}  // namespace uhcg::core
