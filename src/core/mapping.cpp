#include "core/mapping.hpp"

#include <cctype>
#include <map>
#include <set>
#include <stdexcept>

#include "simulink/generic.hpp"
#include "simulink/library.hpp"
#include "uml/generic.hpp"

namespace uhcg::core {
namespace {

using model::Object;
using model::ObjectModel;

bool is_numeric_literal(const std::string& s) {
    if (s.empty()) return false;
    std::size_t i = (s[0] == '-' || s[0] == '+') ? 1 : 0;
    bool digit = false, dot = false;
    for (; i < s.size(); ++i) {
        if (std::isdigit(static_cast<unsigned char>(s[i]))) {
            digit = true;
        } else if (s[i] == '.' && !dot) {
            dot = true;
        } else {
            return false;
        }
    }
    return digit;
}

/// Where a value is available inside a thread layer: a block output port.
struct PortLoc {
    Object* block = nullptr;
    int port = 1;
};

/// Helper for building generic CAAM graphs (ids unique model-wide, block
/// names unique per system).
class Gen {
public:
    explicit Gen(ObjectModel& m) : m_(&m) {}

    Object& block(Object& sys, const std::string& hint, const std::string& type,
                  int inputs, int outputs, const std::string& role = "None") {
        std::string name = unique_name(sys, hint);
        Object& b = m_->create("Block", fresh_id("b." + name));
        b.set("name", name);
        b.set("type", type);
        b.set("role", role);
        b.set("inputs", static_cast<std::int64_t>(inputs));
        b.set("outputs", static_cast<std::int64_t>(outputs));
        sys.add_ref("blocks", b);
        return b;
    }

    Object& subsystem(Object& sys, const std::string& hint,
                      const std::string& role) {
        Object& b = block(sys, hint, "SubSystem", 0, 0, role);
        Object& nested = m_->create("System", fresh_id("s." + b.get_string("name")));
        nested.set("name", b.get_string("name"));
        b.add_ref("system", nested);
        return b;
    }

    static Object& system_of(Object& subsystem_block) {
        Object* sys = subsystem_block.ref("system");
        if (!sys) throw std::logic_error("subsystem block without nested system");
        return *sys;
    }

    void set_param(Object& block, const std::string& key, const std::string& value) {
        Object& p = m_->create("Param", fresh_id("p"));
        p.set("key", key);
        p.set("value", value);
        block.add_ref("params", p);
    }

    void name_port(Object& block, int index, bool is_input,
                   const std::string& name) {
        Object& pn = m_->create("PortName", fresh_id("pn"));
        pn.set("index", static_cast<std::int64_t>(index));
        pn.set("isInput", is_input);
        pn.set("name", name);
        block.add_ref("portNames", pn);
    }

    int grow_inputs(Object& block) {
        auto n = block.get_int("inputs") + 1;
        block.set("inputs", n);
        return static_cast<int>(n);
    }

    int grow_outputs(Object& block) {
        auto n = block.get_int("outputs") + 1;
        block.set("outputs", n);
        return static_cast<int>(n);
    }

    void connect(Object& sys, Object& src, int src_port, Object& dst, int dst_port,
                 const std::string& signal = {}) {
        Object& line = m_->create("Line", fresh_id("l"));
        line.set("name", signal);
        Object& s = m_->create("Endpoint", fresh_id("e"));
        s.set("port", static_cast<std::int64_t>(src_port));
        s.set_ref("block", &src);
        line.add_ref("src", s);
        Object& d = m_->create("Endpoint", fresh_id("e"));
        d.set("port", static_cast<std::int64_t>(dst_port));
        d.set_ref("block", &dst);
        line.add_ref("dsts", d);
        sys.add_ref("lines", line);
    }

private:
    std::string fresh_id(const std::string& hint) {
        return hint + "#" + std::to_string(counter_++);
    }

    std::string unique_name(Object& sys, const std::string& hint) {
        auto& used = names_[&sys];
        auto [it, inserted] = used.emplace(hint, 0);
        if (inserted) return hint;
        return hint + "_" + std::to_string(++it->second);
    }

    ObjectModel* m_;
    std::size_t counter_ = 0;
    std::map<Object*, std::map<std::string, int>> names_;
};

/// Mutable per-thread mapping state.
struct ThreadLayer {
    Object* tss = nullptr;   // Thread-SS block
    Object* tsys = nullptr;  // its nested system
    std::map<std::string, PortLoc> defs;         // var → producing port
    std::map<std::string, Object*> inports;      // var → Inport block
    std::map<std::string, Object*> outports;     // var → Outport block
    const uml::ObjectInstance* typed = nullptr;  // typed thread (comm lookups)
};

/// Everything the rule bodies share.
struct MappingState {
    const uml::Model* um = nullptr;
    const CommModel* comm = nullptr;
    const Allocation* alloc = nullptr;
    std::unique_ptr<Gen> gen;
    Object* root_sys = nullptr;
    std::vector<Object*> cpu_blocks;  // index = processor index
    std::map<const Object*, ThreadLayer> layers;  // generic thread → layer
    std::vector<std::string> warnings;

    const uml::ObjectInstance* typed_thread(const Object& generic_thread) const {
        return um->find_object(generic_thread.get_string("name"));
    }

    ThreadLayer* layer_of(transform::Context& ctx, const Object& generic_thread) {
        auto it = layers.find(&generic_thread);
        if (it != layers.end()) return &it->second;
        (void)ctx;
        return nullptr;
    }
};

/// §4.1 boundary-port synthesis: Thread-SS Inport for an incoming value.
PortLoc thread_input(MappingState& st, ThreadLayer& layer, const std::string& var,
                     const std::string& kind) {
    if (auto it = layer.inports.find(var); it != layer.inports.end())
        return {it->second, 1};
    Gen& g = *st.gen;
    Object& in = g.block(*layer.tsys, var, "Inport", 0, 1);
    int index = g.grow_inputs(*layer.tss);
    g.set_param(in, "Port", std::to_string(index));
    g.set_param(in, "Var", var);
    g.set_param(in, "CommKind", kind);
    g.name_port(*layer.tss, index, true, var);
    layer.inports[var] = &in;
    layer.defs[var] = {&in, 1};
    return {&in, 1};
}

/// Thread-SS Outport for an outgoing value, wired from its definition.
/// A variable can leave a thread through several kinds at once (e.g. sent
/// to a peer thread *and* written to an <<IO>> device); each kind gets its
/// own boundary port — the CPU/system-level fan-out happens above.
void thread_output(MappingState& st, ThreadLayer& layer, const std::string& var,
                   const std::string& kind, PortLoc source) {
    std::string key = var + "|" + kind;
    if (layer.outports.count(key) != 0) return;  // fan-out resolved upstream
    Gen& g = *st.gen;
    Object& out = g.block(*layer.tsys, var + "_out", "Outport", 1, 0);
    int index = g.grow_outputs(*layer.tss);
    g.set_param(out, "Port", std::to_string(index));
    g.set_param(out, "Var", var);
    g.set_param(out, "CommKind", kind);
    // Port names must stay unique per block because channel inference looks
    // the producer port up by variable name: the channel port owns the
    // plain name, other kinds are suffixed.
    g.name_port(*layer.tss, index, false,
                kind == kCommKindChannel ? var : var + "_" + kind);
    g.connect(*layer.tsys, *source.block, source.port, out, 1, var);
    layer.outports[key] = &out;
}

/// Resolves a value name inside a thread: an existing definition, a numeric
/// literal (materialized as a Constant block), or — when neither — a fresh
/// Thread-SS input whose kind is derived from the communication analysis.
PortLoc resolve_value(MappingState& st, ThreadLayer& layer,
                      const std::string& var) {
    if (auto it = layer.defs.find(var); it != layer.defs.end()) return it->second;
    Gen& g = *st.gen;
    if (is_numeric_literal(var)) {
        Object& c = g.block(*layer.tsys, "const_" + var, "Constant", 0, 1);
        g.set_param(c, "Value", var);
        layer.defs[var] = {&c, 1};
        return {&c, 1};
    }
    std::string kind = kCommKindSystem;
    if (st.comm->receives(*layer.typed, var)) {
        kind = kCommKindChannel;
    } else {
        for (const IoAccess* a : st.comm->io_inputs(*layer.typed)) {
            if (a->variable == var) {
                kind = kCommKindIo;
                break;
            }
        }
    }
    return thread_input(st, layer, var, kind);
}

// ---------------------------------------------------------------------------
// Message translation (the body of rule Interaction2Layer)
// ---------------------------------------------------------------------------

/// Call on the special Platform object: pre-defined block or S-function.
void map_platform_call(MappingState& st, ThreadLayer& layer, const Object& msg) {
    Gen& g = *st.gen;
    const std::string op = msg.get_string("operation");
    const auto& args = msg.refs("arguments");
    const std::string result = msg.get_string("result");

    auto entry = simulink::lookup_platform_method(op);
    std::string type = entry ? std::string(to_string(entry->type)) : "S-Function";
    int inputs = static_cast<int>(args.size());
    int outputs = result.empty() ? (entry ? entry->outputs : 0) : 1;
    Object& b = g.block(*layer.tsys, op, type, inputs, outputs);
    if (!entry) g.set_param(b, "FunctionName", op);
    if (entry && op == "sub") g.set_param(b, "Inputs", "+-");

    int port = 1;
    for (const Object* a : args) {
        std::string var = a->get_string("name");
        PortLoc src = resolve_value(st, layer, var);
        g.connect(*layer.tsys, *src.block, src.port, b, port, var);
        ++port;
    }
    if (!result.empty()) {
        g.name_port(b, 1, false, result);
        layer.defs[result] = {&b, 1};
    }
}

/// Call on a passive object: always an S-function (§4.1), shaped by the
/// declared operation signature when one exists.
void map_passive_call(MappingState& st, ThreadLayer& layer, const Object& msg,
                      const Object& receiver) {
    Gen& g = *st.gen;
    const std::string op_name = msg.get_string("operation");
    const auto& args = msg.refs("arguments");
    const std::string result = msg.get_string("result");

    // Find the declared operation on the receiver's classifier, if any.
    const Object* decl = nullptr;
    if (const Object* cls = receiver.ref("classifier")) {
        for (const Object* o : cls->refs("operations"))
            if (o->get_string("name") == op_name) decl = o;
    }

    if (!decl) {
        // Undeclared: treat like an S-function with args in, result out.
        Object& b = g.block(*layer.tsys, op_name, "S-Function",
                            static_cast<int>(args.size()), result.empty() ? 0 : 1);
        g.set_param(b, "FunctionName", op_name);
        int port = 1;
        for (const Object* a : args) {
            std::string var = a->get_string("name");
            PortLoc src = resolve_value(st, layer, var);
            g.connect(*layer.tsys, *src.block, src.port, b, port++, var);
        }
        if (!result.empty()) {
            g.name_port(b, 1, false, result);
            layer.defs[result] = {&b, 1};
        }
        return;
    }

    // Count ports from the signature: in/inout → inputs; out/inout/return →
    // outputs.
    int inputs = 0, outputs = 0;
    for (const Object* p : decl->refs("parameters")) {
        std::string dir = p->get_string("direction");
        if (dir == "in" || dir == "inout") ++inputs;
        if (dir == "out" || dir == "inout" || dir == "return") ++outputs;
    }
    Object& b = g.block(*layer.tsys, op_name, "S-Function", inputs, outputs);
    g.set_param(b, "FunctionName", op_name);
    if (!decl->get_string("body").empty())
        g.set_param(b, "Source", decl->get_string("body"));

    // Pair message arguments with non-return parameters positionally.
    int in_port = 1, out_port = 1;
    std::size_t arg_index = 0;
    for (const Object* p : decl->refs("parameters")) {
        std::string dir = p->get_string("direction");
        std::string formal = p->get_string("name");
        if (dir == "return") {
            g.name_port(b, out_port, false, result.empty() ? formal : result);
            if (!result.empty()) layer.defs[result] = {&b, out_port};
            ++out_port;
            continue;
        }
        std::string actual;
        if (arg_index < args.size())
            actual = args[arg_index]->get_string("name");
        ++arg_index;
        if (dir == "in" || dir == "inout") {
            g.name_port(b, in_port, true, formal);
            if (!actual.empty()) {
                PortLoc src = resolve_value(st, layer, actual);
                g.connect(*layer.tsys, *src.block, src.port, b, in_port, actual);
            } else {
                st.warnings.push_back("call to " + op_name +
                                      ": missing argument for parameter '" +
                                      formal + "'");
            }
            ++in_port;
        }
        if (dir == "out" || dir == "inout") {
            std::string bound = actual.empty() ? formal : actual;
            g.name_port(b, out_port, false, bound);
            layer.defs[bound] = {&b, out_port};
            ++out_port;
        }
    }
}

void map_message(MappingState& st, transform::Context& ctx, const Object& msg) {
    const Object* from_ll = msg.ref("from");
    const Object* to_ll = msg.ref("to");
    if (!from_ll || !to_ll) return;
    const Object* sender = from_ll->ref("represents");
    const Object* receiver = to_ll->ref("represents");
    if (!sender || !receiver) return;
    if (!sender->get_bool("isThread")) return;  // only threads have behaviour

    ThreadLayer* layer = st.layer_of(ctx, *sender);
    if (!layer) {
        st.warnings.push_back("message from unallocated thread '" +
                              sender->get_string("name") + "' skipped");
        return;
    }

    const std::string op = msg.get_string("operation");
    const std::string result = msg.get_string("result");

    if (receiver->get_bool("isThread")) {
        if (receiver == sender) {
            st.warnings.push_back("self message '" + op + "' on thread '" +
                                  sender->get_string("name") + "' ignored");
            return;
        }
        if (op.rfind("Set", 0) == 0) {
            // Send: every argument becomes an outgoing channel value.
            for (const Object* a : msg.refs("arguments")) {
                std::string var = a->get_string("name");
                PortLoc src = resolve_value(st, *layer, var);
                thread_output(st, *layer, var, kCommKindChannel, src);
            }
        } else if (op.rfind("Get", 0) == 0 && !result.empty()) {
            // Receive: the bound result arrives over a channel.
            thread_input(st, *layer, result, kCommKindChannel);
        } else {
            st.warnings.push_back("inter-thread message '" + op +
                                  "' ignores the Set/Get convention");
        }
        return;
    }

    if (receiver->get_bool("isIO")) {
        if (op.rfind("get", 0) == 0 && !result.empty()) {
            thread_input(st, *layer, result, kCommKindIo);
        } else if (op.rfind("set", 0) == 0) {
            for (const Object* a : msg.refs("arguments")) {
                std::string var = a->get_string("name");
                PortLoc src = resolve_value(st, *layer, var);
                thread_output(st, *layer, var, kCommKindIo, src);
            }
        } else {
            st.warnings.push_back("<<IO>> message '" + op +
                                  "' ignores the get/set convention");
        }
        return;
    }

    if (receiver->get_string("name") == "Platform") {
        map_platform_call(st, *layer, msg);
    } else {
        map_passive_call(st, *layer, msg, *receiver);
    }
}

}  // namespace

MappingOutput run_mapping(const uml::Model& model, const CommModel& comm,
                          const Allocation& allocation) {
    model::ObjectModel source = uml::to_generic(model);

    auto state = std::make_shared<MappingState>();
    state->um = &model;
    state->comm = &comm;
    state->alloc = &allocation;

    transform::Engine engine(simulink::caam_metamodel());

    // Rule 1: Model → CAAM model, root system, one CPU-SS per processor.
    engine.add_rule(
        {"Model2Caam", "Model", nullptr,
         [state](transform::Context& ctx, const Object& src) {
             state->gen = std::make_unique<Gen>(ctx.target());
             Object& m = ctx.create(src, "Model2Caam", "Model",
                                    "caam." + src.get_string("name"));
             m.set("name", src.get_string("name"));
             Object& root = ctx.target().create("System", "caam.root");
             root.set("name", src.get_string("name"));
             m.add_ref("system", root);
             state->root_sys = &root;
             for (std::size_t p = 0; p < state->alloc->processor_count(); ++p) {
                 Object& cpu = state->gen->subsystem(
                     root, state->alloc->processor_name(p), "CPU-SS");
                 state->cpu_blocks.push_back(&cpu);
             }
         }});

    // Rule 2: <<SASchedRes>> object → Thread-SS inside its CPU-SS.
    engine.add_rule(
        {"Thread2ThreadSS", "ObjectInstance",
         [](const Object& o) { return o.get_bool("isThread"); },
         [state](transform::Context& ctx, const Object& src) {
             const uml::ObjectInstance* typed = state->typed_thread(src);
             if (!typed || !state->alloc->is_assigned(*typed)) {
                 state->warnings.push_back("thread '" + src.get_string("name") +
                                           "' is not allocated; skipped");
                 return;
             }
             std::size_t p = state->alloc->processor_of(*typed);
             Object& cpu_sys = Gen::system_of(*state->cpu_blocks.at(p));
             Object& tss = state->gen->subsystem(cpu_sys, src.get_string("name"),
                                                 "Thread-SS");
             ctx.trace().record(src, "Thread2ThreadSS", tss);
             ThreadLayer layer;
             layer.tss = &tss;
             layer.tsys = &Gen::system_of(tss);
             layer.typed = typed;
             state->layers.emplace(&src, std::move(layer));
         }});

    // Rule 3: sequence diagram → thread layer contents.
    engine.add_rule({"Interaction2Layer", "Interaction", nullptr,
                     [state](transform::Context& ctx, const Object& src) {
                         for (const Object* msg : src.refs("messages"))
                             map_message(*state, ctx, *msg);
                     }});

    // Rule 4: producer obligations. A channel created by the *consumer's*
    // Get message obliges the producer to expose the variable through an
    // Outport even though no Set message exists on the producer's side.
    engine.add_rule(
        {"ProducerOutports", "ObjectInstance",
         [](const Object& o) { return o.get_bool("isThread"); },
         [state](transform::Context& ctx, const Object& src) {
             ThreadLayer* layer = state->layer_of(ctx, src);
             if (!layer) return;
             for (const Channel* c : state->comm->outgoing(*layer->typed)) {
                 if (layer->outports.count(c->variable + "|" +
                                           kCommKindChannel) != 0)
                     continue;
                 auto def = layer->defs.find(c->variable);
                 if (def == layer->defs.end()) continue;  // reported later
                 thread_output(*state, *layer, c->variable, kCommKindChannel,
                               def->second);
             }
         }});

    MappingOutput out{model::ObjectModel(simulink::caam_metamodel()), {}, {}};
    transform::Trace trace;
    out.caam = engine.run(source, &trace, &out.stats);

    // Producer obligations: every channel variable must have an outport on
    // its producing thread.
    for (const auto& [generic_thread, layer] : state->layers) {
        std::set<std::string> reported;
        for (const Channel* c : comm.outgoing(*layer.typed)) {
            if (layer.outports.count(c->variable + "|" + kCommKindChannel) == 0 &&
                reported.insert(c->variable).second)
                out.warnings.push_back("thread '" + layer.typed->name() +
                                       "' never produces channel variable '" +
                                       c->variable + "'");
        }
    }
    out.warnings.insert(out.warnings.end(), state->warnings.begin(),
                        state->warnings.end());
    return out;
}

}  // namespace uhcg::core
