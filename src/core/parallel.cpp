#include "core/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

#include "obs/obs.hpp"

namespace uhcg::core {
namespace {

thread_local bool t_inside_worker = false;

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
    threads = effective_jobs(threads);
    workers_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i)
        workers_.emplace_back([this] { work(); });
}

ThreadPool::~ThreadPool() {
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    ready_.notify_all();
    for (std::thread& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> job) {
    std::packaged_task<void()> task(std::move(job));
    std::future<void> done = task.get_future();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        queue_.push_back(std::move(task));
    }
    ready_.notify_one();
    return done;
}

void ThreadPool::work() {
    t_inside_worker = true;
    for (;;) {
        std::packaged_task<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            ready_.wait(lock, [this] { return stop_ || !queue_.empty(); });
            if (stop_ && queue_.empty()) return;
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task();  // a packaged_task captures exceptions in its future
    }
}

ThreadPool& ThreadPool::shared() {
    static ThreadPool pool;
    return pool;
}

bool ThreadPool::inside_worker() { return t_inside_worker; }

std::size_t effective_jobs(std::size_t requested) {
    if (requested > 0) return requested;
    std::size_t hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

void parallel_for(std::size_t count, std::size_t jobs,
                  const std::function<void(std::size_t)>& body) {
    if (count == 0) return;
    jobs = std::min(effective_jobs(jobs), count);
    if (jobs <= 1 || ThreadPool::inside_worker()) {
        for (std::size_t i = 0; i < count; ++i) body(i);
        return;
    }

    std::atomic<std::size_t> next{0};
    std::mutex error_mutex;
    std::exception_ptr first_error;
    std::size_t first_error_index = count;
    // Captured on the submitting thread so pool-worker spans join the
    // caller's subtree instead of appearing as detached roots.
    const obs::Context fan_out_parent =
        obs::enabled() ? obs::current_context() : obs::Context{};
    auto drain = [&] {
        for (std::size_t i = next.fetch_add(1); i < count;
             i = next.fetch_add(1)) {
            try {
                body(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(error_mutex);
                if (i < first_error_index) {
                    first_error_index = i;
                    first_error = std::current_exception();
                }
            }
        }
    };
    auto drain_as_worker = [&] {
        obs::ScopedContext context(fan_out_parent);
        drain();
    };

    std::vector<std::future<void>> pending;
    pending.reserve(jobs - 1);
    for (std::size_t j = 1; j < jobs; ++j)
        pending.push_back(ThreadPool::shared().submit(drain_as_worker));
    // The caller participates: the loop completes even when every pool
    // thread is occupied elsewhere.
    drain();
    for (std::future<void>& f : pending) f.get();
    if (first_error) std::rethrow_exception(first_error);
}

void parallel_for_chunked(std::size_t count, std::size_t jobs,
                          std::size_t chunk,
                          const std::function<void(std::size_t, std::size_t)>& body) {
    if (count == 0) return;
    if (chunk == 0) chunk = kDefaultChunkSize;
    const std::size_t chunks = (count + chunk - 1) / chunk;
    parallel_for(chunks, jobs, [&](std::size_t ci) {
        std::size_t begin = ci * chunk;
        std::size_t end = std::min(count, begin + chunk);
        body(begin, end);
    });
}

bool parallel_for(std::size_t count, std::size_t jobs,
                  const std::function<void(std::size_t)>& body,
                  diag::DiagnosticEngine& engine, std::string code) {
    try {
        parallel_for(count, jobs, body);
        return true;
    } catch (const std::exception& e) {
        engine.report(diag::Severity::Error, std::move(code),
                      std::string("parallel task failed: ") + e.what());
        return false;
    } catch (...) {
        engine.report(diag::Severity::Error, std::move(code),
                      "parallel task failed with a non-standard exception");
        return false;
    }
}

}  // namespace uhcg::core
