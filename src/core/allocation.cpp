#include "core/allocation.hpp"

#include <stdexcept>

#include "obs/obs.hpp"
#include "taskgraph/linear.hpp"

namespace uhcg::core {

std::size_t Allocation::add_processor(std::string name) {
    processors_.push_back(std::move(name));
    return processors_.size() - 1;
}

void Allocation::assign(const uml::ObjectInstance& thread, std::size_t processor) {
    if (processor >= processors_.size())
        throw std::out_of_range("processor index out of range");
    if (is_assigned(thread))
        throw std::invalid_argument("thread '" + thread.name() +
                                    "' is already assigned");
    assignment_.emplace_back(&thread, processor);
}

std::size_t Allocation::processor_of(const uml::ObjectInstance& thread) const {
    for (const auto& [t, p] : assignment_)
        if (t == &thread) return p;
    throw std::out_of_range("thread '" + thread.name() + "' is not allocated");
}

bool Allocation::is_assigned(const uml::ObjectInstance& thread) const {
    for (const auto& [t, p] : assignment_)
        if (t == &thread) return true;
    return false;
}

std::vector<const uml::ObjectInstance*> Allocation::threads_on(
    std::size_t p) const {
    std::vector<const uml::ObjectInstance*> out;
    for (const auto& [t, proc] : assignment_)
        if (proc == p) out.push_back(t);
    return out;
}

taskgraph::TaskGraph build_task_graph(const uml::Model& model,
                                      const CommModel& comm) {
    obs::ObsSpan span("taskgraph.build");
    static obs::Counter& graphs = obs::counter("taskgraph.graphs_built");
    graphs.add(1);
    taskgraph::TaskGraph g;
    std::map<const uml::ObjectInstance*, taskgraph::TaskIndex> index;
    for (const uml::ObjectInstance* t : model.threads())
        index[t] = g.add_task(t->name());
    for (const Channel& c : comm.channels()) {
        auto from = index.find(c.producer);
        auto to = index.find(c.consumer);
        if (from == index.end() || to == index.end()) continue;
        g.add_edge(from->second, to->second, c.data_size);
    }
    return g;
}

Allocation allocation_from_deployment(const uml::Model& model) {
    const uml::DeploymentDiagram* dd = model.deployment_or_null();
    if (!dd)
        throw std::runtime_error(
            "model has no deployment diagram; use auto allocation (§4.2.3)");
    Allocation out;
    std::map<const uml::NodeInstance*, std::size_t> node_index;
    for (const uml::NodeInstance* n : dd->nodes()) {
        if (!n->is_processor()) continue;  // buses/devices are not targets
        node_index[n] = out.add_processor(n->name());
    }
    for (const uml::ObjectInstance* t : model.threads()) {
        uml::NodeInstance* node = dd->node_of(*t);
        if (!node)
            throw std::runtime_error("thread '" + t->name() +
                                     "' is not deployed on any processor");
        auto it = node_index.find(node);
        if (it == node_index.end())
            throw std::runtime_error("thread '" + t->name() +
                                     "' is deployed on non-<<SAengine>> node '" +
                                     node->name() + "'");
        out.assign(*t, it->second);
    }
    return out;
}

taskgraph::Clustering auto_clustering(const uml::Model& model,
                                      const CommModel& comm,
                                      std::size_t max_processors) {
    obs::ObsSpan span("core.cluster");
    static obs::Counter& clusterings = obs::counter("core.clusterings");
    clusterings.add(1);
    taskgraph::TaskGraph g = build_task_graph(model, comm);
    taskgraph::LinearClusteringOptions options;
    options.max_clusters = max_processors;
    return taskgraph::linear_clustering(g, options);
}

Allocation auto_allocate(const uml::Model& model, const CommModel& comm,
                         std::size_t max_processors) {
    obs::ObsSpan span("core.allocate-auto");
    auto threads = model.threads();
    taskgraph::Clustering clustering = auto_clustering(model, comm, max_processors);
    Allocation out;
    for (int c = 0; c < clustering.cluster_count(); ++c)
        out.add_processor("CPU" + std::to_string(c));
    for (std::size_t t = 0; t < threads.size(); ++t)
        out.assign(*threads[t], static_cast<std::size_t>(clustering.cluster_of(t)));
    return out;
}

}  // namespace uhcg::core
