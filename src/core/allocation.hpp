// allocation.hpp — the thread-to-processor allocation decision (§4.2.3).
//
// Two sources, exactly as the paper offers:
//  * the deployment diagram, "when the designer wants to decide the
//    mapping by himself";
//  * the automatic optimization: a task graph is mined from the sequence
//    diagrams (nodes = threads, edge cost = transferred data) and Linear
//    Clustering groups data-dependent threads onto the same processor,
//    making "the deployment diagram unnecessary".
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/comm.hpp"
#include "taskgraph/clustering.hpp"
#include "taskgraph/graph.hpp"
#include "uml/model.hpp"

namespace uhcg::core {

/// The allocation consumed by the mapping: ordered processors and the
/// thread → processor assignment.
class Allocation {
public:
    /// Adds a processor; returns its index.
    std::size_t add_processor(std::string name);
    void assign(const uml::ObjectInstance& thread, std::size_t processor);

    std::size_t processor_count() const { return processors_.size(); }
    const std::string& processor_name(std::size_t p) const {
        return processors_.at(p);
    }
    /// Processor of `thread`; throws std::out_of_range when unassigned.
    std::size_t processor_of(const uml::ObjectInstance& thread) const;
    bool is_assigned(const uml::ObjectInstance& thread) const;
    /// Threads on processor p, assignment order.
    std::vector<const uml::ObjectInstance*> threads_on(std::size_t p) const;
    bool same_processor(const uml::ObjectInstance& a,
                        const uml::ObjectInstance& b) const {
        return processor_of(a) == processor_of(b);
    }

private:
    std::vector<std::string> processors_;
    std::vector<std::pair<const uml::ObjectInstance*, std::size_t>> assignment_;
};

/// Builds the §4.2.3 task graph: one node per thread (unit weight unless a
/// weight table is given), one edge per communicating ordered pair with
/// cost = total transferred data.
taskgraph::TaskGraph build_task_graph(const uml::Model& model,
                                      const CommModel& comm);

/// Allocation from the model's deployment diagram. Throws
/// std::runtime_error when a thread is undeployed or there is no diagram.
Allocation allocation_from_deployment(const uml::Model& model);

/// Automatic allocation: linear clustering over the mined task graph; one
/// processor per cluster, named CPU0..CPUn-1 (cluster order). A
/// `max_processors` of 0 leaves the cluster count to the algorithm.
Allocation auto_allocate(const uml::Model& model, const CommModel& comm,
                         std::size_t max_processors = 0);

/// The clustering behind auto_allocate, exposed for the benches.
taskgraph::Clustering auto_clustering(const uml::Model& model,
                                      const CommModel& comm,
                                      std::size_t max_processors = 0);

}  // namespace uhcg::core
