// pipeline.hpp — the public entry point of the flow: Fig. 2, steps 2–4.
//
//   step 2  model-to-model transformation (core/mapping.hpp, rules on the
//           transform engine, producing a generic CAAM);
//   step 3  optimization: channel inference (§4.2.1), temporal-barrier
//           insertion (§4.2.2), with thread allocation (§4.2.3) having run
//           up front — it shapes the CPU-SS skeleton;
//   step 4  model-to-text: .mdl generation (simulink/mdl.hpp).
//
// Step 1 (building the UML model) is the designer's: the uml::ModelBuilder
// or an XMI file.
//
// Since the flow-layer refactor these entry points are thin wrappers over
// the pass pipeline in flow/caam_passes.hpp (library: uhcg_flow); the
// individual steps are observable passes with per-stage metrics there.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "diag/diag.hpp"
#include "core/allocation.hpp"
#include "core/comm.hpp"
#include "core/delays.hpp"
#include "core/mapping.hpp"
#include "core/optimize.hpp"
#include "simulink/model.hpp"
#include "uml/model.hpp"

namespace uhcg::core {

struct MapperOptions {
    /// §4.2.3: derive the allocation automatically by linear clustering
    /// instead of reading the deployment diagram ("the use of this
    /// algorithm makes the deployment diagram unnecessary").
    bool auto_allocate = false;
    /// Processor budget for auto allocation; 0 = let the algorithm decide.
    std::size_t max_processors = 0;
    /// §4.2.1: infer and instantiate communication channels.
    bool infer_channels = true;
    /// §4.2.2: detect cyclic paths and insert UnitDelay barriers.
    bool insert_delays = true;
    /// Reject models whose uml::check finds errors (warnings always pass).
    bool enforce_wellformedness = true;
};

/// Everything the run produced besides the model itself.
/// `allocation` references objects of the *input* UML model; keep that
/// model alive for as long as the report's allocation is consulted.
struct MapperReport {
    transform::RunStats rule_stats;
    Allocation allocation;
    ChannelReport channels;
    DelayReport delays;
    /// Every diagnostic this run reported — the DiagnosticEngine slice for
    /// the pipeline invocation (also populated by the throwing variants,
    /// which collect through an internal engine). The single source of
    /// truth for warnings.
    std::vector<diag::Diagnostic> diagnostics;
    /// Legacy warning strings, derived from `diagnostics` (severity
    /// Warning only, rendered exactly as the pre-flow pipeline mirrored
    /// them: well-formedness warnings prefixed "uml: ").
    std::vector<std::string> warnings() const;
};

/// Runs steps 2–3 and returns the synthesizable CAAM.
/// Throws std::runtime_error on ill-formed input models.
simulink::Model map_to_caam(const uml::Model& model,
                            const MapperOptions& options = {},
                            MapperReport* report = nullptr);

/// Full front-to-back convenience: steps 2–4, returning the .mdl text.
std::string generate_mdl(const uml::Model& model,
                         const MapperOptions& options = {},
                         MapperReport* report = nullptr);

/// Diagnostic-engine variants: every issue any stage finds (§4.1
/// well-formedness, mapping-rule warnings, channel inference, CAAM
/// validation) is reported through `engine`; the run aborts — returning
/// nullopt — only when a diagnostic of severity >= Error was recorded and
/// options.enforce_wellformedness is set. They never throw on bad models,
/// so a driver can surface *all* problems from one pass.
std::optional<simulink::Model> map_to_caam(const uml::Model& model,
                                           const MapperOptions& options,
                                           diag::DiagnosticEngine& engine,
                                           MapperReport* report = nullptr);

std::optional<std::string> generate_mdl(const uml::Model& model,
                                        const MapperOptions& options,
                                        diag::DiagnosticEngine& engine,
                                        MapperReport* report = nullptr);

}  // namespace uhcg::core
