#include "core/comm.hpp"

#include "obs/obs.hpp"

namespace uhcg::core {

std::vector<const Channel*> CommModel::incoming(
    const uml::ObjectInstance& thread) const {
    std::vector<const Channel*> out;
    for (const Channel& c : channels_)
        if (c.consumer == &thread) out.push_back(&c);
    return out;
}

std::vector<const Channel*> CommModel::outgoing(
    const uml::ObjectInstance& thread) const {
    std::vector<const Channel*> out;
    for (const Channel& c : channels_)
        if (c.producer == &thread) out.push_back(&c);
    return out;
}

bool CommModel::receives(const uml::ObjectInstance& thread,
                         std::string_view v) const {
    for (const Channel& c : channels_)
        if (c.consumer == &thread && c.variable == v) return true;
    return false;
}

bool CommModel::must_produce(const uml::ObjectInstance& thread,
                             std::string_view v) const {
    for (const Channel& c : channels_)
        if (c.producer == &thread && c.variable == v) return true;
    return false;
}

std::vector<const IoAccess*> CommModel::io_inputs(
    const uml::ObjectInstance& thread) const {
    std::vector<const IoAccess*> out;
    for (const IoAccess& a : io_)
        if (a.thread == &thread && a.is_input) out.push_back(&a);
    return out;
}

std::vector<const IoAccess*> CommModel::io_outputs(
    const uml::ObjectInstance& thread) const {
    std::vector<const IoAccess*> out;
    for (const IoAccess& a : io_)
        if (a.thread == &thread && !a.is_input) out.push_back(&a);
    return out;
}

double CommModel::traffic(const uml::ObjectInstance& from,
                          const uml::ObjectInstance& to) const {
    double sum = 0.0;
    for (const Channel& c : channels_)
        if (c.producer == &from && c.consumer == &to) sum += c.data_size;
    return sum;
}

CommModel analyze_communication(const uml::Model& model) {
    obs::ObsSpan span("core.comm-analyze", "core");
    CommModel out;
    for (const uml::SequenceDiagram* d : model.sequence_diagrams()) {
        for (const uml::Message* m : d->messages()) {
            const uml::ObjectInstance* sender = m->from()->represents();
            const uml::ObjectInstance* receiver = m->to()->represents();
            const std::string& op = m->operation_name();

            if (sender->is_thread() && receiver->is_thread() && sender != receiver) {
                if (op.rfind("Set", 0) == 0 && !m->arguments().empty()) {
                    for (const uml::MessageArgument& a : m->arguments())
                        out.add_channel(
                            {sender, receiver, a.name, m->data_size()});
                } else if (op.rfind("Get", 0) == 0 && !m->result_name().empty()) {
                    // Caller receives: data flows receiver → sender.
                    out.add_channel(
                        {receiver, sender, m->result_name(), m->data_size()});
                }
            } else if (receiver->is_io_device() && sender->is_thread()) {
                if (op.rfind("get", 0) == 0 && !m->result_name().empty()) {
                    out.add_io({sender, receiver, m->result_name(), true});
                } else if (op.rfind("set", 0) == 0 && !m->arguments().empty()) {
                    for (const uml::MessageArgument& a : m->arguments())
                        out.add_io({sender, receiver, a.name, false});
                }
            }
        }
    }
    return out;
}

}  // namespace uhcg::core
