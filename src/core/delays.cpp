#include "core/delays.hpp"

#include <map>
#include <optional>
#include <set>
#include <stdexcept>

namespace uhcg::core {

using simulink::Block;
using simulink::BlockType;
using simulink::Line;
using simulink::PortRef;
using simulink::System;

namespace {

/// One vertex of the dependency graph: a specific input or output port.
struct Atom {
    const Block* block = nullptr;
    int port = 1;
    bool is_output = false;

    friend auto operator<=>(const Atom&, const Atom&) = default;
};

/// An edge of the dependency graph. Line edges remember the concrete Line
/// and destination so a UnitDelay can be spliced in.
struct Dep {
    Atom to;
    Line* line = nullptr;  // nullptr for intra-block dependencies
    PortRef line_dst;      // valid when line != nullptr
};

class CycleAnalyzer {
public:
    /// Combinational in→out reachability of a subsystem block, memoized.
    const std::vector<std::vector<bool>>& subsystem_reach(const Block& sub) {
        auto it = reach_memo_.find(&sub);
        if (it != reach_memo_.end()) return it->second;
        const System& sys = *sub.system();
        std::vector<std::vector<bool>> table(
            static_cast<std::size_t>(sub.input_count()) + 1,
            std::vector<bool>(static_cast<std::size_t>(sub.output_count()) + 1,
                              false));
        // For each inner Inport (Port=i), DFS the atom graph; reached inner
        // Outport (Port=j) ⇒ in i → out j is combinational.
        for (const Block* b : sys.blocks()) {
            if (b->type() != BlockType::Inport) continue;
            int i = std::stoi(b->parameter_or("Port", "0"));
            if (i <= 0 || i > sub.input_count()) continue;
            std::set<Atom> visited;
            std::vector<Atom> stack{{b, 1, true}};
            while (!stack.empty()) {
                Atom a = stack.back();
                stack.pop_back();
                if (!visited.insert(a).second) continue;
                for (const Dep& d : dependencies(sys, a)) stack.push_back(d.to);
            }
            for (const Block* o : sys.blocks()) {
                if (o->type() != BlockType::Outport) continue;
                int j = std::stoi(o->parameter_or("Port", "0"));
                if (j <= 0 || j > sub.output_count()) continue;
                if (visited.count({o, 1, false}) != 0) table[i][j] = true;
            }
        }
        return reach_memo_.emplace(&sub, std::move(table)).first->second;
    }

    /// Outgoing dependency edges of an atom within its system.
    std::vector<Dep> dependencies(const System& sys, const Atom& atom) {
        std::vector<Dep> out;
        if (atom.is_output) {
            // Output port → every input it drives, via lines.
            if (const Line* line =
                    sys.line_from({const_cast<Block*>(atom.block), atom.port})) {
                for (const PortRef& dst : line->destinations())
                    out.push_back({{dst.block, dst.port, false},
                                   const_cast<Line*>(line),
                                   dst});
            }
            return out;
        }
        // Input port → block outputs it combinationally feeds.
        const Block& b = *atom.block;
        switch (b.type()) {
            case BlockType::UnitDelay:
            case BlockType::Inport:
            case BlockType::Outport:
            case BlockType::Scope:
                break;  // no combinational propagation
            case BlockType::SubSystem: {
                const auto& table = subsystem_reach(b);
                for (int j = 1; j <= b.output_count(); ++j)
                    if (table[static_cast<std::size_t>(atom.port)]
                             [static_cast<std::size_t>(j)])
                        out.push_back({{&b, j, true}, nullptr, {}});
                break;
            }
            default:
                // Product, Sum, Gain, S-Function, CommChannel, Constant:
                // every input feeds every output within the step.
                for (int j = 1; j <= b.output_count(); ++j)
                    out.push_back({{&b, j, true}, nullptr, {}});
                break;
        }
        return out;
    }

    /// Finds one combinational cycle in `sys`; returns a Line on it to cut
    /// (the "data link where the loop is detected"). nullopt = acyclic.
    std::optional<std::pair<Line*, PortRef>> find_cycle(const System& sys) {
        std::map<Atom, int> color;  // 0 white, 1 gray, 2 black
        std::vector<std::pair<Atom, Dep>> path;  // (atom, edge taken into it)

        std::optional<std::pair<Line*, PortRef>> result;
        auto dfs = [&](auto&& self, const Atom& a) -> bool {
            color[a] = 1;
            for (const Dep& d : dependencies(sys, a)) {
                int c = color[d.to];
                if (c == 1) {
                    // Back edge: the cycle is d plus the path suffix from
                    // d.to. Cut at the back edge when it is a line,
                    // otherwise at the last line edge on the suffix.
                    if (d.line) {
                        result = {{d.line, d.line_dst}};
                        return true;
                    }
                    for (auto it = path.rbegin(); it != path.rend(); ++it) {
                        // The entry *for* d.to records the edge that led
                        // into the cycle head — not a cycle edge; stop
                        // before considering it.
                        if (it->first == d.to) break;
                        if (it->second.line) {
                            result = {{it->second.line, it->second.line_dst}};
                            return true;
                        }
                    }
                    throw std::logic_error(
                        "combinational cycle without any line edge");
                }
                if (c == 0) {
                    path.emplace_back(d.to, d);
                    if (self(self, d.to)) return true;
                    path.pop_back();
                }
            }
            color[a] = 2;
            return false;
        };

        for (const Block* b : sys.blocks()) {
            for (int p = 1; p <= b->output_count(); ++p) {
                Atom a{b, p, true};
                if (color[a] == 0) {
                    path.clear();
                    if (dfs(dfs, a)) return result;
                }
            }
        }
        return std::nullopt;
    }

    void invalidate() { reach_memo_.clear(); }

private:
    std::map<const Block*, std::vector<std::vector<bool>>> reach_memo_;
};

std::string delay_name(System& sys) {
    if (!sys.find_block("Delay")) return "Delay";
    int i = 1;
    while (sys.find_block("Delay_" + std::to_string(i))) ++i;
    return "Delay_" + std::to_string(i);
}

/// Breaks all cycles in one system (children must already be processed).
void break_cycles(System& sys, CycleAnalyzer& analyzer, DelayReport& report) {
    for (;;) {
        auto cut = analyzer.find_cycle(sys);
        if (!cut) return;
        auto [line, dst] = *cut;
        PortRef src = line->source();
        std::string signal = line->name();

        line->remove_destination(dst);
        if (line->destinations().empty()) sys.remove_line(*line);
        Block& delay = sys.add_block(delay_name(sys), BlockType::UnitDelay);
        delay.set_parameter("SampleTime", "-1");
        sys.add_line(src, {&delay, 1}, signal);
        sys.add_line({&delay, 1}, dst, signal);

        ++report.inserted;
        report.locations.push_back(sys.name() + ": " + src.block->name() + "." +
                                   std::to_string(src.port) + " -> " +
                                   dst.block->name() + "." +
                                   std::to_string(dst.port));
    }
}

void process_bottom_up(System& sys, CycleAnalyzer& analyzer, DelayReport& report) {
    for (Block* b : sys.blocks())
        if (b->system()) process_bottom_up(*b->system(), analyzer, report);
    break_cycles(sys, analyzer, report);
}

bool any_cycle(const System& sys, CycleAnalyzer& analyzer) {
    for (const Block* b : sys.blocks())
        if (b->system() && any_cycle(*b->system(), analyzer)) return true;
    return analyzer.find_cycle(sys).has_value();
}

}  // namespace

DelayReport insert_temporal_barriers(simulink::Model& model) {
    DelayReport report;
    CycleAnalyzer analyzer;
    process_bottom_up(model.root(), analyzer, report);
    return report;
}

bool has_combinational_cycle(const simulink::Model& model) {
    CycleAnalyzer analyzer;
    return any_cycle(model.root(), analyzer);
}

}  // namespace uhcg::core
