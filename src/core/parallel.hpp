// parallel.hpp — reusable parallel-execution layer for the whole flow.
//
// The ROADMAP north-star asks every hot path to scale with the hardware;
// this module is the shared substrate: a fixed thread pool (one per
// process, sized to the machine) plus `parallel_for`, the fork-join
// primitive the DSE sweep and the benches fan out on. Guarantees:
//
//  * deterministic results — `parallel_for(count, jobs, body)` invokes
//    `body(i)` exactly once for every i in [0, count); callers write into
//    pre-sized slot i, so the outcome is identical for any job count;
//  * exception propagation — the first failing index (lowest i) wins and
//    its exception is rethrown on the calling thread after all workers
//    drain; the DiagnosticEngine overload converts it into a structured
//    `core.parallel` diagnostic instead (the PR 1 contract);
//  * no nested deadlock — a `parallel_for` issued from inside a pool
//    worker degrades to serial execution on that worker, and the calling
//    thread always participates, so the loop makes progress even when
//    every pool thread is busy.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "diag/diag.hpp"

namespace uhcg::core {

/// Fixed pool of worker threads consuming a FIFO job queue. Workers live
/// for the pool's lifetime; jobs are type-erased `void()` tasks whose
/// completion (and exception) is observable through the returned future.
class ThreadPool {
public:
    /// 0 = one worker per hardware thread (at least one).
    explicit ThreadPool(std::size_t threads = 0);
    ~ThreadPool();
    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    std::size_t thread_count() const { return workers_.size(); }

    /// Enqueues a job; the future reports completion and rethrows anything
    /// the job threw.
    std::future<void> submit(std::function<void()> job);

    /// Enqueues a value-returning task.
    template <typename F>
    auto async(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
        using R = std::invoke_result_t<std::decay_t<F>>;
        auto task =
            std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
        std::future<R> result = task->get_future();
        submit([task] { (*task)(); });
        return result;
    }

    /// The process-wide pool, created on first use and sized to the
    /// hardware. Shared by every `parallel_for` call site.
    static ThreadPool& shared();

    /// True on threads owned by any ThreadPool — `parallel_for` uses this
    /// to fall back to serial execution instead of deadlocking on nested
    /// fan-out.
    static bool inside_worker();

private:
    void work();

    std::vector<std::thread> workers_;
    std::deque<std::packaged_task<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable ready_;
    bool stop_ = false;
};

/// Resolves a user-facing jobs knob: 0 = hardware_concurrency (at least 1).
std::size_t effective_jobs(std::size_t requested);

/// Invokes `body(i)` for every i in [0, count) across at most `jobs`
/// workers (0 = hardware). Blocks until every index completed; rethrows
/// the exception of the lowest failing index. Serial (and pool-free) when
/// jobs <= 1, count <= 1, or already inside a pool worker.
void parallel_for(std::size_t count, std::size_t jobs,
                  const std::function<void(std::size_t)>& body);

/// As above, but an escaped exception becomes an error diagnostic carrying
/// `code` in `engine` instead of propagating. Returns false when that
/// happened (some indices may not have run).
bool parallel_for(std::size_t count, std::size_t jobs,
                  const std::function<void(std::size_t)>& body,
                  diag::DiagnosticEngine& engine,
                  std::string code = diag::codes::kCoreParallel);

/// Default chunk size for parallel_for_chunked (0 ⇒ this value). Small
/// enough to load-balance a few hundred items over a pool, large enough
/// that per-chunk scratch (e.g. a sim::MpsocBatch) amortizes.
inline constexpr std::size_t kDefaultChunkSize = 32;

/// Chunked fork-join: invokes `body(begin, end)` once for every chunk
/// [i·chunk, min(count, (i+1)·chunk)), distributing *chunks* over the
/// pool. The chunk decomposition depends only on `count` and `chunk` —
/// never on `jobs` — so per-chunk state (scratch buffers, incremental
/// caches) produces identical results and identical reuse statistics for
/// any job count. chunk = 0 selects kDefaultChunkSize. Exception policy
/// matches parallel_for (lowest failing chunk wins).
void parallel_for_chunked(std::size_t count, std::size_t jobs,
                          std::size_t chunk,
                          const std::function<void(std::size_t, std::size_t)>& body);

}  // namespace uhcg::core
