#include "taskgraph/linear.hpp"

#include <algorithm>
#include <limits>

namespace uhcg::taskgraph {
namespace {

/// Longest node+edge path restricted to unmarked nodes. Returns the path
/// (possibly a single node) with maximal length; empty when all marked.
std::vector<TaskIndex> restricted_critical_path(const TaskGraph& graph,
                                                const std::vector<bool>& marked) {
    const std::size_t n = graph.task_count();
    // Longest path ending at t using only unmarked nodes.
    std::vector<double> best(n, -1.0);
    std::vector<std::ptrdiff_t> pred(n, -1);
    auto order = graph.topological_order();
    for (TaskIndex t : order) {
        if (marked[t]) continue;
        best[t] = std::max(best[t], graph.weight(t));
        for (std::size_t e : graph.out_edges(t)) {
            const Edge& edge = graph.edge(e);
            if (marked[edge.to]) continue;
            double candidate = best[t] + edge.cost + graph.weight(edge.to);
            if (candidate > best[edge.to]) {
                best[edge.to] = candidate;
                pred[edge.to] = static_cast<std::ptrdiff_t>(t);
            }
        }
    }
    // Pick the maximal endpoint; break ties toward the smallest index so
    // the algorithm is deterministic.
    std::ptrdiff_t end = -1;
    double best_len = -1.0;
    for (TaskIndex t = 0; t < n; ++t) {
        if (marked[t]) continue;
        if (best[t] > best_len + 1e-12) {
            best_len = best[t];
            end = static_cast<std::ptrdiff_t>(t);
        }
    }
    std::vector<TaskIndex> path;
    for (std::ptrdiff_t t = end; t >= 0; t = pred[t])
        path.push_back(static_cast<TaskIndex>(t));
    std::reverse(path.begin(), path.end());
    return path;
}

}  // namespace

Clustering linear_clustering(const TaskGraph& graph,
                             const LinearClusteringOptions& options) {
    const std::size_t n = graph.task_count();
    std::vector<bool> marked(n, false);
    std::vector<int> assignment(n, -1);
    std::vector<double> cluster_weight;  // total node weight per cluster
    int next_cluster = 0;

    for (;;) {
        std::vector<TaskIndex> path = restricted_critical_path(graph, marked);
        if (path.empty()) break;
        double path_weight = 0.0;
        for (TaskIndex t : path) path_weight += graph.weight(t);

        int cluster;
        if (options.max_clusters != 0 &&
            static_cast<std::size_t>(next_cluster) >= options.max_clusters) {
            // Processor budget exhausted: fold this path into the lightest
            // existing cluster instead of opening a new one.
            cluster = 0;
            for (int c = 1; c < next_cluster; ++c)
                if (cluster_weight[c] < cluster_weight[cluster]) cluster = c;
            cluster_weight[cluster] += path_weight;
        } else {
            cluster = next_cluster++;
            cluster_weight.push_back(path_weight);
        }
        for (TaskIndex t : path) {
            assignment[t] = cluster;
            marked[t] = true;
        }
    }

    return Clustering::from_assignment(std::move(assignment));
}

}  // namespace uhcg::taskgraph
