// linear.hpp — Linear Clustering (Gerasoulis & Yang, IEEE TPDS 4(6), 1993),
// the thread-allocation algorithm of §4.2.3.
//
// The algorithm repeatedly finds the critical path of the still-unclustered
// subgraph, merges every node on that path into one cluster, and removes
// those nodes from further consideration. Properties the paper relies on:
//  * all threads on the system critical path land on the same processor
//    ("this algorithm allocates all threads that are in the system critical
//    path to the same processor");
//  * parallel (independent) tasks are separated into different clusters;
//  * threads with heavy mutual data dependencies group together, cutting
//    inter-processor traffic.
#pragma once

#include "taskgraph/clustering.hpp"
#include "taskgraph/graph.hpp"

namespace uhcg::taskgraph {

struct LinearClusteringOptions {
    /// Upper bound on clusters (processors). 0 = unlimited: one cluster per
    /// critical-path iteration. When bounded, the lightest remaining
    /// critical paths are folded into the cluster with the least total
    /// weight, keeping the heaviest paths isolated.
    std::size_t max_clusters = 0;
};

/// Runs linear clustering; the result is deterministic for a given graph.
Clustering linear_clustering(const TaskGraph& graph,
                             const LinearClusteringOptions& options = {});

}  // namespace uhcg::taskgraph
