#include "taskgraph/graph.hpp"

#include <algorithm>
#include <stdexcept>

namespace uhcg::taskgraph {

TaskIndex TaskGraph::add_task(std::string name, double weight) {
    names_.push_back(std::move(name));
    weights_.push_back(weight);
    out_.emplace_back();
    in_.emplace_back();
    return names_.size() - 1;
}

void TaskGraph::add_edge(TaskIndex from, TaskIndex to, double cost,
                         std::uint32_t produce, std::uint32_t consume) {
    if (from >= task_count() || to >= task_count())
        throw std::out_of_range("edge endpoint out of range");
    if (from == to) throw std::invalid_argument("self edge on task " + names_[from]);
    if (produce == 0 || consume == 0)
        throw std::invalid_argument("zero token rate on edge " + names_[from] +
                                    " -> " + names_[to]);
    // Merge parallel edges: several messages between the same pair of
    // threads accumulate into one dependency with summed traffic.
    for (std::size_t e : out_[from]) {
        if (edges_[e].to == to) {
            if (edges_[e].produce != produce || edges_[e].consume != consume)
                throw std::invalid_argument(
                    "conflicting token rates on merged edge " + names_[from] +
                    " -> " + names_[to]);
            edges_[e].cost += cost;
            return;
        }
    }
    edges_.push_back({from, to, cost, produce, consume});
    out_[from].push_back(edges_.size() - 1);
    in_[to].push_back(edges_.size() - 1);
}

bool TaskGraph::unit_rate() const {
    for (const Edge& e : edges_)
        if (!e.unit_rate()) return false;
    return true;
}

std::optional<TaskIndex> TaskGraph::find(std::string_view name) const {
    for (TaskIndex t = 0; t < names_.size(); ++t)
        if (names_[t] == name) return t;
    return std::nullopt;
}

double TaskGraph::edge_cost(TaskIndex from, TaskIndex to) const {
    for (std::size_t e : out_.at(from))
        if (edges_[e].to == to) return edges_[e].cost;
    return 0.0;
}

double TaskGraph::total_weight() const {
    double sum = 0.0;
    for (double w : weights_) sum += w;
    return sum;
}

double TaskGraph::total_edge_cost() const {
    double sum = 0.0;
    for (const Edge& e : edges_) sum += e.cost;
    return sum;
}

bool TaskGraph::is_acyclic() const {
    // Kahn's algorithm: a DAG consumes every node.
    std::vector<std::size_t> indegree(task_count());
    for (const Edge& e : edges_) ++indegree[e.to];
    std::vector<TaskIndex> ready;
    for (TaskIndex t = 0; t < task_count(); ++t)
        if (indegree[t] == 0) ready.push_back(t);
    std::size_t seen = 0;
    while (!ready.empty()) {
        TaskIndex t = ready.back();
        ready.pop_back();
        ++seen;
        for (std::size_t e : out_[t])
            if (--indegree[edges_[e].to] == 0) ready.push_back(edges_[e].to);
    }
    return seen == task_count();
}

std::vector<TaskIndex> TaskGraph::topological_order() const {
    std::vector<std::size_t> indegree(task_count());
    for (const Edge& e : edges_) ++indegree[e.to];
    // Use a FIFO over task index so the order is deterministic.
    std::vector<TaskIndex> order;
    std::vector<TaskIndex> ready;
    for (TaskIndex t = 0; t < task_count(); ++t)
        if (indegree[t] == 0) ready.push_back(t);
    while (!ready.empty()) {
        auto it = std::min_element(ready.begin(), ready.end());
        TaskIndex t = *it;
        ready.erase(it);
        order.push_back(t);
        for (std::size_t e : out_[t])
            if (--indegree[edges_[e].to] == 0) ready.push_back(edges_[e].to);
    }
    if (order.size() != task_count())
        throw std::logic_error("task graph contains a cycle");
    return order;
}

std::vector<double> TaskGraph::top_levels() const {
    std::vector<double> tlevel(task_count(), 0.0);
    for (TaskIndex t : topological_order()) {
        for (std::size_t e : in_[t]) {
            const Edge& edge = edges_[e];
            tlevel[t] = std::max(tlevel[t],
                                 tlevel[edge.from] + weights_[edge.from] + edge.cost);
        }
    }
    return tlevel;
}

std::vector<double> TaskGraph::bottom_levels() const {
    std::vector<double> blevel(task_count(), 0.0);
    auto order = topological_order();
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
        TaskIndex t = *it;
        blevel[t] = weights_[t];
        for (std::size_t e : out_[t]) {
            const Edge& edge = edges_[e];
            blevel[t] = std::max(blevel[t],
                                 weights_[t] + edge.cost + blevel[edge.to]);
        }
    }
    return blevel;
}

double TaskGraph::critical_path_length() const {
    double best = 0.0;
    for (double b : bottom_levels()) best = std::max(best, b);
    return best;
}

std::vector<TaskIndex> TaskGraph::critical_path() const {
    if (task_count() == 0) return {};
    auto blevel = bottom_levels();
    auto tlevel = top_levels();
    // Start at a source maximizing tlevel+blevel (== blevel for sources).
    TaskIndex current = 0;
    double best = -1.0;
    for (TaskIndex t = 0; t < task_count(); ++t) {
        if (!in_[t].empty()) continue;
        if (blevel[t] > best) {
            best = blevel[t];
            current = t;
        }
    }
    (void)tlevel;
    std::vector<TaskIndex> path{current};
    for (;;) {
        // Follow the successor that continues the dominant path.
        double target = blevel[current] - weights_[current];
        const Edge* next = nullptr;
        for (std::size_t e : out_[current]) {
            const Edge& edge = edges_[e];
            if (std::abs(edge.cost + blevel[edge.to] - target) < 1e-9) {
                next = &edge;
                break;
            }
        }
        if (!next) break;
        current = next->to;
        path.push_back(current);
    }
    return path;
}

}  // namespace uhcg::taskgraph
