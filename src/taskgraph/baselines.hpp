// baselines.hpp — naive allocation strategies the benches compare linear
// clustering against (bench_clustering, bench_ablation_alloc). These stand
// in for "the designer decides the mapping by himself" without insight.
#pragma once

#include <cstdint>

#include "taskgraph/clustering.hpp"
#include "taskgraph/graph.hpp"

namespace uhcg::taskgraph {

/// Task i → cluster i mod k.
Clustering round_robin_clustering(const TaskGraph& graph, std::size_t k);

/// Uniform random assignment over k clusters (deterministic per seed).
Clustering random_clustering(const TaskGraph& graph, std::size_t k,
                             std::uint64_t seed);

/// Everything on one processor (no parallelism, zero inter-CPU traffic).
Clustering single_cluster(const TaskGraph& graph);

/// Greedy load balancing: heaviest task first onto the least-loaded of k
/// clusters; ignores communication entirely.
Clustering load_balance_clustering(const TaskGraph& graph, std::size_t k);

}  // namespace uhcg::taskgraph
