// graph.hpp — weighted directed acyclic task graphs.
//
// §4.2.3: "The data dependency between threads is captured from the
// sequence diagrams, and a task graph is built, where the nodes are
// threads and the edges have a cost ... determined by the amount of
// transferred data." Nodes additionally carry a computation weight used by
// the clustering algorithms' critical-path machinery.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace uhcg::taskgraph {

using TaskIndex = std::size_t;

struct Edge {
    TaskIndex from = 0;
    TaskIndex to = 0;
    double cost = 0.0;  ///< communication cost (transferred data)
    /// SDF token rates: tokens written per producer firing / read per
    /// consumer firing. UML-mined graphs are single-rate (1/1); the rates
    /// only matter to the static-schedule simulation backend, which checks
    /// them for consistency before committing to a compile-time schedule.
    std::uint32_t produce = 1;
    std::uint32_t consume = 1;

    bool unit_rate() const { return produce == 1 && consume == 1; }
};

/// A DAG of tasks. Parallel edges between the same pair are merged by
/// summing their costs (several messages between two threads accumulate).
class TaskGraph {
public:
    /// Adds a task; returns its index. Weight is the computation cost.
    TaskIndex add_task(std::string name, double weight = 1.0);
    /// Adds (or accumulates onto) the edge from → to. Merged parallel
    /// edges must agree on token rates (std::invalid_argument otherwise —
    /// two messages on one FIFO cannot carry different rate signatures).
    void add_edge(TaskIndex from, TaskIndex to, double cost,
                  std::uint32_t produce = 1, std::uint32_t consume = 1);
    /// True when every edge is single-rate (the homogeneous-SDF case).
    bool unit_rate() const;

    std::size_t task_count() const { return names_.size(); }
    std::size_t edge_count() const { return edges_.size(); }
    const std::string& name(TaskIndex t) const { return names_.at(t); }
    double weight(TaskIndex t) const { return weights_.at(t); }
    void set_weight(TaskIndex t, double w) { weights_.at(t) = w; }
    /// Index of the task with this name, if any.
    std::optional<TaskIndex> find(std::string_view name) const;

    const std::vector<Edge>& edges() const { return edges_; }
    /// Outgoing/incoming edges of a task (indices into edges()).
    const std::vector<std::size_t>& out_edges(TaskIndex t) const {
        return out_.at(t);
    }
    const std::vector<std::size_t>& in_edges(TaskIndex t) const { return in_.at(t); }
    const Edge& edge(std::size_t e) const { return edges_.at(e); }
    /// Cost of the from→to edge, 0 when absent.
    double edge_cost(TaskIndex from, TaskIndex to) const;

    /// Sum of all node weights (sequential execution time).
    double total_weight() const;
    /// Sum of all edge costs (total communication volume).
    double total_edge_cost() const;

    bool is_acyclic() const;
    /// Topological order; throws std::logic_error when cyclic.
    std::vector<TaskIndex> topological_order() const;

    /// Earliest start times ignoring communication ("top levels") and the
    /// longest node+edge path from each task to a sink ("bottom levels").
    /// Both include the task's own weight in blevel, per Gerasoulis-Yang.
    std::vector<double> top_levels() const;
    std::vector<double> bottom_levels() const;
    /// Length of the critical path (node weights + edge costs).
    double critical_path_length() const;
    /// One critical path, source → sink.
    std::vector<TaskIndex> critical_path() const;

private:
    std::vector<std::string> names_;
    std::vector<double> weights_;
    std::vector<Edge> edges_;
    std::vector<std::vector<std::size_t>> out_;
    std::vector<std::vector<std::size_t>> in_;
};

}  // namespace uhcg::taskgraph
