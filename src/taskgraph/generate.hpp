// generate.hpp — synthetic task-graph workload generators for the
// benchmark sweeps (the paper's synthetic example scaled up).
#pragma once

#include <cstdint>

#include "taskgraph/graph.hpp"

namespace uhcg::taskgraph {

struct RandomDagOptions {
    std::size_t tasks = 12;
    std::size_t layers = 4;        ///< tasks are spread over this many ranks
    double edge_probability = 0.4; ///< per candidate pair in adjacent layers
    double min_weight = 1.0;
    double max_weight = 4.0;
    double min_cost = 1.0;
    double max_cost = 12.0;
    std::uint64_t seed = 1;
};

/// Layered random DAG: edges only go from layer i to layer i+1 (plus a
/// fallback edge per orphan so the graph is connected enough to cluster).
TaskGraph random_layered_dag(const RandomDagOptions& options);

/// A fork-join graph: source → `width` parallel chains of `depth` → sink.
/// The classic shape where linear clustering shines (it keeps each chain
/// on one processor).
TaskGraph fork_join_graph(std::size_t width, std::size_t depth, double node_weight,
                          double edge_cost);

/// A single chain of `length` tasks — degenerate case, one cluster.
TaskGraph chain_graph(std::size_t length, double node_weight, double edge_cost);

/// The paper's synthetic 12-thread task graph (Fig. 7(a)): critical path
/// A-B-C-D-F-J plus the side chains E-I, G-M, H-L feeding back into J.
TaskGraph paper_synthetic_graph();

}  // namespace uhcg::taskgraph
