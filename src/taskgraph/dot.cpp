#include "taskgraph/dot.hpp"

#include <sstream>

namespace uhcg::taskgraph {
namespace {

std::string node_label(const TaskGraph& graph, TaskIndex t,
                       const DotOptions& options) {
    std::ostringstream out;
    out << graph.name(t);
    if (options.show_weights) out << " (w=" << graph.weight(t) << ")";
    return out.str();
}

void emit_edges(std::ostringstream& out, const TaskGraph& graph,
                const DotOptions& options) {
    for (const Edge& e : graph.edges()) {
        out << "  \"" << graph.name(e.from) << "\" -> \"" << graph.name(e.to)
            << "\"";
        if (options.show_costs) out << " [label=\"" << e.cost << "\"]";
        out << ";\n";
    }
}

}  // namespace

std::string to_dot(const TaskGraph& graph, const DotOptions& options) {
    std::ostringstream out;
    out << "digraph \"" << options.name << "\" {\n"
        << "  rankdir=TB;\n  node [shape=circle];\n";
    for (TaskIndex t = 0; t < graph.task_count(); ++t)
        out << "  \"" << graph.name(t) << "\" [label=\""
            << node_label(graph, t, options) << "\"];\n";
    emit_edges(out, graph, options);
    out << "}\n";
    return out.str();
}

std::string to_dot(const TaskGraph& graph, const Clustering& clustering,
                   const DotOptions& options) {
    std::ostringstream out;
    out << "digraph \"" << options.name << "\" {\n"
        << "  rankdir=TB;\n  node [shape=circle];\n";
    auto groups = clustering.groups();
    for (std::size_t c = 0; c < groups.size(); ++c) {
        out << "  subgraph cluster_cpu" << c << " {\n"
            << "    label=\"CPU" << c << "\";\n    style=rounded;\n";
        for (TaskIndex t : groups[c])
            out << "    \"" << graph.name(t) << "\" [label=\""
                << node_label(graph, t, options) << "\"];\n";
        out << "  }\n";
    }
    emit_edges(out, graph, options);
    out << "}\n";
    return out.str();
}

}  // namespace uhcg::taskgraph
