#include "taskgraph/clustering.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <sstream>
#include <stdexcept>

namespace uhcg::taskgraph {

Clustering::Clustering(std::size_t task_count)
    : assignment_(task_count), cluster_count_(static_cast<int>(task_count)) {
    for (std::size_t t = 0; t < task_count; ++t) assignment_[t] = static_cast<int>(t);
}

Clustering Clustering::from_assignment(std::vector<int> assignment) {
    Clustering c(assignment.size());
    c.assignment_ = std::move(assignment);
    c.normalize();
    return c;
}

void Clustering::merge(TaskIndex a, TaskIndex b) {
    int from = assignment_.at(b);
    int to = assignment_.at(a);
    if (from == to) return;
    for (int& id : assignment_)
        if (id == from) id = to;
    normalize();
}

std::vector<std::vector<TaskIndex>> Clustering::groups() const {
    std::vector<std::vector<TaskIndex>> out(cluster_count_);
    for (TaskIndex t = 0; t < assignment_.size(); ++t)
        out[assignment_[t]].push_back(t);
    return out;
}

void Clustering::normalize() {
    std::map<int, int> remap;
    int next = 0;
    for (int& id : assignment_) {
        auto [it, inserted] = remap.emplace(id, next);
        if (inserted) ++next;
        id = it->second;
    }
    cluster_count_ = next;
}

double inter_cluster_cost(const TaskGraph& graph, const Clustering& clustering) {
    double cost = 0.0;
    for (const Edge& e : graph.edges())
        if (!clustering.same_cluster(e.from, e.to)) cost += e.cost;
    return cost;
}

double intra_cluster_cost(const TaskGraph& graph, const Clustering& clustering) {
    double cost = 0.0;
    for (const Edge& e : graph.edges())
        if (clustering.same_cluster(e.from, e.to)) cost += e.cost;
    return cost;
}

double scheduled_makespan(const TaskGraph& graph, const Clustering& clustering,
                          double inter_comm_factor, double intra_comm_factor) {
    if (graph.task_count() != clustering.task_count())
        throw std::invalid_argument("clustering does not match graph size");
    const auto order = graph.topological_order();
    std::vector<double> finish(graph.task_count(), 0.0);
    std::vector<double> processor_free(clustering.cluster_count(), 0.0);

    // List scheduling in topological order: each task starts when (a) its
    // processor is free and (b) all messages have arrived.
    for (TaskIndex t : order) {
        int cpu = clustering.cluster_of(t);
        double ready = processor_free[cpu];
        for (std::size_t e : graph.in_edges(t)) {
            const Edge& edge = graph.edge(e);
            double factor = clustering.same_cluster(edge.from, edge.to)
                                ? intra_comm_factor
                                : inter_comm_factor;
            ready = std::max(ready, finish[edge.from] + factor * edge.cost);
        }
        finish[t] = ready + graph.weight(t);
        processor_free[cpu] = finish[t];
    }
    double makespan = 0.0;
    for (double f : finish) makespan = std::max(makespan, f);
    return makespan;
}

bool is_linear(const TaskGraph& graph, const Clustering& clustering) {
    // Two tasks are independent iff neither reaches the other. A cluster is
    // linear iff its tasks form a chain under reachability.
    const std::size_t n = graph.task_count();
    std::vector<std::vector<bool>> reach(n, std::vector<bool>(n, false));
    auto order = graph.topological_order();
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
        TaskIndex t = *it;
        for (std::size_t e : graph.out_edges(t)) {
            TaskIndex s = graph.edge(e).to;
            reach[t][s] = true;
            for (std::size_t u = 0; u < n; ++u)
                if (reach[s][u]) reach[t][u] = true;
        }
    }
    for (const auto& group : clustering.groups()) {
        for (std::size_t i = 0; i < group.size(); ++i) {
            for (std::size_t j = i + 1; j < group.size(); ++j) {
                TaskIndex a = group[i];
                TaskIndex b = group[j];
                if (!reach[a][b] && !reach[b][a]) return false;
            }
        }
    }
    return true;
}

std::string format(const TaskGraph& graph, const Clustering& clustering) {
    std::ostringstream out;
    auto groups = clustering.groups();
    for (std::size_t c = 0; c < groups.size(); ++c) {
        if (c > 0) out << ' ';
        out << "CPU" << c << " {";
        for (TaskIndex t : groups[c]) out << ' ' << graph.name(t);
        out << " }";
    }
    return out.str();
}

}  // namespace uhcg::taskgraph
