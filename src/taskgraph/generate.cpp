#include "taskgraph/generate.hpp"

#include <random>
#include <string>
#include <vector>

namespace uhcg::taskgraph {

TaskGraph random_layered_dag(const RandomDagOptions& options) {
    TaskGraph g;
    std::mt19937_64 rng(options.seed);
    std::uniform_real_distribution<double> weight_dist(options.min_weight,
                                                       options.max_weight);
    std::uniform_real_distribution<double> cost_dist(options.min_cost,
                                                     options.max_cost);
    std::uniform_real_distribution<double> coin(0.0, 1.0);

    std::size_t layers = std::max<std::size_t>(1, options.layers);
    std::vector<std::vector<TaskIndex>> layer_tasks(layers);
    for (std::size_t t = 0; t < options.tasks; ++t) {
        TaskIndex id = g.add_task("T" + std::to_string(t), weight_dist(rng));
        layer_tasks[t % layers].push_back(id);
    }
    for (std::size_t layer = 0; layer + 1 < layers; ++layer) {
        for (TaskIndex from : layer_tasks[layer]) {
            bool connected = false;
            for (TaskIndex to : layer_tasks[layer + 1]) {
                if (coin(rng) < options.edge_probability) {
                    g.add_edge(from, to, cost_dist(rng));
                    connected = true;
                }
            }
            // Orphan fallback: every non-final-layer task feeds someone.
            if (!connected && !layer_tasks[layer + 1].empty())
                g.add_edge(from, layer_tasks[layer + 1].front(), cost_dist(rng));
        }
    }
    return g;
}

TaskGraph fork_join_graph(std::size_t width, std::size_t depth, double node_weight,
                          double edge_cost) {
    TaskGraph g;
    TaskIndex source = g.add_task("src", node_weight);
    TaskIndex sink = g.add_task("sink", node_weight);
    for (std::size_t c = 0; c < width; ++c) {
        TaskIndex prev = source;
        for (std::size_t d = 0; d < depth; ++d) {
            TaskIndex t = g.add_task(
                "c" + std::to_string(c) + "_" + std::to_string(d), node_weight);
            g.add_edge(prev, t, edge_cost);
            prev = t;
        }
        g.add_edge(prev, sink, edge_cost);
    }
    return g;
}

TaskGraph chain_graph(std::size_t length, double node_weight, double edge_cost) {
    TaskGraph g;
    TaskIndex prev = 0;
    for (std::size_t i = 0; i < length; ++i) {
        TaskIndex t = g.add_task("n" + std::to_string(i), node_weight);
        if (i > 0) g.add_edge(prev, t, edge_cost);
        prev = t;
    }
    return g;
}

TaskGraph paper_synthetic_graph() {
    TaskGraph g;
    // Thread names follow Fig. 7(a): twelve threads A..M (no K).
    TaskIndex a = g.add_task("A");
    TaskIndex b = g.add_task("B");
    TaskIndex c = g.add_task("C");
    TaskIndex d = g.add_task("D");
    TaskIndex e = g.add_task("E");
    TaskIndex f = g.add_task("F");
    TaskIndex gg = g.add_task("G");
    TaskIndex h = g.add_task("H");
    TaskIndex i = g.add_task("I");
    TaskIndex j = g.add_task("J");
    TaskIndex l = g.add_task("L");
    TaskIndex m = g.add_task("M");

    // Heavy critical path A-B-C-D-F-J ...
    g.add_edge(a, b, 10);
    g.add_edge(b, c, 11);
    g.add_edge(c, d, 10);
    g.add_edge(d, f, 12);
    g.add_edge(f, j, 10);
    // ... and three lighter side chains re-joining at J.
    g.add_edge(a, e, 2);
    g.add_edge(e, i, 8);
    g.add_edge(i, j, 3);
    g.add_edge(b, gg, 3);
    g.add_edge(gg, m, 9);
    g.add_edge(m, j, 2);
    g.add_edge(c, h, 2);
    g.add_edge(h, l, 7);
    g.add_edge(l, j, 1);
    return g;
}

}  // namespace uhcg::taskgraph
