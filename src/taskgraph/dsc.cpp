#include "taskgraph/dsc.hpp"

#include <algorithm>
#include <limits>

namespace uhcg::taskgraph {

Clustering dsc_clustering(const TaskGraph& graph) {
    const std::size_t n = graph.task_count();
    std::vector<int> cluster(n);
    for (std::size_t t = 0; t < n; ++t) cluster[t] = static_cast<int>(t);

    const auto blevel = graph.bottom_levels();
    std::vector<double> finish(n, 0.0);
    std::vector<double> cluster_free(n, 0.0);
    std::vector<bool> examined(n, false);
    std::vector<std::size_t> unexamined_preds(n, 0);
    for (std::size_t t = 0; t < n; ++t)
        unexamined_preds[t] = graph.in_edges(t).size();

    auto start_time = [&](TaskIndex t, int own_cluster) {
        double start = cluster_free[own_cluster];
        for (std::size_t e : graph.in_edges(t)) {
            const Edge& edge = graph.edge(e);
            double arrival = finish[edge.from] +
                             (cluster[edge.from] == own_cluster ? 0.0 : edge.cost);
            start = std::max(start, arrival);
        }
        return start;
    };

    for (std::size_t step = 0; step < n; ++step) {
        // Highest-priority free node; priority = tlevel + blevel, where the
        // current tlevel is the start time under the evolving clustering.
        TaskIndex best_task = 0;
        double best_priority = -std::numeric_limits<double>::infinity();
        bool found = false;
        for (TaskIndex t = 0; t < n; ++t) {
            if (examined[t] || unexamined_preds[t] != 0) continue;
            double priority = start_time(t, cluster[t]) + blevel[t];
            if (priority > best_priority + 1e-12) {
                best_priority = priority;
                best_task = t;
                found = true;
            }
        }
        if (!found) break;  // cycle guard; topological graphs never hit this
        TaskIndex t = best_task;

        // Dominant predecessor: the one whose message arrives last.
        double base_start = start_time(t, cluster[t]);
        int merge_cluster = -1;
        double best_start = base_start;
        for (std::size_t e : graph.in_edges(t)) {
            const Edge& edge = graph.edge(e);
            int c = cluster[edge.from];
            if (c == cluster[t]) continue;
            double candidate = start_time(t, c);
            if (candidate < best_start - 1e-12) {
                best_start = candidate;
                merge_cluster = c;
            }
        }
        if (merge_cluster >= 0) cluster[t] = merge_cluster;

        double start = start_time(t, cluster[t]);
        finish[t] = start + graph.weight(t);
        cluster_free[cluster[t]] = finish[t];
        examined[t] = true;
        for (std::size_t e : graph.out_edges(t)) --unexamined_preds[graph.edge(e).to];
    }

    return Clustering::from_assignment(std::move(cluster));
}

}  // namespace uhcg::taskgraph
