#include "taskgraph/baselines.hpp"

#include <algorithm>
#include <numeric>
#include <random>
#include <stdexcept>

namespace uhcg::taskgraph {
namespace {

void require_k(std::size_t k) {
    if (k == 0) throw std::invalid_argument("cluster count must be positive");
}

}  // namespace

Clustering round_robin_clustering(const TaskGraph& graph, std::size_t k) {
    require_k(k);
    std::vector<int> assignment(graph.task_count());
    for (std::size_t t = 0; t < graph.task_count(); ++t)
        assignment[t] = static_cast<int>(t % k);
    return Clustering::from_assignment(std::move(assignment));
}

Clustering random_clustering(const TaskGraph& graph, std::size_t k,
                             std::uint64_t seed) {
    require_k(k);
    std::mt19937_64 rng(seed);
    std::uniform_int_distribution<int> dist(0, static_cast<int>(k) - 1);
    std::vector<int> assignment(graph.task_count());
    for (int& a : assignment) a = dist(rng);
    return Clustering::from_assignment(std::move(assignment));
}

Clustering single_cluster(const TaskGraph& graph) {
    return Clustering::from_assignment(
        std::vector<int>(graph.task_count(), 0));
}

Clustering load_balance_clustering(const TaskGraph& graph, std::size_t k) {
    require_k(k);
    std::vector<std::size_t> order(graph.task_count());
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return graph.weight(a) > graph.weight(b);
    });
    std::vector<double> load(k, 0.0);
    std::vector<int> assignment(graph.task_count(), 0);
    for (std::size_t t : order) {
        std::size_t lightest =
            std::min_element(load.begin(), load.end()) - load.begin();
        assignment[t] = static_cast<int>(lightest);
        load[lightest] += graph.weight(t);
    }
    return Clustering::from_assignment(std::move(assignment));
}

}  // namespace uhcg::taskgraph
