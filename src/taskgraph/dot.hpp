// dot.hpp — Graphviz export of task graphs and clusterings.
//
// The paper presents its allocation results as figures (Fig. 7(a)/(b));
// these exporters regenerate those figures from live data: `dot -Tpng`
// on the output reproduces the task graph, with clusters drawn as
// subgraphs when a Clustering is supplied.
#pragma once

#include <optional>
#include <string>

#include "taskgraph/clustering.hpp"
#include "taskgraph/graph.hpp"

namespace uhcg::taskgraph {

struct DotOptions {
    /// Graph name in the emitted `digraph <name> { ... }`.
    std::string name = "taskgraph";
    /// Show node weights as labels ("A (w=2)").
    bool show_weights = false;
    /// Show edge costs as labels.
    bool show_costs = true;
};

/// Plain task graph (Fig. 7(a)).
std::string to_dot(const TaskGraph& graph, const DotOptions& options = {});

/// Task graph with clusters as Graphviz subgraph boxes (Fig. 7(b)).
std::string to_dot(const TaskGraph& graph, const Clustering& clustering,
                   const DotOptions& options = {});

}  // namespace uhcg::taskgraph
