// clustering.hpp — clusterings of a task graph and their quality metrics.
//
// A clustering assigns every task to a cluster; the mapping step turns
// clusters into processors (one CPU-SS per cluster). Quality metrics:
// inter-cluster traffic — what §4.2.3's optimization minimizes — and the
// scheduled makespan under the classic "zero intra-cluster, full
// inter-cluster" communication model of Gerasoulis & Yang.
#pragma once

#include <string>
#include <vector>

#include "taskgraph/graph.hpp"

namespace uhcg::taskgraph {

class Clustering {
public:
    /// Creates the discrete clustering: every task in its own cluster.
    explicit Clustering(std::size_t task_count);
    /// Builds from an explicit assignment vector (task → cluster id). Ids
    /// are normalized to a dense 0..k-1 range preserving first appearance.
    static Clustering from_assignment(std::vector<int> assignment);

    std::size_t task_count() const { return assignment_.size(); }
    int cluster_of(TaskIndex t) const { return assignment_.at(t); }
    int cluster_count() const { return cluster_count_; }
    bool same_cluster(TaskIndex a, TaskIndex b) const {
        return assignment_.at(a) == assignment_.at(b);
    }

    /// Merges the clusters containing `a` and `b` (no-op when equal).
    void merge(TaskIndex a, TaskIndex b);

    /// Tasks per cluster, cluster id order.
    std::vector<std::vector<TaskIndex>> groups() const;
    /// Re-numbers ids densely in order of first appearance by task index.
    void normalize();

private:
    std::vector<int> assignment_;
    int cluster_count_ = 0;
};

/// Total cost of edges crossing cluster boundaries (inter-processor
/// traffic — the paper's objective).
double inter_cluster_cost(const TaskGraph& graph, const Clustering& clustering);

/// Total cost of edges inside clusters.
double intra_cluster_cost(const TaskGraph& graph, const Clustering& clustering);

/// Makespan under list scheduling with one processor per cluster. Tasks
/// become ready when all predecessors finished plus edge cost when the
/// predecessor is in another cluster (scaled by `inter_comm_factor`;
/// intra-cluster communication costs `intra_comm_factor` × edge cost,
/// 0 by default as in the classic clustering model).
double scheduled_makespan(const TaskGraph& graph, const Clustering& clustering,
                          double inter_comm_factor = 1.0,
                          double intra_comm_factor = 0.0);

/// True when every cluster is *linear*: no two independent (parallel)
/// tasks share a cluster — the defining property of linear clustering.
bool is_linear(const TaskGraph& graph, const Clustering& clustering);

/// Human-readable dump: "CPU0 { A B C } CPU1 { D }".
std::string format(const TaskGraph& graph, const Clustering& clustering);

}  // namespace uhcg::taskgraph
