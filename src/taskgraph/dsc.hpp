// dsc.hpp — Dominant Sequence Clustering (Yang & Gerasoulis), simplified.
//
// Included as the stronger comparison point for the ablation benches: the
// paper chose *linear* clustering; DSC is the classic alternative that may
// merge independent tasks into one cluster when that shortens the dominant
// sequence. This implementation is the standard greedy variant: examine
// nodes in descending (tlevel + blevel) priority among free nodes and
// merge a node into its dominant predecessor's cluster when doing so does
// not increase its start time.
#pragma once

#include "taskgraph/clustering.hpp"
#include "taskgraph/graph.hpp"

namespace uhcg::taskgraph {

Clustering dsc_clustering(const TaskGraph& graph);

}  // namespace uhcg::taskgraph
