#include "diag/diag.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace uhcg::diag {

std::string_view to_string(Severity s) {
    switch (s) {
        case Severity::Note: return "note";
        case Severity::Warning: return "warning";
        case Severity::Error: return "error";
        case Severity::Fatal: return "fatal error";
    }
    return "error";
}

namespace {

std::string dedup_key(const Diagnostic& d) {
    std::ostringstream key;
    key << static_cast<int>(d.severity) << '\x1f' << d.code << '\x1f'
        << d.message << '\x1f' << d.location.file << '\x1f' << d.location.line
        << '\x1f' << d.location.column;
    return key.str();
}

/// Extracts line `line` (1-based) of `text`, without the terminator.
std::string source_line(const std::string& text, std::size_t line) {
    std::size_t start = 0;
    for (std::size_t l = 1; l < line; ++l) {
        start = text.find('\n', start);
        if (start == std::string::npos) return {};
        ++start;
    }
    std::size_t end = text.find('\n', start);
    std::string out = text.substr(start, end == std::string::npos ? std::string::npos
                                                                  : end - start);
    if (!out.empty() && out.back() == '\r') out.pop_back();
    return out;
}

}  // namespace

void DiagnosticEngine::report(Diagnostic d) {
    if (!seen_.insert(dedup_key(d)).second) return;
    if (d.severity == Severity::Error || d.severity == Severity::Fatal) ++errors_;
    if (d.severity == Severity::Warning) ++warnings_;
    diags_.push_back(std::move(d));
}

void DiagnosticEngine::report(Severity severity, std::string code,
                              std::string message, SourceLocation location,
                              std::vector<std::string> notes) {
    report(Diagnostic{severity, std::move(code), std::move(message),
                      std::move(location), std::move(notes)});
}

void DiagnosticEngine::error(std::string code, std::string message,
                             SourceLocation location) {
    report(Severity::Error, std::move(code), std::move(message), std::move(location));
}

void DiagnosticEngine::warning(std::string code, std::string message,
                               SourceLocation location) {
    report(Severity::Warning, std::move(code), std::move(message),
           std::move(location));
}

void DiagnosticEngine::note(std::string code, std::string message,
                            SourceLocation location) {
    report(Severity::Note, std::move(code), std::move(message), std::move(location));
}

void DiagnosticEngine::merge(const DiagnosticEngine& other) {
    for (const Diagnostic& d : other.diags_) report(d);
    for (const auto& [file, text] : other.sources_) sources_.emplace(file, text);
}

std::vector<const Diagnostic*> DiagnosticEngine::sorted() const {
    std::vector<const Diagnostic*> out;
    out.reserve(diags_.size());
    for (const Diagnostic& d : diags_) out.push_back(&d);
    std::stable_sort(out.begin(), out.end(),
                     [](const Diagnostic* a, const Diagnostic* b) {
                         if (a->location.file != b->location.file)
                             return a->location.file < b->location.file;
                         if (a->location.line != b->location.line)
                             return a->location.line < b->location.line;
                         if (a->location.column != b->location.column)
                             return a->location.column < b->location.column;
                         if (a->severity != b->severity)
                             return a->severity > b->severity;  // errors first
                         return a->code < b->code;
                     });
    return out;
}

std::size_t DiagnosticEngine::count_code(std::string_view code) const {
    std::size_t n = 0;
    for (const Diagnostic& d : diags_)
        if (d.code == code) ++n;
    return n;
}

void DiagnosticEngine::register_source(std::string file, std::string text) {
    sources_[std::move(file)] = std::move(text);
}

std::string DiagnosticEngine::render_text() const {
    std::ostringstream out;
    for (const Diagnostic* d : sorted()) {
        if (!d->location.file.empty()) out << d->location.file << ':';
        if (d->location.known())
            out << d->location.line << ':' << d->location.column << ':';
        if (!d->location.file.empty() || d->location.known()) out << ' ';
        out << to_string(d->severity) << ": " << d->message << " [" << d->code
            << "]\n";
        // Caret snippet when we hold the source text of the file.
        auto src = sources_.find(d->location.file);
        if (d->location.known() && src != sources_.end()) {
            std::string text = source_line(src->second, d->location.line);
            if (!text.empty()) {
                std::ostringstream gutter;
                gutter << ' ' << d->location.line << " | ";
                out << gutter.str() << text << '\n';
                std::string pad(gutter.str().size() - 2, ' ');
                std::string lead;
                for (std::size_t i = 0; i + 1 < d->location.column && i < text.size();
                     ++i)
                    lead += (text[i] == '\t') ? '\t' : ' ';
                out << pad << "| " << lead << "^\n";
            }
        }
        for (const std::string& n : d->notes) out << "    note: " << n << '\n';
    }
    if (errors_ > 0 || warnings_ > 0) {
        out << errors_ << " error(s), " << warnings_ << " warning(s) generated\n";
    }
    return out.str();
}

std::string json_escape(std::string_view text) {
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x",
                                  static_cast<unsigned>(c) & 0xff);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    return out;
}

std::string DiagnosticEngine::render_json() const {
    std::ostringstream out;
    out << "{\"errors\": " << errors_ << ", \"warnings\": " << warnings_
        << ", \"diagnostics\": [";
    bool first = true;
    for (const Diagnostic* d : sorted()) {
        if (!first) out << ", ";
        first = false;
        out << "{\"severity\": \"" << to_string(d->severity) << "\", \"code\": \""
            << json_escape(d->code) << "\", \"message\": \""
            << json_escape(d->message) << "\"";
        if (!d->location.file.empty())
            out << ", \"file\": \"" << json_escape(d->location.file) << "\"";
        if (d->location.known())
            out << ", \"line\": " << d->location.line
                << ", \"column\": " << d->location.column;
        if (!d->notes.empty()) {
            out << ", \"notes\": [";
            for (std::size_t i = 0; i < d->notes.size(); ++i) {
                if (i) out << ", ";
                out << '"' << json_escape(d->notes[i]) << '"';
            }
            out << ']';
        }
        out << '}';
    }
    out << "]}";
    return out.str();
}

bool is_transient(std::string_view code) {
    return code == codes::kFlowPassTimeout || code == codes::kFlowTransient ||
           code == codes::kSimWatchdog || code == codes::kKpnWatchdog;
}

void DiagnosticEngine::clear() {
    diags_.clear();
    seen_.clear();
    errors_ = 0;
    warnings_ = 0;
}

}  // namespace uhcg::diag
