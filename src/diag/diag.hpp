// diag.hpp — structured diagnostics for the whole flow.
//
// Every stage of the pipeline (XML lexing, XMI reading, well-formedness,
// metamodel conformance, mapping, execution watchdogs) reports problems as
// Diagnostic records through a DiagnosticEngine instead of throwing on the
// first offence. The engine collects, deduplicates and sorts them, and
// renders either a human caret-style listing (using the line/column the XML
// parser tracks) or a machine-readable JSON array — the BridgePoint-style
// "report everything in one pass" behaviour a production front-end needs.
//
// Conventions:
//  * codes are stable dotted identifiers ("xmi.missing-attribute"); the
//    full registry lives in diag::codes below and in DESIGN.md;
//  * severity Error and Fatal abort the stage that reported them (after the
//    stage finishes collecting); Warning and Note never do;
//  * a SourceLocation with line 0 means "no position known" and renders
//    without the caret block.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace uhcg::diag {

enum class Severity { Note, Warning, Error, Fatal };

std::string_view to_string(Severity s);

/// Position of the offence in an input artifact. `line`/`column` are
/// 1-based; line 0 means the location is unknown.
struct SourceLocation {
    std::string file;
    std::size_t line = 0;
    std::size_t column = 0;

    bool known() const { return line > 0; }
};

/// One problem found anywhere in the flow.
struct Diagnostic {
    Severity severity = Severity::Error;
    /// Stable machine-readable identifier, e.g. "xmi.dangling-reference".
    std::string code;
    std::string message;
    SourceLocation location;
    /// Extra context lines (blocked processes, channel fills, cycle paths).
    std::vector<std::string> notes;
};

/// Well-known diagnostic codes. Keeping them in one place makes the fault
/// injection corpus assertions and the DESIGN.md registry greppable.
namespace codes {
// XML layer
inline constexpr const char* kXmlParse = "xml.parse";
inline constexpr const char* kXmlUnreadable = "xml.unreadable";
// XMI reader
inline constexpr const char* kXmiNotXmi = "xmi.not-xmi";
inline constexpr const char* kXmiNoModel = "xmi.no-model";
inline constexpr const char* kXmiMissingAttribute = "xmi.missing-attribute";
inline constexpr const char* kXmiDanglingReference = "xmi.dangling-reference";
inline constexpr const char* kXmiBadValue = "xmi.bad-value";
inline constexpr const char* kXmiDuplicateId = "xmi.duplicate-id";
inline constexpr const char* kXmiUnknownStereotype = "xmi.unknown-stereotype";
// UML well-formedness (§4.1 conventions; E/W ids match uml/wellformed.hpp)
inline constexpr const char* kUmlWellformed = "uml.wellformed";
// Metamodel conformance
inline constexpr const char* kModelConformance = "model.conformance";
// Mapping / optimization passes
inline constexpr const char* kMapRule = "map.rule";
inline constexpr const char* kMapChannels = "map.channels";
inline constexpr const char* kMapInternal = "map.internal";
inline constexpr const char* kCaamInvalid = "caam.invalid";
// Parallel execution layer
inline constexpr const char* kCoreParallel = "core.parallel";
// Design-space exploration
inline constexpr const char* kDseMismatch = "dse.mismatch";
inline constexpr const char* kDseEmpty = "dse.empty";
inline constexpr const char* kDseModel = "dse.model";
// Execution watchdogs
inline constexpr const char* kSimDeadlock = "sim.deadlock";
inline constexpr const char* kSimWatchdog = "sim.watchdog";
inline constexpr const char* kSimStructure = "sim.structure";
// Simulation backends (sim/backend.hpp): a backend that cannot honour its
// own semantics (sdf on a multirate graph) pricing through dynamic-fifo.
inline constexpr const char* kSimBackendFallback = "sim.backend-fallback";
inline constexpr const char* kKpnReadBlocked = "kpn.read-blocked";
inline constexpr const char* kKpnWatchdog = "kpn.watchdog";
// Flow layer: pass manager + strategy dispatch
inline constexpr const char* kFlowMissingArtifact = "flow.missing-artifact";
inline constexpr const char* kFlowStrategy = "flow.strategy";
// Flow resilience layer: retry/budget enforcement + quarantine
inline constexpr const char* kFlowPassTimeout = "flow.pass-timeout";
inline constexpr const char* kFlowRetry = "flow.retry";
inline constexpr const char* kFlowTransient = "flow.transient";
inline constexpr const char* kFlowQuarantine = "flow.quarantine";
inline constexpr const char* kFlowCheckpoint = "flow.checkpoint";
// Control-flow branch (UML state machine → FSM → C)
inline constexpr const char* kFsmInvalid = "fsm.invalid";
// Fallback multithreaded C++ branch
inline constexpr const char* kCodegenThreads = "codegen.threads";
// Campaign orchestration (manifest expansion, per-job quarantine, journal)
inline constexpr const char* kCampaignManifest = "campaign.manifest";
inline constexpr const char* kCampaignJob = "campaign.job";
inline constexpr const char* kCampaignJournal = "campaign.journal";
}  // namespace codes

/// True for codes describing *transient* conditions — budget/watchdog
/// trips and injected transient faults — the only failures a RetryPolicy
/// is allowed to retry. Input defects (xmi.*, uml.*, caam.*) and internal
/// errors are permanent: re-running the same pass on the same artifacts
/// reproduces them, so retrying only burns the budget.
bool is_transient(std::string_view code);

/// Collects diagnostics from every stage of one pipeline run.
class DiagnosticEngine {
public:
    /// Records a diagnostic. Exact duplicates (same severity, code,
    /// message and location) are dropped — recovery paths often revisit
    /// the same malformed element.
    void report(Diagnostic d);
    void report(Severity severity, std::string code, std::string message,
                SourceLocation location = {},
                std::vector<std::string> notes = {});

    /// Shorthand used by stages that only distinguish error/warning.
    void error(std::string code, std::string message, SourceLocation location = {});
    void warning(std::string code, std::string message, SourceLocation location = {});
    void note(std::string code, std::string message, SourceLocation location = {});

    /// Appends every diagnostic of `other` in `other`'s report order,
    /// through the normal dedup path, and adopts its registered sources.
    /// The parallel generate dispatcher collects each (strategy ×
    /// subsystem) unit into a private engine and folds them back in
    /// canonical unit order, so the merged stream is identical for any
    /// worker count.
    void merge(const DiagnosticEngine& other);

    bool empty() const { return diags_.empty(); }
    std::size_t size() const { return diags_.size(); }
    std::size_t error_count() const { return errors_; }
    std::size_t warning_count() const { return warnings_; }
    /// True when any diagnostic has severity >= Error.
    bool has_errors() const { return errors_ > 0; }

    /// Diagnostics in report order.
    const std::vector<Diagnostic>& diagnostics() const { return diags_; }
    /// Diagnostics sorted by (file, line, column, severity desc, code).
    std::vector<const Diagnostic*> sorted() const;
    /// Number of diagnostics carrying the given code.
    std::size_t count_code(std::string_view code) const;

    /// Registers an input's text so render_text can show caret snippets
    /// for locations inside `file`.
    void register_source(std::string file, std::string text);

    /// Human-readable caret-style listing plus a summary line.
    std::string render_text() const;
    /// Machine-readable JSON: {"diagnostics": [...], "errors": N, ...}.
    std::string render_json() const;

    void clear();

private:
    std::vector<Diagnostic> diags_;
    std::set<std::string> seen_;  // dedup keys
    std::map<std::string, std::string> sources_;
    std::size_t errors_ = 0;
    std::size_t warnings_ = 0;
};

/// Escapes a string for embedding in a JSON string literal (no quotes).
std::string json_escape(std::string_view text);

}  // namespace uhcg::diag
