#include "diag/mutate.hpp"

#include <utility>

#include "xml/dom.hpp"
#include "xml/parser.hpp"
#include "xml/writer.hpp"

namespace uhcg::diag {
namespace {

/// Deterministic 64-bit LCG (MMIX constants). Not Date/random-seeded:
/// mutants must be reproducible from the plan alone.
struct Rng {
    std::uint64_t state;
    std::uint64_t next() {
        state = state * 6364136223846793005ULL + 1442695040888963407ULL;
        return state >> 33;
    }
    std::size_t below(std::size_t n) { return n ? next() % n : 0; }
};

/// Attributes that cross-reference another element's xmi:id.
bool is_reference_attr(const std::string& name) {
    static const char* kRefs[] = {
        "classifier",     "represents",     "sendLifeline", "receiveLifeline",
        "source",         "target",         "node",         "location",
        "deployedArtifact", "initial",      "performer",    "annotatedElement",
        "base_InstanceSpecification",       "base_Node"};
    for (const char* r : kRefs)
        if (name == r) return true;
    return false;
}

bool is_numeric_attr(const std::string& name) {
    return name == "dataSize" || name == "direction" || name == "isActive";
}

void collect(xml::Element& e, xml::Element* parent,
             std::vector<std::pair<xml::Element*, xml::Element*>>& out) {
    out.emplace_back(&e, parent);
    for (xml::Node& n : e.children())
        if (n.kind() == xml::NodeKind::Element) collect(n.element(), &e, out);
}

std::unique_ptr<xml::Element> clone(const xml::Element& e) {
    auto out = std::make_unique<xml::Element>(e.name());
    for (const xml::Attribute& a : e.attributes()) out->set_attribute(a.name, a.value);
    for (const xml::Node& n : e.children())
        if (n.kind() == xml::NodeKind::Element)
            out->add_child(clone(n.element()));
    return out;
}

}  // namespace

std::string_view to_string(MutationKind kind) {
    switch (kind) {
        case MutationKind::Truncate: return "truncate";
        case MutationKind::TagSwap: return "tag-swap";
        case MutationKind::AttributeDrop: return "attribute-drop";
        case MutationKind::ReferenceDangle: return "reference-dangle";
        case MutationKind::ValueGarble: return "value-garble";
        case MutationKind::DuplicateId: return "duplicate-id";
        case MutationKind::CycleInject: return "cycle-inject";
    }
    return "unknown";
}

std::vector<Mutation> plan_mutations(std::size_t count, std::uint64_t seed) {
    static const MutationKind kKinds[] = {
        MutationKind::Truncate,        MutationKind::TagSwap,
        MutationKind::AttributeDrop,   MutationKind::ReferenceDangle,
        MutationKind::ValueGarble,     MutationKind::DuplicateId,
        MutationKind::CycleInject};
    Rng rng{seed * 2654435761ULL + 1};
    std::vector<Mutation> plan;
    plan.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
        plan.push_back({kKinds[i % std::size(kKinds)], rng.next(), {}});
    return plan;
}

std::string apply_mutation(const std::string& xmi_text, Mutation& m) {
    Rng rng{m.seed | 1};

    if (m.kind == MutationKind::Truncate) {
        // Keep at least a prefix so the parser gets past the declaration.
        std::size_t keep = 10 + rng.below(xmi_text.size() > 10 ? xmi_text.size() - 10
                                                               : 1);
        m.description = "truncate to " + std::to_string(keep) + " bytes";
        return xmi_text.substr(0, keep);
    }

    // Structural mutations operate on the DOM and re-serialize.
    xml::Document doc;
    try {
        doc = xml::parse(xmi_text);
    } catch (const std::exception&) {
        m.description = "input unparsable; returned unchanged";
        return xmi_text;
    }
    std::vector<std::pair<xml::Element*, xml::Element*>> elems;
    collect(doc.root(), nullptr, elems);

    auto untouched = [&] {
        m.description = std::string(to_string(m.kind)) + ": no applicable site";
        return xml::write(doc);
    };

    switch (m.kind) {
        case MutationKind::TagSwap: {
            static const char* kTags[] = {"lifeline", "message",  "subvertex",
                                          "transition", "end",    "ownedOperation",
                                          "packagedElement"};
            auto& [e, parent] = elems[rng.below(elems.size())];
            (void)parent;
            std::string tag = kTags[rng.below(std::size(kTags))];
            if (tag == e->name()) tag = "mutatedElement";
            m.description = "rename <" + e->name() + "> to <" + tag + ">";
            e->set_name(tag);
            break;
        }
        case MutationKind::AttributeDrop: {
            std::vector<xml::Element*> with_attrs;
            for (auto& [e, parent] : elems)
                if (!e->attributes().empty()) with_attrs.push_back(e);
            if (with_attrs.empty()) return untouched();
            xml::Element* e = with_attrs[rng.below(with_attrs.size())];
            const xml::Attribute& a =
                e->attributes()[rng.below(e->attributes().size())];
            m.description = "drop " + a.name + " from <" + e->name() + ">";
            e->remove_attribute(a.name);
            break;
        }
        case MutationKind::ReferenceDangle: {
            std::vector<std::pair<xml::Element*, std::string>> refs;
            for (auto& [e, parent] : elems)
                for (const xml::Attribute& a : e->attributes())
                    if (is_reference_attr(a.name)) refs.emplace_back(e, a.name);
            if (refs.empty()) return untouched();
            auto& [e, attr] = refs[rng.below(refs.size())];
            m.description = "dangle " + attr + " on <" + e->name() + ">";
            e->set_attribute(attr, "zz.dangling." + std::to_string(rng.below(1000)));
            break;
        }
        case MutationKind::ValueGarble: {
            std::vector<std::pair<xml::Element*, std::string>> vals;
            for (auto& [e, parent] : elems)
                for (const xml::Attribute& a : e->attributes())
                    if (is_numeric_attr(a.name)) vals.emplace_back(e, a.name);
            if (vals.empty()) return untouched();
            auto& [e, attr] = vals[rng.below(vals.size())];
            m.description = "garble " + attr + " on <" + e->name() + ">";
            e->set_attribute(attr, "!!not-a-value!!");
            break;
        }
        case MutationKind::DuplicateId: {
            std::vector<xml::Element*> with_id;
            for (auto& [e, parent] : elems)
                if (e->has_attribute("xmi:id")) with_id.push_back(e);
            if (with_id.size() < 2) return untouched();
            xml::Element* a = with_id[rng.below(with_id.size())];
            xml::Element* b = with_id[rng.below(with_id.size())];
            if (a == b) b = with_id[(rng.below(with_id.size() - 1) + 1) % with_id.size()];
            if (a == b) return untouched();
            m.description = "copy xmi:id '" + *a->find_attribute("xmi:id") +
                            "' onto <" + b->name() + ">";
            b->set_attribute("xmi:id", *a->find_attribute("xmi:id"));
            break;
        }
        case MutationKind::CycleInject: {
            std::vector<std::pair<xml::Element*, xml::Element*>> messages;
            for (auto& [e, parent] : elems)
                if (e->name() == "message" && parent) messages.emplace_back(e, parent);
            if (messages.empty()) return untouched();
            auto& [msg, parent] = messages[rng.below(messages.size())];
            auto rev = clone(*msg);
            const std::string* send = msg->find_attribute("sendLifeline");
            const std::string* recv = msg->find_attribute("receiveLifeline");
            if (send && recv) {
                rev->set_attribute("sendLifeline", *recv);
                rev->set_attribute("receiveLifeline", *send);
            }
            rev->set_attribute("xmi:id",
                               "msg.injected." + std::to_string(rng.below(1000)));
            m.description = "inject reversed copy of message '" +
                            msg->attribute_or("name", "?") + "'";
            parent->add_child(std::move(rev));
            break;
        }
        case MutationKind::Truncate:
            break;  // handled above
    }
    return xml::write(doc);
}

}  // namespace uhcg::diag
