// mutate.hpp — deterministic XMI fault injection.
//
// Generates corrupted variants of a (valid) XMI document: byte-level
// truncation plus DOM-level structural damage (tag swaps, dropped
// attributes, dangling references, garbled values, duplicated ids,
// injected feedback cycles). Both the `uhcg fuzz-xmi` subcommand and the
// tests/fault_injection harness drive the same planner, so a corpus is
// reproducible from (input, seed, count) alone — no corpus files to ship.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace uhcg::diag {

enum class MutationKind {
    Truncate,         // cut the text mid-document
    TagSwap,          // rename an element to a different (known) tag
    AttributeDrop,    // delete one attribute
    ReferenceDangle,  // point a cross-reference at a nonexistent id
    ValueGarble,      // replace a numeric attribute value with junk
    DuplicateId,      // give one element another element's xmi:id
    CycleInject,      // duplicate a message with reversed endpoints
};

std::string_view to_string(MutationKind kind);

/// One planned corruption. `seed_index` feeds the deterministic PRNG so
/// the same plan always yields the same mutant text.
struct Mutation {
    MutationKind kind;
    std::uint64_t seed;
    std::string description;  // filled in by apply()
};

/// Plans `count` mutations cycling through all kinds, derived from `seed`.
std::vector<Mutation> plan_mutations(std::size_t count, std::uint64_t seed);

/// Applies one mutation to the XMI text, returning the corrupted document
/// and filling `m.description` with what was damaged. Returns the input
/// unchanged (with a description saying so) when the mutation found no
/// applicable site — callers still get a terminating pipeline run.
std::string apply_mutation(const std::string& xmi_text, Mutation& m);

}  // namespace uhcg::diag
