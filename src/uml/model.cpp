#include "uml/model.hpp"

#include <algorithm>

namespace uhcg::uml {

std::string_view to_string(Stereotype s) {
    switch (s) {
        case Stereotype::SASchedRes: return "SASchedRes";
        case Stereotype::SAengine: return "SAengine";
        case Stereotype::IO: return "IO";
    }
    return "?";
}

std::optional<Stereotype> stereotype_from_string(std::string_view name) {
    if (name == "SASchedRes") return Stereotype::SASchedRes;
    if (name == "SAengine") return Stereotype::SAengine;
    if (name == "IO") return Stereotype::IO;
    return std::nullopt;
}

std::string_view to_string(ParameterDirection d) {
    switch (d) {
        case ParameterDirection::In: return "in";
        case ParameterDirection::Out: return "out";
        case ParameterDirection::InOut: return "inout";
        case ParameterDirection::Return: return "return";
    }
    return "?";
}

std::optional<ParameterDirection> direction_from_string(std::string_view name) {
    if (name == "in") return ParameterDirection::In;
    if (name == "out") return ParameterDirection::Out;
    if (name == "inout") return ParameterDirection::InOut;
    if (name == "return") return ParameterDirection::Return;
    return std::nullopt;
}

// --- Operation --------------------------------------------------------------

Parameter& Operation::add_parameter(Parameter p) {
    params_.push_back(std::move(p));
    return params_.back();
}

std::vector<const Parameter*> Operation::inputs() const {
    std::vector<const Parameter*> out;
    for (const auto& p : params_)
        if (p.direction == ParameterDirection::In ||
            p.direction == ParameterDirection::InOut)
            out.push_back(&p);
    return out;
}

std::vector<const Parameter*> Operation::outputs() const {
    std::vector<const Parameter*> out;
    for (const auto& p : params_)
        if (p.direction == ParameterDirection::Out ||
            p.direction == ParameterDirection::InOut ||
            p.direction == ParameterDirection::Return)
            out.push_back(&p);
    return out;
}

bool Operation::has_return() const {
    return std::any_of(params_.begin(), params_.end(), [](const Parameter& p) {
        return p.direction == ParameterDirection::Return;
    });
}

// --- Class ------------------------------------------------------------------

Operation& Class::add_operation(std::string name) {
    operations_.push_back(std::make_unique<Operation>(std::move(name), this));
    return *operations_.back();
}

Operation* Class::find_operation(std::string_view name) {
    for (const auto& op : operations_)
        if (op->name() == name) return op.get();
    return nullptr;
}

const Operation* Class::find_operation(std::string_view name) const {
    for (const auto& op : operations_)
        if (op->name() == name) return op.get();
    return nullptr;
}

std::vector<const Operation*> Class::operations() const {
    std::vector<const Operation*> out;
    for (const auto& op : operations_) out.push_back(op.get());
    return out;
}

std::vector<Operation*> Class::operations() {
    std::vector<Operation*> out;
    for (const auto& op : operations_) out.push_back(op.get());
    return out;
}

// --- ObjectInstance / NodeInstance -------------------------------------------

void ObjectInstance::add_stereotype(Stereotype s) {
    if (!has_stereotype(s)) stereotypes_.push_back(s);
}

bool ObjectInstance::has_stereotype(Stereotype s) const {
    return std::find(stereotypes_.begin(), stereotypes_.end(), s) !=
           stereotypes_.end();
}

void NodeInstance::add_stereotype(Stereotype s) {
    if (!has_stereotype(s)) stereotypes_.push_back(s);
}

bool NodeInstance::has_stereotype(Stereotype s) const {
    return std::find(stereotypes_.begin(), stereotypes_.end(), s) !=
           stereotypes_.end();
}

// --- SequenceDiagram ----------------------------------------------------------

Lifeline& SequenceDiagram::add_lifeline(ObjectInstance& object) {
    lifelines_.push_back(std::make_unique<Lifeline>(&object));
    return *lifelines_.back();
}

Lifeline* SequenceDiagram::find_lifeline(const ObjectInstance& object) {
    for (const auto& l : lifelines_)
        if (l->represents() == &object) return l.get();
    return nullptr;
}

Message& SequenceDiagram::add_message(Lifeline& from, Lifeline& to,
                                      std::string operation) {
    messages_.push_back(std::make_unique<Message>(&from, &to, std::move(operation)));
    Message& msg = *messages_.back();
    // Resolve the operation against the receiver's classifier when possible.
    if (ObjectInstance* receiver = to.represents()) {
        if (Class* cls = receiver->classifier())
            msg.set_operation(cls->find_operation(msg.operation_name()));
    }
    return msg;
}

std::vector<const Message*> SequenceDiagram::messages() const {
    std::vector<const Message*> out;
    for (const auto& m : messages_) out.push_back(m.get());
    return out;
}

std::vector<Message*> SequenceDiagram::messages() {
    std::vector<Message*> out;
    for (const auto& m : messages_) out.push_back(m.get());
    return out;
}

// --- Deployment ----------------------------------------------------------------

void Bus::connect(NodeInstance& node) {
    if (std::find(nodes_.begin(), nodes_.end(), &node) == nodes_.end())
        nodes_.push_back(&node);
}

bool Bus::connects(const NodeInstance& a, const NodeInstance& b) const {
    bool has_a = std::find(nodes_.begin(), nodes_.end(), &a) != nodes_.end();
    bool has_b = std::find(nodes_.begin(), nodes_.end(), &b) != nodes_.end();
    return has_a && has_b;
}

NodeInstance& DeploymentDiagram::add_node(std::string name) {
    nodes_.push_back(std::make_unique<NodeInstance>(std::move(name), owner_));
    return *nodes_.back();
}

NodeInstance* DeploymentDiagram::find_node(std::string_view name) {
    for (const auto& n : nodes_)
        if (n->name() == name) return n.get();
    return nullptr;
}

std::vector<const NodeInstance*> DeploymentDiagram::nodes() const {
    std::vector<const NodeInstance*> out;
    for (const auto& n : nodes_) out.push_back(n.get());
    return out;
}

std::vector<NodeInstance*> DeploymentDiagram::nodes() {
    std::vector<NodeInstance*> out;
    for (const auto& n : nodes_) out.push_back(n.get());
    return out;
}

Bus& DeploymentDiagram::add_bus(std::string name) {
    buses_.push_back(std::make_unique<Bus>(std::move(name), owner_));
    return *buses_.back();
}

void DeploymentDiagram::deploy(ObjectInstance& thread, NodeInstance& node) {
    deployments_.push_back({&thread, &node});
}

NodeInstance* DeploymentDiagram::node_of(const ObjectInstance& thread) const {
    for (const auto& d : deployments_)
        if (d.artifact == &thread) return d.node;
    return nullptr;
}

std::vector<ObjectInstance*> DeploymentDiagram::threads_on(
    const NodeInstance& node) const {
    std::vector<ObjectInstance*> out;
    for (const auto& d : deployments_)
        if (d.node == &node) out.push_back(d.artifact);
    return out;
}

// --- Model -----------------------------------------------------------------

Model& Model::operator=(Model&& other) noexcept {
    name_ = std::move(other.name_);
    classes_ = std::move(other.classes_);
    objects_ = std::move(other.objects_);
    diagrams_ = std::move(other.diagrams_);
    machines_ = std::move(other.machines_);
    deployment_ = std::move(other.deployment_);
    for (auto& c : classes_) c->owner_ = this;
    for (auto& o : objects_) o->owner_ = this;
    for (auto& d : diagrams_) d->owner_ = this;
    if (deployment_) {
        deployment_->owner_ = this;
        for (auto& n : deployment_->nodes_) n->owner_ = this;
        for (auto& b : deployment_->buses_) b->owner_ = this;
    }
    return *this;
}

Class& Model::add_class(std::string name) {
    classes_.push_back(std::make_unique<Class>(std::move(name), this));
    return *classes_.back();
}

Class* Model::find_class(std::string_view name) {
    for (const auto& c : classes_)
        if (c->name() == name) return c.get();
    return nullptr;
}

const Class* Model::find_class(std::string_view name) const {
    for (const auto& c : classes_)
        if (c->name() == name) return c.get();
    return nullptr;
}

std::vector<const Class*> Model::classes() const {
    std::vector<const Class*> out;
    for (const auto& c : classes_) out.push_back(c.get());
    return out;
}

ObjectInstance& Model::add_object(std::string name, Class* classifier) {
    objects_.push_back(
        std::make_unique<ObjectInstance>(std::move(name), classifier, this));
    return *objects_.back();
}

ObjectInstance* Model::find_object(std::string_view name) {
    for (const auto& o : objects_)
        if (o->name() == name) return o.get();
    return nullptr;
}

const ObjectInstance* Model::find_object(std::string_view name) const {
    for (const auto& o : objects_)
        if (o->name() == name) return o.get();
    return nullptr;
}

std::vector<const ObjectInstance*> Model::objects() const {
    std::vector<const ObjectInstance*> out;
    for (const auto& o : objects_) out.push_back(o.get());
    return out;
}

std::vector<ObjectInstance*> Model::objects() {
    std::vector<ObjectInstance*> out;
    for (const auto& o : objects_) out.push_back(o.get());
    return out;
}

std::vector<ObjectInstance*> Model::threads() const {
    std::vector<ObjectInstance*> out;
    for (const auto& o : objects_)
        if (o->is_thread()) out.push_back(o.get());
    return out;
}

SequenceDiagram& Model::add_sequence_diagram(std::string name) {
    diagrams_.push_back(std::make_unique<SequenceDiagram>(std::move(name), this));
    return *diagrams_.back();
}

std::vector<const SequenceDiagram*> Model::sequence_diagrams() const {
    std::vector<const SequenceDiagram*> out;
    for (const auto& d : diagrams_) out.push_back(d.get());
    return out;
}

std::vector<SequenceDiagram*> Model::sequence_diagrams() {
    std::vector<SequenceDiagram*> out;
    for (const auto& d : diagrams_) out.push_back(d.get());
    return out;
}

StateMachine& Model::add_state_machine(std::string name) {
    machines_.push_back(std::make_unique<StateMachine>(std::move(name)));
    return *machines_.back();
}

StateMachine* Model::find_state_machine(std::string_view name) {
    for (const auto& m : machines_)
        if (m->name() == name) return m.get();
    return nullptr;
}

std::vector<const StateMachine*> Model::state_machines() const {
    std::vector<const StateMachine*> out;
    for (const auto& m : machines_) out.push_back(m.get());
    return out;
}

DeploymentDiagram& Model::deployment() {
    if (!deployment_) deployment_ = std::make_unique<DeploymentDiagram>(this);
    return *deployment_;
}

}  // namespace uhcg::uml
