#include "uml/xmi.hpp"

#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>

#include "obs/obs.hpp"
#include "xml/parser.hpp"
#include "xml/writer.hpp"

namespace uhcg::uml {
namespace {

constexpr const char* kXmiNs = "http://schema.omg.org/spec/XMI/2.1";
constexpr const char* kUmlNs = "http://www.eclipse.org/uml2/2.1.0/UML";
constexpr const char* kSptNs = "http://www.omg.org/profiles/SPT";
constexpr const char* kUhcgNs = "http://uhcg.org/profiles/uhcg";

// --- deterministic ids ------------------------------------------------------

std::string class_id(const Class& c) { return "class." + c.name(); }
std::string op_id(const Operation& op) {
    return "op." + op.owner()->name() + "." + op.name();
}
std::string object_id(const ObjectInstance& o) { return "obj." + o.name(); }
std::string node_id(const NodeInstance& n) { return "node." + n.name(); }
std::string interaction_id(const SequenceDiagram& d) { return "ia." + d.name(); }
std::string lifeline_id(const SequenceDiagram& d, const Lifeline& l) {
    return "ll." + d.name() + "." + l.represents()->name();
}
std::string sm_id(const StateMachine& m) { return "sm." + m.name(); }
std::string state_id(const StateMachine& m, const State& s) {
    return "state." + m.name() + "." + s.name();
}

// --- writer -----------------------------------------------------------------

void write_class(xml::Element& parent, const Class& c) {
    xml::Element& e = parent.add_child("packagedElement");
    e.set_attribute("xmi:type", "uml:Class");
    e.set_attribute("xmi:id", class_id(c));
    e.set_attribute("name", c.name());
    e.set_attribute("isActive", c.is_active() ? "true" : "false");
    for (const Operation* op : c.operations()) {
        xml::Element& oe = e.add_child("ownedOperation");
        oe.set_attribute("xmi:id", op_id(*op));
        oe.set_attribute("name", op->name());
        for (const Parameter& p : op->parameters()) {
            xml::Element& pe = oe.add_child("ownedParameter");
            pe.set_attribute("name", p.name);
            pe.set_attribute("type", p.type);
            pe.set_attribute("direction", std::string(to_string(p.direction)));
        }
        if (!op->body().empty()) {
            xml::Element& be = oe.add_child("ownedComment");
            be.set_attribute("annotatedElement", op_id(*op));
            be.add_text(op->body());
        }
    }
}

void write_object(xml::Element& parent, const ObjectInstance& o) {
    xml::Element& e = parent.add_child("packagedElement");
    e.set_attribute("xmi:type", "uml:InstanceSpecification");
    e.set_attribute("xmi:id", object_id(o));
    e.set_attribute("name", o.name());
    if (o.classifier()) e.set_attribute("classifier", class_id(*o.classifier()));
}

void write_interaction(xml::Element& parent, const SequenceDiagram& d) {
    xml::Element& e = parent.add_child("packagedElement");
    e.set_attribute("xmi:type", "uml:Interaction");
    e.set_attribute("xmi:id", interaction_id(d));
    e.set_attribute("name", d.name());
    for (const auto& l : d.lifelines()) {
        xml::Element& le = e.add_child("lifeline");
        le.set_attribute("xmi:id", lifeline_id(d, *l));
        le.set_attribute("represents", object_id(*l->represents()));
    }
    std::size_t index = 0;
    for (const Message* m : d.messages()) {
        xml::Element& me = e.add_child("message");
        me.set_attribute("xmi:id", "msg." + d.name() + "." + std::to_string(index++));
        me.set_attribute("name", m->operation_name());
        me.set_attribute("sendLifeline", lifeline_id(d, *m->from()));
        me.set_attribute("receiveLifeline", lifeline_id(d, *m->to()));
        if (!m->result_name().empty())
            me.set_attribute("result", m->result_name());
        me.set_attribute("dataSize", std::to_string(m->data_size()));
        for (const MessageArgument& a : m->arguments()) {
            xml::Element& ae = me.add_child("argument");
            ae.set_attribute("name", a.name);
        }
    }
}

void write_deployment(xml::Element& parent, const DeploymentDiagram& dd) {
    for (const NodeInstance* n : dd.nodes()) {
        xml::Element& e = parent.add_child("packagedElement");
        e.set_attribute("xmi:type", "uml:Node");
        e.set_attribute("xmi:id", node_id(*n));
        e.set_attribute("name", n->name());
    }
    for (const auto& bus : dd.buses()) {
        xml::Element& e = parent.add_child("packagedElement");
        e.set_attribute("xmi:type", "uml:CommunicationPath");
        e.set_attribute("xmi:id", "bus." + bus->name());
        e.set_attribute("name", bus->name());
        for (const NodeInstance* n : bus->nodes()) {
            xml::Element& ee = e.add_child("end");
            ee.set_attribute("node", node_id(*n));
        }
    }
    std::size_t index = 0;
    for (const Deployment& dep : dd.deployments()) {
        xml::Element& e = parent.add_child("packagedElement");
        e.set_attribute("xmi:type", "uml:Deployment");
        e.set_attribute("xmi:id", "dep." + std::to_string(index++));
        e.set_attribute("deployedArtifact", object_id(*dep.artifact));
        e.set_attribute("location", node_id(*dep.node));
    }
}

void write_state(xml::Element& parent, const StateMachine& m, const State& s) {
    xml::Element& e = parent.add_child("subvertex");
    e.set_attribute("xmi:type", "uml:State");
    e.set_attribute("xmi:id", state_id(m, s));
    e.set_attribute("name", s.name());
    if (!s.entry_action().empty()) e.set_attribute("entry", s.entry_action());
    if (!s.exit_action().empty()) e.set_attribute("exit", s.exit_action());
    if (s.initial_substate())
        e.set_attribute("initial", state_id(m, *s.initial_substate()));
    for (const auto& sub : s.substates()) write_state(e, m, *sub);
}

void write_state_machine(xml::Element& parent, const StateMachine& m) {
    xml::Element& e = parent.add_child("packagedElement");
    e.set_attribute("xmi:type", "uml:StateMachine");
    e.set_attribute("xmi:id", sm_id(m));
    e.set_attribute("name", m.name());
    if (m.initial_state())
        e.set_attribute("initial", state_id(m, *m.initial_state()));
    for (const State* s : m.states()) write_state(e, m, *s);
    std::size_t index = 0;
    for (const Transition* t : m.transitions()) {
        xml::Element& te = e.add_child("transition");
        te.set_attribute("xmi:id", "tr." + m.name() + "." + std::to_string(index++));
        te.set_attribute("source", state_id(m, *t->source()));
        te.set_attribute("target", state_id(m, *t->target()));
        if (!t->trigger().empty()) te.set_attribute("trigger", t->trigger());
        if (!t->guard().empty()) te.set_attribute("guard", t->guard());
        if (!t->effect().empty()) te.set_attribute("effect", t->effect());
    }
}

// --- reader helpers -----------------------------------------------------------

const std::string& required_attr(const xml::Element& e, std::string_view name) {
    const std::string* v = e.find_attribute(name);
    if (!v)
        throw std::runtime_error("XMI element <" + e.name() +
                                 "> missing required attribute '" +
                                 std::string(name) + "'");
    return *v;
}

}  // namespace

namespace {

void write_activity(xml::Element& parent, const Activity& activity) {
    xml::Element& e = parent.add_child("packagedElement");
    e.set_attribute("xmi:type", "uml:Activity");
    e.set_attribute("xmi:id", "act." + activity.name());
    e.set_attribute("name", activity.name());
    e.set_attribute("performer", object_id(*activity.performer()));
    std::size_t index = 0;
    for (const CallAction* action : activity.actions()) {
        xml::Element& n = e.add_child("node");
        n.set_attribute("xmi:type", "uml:CallOperationAction");
        n.set_attribute("xmi:id",
                        "act." + activity.name() + ".n" + std::to_string(index++));
        n.set_attribute("operation", action->operation());
        n.set_attribute("target", object_id(*action->target()));
        n.set_attribute("dataSize", std::to_string(action->data_size()));
        for (const std::string& var : action->inputs()) {
            xml::Element& pin = n.add_child("pin");
            pin.set_attribute("direction", "in");
            pin.set_attribute("name", var);
        }
        if (!action->output().empty()) {
            xml::Element& pin = n.add_child("pin");
            pin.set_attribute("direction", "out");
            pin.set_attribute("name", action->output());
        }
    }
}

}  // namespace

xml::Document write_xmi(const Model& model, const ActivityRegistry& activities) {
    xml::Document doc = write_xmi(model);
    xml::Element* m = doc.root().first_child("uml:Model");
    for (const Activity* a : activities.activities()) write_activity(*m, *a);
    return doc;
}

std::string to_xmi_string(const Model& model, const ActivityRegistry& activities) {
    return xml::write(write_xmi(model, activities));
}

XmiBundle read_xmi_bundle(const xml::Document& doc) {
    XmiBundle bundle{read_xmi(doc), {}};
    const xml::Element* me = doc.root().first_child("uml:Model");
    for (const xml::Element* e : me->children_named("packagedElement")) {
        if (e->attribute_or("xmi:type", "") != "uml:Activity") continue;
        std::string performer_id = required_attr(*e, "performer");
        // Ids are deterministic ("obj.<name>"); resolve by stripping.
        if (performer_id.rfind("obj.", 0) != 0)
            throw std::runtime_error("malformed activity performer id: " +
                                     performer_id);
        ObjectInstance* performer =
            bundle.model.find_object(performer_id.substr(4));
        if (!performer)
            throw std::runtime_error("activity performer not found: " +
                                     performer_id);
        Activity& activity =
            bundle.activities.add(required_attr(*e, "name"), *performer);
        for (const xml::Element* n : e->children_named("node")) {
            std::string target_id = required_attr(*n, "target");
            if (target_id.rfind("obj.", 0) != 0)
                throw std::runtime_error("malformed action target id: " +
                                         target_id);
            ObjectInstance* target = bundle.model.find_object(target_id.substr(4));
            if (!target)
                throw std::runtime_error("action target not found: " + target_id);
            CallAction& action =
                activity.add_call(required_attr(*n, "operation"), *target);
            std::string ds = n->attribute_or("dataSize", "1");
            try {
                action.data(std::stod(ds));
            } catch (const std::exception&) {
                throw std::runtime_error("action '" + action.operation() +
                                         "' of activity '" + activity.name() +
                                         "' has non-numeric dataSize '" + ds + "'");
            }
            for (const xml::Element* pin : n->children_named("pin")) {
                if (pin->attribute_or("direction", "in") == "in")
                    action.pin_in(required_attr(*pin, "name"));
                else
                    action.pin_out(required_attr(*pin, "name"));
            }
        }
    }
    return bundle;
}

XmiBundle from_xmi_string_bundle(const std::string& text) {
    return read_xmi_bundle(xml::parse(text));
}

xml::Document write_xmi(const Model& model) {
    xml::Document doc("xmi:XMI");
    xml::Element& root = doc.root();
    root.set_attribute("xmi:version", "2.1");
    root.set_attribute("xmlns:xmi", kXmiNs);
    root.set_attribute("xmlns:uml", kUmlNs);
    root.set_attribute("xmlns:SPT", kSptNs);
    root.set_attribute("xmlns:uhcg", kUhcgNs);

    xml::Element& m = root.add_child("uml:Model");
    m.set_attribute("xmi:id", "model." + model.name());
    m.set_attribute("name", model.name());

    for (const Class* c : model.classes()) write_class(m, *c);
    for (const ObjectInstance* o : model.objects()) write_object(m, *o);
    for (const SequenceDiagram* d : model.sequence_diagrams())
        write_interaction(m, *d);
    if (const DeploymentDiagram* dd = model.deployment_or_null())
        write_deployment(m, *dd);
    for (const StateMachine* sm : model.state_machines())
        write_state_machine(m, *sm);

    // Profile applications: one element per stereotype application, keyed
    // by the base element id, in the Eclipse "stereotype block" style.
    std::size_t index = 0;
    for (const ObjectInstance* o : model.objects()) {
        for (Stereotype s : o->stereotypes()) {
            std::string ns = (s == Stereotype::IO) ? "uhcg:" : "SPT:";
            xml::Element& e = root.add_child(ns + std::string(to_string(s)));
            e.set_attribute("xmi:id", "stereo." + std::to_string(index++));
            e.set_attribute("base_InstanceSpecification", object_id(*o));
        }
    }
    if (const DeploymentDiagram* dd = model.deployment_or_null()) {
        for (const NodeInstance* n : dd->nodes()) {
            for (Stereotype s : n->stereotypes()) {
                std::string ns = (s == Stereotype::IO) ? "uhcg:" : "SPT:";
                xml::Element& e = root.add_child(ns + std::string(to_string(s)));
                e.set_attribute("xmi:id", "stereo." + std::to_string(index++));
                e.set_attribute("base_Node", node_id(*n));
            }
        }
    }
    return doc;
}

std::string to_xmi_string(const Model& model) { return xml::write(write_xmi(model)); }

void save_xmi(const Model& model, const std::string& path) {
    xml::write_file(write_xmi(model), path);
}

namespace {

/// Recovering reader context: resolves attributes and references, reporting
/// a diagnostic (with the element's source position) instead of throwing.
/// Callers test the returned pointer and skip the element on nullptr.
struct Reader {
    diag::DiagnosticEngine& engine;
    std::string file;
    std::set<std::string> ids;  // every xmi:id indexed so far

    diag::SourceLocation loc(const xml::Element& e) const {
        return {file, e.source_line(), e.source_column()};
    }

    const std::string* attr(const xml::Element& e, std::string_view name) {
        const std::string* v = e.find_attribute(name);
        if (!v)
            engine.error(diag::codes::kXmiMissingAttribute,
                         "XMI element <" + e.name() +
                             "> missing required attribute '" + std::string(name) +
                             "'",
                         loc(e));
        return v;
    }

    /// Reads an xmi:id, reporting duplicates (last definition wins).
    const std::string* id_attr(const xml::Element& e) {
        const std::string* v = attr(e, "xmi:id");
        if (v && !ids.insert(*v).second)
            engine.error(diag::codes::kXmiDuplicateId,
                         "duplicate xmi:id '" + *v + "' on <" + e.name() + ">",
                         loc(e));
        return v;
    }

    double number_or(const xml::Element& e, std::string_view name,
                     double fallback) {
        const std::string* v = e.find_attribute(name);
        if (!v) return fallback;
        try {
            std::size_t used = 0;
            double parsed = std::stod(*v, &used);
            if (used != v->size()) throw std::invalid_argument(*v);
            return parsed;
        } catch (const std::exception&) {
            engine.error(diag::codes::kXmiBadValue,
                         "attribute '" + std::string(name) + "' on <" + e.name() +
                             "> is not a number (got '" + *v + "')",
                         loc(e));
            return fallback;
        }
    }

    template <typename Map>
    typename Map::mapped_type resolve(const Map& map, const std::string& ref,
                                      const xml::Element& e,
                                      std::string_view what) {
        auto it = map.find(ref);
        if (it != map.end()) return it->second;
        engine.error(diag::codes::kXmiDanglingReference,
                     std::string(what) + " reference '" + ref + "' on <" +
                         e.name() + "> does not resolve",
                     loc(e));
        return nullptr;
    }
};

}  // namespace

Model read_xmi(const xml::Document& doc, diag::DiagnosticEngine& engine,
               const std::string& file) {
    obs::ObsSpan span("uml.xmi-read");
    Reader rd{engine, file, {}};
    const xml::Element& root = doc.root();
    if (root.name() != "xmi:XMI") {
        engine.report(diag::Severity::Fatal, diag::codes::kXmiNotXmi,
                      "not an XMI document (root is <" + root.name() + ">)",
                      rd.loc(root));
        return Model("invalid");
    }
    const xml::Element* me = root.first_child("uml:Model");
    if (!me) {
        engine.report(diag::Severity::Fatal, diag::codes::kXmiNoModel,
                      "XMI document has no uml:Model", rd.loc(root));
        return Model("invalid");
    }

    static obs::Counter& models_read = obs::counter("uml.models_read");
    models_read.add(1);
    Model model(me->attribute_or("name", "unnamed"));
    std::map<std::string, Class*> classes_by_id;
    std::map<std::string, ObjectInstance*> objects_by_id;
    std::map<std::string, NodeInstance*> nodes_by_id;

    auto type_of = [](const xml::Element& e) { return e.attribute_or("xmi:type", ""); };

    // Pass 1: classes (operations resolve nothing external).
    for (const xml::Element* e : me->children_named("packagedElement")) {
        if (type_of(*e) != "uml:Class") continue;
        const std::string* name = rd.attr(*e, "name");
        const std::string* id = rd.id_attr(*e);
        if (!name || !id) continue;
        Class& c = model.add_class(*name);
        c.set_active(e->attribute_or("isActive", "false") == "true");
        classes_by_id[*id] = &c;
        for (const xml::Element* oe : e->children_named("ownedOperation")) {
            const std::string* op_name = rd.attr(*oe, "name");
            if (!op_name) continue;
            Operation& op = c.add_operation(*op_name);
            for (const xml::Element* pe : oe->children_named("ownedParameter")) {
                const std::string* p_name = rd.attr(*pe, "name");
                if (!p_name) continue;
                Parameter p;
                p.name = *p_name;
                p.type = pe->attribute_or("type", "double");
                auto dir = direction_from_string(pe->attribute_or("direction", "in"));
                if (!dir) {
                    engine.error(diag::codes::kXmiBadValue,
                                 "bad parameter direction '" +
                                     pe->attribute_or("direction", "") + "' on " +
                                     op.name() + "." + p.name,
                                 rd.loc(*pe));
                    continue;
                }
                p.direction = *dir;
                op.add_parameter(std::move(p));
            }
            if (const xml::Element* be = oe->first_child("ownedComment"))
                op.set_body(be->text_content());
        }
    }

    // Pass 2: instances and nodes.
    for (const xml::Element* e : me->children_named("packagedElement")) {
        std::string type = type_of(*e);
        if (type == "uml:InstanceSpecification") {
            Class* classifier = nullptr;
            if (const std::string* cid = e->find_attribute("classifier")) {
                classifier = rd.resolve(classes_by_id, *cid, *e, "classifier");
                if (!classifier) continue;
            }
            const std::string* name = rd.attr(*e, "name");
            const std::string* id = rd.id_attr(*e);
            if (!name || !id) continue;
            objects_by_id[*id] = &model.add_object(*name, classifier);
        } else if (type == "uml:Node") {
            const std::string* name = rd.attr(*e, "name");
            const std::string* id = rd.id_attr(*e);
            if (!name || !id) continue;
            nodes_by_id[*id] = &model.deployment().add_node(*name);
        }
    }

    // Pass 3: everything that cross-references instances/nodes.
    for (const xml::Element* e : me->children_named("packagedElement")) {
        std::string type = type_of(*e);
        if (type == "uml:CommunicationPath") {
            const std::string* name = rd.attr(*e, "name");
            if (!name) continue;
            Bus& bus = model.deployment().add_bus(*name);
            for (const xml::Element* ee : e->children_named("end")) {
                const std::string* node_ref = rd.attr(*ee, "node");
                if (!node_ref) continue;
                if (NodeInstance* n = rd.resolve(nodes_by_id, *node_ref, *ee, "bus end"))
                    bus.connect(*n);
            }
        } else if (type == "uml:Deployment") {
            const std::string* art = rd.attr(*e, "deployedArtifact");
            const std::string* locn = rd.attr(*e, "location");
            if (!art || !locn) continue;
            ObjectInstance* artifact =
                rd.resolve(objects_by_id, *art, *e, "deployment artifact");
            NodeInstance* node = rd.resolve(nodes_by_id, *locn, *e, "deployment node");
            if (artifact && node) model.deployment().deploy(*artifact, *node);
        } else if (type == "uml:Interaction") {
            const std::string* name = rd.attr(*e, "name");
            if (!name) continue;
            SequenceDiagram& d = model.add_sequence_diagram(*name);
            std::map<std::string, Lifeline*> lifelines_by_id;
            for (const xml::Element* le : e->children_named("lifeline")) {
                const std::string* rep = rd.attr(*le, "represents");
                const std::string* id = rd.id_attr(*le);
                if (!rep || !id) continue;
                ObjectInstance* obj =
                    rd.resolve(objects_by_id, *rep, *le, "lifeline represents");
                if (obj) lifelines_by_id[*id] = &d.add_lifeline(*obj);
            }
            for (const xml::Element* msg : e->children_named("message")) {
                const std::string* send = rd.attr(*msg, "sendLifeline");
                const std::string* recv = rd.attr(*msg, "receiveLifeline");
                const std::string* op = rd.attr(*msg, "name");
                if (!send || !recv || !op) continue;
                Lifeline* from = rd.resolve(lifelines_by_id, *send, *msg, "sender");
                Lifeline* to = rd.resolve(lifelines_by_id, *recv, *msg, "receiver");
                if (!from || !to) continue;
                // A message from a lifeline to itself would become a
                // self-referential channel — a communication the mapping
                // cannot realize (a FIFO needs distinct endpoints). Report
                // and drop it; the rest of the diagram still loads.
                if (from == to) {
                    rd.engine.error(
                        diag::codes::kXmiBadValue,
                        "message '" + *op + "' in interaction '" + *name +
                            "' sends and receives on the same lifeline — "
                            "self-referential channels are not realizable",
                        rd.loc(*msg));
                    continue;
                }
                Message& m = d.add_message(*from, *to, *op);
                if (const std::string* r = msg->find_attribute("result"))
                    m.set_result_name(*r);
                m.set_data_size(rd.number_or(*msg, "dataSize", m.data_size()));
                for (const xml::Element* ae : msg->children_named("argument"))
                    if (const std::string* an = rd.attr(*ae, "name"))
                        m.add_argument(*an);
            }
        } else if (type == "uml:StateMachine") {
            const std::string* name = rd.attr(*e, "name");
            if (!name) continue;
            StateMachine& sm = model.add_state_machine(*name);
            // Recursively read states, deferring `initial` resolution until
            // all states exist.
            std::vector<std::pair<State*, std::string>> pending_initial;
            std::string machine_initial = e->attribute_or("initial", "");
            std::map<std::string, State*> states_by_id;
            auto read_states = [&](const xml::Element& parent_elem, State* parent,
                                   auto&& self) -> void {
                for (const xml::Element* se : parent_elem.children_named("subvertex")) {
                    const std::string* s_name = rd.attr(*se, "name");
                    const std::string* s_id = rd.id_attr(*se);
                    if (!s_name || !s_id) continue;
                    State& s = parent ? parent->add_substate(*s_name)
                                      : sm.add_state(*s_name);
                    states_by_id[*s_id] = &s;
                    s.set_entry_action(se->attribute_or("entry", ""));
                    s.set_exit_action(se->attribute_or("exit", ""));
                    if (const std::string* init = se->find_attribute("initial"))
                        pending_initial.emplace_back(&s, *init);
                    self(*se, &s, self);
                }
            };
            read_states(*e, nullptr, read_states);
            for (auto& [state, init_id] : pending_initial) {
                if (State* init = rd.resolve(states_by_id, init_id, *e,
                                             "initial substate"))
                    state->set_initial_substate(*init);
            }
            if (!machine_initial.empty()) {
                if (State* init = rd.resolve(states_by_id, machine_initial, *e,
                                             "initial state"))
                    sm.set_initial_state(*init);
            }
            for (const xml::Element* te : e->children_named("transition")) {
                const std::string* src = rd.attr(*te, "source");
                const std::string* tgt = rd.attr(*te, "target");
                if (!src || !tgt) continue;
                State* source = rd.resolve(states_by_id, *src, *te, "transition source");
                State* target = rd.resolve(states_by_id, *tgt, *te, "transition target");
                if (!source || !target) continue;
                Transition& t = sm.add_transition(*source, *target);
                t.set_trigger(te->attribute_or("trigger", ""));
                t.set_guard(te->attribute_or("guard", ""));
                t.set_effect(te->attribute_or("effect", ""));
            }
        }
    }

    // Pass 4: stereotype applications (siblings of uml:Model).
    for (const xml::Element* e : root.child_elements()) {
        std::string name = e->name();
        std::size_t colon = name.find(':');
        if (colon == std::string::npos) continue;
        std::string prefix = name.substr(0, colon);
        if (prefix != "SPT" && prefix != "uhcg") continue;
        auto stereo = stereotype_from_string(name.substr(colon + 1));
        if (!stereo) {
            engine.error(diag::codes::kXmiUnknownStereotype,
                         "unknown stereotype application <" + name + ">",
                         rd.loc(*e));
            continue;
        }
        if (const std::string* base = e->find_attribute("base_InstanceSpecification")) {
            if (ObjectInstance* o =
                    rd.resolve(objects_by_id, *base, *e, "stereotype base object"))
                o->add_stereotype(*stereo);
        } else if (const std::string* nb = e->find_attribute("base_Node")) {
            if (NodeInstance* n =
                    rd.resolve(nodes_by_id, *nb, *e, "stereotype base node"))
                n->add_stereotype(*stereo);
        }
    }

    return model;
}

Model read_xmi(const xml::Document& doc) {
    diag::DiagnosticEngine engine;
    Model model = read_xmi(doc, engine);
    if (engine.has_errors())
        throw std::runtime_error("invalid XMI:\n" + engine.render_text());
    return model;
}

Model from_xmi_string(const std::string& text, diag::DiagnosticEngine& engine,
                      const std::string& file) {
    obs::ObsSpan span("uml.xmi-load");
    try {
        xml::Document doc = xml::parse(text);
        return read_xmi(doc, engine, file);
    } catch (const xml::ParseError& e) {
        engine.report(diag::Severity::Fatal, diag::codes::kXmlParse, e.detail(),
                      {file, e.line(), e.column()});
        return Model("invalid");
    }
}

Model load_xmi(const std::string& path, diag::DiagnosticEngine& engine) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        engine.report(diag::Severity::Fatal, diag::codes::kXmlUnreadable,
                      "cannot open XMI file: " + path, {path, 0, 0});
        return Model("invalid");
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    engine.register_source(path, buf.str());
    return from_xmi_string(buf.str(), engine, path);
}

Model from_xmi_string(const std::string& text) { return read_xmi(xml::parse(text)); }

Model load_xmi(const std::string& path) { return read_xmi(xml::parse_file(path)); }

}  // namespace uhcg::uml
