#include "uml/xmi.hpp"

#include <map>
#include <stdexcept>

#include "xml/parser.hpp"
#include "xml/writer.hpp"

namespace uhcg::uml {
namespace {

constexpr const char* kXmiNs = "http://schema.omg.org/spec/XMI/2.1";
constexpr const char* kUmlNs = "http://www.eclipse.org/uml2/2.1.0/UML";
constexpr const char* kSptNs = "http://www.omg.org/profiles/SPT";
constexpr const char* kUhcgNs = "http://uhcg.org/profiles/uhcg";

// --- deterministic ids ------------------------------------------------------

std::string class_id(const Class& c) { return "class." + c.name(); }
std::string op_id(const Operation& op) {
    return "op." + op.owner()->name() + "." + op.name();
}
std::string object_id(const ObjectInstance& o) { return "obj." + o.name(); }
std::string node_id(const NodeInstance& n) { return "node." + n.name(); }
std::string interaction_id(const SequenceDiagram& d) { return "ia." + d.name(); }
std::string lifeline_id(const SequenceDiagram& d, const Lifeline& l) {
    return "ll." + d.name() + "." + l.represents()->name();
}
std::string sm_id(const StateMachine& m) { return "sm." + m.name(); }
std::string state_id(const StateMachine& m, const State& s) {
    return "state." + m.name() + "." + s.name();
}

// --- writer -----------------------------------------------------------------

void write_class(xml::Element& parent, const Class& c) {
    xml::Element& e = parent.add_child("packagedElement");
    e.set_attribute("xmi:type", "uml:Class");
    e.set_attribute("xmi:id", class_id(c));
    e.set_attribute("name", c.name());
    e.set_attribute("isActive", c.is_active() ? "true" : "false");
    for (const Operation* op : c.operations()) {
        xml::Element& oe = e.add_child("ownedOperation");
        oe.set_attribute("xmi:id", op_id(*op));
        oe.set_attribute("name", op->name());
        for (const Parameter& p : op->parameters()) {
            xml::Element& pe = oe.add_child("ownedParameter");
            pe.set_attribute("name", p.name);
            pe.set_attribute("type", p.type);
            pe.set_attribute("direction", std::string(to_string(p.direction)));
        }
        if (!op->body().empty()) {
            xml::Element& be = oe.add_child("ownedComment");
            be.set_attribute("annotatedElement", op_id(*op));
            be.add_text(op->body());
        }
    }
}

void write_object(xml::Element& parent, const ObjectInstance& o) {
    xml::Element& e = parent.add_child("packagedElement");
    e.set_attribute("xmi:type", "uml:InstanceSpecification");
    e.set_attribute("xmi:id", object_id(o));
    e.set_attribute("name", o.name());
    if (o.classifier()) e.set_attribute("classifier", class_id(*o.classifier()));
}

void write_interaction(xml::Element& parent, const SequenceDiagram& d) {
    xml::Element& e = parent.add_child("packagedElement");
    e.set_attribute("xmi:type", "uml:Interaction");
    e.set_attribute("xmi:id", interaction_id(d));
    e.set_attribute("name", d.name());
    for (const auto& l : d.lifelines()) {
        xml::Element& le = e.add_child("lifeline");
        le.set_attribute("xmi:id", lifeline_id(d, *l));
        le.set_attribute("represents", object_id(*l->represents()));
    }
    std::size_t index = 0;
    for (const Message* m : d.messages()) {
        xml::Element& me = e.add_child("message");
        me.set_attribute("xmi:id", "msg." + d.name() + "." + std::to_string(index++));
        me.set_attribute("name", m->operation_name());
        me.set_attribute("sendLifeline", lifeline_id(d, *m->from()));
        me.set_attribute("receiveLifeline", lifeline_id(d, *m->to()));
        if (!m->result_name().empty())
            me.set_attribute("result", m->result_name());
        me.set_attribute("dataSize", std::to_string(m->data_size()));
        for (const MessageArgument& a : m->arguments()) {
            xml::Element& ae = me.add_child("argument");
            ae.set_attribute("name", a.name);
        }
    }
}

void write_deployment(xml::Element& parent, const DeploymentDiagram& dd) {
    for (const NodeInstance* n : dd.nodes()) {
        xml::Element& e = parent.add_child("packagedElement");
        e.set_attribute("xmi:type", "uml:Node");
        e.set_attribute("xmi:id", node_id(*n));
        e.set_attribute("name", n->name());
    }
    for (const auto& bus : dd.buses()) {
        xml::Element& e = parent.add_child("packagedElement");
        e.set_attribute("xmi:type", "uml:CommunicationPath");
        e.set_attribute("xmi:id", "bus." + bus->name());
        e.set_attribute("name", bus->name());
        for (const NodeInstance* n : bus->nodes()) {
            xml::Element& ee = e.add_child("end");
            ee.set_attribute("node", node_id(*n));
        }
    }
    std::size_t index = 0;
    for (const Deployment& dep : dd.deployments()) {
        xml::Element& e = parent.add_child("packagedElement");
        e.set_attribute("xmi:type", "uml:Deployment");
        e.set_attribute("xmi:id", "dep." + std::to_string(index++));
        e.set_attribute("deployedArtifact", object_id(*dep.artifact));
        e.set_attribute("location", node_id(*dep.node));
    }
}

void write_state(xml::Element& parent, const StateMachine& m, const State& s) {
    xml::Element& e = parent.add_child("subvertex");
    e.set_attribute("xmi:type", "uml:State");
    e.set_attribute("xmi:id", state_id(m, s));
    e.set_attribute("name", s.name());
    if (!s.entry_action().empty()) e.set_attribute("entry", s.entry_action());
    if (!s.exit_action().empty()) e.set_attribute("exit", s.exit_action());
    if (s.initial_substate())
        e.set_attribute("initial", state_id(m, *s.initial_substate()));
    for (const auto& sub : s.substates()) write_state(e, m, *sub);
}

void write_state_machine(xml::Element& parent, const StateMachine& m) {
    xml::Element& e = parent.add_child("packagedElement");
    e.set_attribute("xmi:type", "uml:StateMachine");
    e.set_attribute("xmi:id", sm_id(m));
    e.set_attribute("name", m.name());
    if (m.initial_state())
        e.set_attribute("initial", state_id(m, *m.initial_state()));
    for (const State* s : m.states()) write_state(e, m, *s);
    std::size_t index = 0;
    for (const Transition* t : m.transitions()) {
        xml::Element& te = e.add_child("transition");
        te.set_attribute("xmi:id", "tr." + m.name() + "." + std::to_string(index++));
        te.set_attribute("source", state_id(m, *t->source()));
        te.set_attribute("target", state_id(m, *t->target()));
        if (!t->trigger().empty()) te.set_attribute("trigger", t->trigger());
        if (!t->guard().empty()) te.set_attribute("guard", t->guard());
        if (!t->effect().empty()) te.set_attribute("effect", t->effect());
    }
}

// --- reader helpers -----------------------------------------------------------

const std::string& required_attr(const xml::Element& e, std::string_view name) {
    const std::string* v = e.find_attribute(name);
    if (!v)
        throw std::runtime_error("XMI element <" + e.name() +
                                 "> missing required attribute '" +
                                 std::string(name) + "'");
    return *v;
}

}  // namespace

namespace {

void write_activity(xml::Element& parent, const Activity& activity) {
    xml::Element& e = parent.add_child("packagedElement");
    e.set_attribute("xmi:type", "uml:Activity");
    e.set_attribute("xmi:id", "act." + activity.name());
    e.set_attribute("name", activity.name());
    e.set_attribute("performer", object_id(*activity.performer()));
    std::size_t index = 0;
    for (const CallAction* action : activity.actions()) {
        xml::Element& n = e.add_child("node");
        n.set_attribute("xmi:type", "uml:CallOperationAction");
        n.set_attribute("xmi:id",
                        "act." + activity.name() + ".n" + std::to_string(index++));
        n.set_attribute("operation", action->operation());
        n.set_attribute("target", object_id(*action->target()));
        n.set_attribute("dataSize", std::to_string(action->data_size()));
        for (const std::string& var : action->inputs()) {
            xml::Element& pin = n.add_child("pin");
            pin.set_attribute("direction", "in");
            pin.set_attribute("name", var);
        }
        if (!action->output().empty()) {
            xml::Element& pin = n.add_child("pin");
            pin.set_attribute("direction", "out");
            pin.set_attribute("name", action->output());
        }
    }
}

}  // namespace

xml::Document write_xmi(const Model& model, const ActivityRegistry& activities) {
    xml::Document doc = write_xmi(model);
    xml::Element* m = doc.root().first_child("uml:Model");
    for (const Activity* a : activities.activities()) write_activity(*m, *a);
    return doc;
}

std::string to_xmi_string(const Model& model, const ActivityRegistry& activities) {
    return xml::write(write_xmi(model, activities));
}

XmiBundle read_xmi_bundle(const xml::Document& doc) {
    XmiBundle bundle{read_xmi(doc), {}};
    const xml::Element* me = doc.root().first_child("uml:Model");
    for (const xml::Element* e : me->children_named("packagedElement")) {
        if (e->attribute_or("xmi:type", "") != "uml:Activity") continue;
        std::string performer_id = required_attr(*e, "performer");
        // Ids are deterministic ("obj.<name>"); resolve by stripping.
        if (performer_id.rfind("obj.", 0) != 0)
            throw std::runtime_error("malformed activity performer id: " +
                                     performer_id);
        ObjectInstance* performer =
            bundle.model.find_object(performer_id.substr(4));
        if (!performer)
            throw std::runtime_error("activity performer not found: " +
                                     performer_id);
        Activity& activity =
            bundle.activities.add(required_attr(*e, "name"), *performer);
        for (const xml::Element* n : e->children_named("node")) {
            std::string target_id = required_attr(*n, "target");
            if (target_id.rfind("obj.", 0) != 0)
                throw std::runtime_error("malformed action target id: " +
                                         target_id);
            ObjectInstance* target = bundle.model.find_object(target_id.substr(4));
            if (!target)
                throw std::runtime_error("action target not found: " + target_id);
            CallAction& action =
                activity.add_call(required_attr(*n, "operation"), *target);
            action.data(std::stod(n->attribute_or("dataSize", "1")));
            for (const xml::Element* pin : n->children_named("pin")) {
                if (pin->attribute_or("direction", "in") == "in")
                    action.pin_in(required_attr(*pin, "name"));
                else
                    action.pin_out(required_attr(*pin, "name"));
            }
        }
    }
    return bundle;
}

XmiBundle from_xmi_string_bundle(const std::string& text) {
    return read_xmi_bundle(xml::parse(text));
}

xml::Document write_xmi(const Model& model) {
    xml::Document doc("xmi:XMI");
    xml::Element& root = doc.root();
    root.set_attribute("xmi:version", "2.1");
    root.set_attribute("xmlns:xmi", kXmiNs);
    root.set_attribute("xmlns:uml", kUmlNs);
    root.set_attribute("xmlns:SPT", kSptNs);
    root.set_attribute("xmlns:uhcg", kUhcgNs);

    xml::Element& m = root.add_child("uml:Model");
    m.set_attribute("xmi:id", "model." + model.name());
    m.set_attribute("name", model.name());

    for (const Class* c : model.classes()) write_class(m, *c);
    for (const ObjectInstance* o : model.objects()) write_object(m, *o);
    for (const SequenceDiagram* d : model.sequence_diagrams())
        write_interaction(m, *d);
    if (const DeploymentDiagram* dd = model.deployment_or_null())
        write_deployment(m, *dd);
    for (const StateMachine* sm : model.state_machines())
        write_state_machine(m, *sm);

    // Profile applications: one element per stereotype application, keyed
    // by the base element id, in the Eclipse "stereotype block" style.
    std::size_t index = 0;
    for (const ObjectInstance* o : model.objects()) {
        for (Stereotype s : o->stereotypes()) {
            std::string ns = (s == Stereotype::IO) ? "uhcg:" : "SPT:";
            xml::Element& e = root.add_child(ns + std::string(to_string(s)));
            e.set_attribute("xmi:id", "stereo." + std::to_string(index++));
            e.set_attribute("base_InstanceSpecification", object_id(*o));
        }
    }
    if (const DeploymentDiagram* dd = model.deployment_or_null()) {
        for (const NodeInstance* n : dd->nodes()) {
            for (Stereotype s : n->stereotypes()) {
                std::string ns = (s == Stereotype::IO) ? "uhcg:" : "SPT:";
                xml::Element& e = root.add_child(ns + std::string(to_string(s)));
                e.set_attribute("xmi:id", "stereo." + std::to_string(index++));
                e.set_attribute("base_Node", node_id(*n));
            }
        }
    }
    return doc;
}

std::string to_xmi_string(const Model& model) { return xml::write(write_xmi(model)); }

void save_xmi(const Model& model, const std::string& path) {
    xml::write_file(write_xmi(model), path);
}

Model read_xmi(const xml::Document& doc) {
    const xml::Element& root = doc.root();
    if (root.name() != "xmi:XMI")
        throw std::runtime_error("not an XMI document (root is <" + root.name() +
                                 ">)");
    const xml::Element* me = root.first_child("uml:Model");
    if (!me) throw std::runtime_error("XMI document has no uml:Model");

    Model model(me->attribute_or("name", "unnamed"));
    std::map<std::string, Class*> classes_by_id;
    std::map<std::string, ObjectInstance*> objects_by_id;
    std::map<std::string, NodeInstance*> nodes_by_id;

    auto type_of = [](const xml::Element& e) { return e.attribute_or("xmi:type", ""); };

    // Pass 1: classes (operations resolve nothing external).
    for (const xml::Element* e : me->children_named("packagedElement")) {
        if (type_of(*e) != "uml:Class") continue;
        Class& c = model.add_class(required_attr(*e, "name"));
        c.set_active(e->attribute_or("isActive", "false") == "true");
        classes_by_id[required_attr(*e, "xmi:id")] = &c;
        for (const xml::Element* oe : e->children_named("ownedOperation")) {
            Operation& op = c.add_operation(required_attr(*oe, "name"));
            for (const xml::Element* pe : oe->children_named("ownedParameter")) {
                Parameter p;
                p.name = required_attr(*pe, "name");
                p.type = pe->attribute_or("type", "double");
                auto dir = direction_from_string(pe->attribute_or("direction", "in"));
                if (!dir)
                    throw std::runtime_error("bad parameter direction on " +
                                             op.name() + "." + p.name);
                p.direction = *dir;
                op.add_parameter(std::move(p));
            }
            if (const xml::Element* be = oe->first_child("ownedComment"))
                op.set_body(be->text_content());
        }
    }

    // Pass 2: instances and nodes.
    for (const xml::Element* e : me->children_named("packagedElement")) {
        std::string type = type_of(*e);
        if (type == "uml:InstanceSpecification") {
            Class* classifier = nullptr;
            if (const std::string* cid = e->find_attribute("classifier")) {
                auto it = classes_by_id.find(*cid);
                if (it == classes_by_id.end())
                    throw std::runtime_error("dangling classifier reference: " + *cid);
                classifier = it->second;
            }
            ObjectInstance& o = model.add_object(required_attr(*e, "name"), classifier);
            objects_by_id[required_attr(*e, "xmi:id")] = &o;
        } else if (type == "uml:Node") {
            NodeInstance& n = model.deployment().add_node(required_attr(*e, "name"));
            nodes_by_id[required_attr(*e, "xmi:id")] = &n;
        }
    }

    // Pass 3: everything that cross-references instances/nodes.
    for (const xml::Element* e : me->children_named("packagedElement")) {
        std::string type = type_of(*e);
        if (type == "uml:CommunicationPath") {
            Bus& bus = model.deployment().add_bus(required_attr(*e, "name"));
            for (const xml::Element* ee : e->children_named("end")) {
                auto it = nodes_by_id.find(required_attr(*ee, "node"));
                if (it == nodes_by_id.end())
                    throw std::runtime_error("bus end references unknown node");
                bus.connect(*it->second);
            }
        } else if (type == "uml:Deployment") {
            auto ai = objects_by_id.find(required_attr(*e, "deployedArtifact"));
            auto ni = nodes_by_id.find(required_attr(*e, "location"));
            if (ai == objects_by_id.end() || ni == nodes_by_id.end())
                throw std::runtime_error("deployment references unknown element");
            model.deployment().deploy(*ai->second, *ni->second);
        } else if (type == "uml:Interaction") {
            SequenceDiagram& d = model.add_sequence_diagram(required_attr(*e, "name"));
            std::map<std::string, Lifeline*> lifelines_by_id;
            for (const xml::Element* le : e->children_named("lifeline")) {
                auto oi = objects_by_id.find(required_attr(*le, "represents"));
                if (oi == objects_by_id.end())
                    throw std::runtime_error("lifeline represents unknown object");
                lifelines_by_id[required_attr(*le, "xmi:id")] =
                    &d.add_lifeline(*oi->second);
            }
            for (const xml::Element* msg : e->children_named("message")) {
                auto fi = lifelines_by_id.find(required_attr(*msg, "sendLifeline"));
                auto ti = lifelines_by_id.find(required_attr(*msg, "receiveLifeline"));
                if (fi == lifelines_by_id.end() || ti == lifelines_by_id.end())
                    throw std::runtime_error("message references unknown lifeline");
                Message& m = d.add_message(*fi->second, *ti->second,
                                           required_attr(*msg, "name"));
                if (const std::string* r = msg->find_attribute("result"))
                    m.set_result_name(*r);
                if (const std::string* ds = msg->find_attribute("dataSize"))
                    m.set_data_size(std::stod(*ds));
                for (const xml::Element* ae : msg->children_named("argument"))
                    m.add_argument(required_attr(*ae, "name"));
            }
        } else if (type == "uml:StateMachine") {
            StateMachine& sm = model.add_state_machine(required_attr(*e, "name"));
            // Recursively read states, deferring `initial` resolution until
            // all states exist.
            std::vector<std::pair<State*, std::string>> pending_initial;
            std::string machine_initial = e->attribute_or("initial", "");
            std::map<std::string, State*> states_by_id;
            auto read_states = [&](const xml::Element& parent_elem, State* parent,
                                   auto&& self) -> void {
                for (const xml::Element* se : parent_elem.children_named("subvertex")) {
                    State& s = parent ? parent->add_substate(required_attr(*se, "name"))
                                      : sm.add_state(required_attr(*se, "name"));
                    states_by_id[required_attr(*se, "xmi:id")] = &s;
                    s.set_entry_action(se->attribute_or("entry", ""));
                    s.set_exit_action(se->attribute_or("exit", ""));
                    if (const std::string* init = se->find_attribute("initial"))
                        pending_initial.emplace_back(&s, *init);
                    self(*se, &s, self);
                }
            };
            read_states(*e, nullptr, read_states);
            for (auto& [state, init_id] : pending_initial) {
                auto it = states_by_id.find(init_id);
                if (it == states_by_id.end())
                    throw std::runtime_error("unknown initial substate id: " + init_id);
                state->set_initial_substate(*it->second);
            }
            if (!machine_initial.empty()) {
                auto it = states_by_id.find(machine_initial);
                if (it == states_by_id.end())
                    throw std::runtime_error("unknown initial state id: " +
                                             machine_initial);
                sm.set_initial_state(*it->second);
            }
            for (const xml::Element* te : e->children_named("transition")) {
                auto si = states_by_id.find(required_attr(*te, "source"));
                auto ti = states_by_id.find(required_attr(*te, "target"));
                if (si == states_by_id.end() || ti == states_by_id.end())
                    throw std::runtime_error("transition references unknown state");
                Transition& t = sm.add_transition(*si->second, *ti->second);
                t.set_trigger(te->attribute_or("trigger", ""));
                t.set_guard(te->attribute_or("guard", ""));
                t.set_effect(te->attribute_or("effect", ""));
            }
        }
    }

    // Pass 4: stereotype applications (siblings of uml:Model).
    for (const xml::Element* e : root.child_elements()) {
        std::string name = e->name();
        std::size_t colon = name.find(':');
        if (colon == std::string::npos) continue;
        std::string prefix = name.substr(0, colon);
        if (prefix != "SPT" && prefix != "uhcg") continue;
        auto stereo = stereotype_from_string(name.substr(colon + 1));
        if (!stereo)
            throw std::runtime_error("unknown stereotype application <" + name + ">");
        if (const std::string* base = e->find_attribute("base_InstanceSpecification")) {
            auto it = objects_by_id.find(*base);
            if (it == objects_by_id.end())
                throw std::runtime_error("stereotype applied to unknown object: " +
                                         *base);
            it->second->add_stereotype(*stereo);
        } else if (const std::string* nb = e->find_attribute("base_Node")) {
            auto it = nodes_by_id.find(*nb);
            if (it == nodes_by_id.end())
                throw std::runtime_error("stereotype applied to unknown node: " + *nb);
            it->second->add_stereotype(*stereo);
        }
    }

    return model;
}

Model from_xmi_string(const std::string& text) { return read_xmi(xml::parse(text)); }

Model load_xmi(const std::string& path) { return read_xmi(xml::parse_file(path)); }

}  // namespace uhcg::uml
