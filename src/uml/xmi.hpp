// xmi.hpp — XMI 2.x interchange for uml::Model.
//
// MagicDraw and the EMF/UML2 tools the paper's prototype ingested exchange
// models as XMI. We emit/consume an Eclipse-UML2-style dialect:
//
//   <xmi:XMI xmi:version="2.1" ...>
//     <uml:Model name="...">
//       <packagedElement xmi:type="uml:Class" .../>
//       <packagedElement xmi:type="uml:InstanceSpecification" .../>
//       <packagedElement xmi:type="uml:Interaction" .../>
//       <packagedElement xmi:type="uml:Node" .../>
//       <packagedElement xmi:type="uml:Deployment" .../>
//       <packagedElement xmi:type="uml:StateMachine" .../>
//     </uml:Model>
//     <SPT:SASchedRes base_InstanceSpecification="..."/>   (profile block)
//     <SPT:SAengine base_Node="..."/>
//     <uhcg:IO base_InstanceSpecification="..."/>
//   </xmi:XMI>
//
// Element ids are deterministic functions of element names so that
// serialization is stable and diffs are meaningful.
#pragma once

#include <string>

#include "diag/diag.hpp"
#include "uml/activity.hpp"
#include "uml/model.hpp"
#include "xml/dom.hpp"

namespace uhcg::uml {

/// Serializes the model (including stereotype applications).
xml::Document write_xmi(const Model& model);
std::string to_xmi_string(const Model& model);
void save_xmi(const Model& model, const std::string& path);

/// Overloads carrying activity diagrams (uml:Activity packagedElements
/// with CallOperationAction nodes and pins).
xml::Document write_xmi(const Model& model, const ActivityRegistry& activities);
std::string to_xmi_string(const Model& model, const ActivityRegistry& activities);

/// A model plus the activities read with it.
struct XmiBundle {
    Model model;
    ActivityRegistry activities;
};
/// Like read_xmi, additionally reconstructing uml:Activity elements.
XmiBundle read_xmi_bundle(const xml::Document& doc);
XmiBundle from_xmi_string_bundle(const std::string& text);

/// Rebuilds a model from an XMI document; throws std::runtime_error on
/// structurally invalid input (unknown xmi:type, dangling idrefs, ...).
Model read_xmi(const xml::Document& doc);
Model from_xmi_string(const std::string& text);
Model load_xmi(const std::string& path);

/// Recovering reader: instead of throwing on the first structural problem,
/// records one diagnostic per malformed element (with the element's XML
/// line/column under `file`) and keeps reading everything else. Returns the
/// partial model; callers check `engine.has_errors()` before trusting it.
Model read_xmi(const xml::Document& doc, diag::DiagnosticEngine& engine,
               const std::string& file = {});

/// Recovering file loader: I/O and XML parse failures become diagnostics
/// too (an unreadable or unparsable file yields an empty model plus a
/// fatal diagnostic — it never throws).
Model load_xmi(const std::string& path, diag::DiagnosticEngine& engine);

/// Recovering in-memory variant of from_xmi_string.
Model from_xmi_string(const std::string& text, diag::DiagnosticEngine& engine,
                      const std::string& file = {});

}  // namespace uhcg::uml
