#include "uml/activity.hpp"

#include <stdexcept>

namespace uhcg::uml {

CallAction& CallAction::pin_in(std::string var) {
    inputs_.push_back(std::move(var));
    return *this;
}

CallAction& CallAction::pin_out(std::string var) {
    output_ = std::move(var);
    return *this;
}

CallAction& CallAction::data(double bytes) {
    data_size_ = bytes;
    return *this;
}

CallAction& Activity::add_call(std::string operation, ObjectInstance& target) {
    actions_.push_back(
        std::make_unique<CallAction>(std::move(operation), &target));
    return *actions_.back();
}

std::vector<const CallAction*> Activity::actions() const {
    std::vector<const CallAction*> out;
    for (const auto& a : actions_) out.push_back(a.get());
    return out;
}

std::vector<CallAction*> Activity::actions() {
    std::vector<CallAction*> out;
    for (const auto& a : actions_) out.push_back(a.get());
    return out;
}

Activity& ActivityRegistry::add(std::string name, ObjectInstance& performer) {
    if (!performer.is_thread())
        throw std::invalid_argument("activity performer '" + performer.name() +
                                    "' must be a <<SASchedRes>> thread");
    activities_.push_back(
        std::make_unique<Activity>(std::move(name), &performer));
    return *activities_.back();
}

std::vector<const Activity*> ActivityRegistry::activities() const {
    std::vector<const Activity*> out;
    for (const auto& a : activities_) out.push_back(a.get());
    return out;
}

std::vector<Activity*> ActivityRegistry::activities() {
    std::vector<Activity*> out;
    for (const auto& a : activities_) out.push_back(a.get());
    return out;
}

std::size_t lower_activities(Model& model, const ActivityRegistry& registry) {
    std::size_t count = 0;
    for (const Activity* activity : registry.activities()) {
        ObjectInstance* performer = activity->performer();
        if (!model.find_object(performer->name()))
            throw std::invalid_argument("activity '" + activity->name() +
                                        "' performer is not in the model");
        SequenceDiagram& sd =
            model.add_sequence_diagram(activity->name() + "_seq");
        Lifeline& self = sd.add_lifeline(*performer);
        for (const CallAction* action : activity->actions()) {
            ObjectInstance* target = action->target();
            Lifeline* to = sd.find_lifeline(*target);
            if (!to) to = &sd.add_lifeline(*target);
            Message& m = sd.add_message(self, *to, action->operation());
            for (const std::string& var : action->inputs()) m.add_argument(var);
            if (!action->output().empty()) m.set_result_name(action->output());
            m.set_data_size(action->data_size());
        }
        ++count;
    }
    return count;
}

}  // namespace uhcg::uml
