// model.hpp — typed UML metamodel covering exactly the diagram subset the
// DATE'08 flow consumes:
//
//  * class diagrams   — classes with operations and directed parameters;
//  * object instances — active objects (threads), passive objects, the
//                       special `Platform` library object and `<<IO>>`
//                       devices, annotated with UML-SPT stereotypes;
//  * sequence diagrams — lifelines and ordered messages, the source of
//                       thread behaviour and of task-graph edge weights;
//  * deployment diagrams — `<<SAengine>>` nodes (processors), buses, and
//                       thread-to-node allocations;
//  * state machines   — for the control-flow (FSM) generation branch.
//
// Ownership: the Model owns every element via unique_ptr; all cross
// references are raw non-owning pointers that stay valid for the model's
// lifetime (elements are never destroyed individually or relocated).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "uml/statemachine.hpp"

namespace uhcg::uml {

class Model;
class Class;
class ObjectInstance;
class NodeInstance;

/// UML-SPT / custom stereotypes understood by the mapping (§4.1).
enum class Stereotype {
    SASchedRes,  ///< schedulable resource — marks an object as a thread
    SAengine,    ///< execution engine — marks a node as a processor
    IO,          ///< custom stereotype — marks an object as an I/O device
};

std::string_view to_string(Stereotype s);
std::optional<Stereotype> stereotype_from_string(std::string_view name);

enum class ParameterDirection { In, Out, InOut, Return };

std::string_view to_string(ParameterDirection d);
std::optional<ParameterDirection> direction_from_string(std::string_view name);

/// A formal parameter of an Operation.
struct Parameter {
    std::string name;
    std::string type = "double";  // UML type name; dataflow values default to double
    ParameterDirection direction = ParameterDirection::In;
};

/// An operation owned by a Class.
class Operation {
public:
    friend class Model;
    Operation(std::string name, Class* owner)
        : name_(std::move(name)), owner_(owner) {}

    const std::string& name() const { return name_; }
    Class* owner() const { return owner_; }

    Parameter& add_parameter(Parameter p);
    const std::vector<Parameter>& parameters() const { return params_; }

    /// Parameters with direction In/InOut, declaration order.
    std::vector<const Parameter*> inputs() const;
    /// Parameters with direction Out/InOut/Return, declaration order.
    std::vector<const Parameter*> outputs() const;
    bool has_return() const;

    /// Naming conventions of §4.1: Set*/Get* prefixes mark inter-thread
    /// send/receive; get*/set* on an <<IO>> object mark environment reads
    /// and writes. Case-sensitive, matching the paper's examples.
    bool is_send() const { return name_.rfind("Set", 0) == 0; }
    bool is_receive() const { return name_.rfind("Get", 0) == 0; }
    bool is_io_read() const { return name_.rfind("get", 0) == 0; }
    bool is_io_write() const { return name_.rfind("set", 0) == 0; }

    /// Optional C source implementing the behaviour; compiled into an
    /// S-Function when the operation maps to a user-defined block.
    const std::string& body() const { return body_; }
    void set_body(std::string code) { body_ = std::move(code); }

private:
    std::string name_;
    Class* owner_;
    std::vector<Parameter> params_;
    std::string body_;
};

/// A UML class (classifier).
class Class {
public:
    friend class Model;
    Class(std::string name, Model* owner)
        : name_(std::move(name)), owner_(owner) {}

    const std::string& name() const { return name_; }
    Model* model() const { return owner_; }

    /// Active classes have their own thread of control (UML semantics);
    /// instances of active classes are the mapping's thread candidates.
    bool is_active() const { return active_; }
    void set_active(bool value) { active_ = value; }

    Operation& add_operation(std::string name);
    Operation* find_operation(std::string_view name);
    const Operation* find_operation(std::string_view name) const;
    std::vector<const Operation*> operations() const;
    std::vector<Operation*> operations();

private:
    std::string name_;
    Model* owner_;
    bool active_ = false;
    std::vector<std::unique_ptr<Operation>> operations_;
};

/// An object (InstanceSpecification) participating in sequence diagrams.
class ObjectInstance {
public:
    friend class Model;
    ObjectInstance(std::string name, Class* classifier, Model* owner)
        : name_(std::move(name)), classifier_(classifier), owner_(owner) {}

    const std::string& name() const { return name_; }
    /// May be nullptr for the special Platform object whose "operations"
    /// are resolved against the Simulink block library instead.
    Class* classifier() const { return classifier_; }
    Model* model() const { return owner_; }

    void add_stereotype(Stereotype s);
    bool has_stereotype(Stereotype s) const;
    const std::vector<Stereotype>& stereotypes() const { return stereotypes_; }

    /// A thread in the mapping sense: marked <<SASchedRes>>.
    bool is_thread() const { return has_stereotype(Stereotype::SASchedRes); }
    bool is_io_device() const { return has_stereotype(Stereotype::IO); }
    /// The Simulink block library facade (§4.1: "the special object
    /// Platform, which represents the Simulink library").
    bool is_platform() const { return name_ == "Platform"; }

private:
    std::string name_;
    Class* classifier_;
    Model* owner_;
    std::vector<Stereotype> stereotypes_;
};

// ---------------------------------------------------------------------------
// Sequence diagrams
// ---------------------------------------------------------------------------

/// A lifeline covering one object in an interaction.
class Lifeline {
public:
    Lifeline(ObjectInstance* represents) : represents_(represents) {}
    ObjectInstance* represents() const { return represents_; }

private:
    ObjectInstance* represents_;
};

/// An actual argument of a message: a named data token. Names are how the
/// mapping discovers dataflow (§4.1: "message arguments [map] to
/// connection (data links) between different subsystems/blocks").
struct MessageArgument {
    std::string name;
};

/// One message of a sequence diagram.
class Message {
public:
    Message(Lifeline* from, Lifeline* to, std::string operation_name)
        : from_(from), to_(to), operation_name_(std::move(operation_name)) {}

    Lifeline* from() const { return from_; }
    Lifeline* to() const { return to_; }
    const std::string& operation_name() const { return operation_name_; }

    /// Resolved operation on the receiver's classifier; nullptr for
    /// Platform-library calls or unresolved names.
    const Operation* operation() const { return operation_; }
    void set_operation(const Operation* op) { operation_ = op; }

    void add_argument(std::string name) { args_.push_back({std::move(name)}); }
    const std::vector<MessageArgument>& arguments() const { return args_; }

    /// Name given to the return value (empty when the call returns nothing
    /// or the value is unused).
    const std::string& result_name() const { return result_name_; }
    void set_result_name(std::string name) { result_name_ = std::move(name); }

    /// Bytes transferred by this message; the task-graph edge weight source
    /// (§4.2.3: edge cost "determined by the amount of transferred data").
    double data_size() const { return data_size_; }
    void set_data_size(double bytes) { data_size_ = bytes; }

private:
    Lifeline* from_;
    Lifeline* to_;
    std::string operation_name_;
    const Operation* operation_ = nullptr;
    std::vector<MessageArgument> args_;
    std::string result_name_;
    double data_size_ = 1.0;
};

/// An interaction: ordered messages over a set of lifelines. One sequence
/// diagram per thread describes that thread's behaviour (§5.1).
class SequenceDiagram {
public:
    friend class Model;
    SequenceDiagram(std::string name, Model* owner)
        : name_(std::move(name)), owner_(owner) {}

    const std::string& name() const { return name_; }
    Model* model() const { return owner_; }

    Lifeline& add_lifeline(ObjectInstance& object);
    Lifeline* find_lifeline(const ObjectInstance& object);
    const std::vector<std::unique_ptr<Lifeline>>& lifelines() const {
        return lifelines_;
    }

    Message& add_message(Lifeline& from, Lifeline& to, std::string operation);
    std::vector<const Message*> messages() const;
    std::vector<Message*> messages();

private:
    std::string name_;
    Model* owner_;
    std::vector<std::unique_ptr<Lifeline>> lifelines_;
    std::vector<std::unique_ptr<Message>> messages_;
};

// ---------------------------------------------------------------------------
// Deployment diagrams
// ---------------------------------------------------------------------------

/// A deployment node; <<SAengine>> marks it as a processor.
class NodeInstance {
public:
    friend class Model;
    NodeInstance(std::string name, Model* owner)
        : name_(std::move(name)), owner_(owner) {}

    const std::string& name() const { return name_; }
    Model* model() const { return owner_; }

    void add_stereotype(Stereotype s);
    bool has_stereotype(Stereotype s) const;
    const std::vector<Stereotype>& stereotypes() const { return stereotypes_; }
    bool is_processor() const { return has_stereotype(Stereotype::SAengine); }

private:
    std::string name_;
    Model* owner_;
    std::vector<Stereotype> stereotypes_;
};

/// A communication path (bus) connecting nodes.
class Bus {
public:
    friend class Model;
    Bus(std::string name, Model* owner) : name_(std::move(name)), owner_(owner) {}

    const std::string& name() const { return name_; }
    void connect(NodeInstance& node);
    const std::vector<NodeInstance*>& nodes() const { return nodes_; }
    bool connects(const NodeInstance& a, const NodeInstance& b) const;

private:
    std::string name_;
    Model* owner_;
    std::vector<NodeInstance*> nodes_;
};

/// Allocation of one thread object onto one node.
struct Deployment {
    ObjectInstance* artifact = nullptr;
    NodeInstance* node = nullptr;
};

/// The deployment diagram: nodes, buses, allocations. Optional — when
/// absent, the automatic thread-allocation optimization (§4.2.3) decides
/// the mapping instead.
class DeploymentDiagram {
public:
    friend class Model;
    explicit DeploymentDiagram(Model* owner) : owner_(owner) {}

    NodeInstance& add_node(std::string name);
    NodeInstance* find_node(std::string_view name);
    std::vector<const NodeInstance*> nodes() const;
    std::vector<NodeInstance*> nodes();

    Bus& add_bus(std::string name);
    const std::vector<std::unique_ptr<Bus>>& buses() const { return buses_; }

    void deploy(ObjectInstance& thread, NodeInstance& node);
    const std::vector<Deployment>& deployments() const { return deployments_; }
    /// Node hosting `thread`, or nullptr when unallocated.
    NodeInstance* node_of(const ObjectInstance& thread) const;
    /// Threads allocated on `node`, deployment order.
    std::vector<ObjectInstance*> threads_on(const NodeInstance& node) const;

private:
    Model* owner_;
    std::vector<std::unique_ptr<NodeInstance>> nodes_;
    std::vector<std::unique_ptr<Bus>> buses_;
    std::vector<Deployment> deployments_;
};

// ---------------------------------------------------------------------------
// Model
// ---------------------------------------------------------------------------

/// The root of a UML model.
class Model {
public:
    explicit Model(std::string name) : name_(std::move(name)) {}
    Model(const Model&) = delete;
    Model& operator=(const Model&) = delete;
    /// Moves re-anchor every element's back pointer to the new address, so
    /// a Model can safely be returned by value from factories and readers.
    Model(Model&& other) noexcept { *this = std::move(other); }
    Model& operator=(Model&& other) noexcept;

    const std::string& name() const { return name_; }
    void set_name(std::string name) { name_ = std::move(name); }

    Class& add_class(std::string name);
    Class* find_class(std::string_view name);
    const Class* find_class(std::string_view name) const;
    std::vector<const Class*> classes() const;

    ObjectInstance& add_object(std::string name, Class* classifier = nullptr);
    ObjectInstance* find_object(std::string_view name);
    const ObjectInstance* find_object(std::string_view name) const;
    std::vector<const ObjectInstance*> objects() const;
    std::vector<ObjectInstance*> objects();
    /// All <<SASchedRes>> objects, declaration order.
    std::vector<ObjectInstance*> threads() const;

    SequenceDiagram& add_sequence_diagram(std::string name);
    std::vector<const SequenceDiagram*> sequence_diagrams() const;
    std::vector<SequenceDiagram*> sequence_diagrams();

    StateMachine& add_state_machine(std::string name);
    StateMachine* find_state_machine(std::string_view name);
    std::vector<const StateMachine*> state_machines() const;

    /// Creates (on first call) and returns the deployment diagram.
    DeploymentDiagram& deployment();
    /// nullptr when the model has no deployment diagram.
    const DeploymentDiagram* deployment_or_null() const { return deployment_.get(); }
    DeploymentDiagram* deployment_or_null() { return deployment_.get(); }

private:
    std::string name_;
    std::vector<std::unique_ptr<Class>> classes_;
    std::vector<std::unique_ptr<ObjectInstance>> objects_;
    std::vector<std::unique_ptr<SequenceDiagram>> diagrams_;
    std::vector<std::unique_ptr<StateMachine>> machines_;
    std::unique_ptr<DeploymentDiagram> deployment_;
};

}  // namespace uhcg::uml
