// wellformed.hpp — mapping-specific well-formedness checks on UML models.
//
// §4.1 imposes modeling conventions the designer must follow ("the designer
// is asked to use a default prefix in the method name, Set or Get, ...").
// This checker surfaces violations before the transformation runs, turning
// silent mis-mappings into actionable diagnostics.
#pragma once

#include <string>
#include <vector>

#include "diag/diag.hpp"
#include "uml/model.hpp"

namespace uhcg::uml {

enum class Severity { Error, Warning };

struct Issue {
    Severity severity;
    /// Where the problem lives (diagram/object/operation name).
    std::string where;
    std::string message;
    /// Rule id from the list below ("E1".."E7", "W1".."W3").
    const char* rule = "";
};

/// Rules enforced:
///  E1  inter-thread messages must use the Set/Get prefix convention;
///  E2  a Get message must bind a result name, a Set message must carry at
///      least one argument (otherwise no data link can be inferred);
///  E3  messages to <<IO>> devices must use get*/set* prefixes;
///  E4  deployed artifacts must be <<SASchedRes>> threads and deployment
///      targets must be <<SAengine>> processors;
///  E5  a thread may be deployed at most once;
///  E6  message receivers with a classifier must resolve the operation;
///  E7  a thread must not receive the same variable from two different
///      producers (the inferred channels would contend for one port);
///  W1  threads never referenced by any sequence diagram (dead threads);
///  W2  a deployment diagram with processors but no deployed threads;
///  W3  passive-object calls whose operation has no outputs (no dataflow).
std::vector<Issue> check(const Model& model);

/// Reports every issue into `engine` (code "uml.<rule>", e.g. "uml.E1")
/// and returns whether the model passed with no errors.
bool check(const Model& model, diag::DiagnosticEngine& engine);

/// True when `issues` contains no Severity::Error entries.
bool only_warnings(const std::vector<Issue>& issues);

/// Renders issues as a human-readable report.
std::string format_issues(const std::vector<Issue>& issues);

}  // namespace uhcg::uml
