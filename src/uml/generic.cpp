#include "uml/generic.hpp"

#include <map>
#include <stdexcept>

namespace uhcg::uml {
namespace {

using model::AttrType;
using model::Metamodel;
using model::Object;
using model::ObjectModel;

Metamodel build_metamodel() {
    Metamodel mm("UML");

    auto& m = mm.add_class("Model");
    m.add_attribute({"name", AttrType::String, {}, std::nullopt});
    m.add_reference({"classes", "Class", true, true, false});
    m.add_reference({"objects", "ObjectInstance", true, true, false});
    m.add_reference({"interactions", "Interaction", true, true, false});
    m.add_reference({"nodes", "Node", true, true, false});
    m.add_reference({"buses", "Bus", true, true, false});
    m.add_reference({"deployments", "Deployment", true, true, false});

    auto& c = mm.add_class("Class");
    c.add_attribute({"name", AttrType::String, {}, std::nullopt});
    c.add_attribute({"isActive", AttrType::Bool, {}, "false"});
    c.add_reference({"operations", "Operation", true, true, false});

    auto& op = mm.add_class("Operation");
    op.add_attribute({"name", AttrType::String, {}, std::nullopt});
    op.add_attribute({"body", AttrType::String, {}, ""});
    op.add_reference({"parameters", "Parameter", true, true, false});

    auto& p = mm.add_class("Parameter");
    p.add_attribute({"name", AttrType::String, {}, std::nullopt});
    p.add_attribute({"type", AttrType::String, {}, "double"});
    p.add_attribute(
        {"direction", AttrType::Enum, {"in", "out", "inout", "return"}, "in"});

    auto& o = mm.add_class("ObjectInstance");
    o.add_attribute({"name", AttrType::String, {}, std::nullopt});
    o.add_attribute({"isThread", AttrType::Bool, {}, "false"});
    o.add_attribute({"isIO", AttrType::Bool, {}, "false"});
    o.add_reference({"classifier", "Class", false, false, false});

    auto& ia = mm.add_class("Interaction");
    ia.add_attribute({"name", AttrType::String, {}, std::nullopt});
    ia.add_reference({"lifelines", "Lifeline", true, true, false});
    ia.add_reference({"messages", "Message", true, true, false});

    auto& ll = mm.add_class("Lifeline");
    ll.add_reference({"represents", "ObjectInstance", false, false, true});

    auto& msg = mm.add_class("Message");
    msg.add_attribute({"operation", AttrType::String, {}, std::nullopt});
    msg.add_attribute({"result", AttrType::String, {}, ""});
    msg.add_attribute({"dataSize", AttrType::Real, {}, "1"});
    msg.add_reference({"from", "Lifeline", false, false, true});
    msg.add_reference({"to", "Lifeline", false, false, true});
    msg.add_reference({"arguments", "Argument", true, true, false});

    auto& arg = mm.add_class("Argument");
    arg.add_attribute({"name", AttrType::String, {}, std::nullopt});

    auto& n = mm.add_class("Node");
    n.add_attribute({"name", AttrType::String, {}, std::nullopt});
    n.add_attribute({"isProcessor", AttrType::Bool, {}, "false"});

    auto& b = mm.add_class("Bus");
    b.add_attribute({"name", AttrType::String, {}, std::nullopt});
    b.add_reference({"nodes", "Node", false, true, false});

    auto& d = mm.add_class("Deployment");
    d.add_reference({"artifact", "ObjectInstance", false, false, true});
    d.add_reference({"node", "Node", false, false, true});

    return mm;
}

}  // namespace

const Metamodel& uml_metamodel() {
    static const Metamodel mm = build_metamodel();
    return mm;
}

ObjectModel to_generic(const Model& typed) {
    ObjectModel out(uml_metamodel());
    Object& root = out.create("Model", "model." + typed.name());
    root.set("name", typed.name());

    std::map<const Class*, Object*> class_map;
    std::map<const ObjectInstance*, Object*> object_map;
    std::map<const NodeInstance*, Object*> node_map;

    for (const Class* c : typed.classes()) {
        Object& gc = out.create("Class", "class." + c->name());
        gc.set("name", c->name());
        gc.set("isActive", c->is_active());
        root.add_ref("classes", gc);
        class_map[c] = &gc;
        for (const Operation* op : c->operations()) {
            Object& gop = out.create("Operation", "op." + c->name() + "." + op->name());
            gop.set("name", op->name());
            gop.set("body", op->body());
            gc.add_ref("operations", gop);
            std::size_t index = 0;
            for (const Parameter& p : op->parameters()) {
                Object& gp = out.create("Parameter", gop.id() + ".p" +
                                                         std::to_string(index++));
                gp.set("name", p.name);
                gp.set("type", p.type);
                gp.set("direction", std::string(to_string(p.direction)));
                gop.add_ref("parameters", gp);
            }
        }
    }

    for (const ObjectInstance* o : typed.objects()) {
        Object& go = out.create("ObjectInstance", "obj." + o->name());
        go.set("name", o->name());
        go.set("isThread", o->is_thread());
        go.set("isIO", o->is_io_device());
        if (o->classifier()) go.set_ref("classifier", class_map.at(o->classifier()));
        root.add_ref("objects", go);
        object_map[o] = &go;
    }

    for (const SequenceDiagram* d : typed.sequence_diagrams()) {
        Object& gd = out.create("Interaction", "ia." + d->name());
        gd.set("name", d->name());
        root.add_ref("interactions", gd);
        std::map<const Lifeline*, Object*> lifeline_map;
        for (const auto& l : d->lifelines()) {
            Object& gl = out.create(
                "Lifeline", "ll." + d->name() + "." + l->represents()->name());
            gl.set_ref("represents", object_map.at(l->represents()));
            gd.add_ref("lifelines", gl);
            lifeline_map[l.get()] = &gl;
        }
        std::size_t index = 0;
        for (const Message* m : d->messages()) {
            Object& gm =
                out.create("Message", "msg." + d->name() + "." + std::to_string(index));
            gm.set("operation", m->operation_name());
            gm.set("result", m->result_name());
            gm.set("dataSize", m->data_size());
            gm.set_ref("from", lifeline_map.at(m->from()));
            gm.set_ref("to", lifeline_map.at(m->to()));
            std::size_t arg_index = 0;
            for (const MessageArgument& a : m->arguments()) {
                Object& ga = out.create("Argument", gm.id() + ".a" +
                                                        std::to_string(arg_index++));
                ga.set("name", a.name);
                gm.add_ref("arguments", ga);
            }
            gd.add_ref("messages", gm);
            ++index;
        }
    }

    if (const DeploymentDiagram* dd = typed.deployment_or_null()) {
        for (const NodeInstance* n : dd->nodes()) {
            Object& gn = out.create("Node", "node." + n->name());
            gn.set("name", n->name());
            gn.set("isProcessor", n->is_processor());
            root.add_ref("nodes", gn);
            node_map[n] = &gn;
        }
        for (const auto& bus : dd->buses()) {
            Object& gb = out.create("Bus", "bus." + bus->name());
            gb.set("name", bus->name());
            for (const NodeInstance* n : bus->nodes())
                gb.add_ref("nodes", *node_map.at(n));
            root.add_ref("buses", gb);
        }
        std::size_t index = 0;
        for (const Deployment& dep : dd->deployments()) {
            Object& gd = out.create("Deployment", "dep." + std::to_string(index++));
            gd.set_ref("artifact", object_map.at(dep.artifact));
            gd.set_ref("node", node_map.at(dep.node));
            root.add_ref("deployments", gd);
        }
    }

    return out;
}

Model from_generic(const ObjectModel& generic) {
    const auto roots = generic.all_of("Model");
    if (roots.size() != 1)
        throw std::runtime_error("generic UML model must contain exactly one Model");
    const Object& root = *roots.front();

    Model out(root.get_string("name"));
    std::map<const Object*, Class*> class_map;
    std::map<const Object*, ObjectInstance*> object_map;
    std::map<const Object*, NodeInstance*> node_map;
    std::map<const Object*, Lifeline*> lifeline_map;

    for (const Object* gc : root.refs("classes")) {
        Class& c = out.add_class(gc->get_string("name"));
        c.set_active(gc->get_bool("isActive"));
        class_map[gc] = &c;
        for (const Object* gop : gc->refs("operations")) {
            Operation& op = c.add_operation(gop->get_string("name"));
            op.set_body(gop->get_string("body"));
            for (const Object* gp : gop->refs("parameters")) {
                Parameter p;
                p.name = gp->get_string("name");
                p.type = gp->get_string("type");
                p.direction = *direction_from_string(gp->get_string("direction"));
                op.add_parameter(std::move(p));
            }
        }
    }

    for (const Object* go : root.refs("objects")) {
        Class* classifier = nullptr;
        if (const Object* gc = go->ref("classifier")) classifier = class_map.at(gc);
        ObjectInstance& o = out.add_object(go->get_string("name"), classifier);
        if (go->get_bool("isThread")) o.add_stereotype(Stereotype::SASchedRes);
        if (go->get_bool("isIO")) o.add_stereotype(Stereotype::IO);
        object_map[go] = &o;
    }

    for (const Object* gd : root.refs("interactions")) {
        SequenceDiagram& d = out.add_sequence_diagram(gd->get_string("name"));
        for (const Object* gl : gd->refs("lifelines")) {
            const Object* rep = gl->ref("represents");
            if (!rep) throw std::runtime_error("lifeline without represents");
            lifeline_map[gl] = &d.add_lifeline(*object_map.at(rep));
        }
        for (const Object* gm : gd->refs("messages")) {
            Lifeline* from = lifeline_map.at(gm->ref("from"));
            Lifeline* to = lifeline_map.at(gm->ref("to"));
            Message& m = d.add_message(*from, *to, gm->get_string("operation"));
            m.set_result_name(gm->get_string("result"));
            m.set_data_size(gm->get_real("dataSize"));
            for (const Object* ga : gm->refs("arguments"))
                m.add_argument(ga->get_string("name"));
        }
    }

    if (!root.refs("nodes").empty() || !root.refs("deployments").empty()) {
        DeploymentDiagram& dd = out.deployment();
        for (const Object* gn : root.refs("nodes")) {
            NodeInstance& n = dd.add_node(gn->get_string("name"));
            if (gn->get_bool("isProcessor")) n.add_stereotype(Stereotype::SAengine);
            node_map[gn] = &n;
        }
        for (const Object* gb : root.refs("buses")) {
            Bus& b = dd.add_bus(gb->get_string("name"));
            for (const Object* gn : gb->refs("nodes")) b.connect(*node_map.at(gn));
        }
        for (const Object* gd : root.refs("deployments")) {
            dd.deploy(*object_map.at(gd->ref("artifact")),
                      *node_map.at(gd->ref("node")));
        }
    }

    return out;
}

}  // namespace uhcg::uml
