// builder.hpp — fluent construction API for uml::Model.
//
// The paper's step 1 ("UML model construction ... made by the designer" in
// MagicDraw) corresponds here to either loading XMI or building the model
// programmatically. The builder makes the programmatic path concise enough
// for tests, examples and benchmark workload generators:
//
//   ModelBuilder b("didactic");
//   b.cls("Dec").op("dec").in("x").result("r");
//   b.thread("T1");
//   b.passive("Dec1", "Dec");
//   b.platform();
//   auto& sd = b.seq("T1_behaviour");
//   sd.message("T1", "Dec1", "dec").arg("x2").result("r2").data(8);
#pragma once

#include <string>
#include <utility>

#include "uml/model.hpp"

namespace uhcg::uml {

class ModelBuilder;

/// Fluent wrapper around one Operation.
class OperationBuilder {
public:
    explicit OperationBuilder(Operation& op) : op_(&op) {}

    OperationBuilder& in(std::string name, std::string type = "double") {
        op_->add_parameter({std::move(name), std::move(type), ParameterDirection::In});
        return *this;
    }
    OperationBuilder& out(std::string name, std::string type = "double") {
        op_->add_parameter({std::move(name), std::move(type), ParameterDirection::Out});
        return *this;
    }
    OperationBuilder& result(std::string name = "return", std::string type = "double") {
        op_->add_parameter(
            {std::move(name), std::move(type), ParameterDirection::Return});
        return *this;
    }
    OperationBuilder& body(std::string code) {
        op_->set_body(std::move(code));
        return *this;
    }
    Operation& done() { return *op_; }

private:
    Operation* op_;
};

/// Fluent wrapper around one Class.
class ClassBuilder {
public:
    explicit ClassBuilder(Class& cls) : cls_(&cls) {}

    ClassBuilder& active(bool value = true) {
        cls_->set_active(value);
        return *this;
    }
    OperationBuilder op(std::string name) {
        return OperationBuilder(cls_->add_operation(std::move(name)));
    }
    Class& done() { return *cls_; }

private:
    Class* cls_;
};

/// Fluent wrapper around one sequence-diagram Message.
class MessageBuilder {
public:
    explicit MessageBuilder(Message& msg) : msg_(&msg) {}

    MessageBuilder& arg(std::string name) {
        msg_->add_argument(std::move(name));
        return *this;
    }
    MessageBuilder& result(std::string name) {
        msg_->set_result_name(std::move(name));
        return *this;
    }
    /// Transferred bytes — becomes the task-graph edge weight.
    MessageBuilder& data(double bytes) {
        msg_->set_data_size(bytes);
        return *this;
    }
    Message& done() { return *msg_; }

private:
    Message* msg_;
};

/// Fluent wrapper around one SequenceDiagram. Lifelines are created lazily
/// the first time an object participates in a message.
class SequenceBuilder {
public:
    SequenceBuilder(SequenceDiagram& diagram, Model& model)
        : diagram_(&diagram), model_(&model) {}

    /// Adds a message `from.op(...)` → `to`; both endpoints are object
    /// names, resolved (and their lifelines created) on demand.
    MessageBuilder message(const std::string& from, const std::string& to,
                           std::string operation);

    SequenceDiagram& done() { return *diagram_; }

private:
    Lifeline& lifeline_for(const std::string& object_name);

    SequenceDiagram* diagram_;
    Model* model_;
};

/// Top-level fluent builder owning the model under construction.
class ModelBuilder {
public:
    explicit ModelBuilder(std::string name) : model_(std::move(name)) {}

    ClassBuilder cls(std::string name) {
        return ClassBuilder(model_.add_class(std::move(name)));
    }

    /// Adds a <<SASchedRes>> object (a thread). When `classifier` is given
    /// it must already exist.
    ObjectInstance& thread(const std::string& name, const std::string& classifier = {});
    /// Adds a passive object of an existing class.
    ObjectInstance& passive(const std::string& name, const std::string& classifier);
    /// Adds (once) the special Platform object representing the Simulink
    /// block library.
    ObjectInstance& platform();
    /// Adds an <<IO>> device object.
    ObjectInstance& iodevice(const std::string& name);

    SequenceBuilder seq(std::string name) {
        return SequenceBuilder(model_.add_sequence_diagram(std::move(name)), model_);
    }

    /// Adds an <<SAengine>> processor node to the deployment diagram.
    NodeInstance& cpu(const std::string& name);
    /// Connects nodes with a bus.
    Bus& bus(const std::string& name, const std::vector<std::string>& node_names);
    /// Allocates a thread object onto a node (both by name; must exist).
    ModelBuilder& deploy(const std::string& thread_name, const std::string& node_name);

    Model& model() { return model_; }
    Model take() { return std::move(model_); }

private:
    Model model_;
};

}  // namespace uhcg::uml
