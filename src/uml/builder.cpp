#include "uml/builder.hpp"

#include <stdexcept>

namespace uhcg::uml {

Lifeline& SequenceBuilder::lifeline_for(const std::string& object_name) {
    ObjectInstance* obj = model_->find_object(object_name);
    if (!obj)
        throw std::invalid_argument("sequence diagram '" + diagram_->name() +
                                    "' references unknown object '" + object_name +
                                    "'");
    if (Lifeline* existing = diagram_->find_lifeline(*obj)) return *existing;
    return diagram_->add_lifeline(*obj);
}

MessageBuilder SequenceBuilder::message(const std::string& from,
                                        const std::string& to,
                                        std::string operation) {
    Lifeline& f = lifeline_for(from);
    Lifeline& t = lifeline_for(to);
    return MessageBuilder(diagram_->add_message(f, t, std::move(operation)));
}

ObjectInstance& ModelBuilder::thread(const std::string& name,
                                     const std::string& classifier) {
    Class* cls = nullptr;
    if (!classifier.empty()) {
        cls = model_.find_class(classifier);
        if (!cls)
            throw std::invalid_argument("unknown classifier '" + classifier + "'");
    }
    ObjectInstance& obj = model_.add_object(name, cls);
    obj.add_stereotype(Stereotype::SASchedRes);
    return obj;
}

ObjectInstance& ModelBuilder::passive(const std::string& name,
                                      const std::string& classifier) {
    Class* cls = model_.find_class(classifier);
    if (!cls) throw std::invalid_argument("unknown classifier '" + classifier + "'");
    return model_.add_object(name, cls);
}

ObjectInstance& ModelBuilder::platform() {
    if (ObjectInstance* existing = model_.find_object("Platform")) return *existing;
    return model_.add_object("Platform", nullptr);
}

ObjectInstance& ModelBuilder::iodevice(const std::string& name) {
    ObjectInstance& obj = model_.add_object(name, nullptr);
    obj.add_stereotype(Stereotype::IO);
    return obj;
}

NodeInstance& ModelBuilder::cpu(const std::string& name) {
    NodeInstance& node = model_.deployment().add_node(name);
    node.add_stereotype(Stereotype::SAengine);
    return node;
}

Bus& ModelBuilder::bus(const std::string& name,
                       const std::vector<std::string>& node_names) {
    Bus& b = model_.deployment().add_bus(name);
    for (const auto& n : node_names) {
        NodeInstance* node = model_.deployment().find_node(n);
        if (!node) throw std::invalid_argument("unknown node '" + n + "'");
        b.connect(*node);
    }
    return b;
}

ModelBuilder& ModelBuilder::deploy(const std::string& thread_name,
                                   const std::string& node_name) {
    ObjectInstance* obj = model_.find_object(thread_name);
    NodeInstance* node = model_.deployment().find_node(node_name);
    if (!obj) throw std::invalid_argument("unknown object '" + thread_name + "'");
    if (!node) throw std::invalid_argument("unknown node '" + node_name + "'");
    model_.deployment().deploy(*obj, *node);
    return *this;
}

}  // namespace uhcg::uml
