#include "uml/wellformed.hpp"

#include <map>
#include <set>
#include <sstream>

namespace uhcg::uml {
namespace {

void check_message(const SequenceDiagram& d, const Message& m,
                   std::vector<Issue>& out) {
    const ObjectInstance* sender = m.from()->represents();
    const ObjectInstance* receiver = m.to()->represents();
    std::string where = d.name() + "/" + m.operation_name();
    const std::string& op = m.operation_name();

    bool set_prefix = op.rfind("Set", 0) == 0;
    bool get_prefix = op.rfind("Get", 0) == 0;
    bool io_get = op.rfind("get", 0) == 0;
    bool io_set = op.rfind("set", 0) == 0;

    if (sender->is_thread() && receiver->is_thread() && sender != receiver) {
        // E1: inter-thread traffic needs the Set/Get convention.
        if (!set_prefix && !get_prefix)
            out.push_back({Severity::Error, where,
                           "inter-thread message must use the Set/Get prefix "
                           "convention (got '" + op + "')", "E1"});
        // E2: data must be derivable.
        if (get_prefix && m.result_name().empty())
            out.push_back({Severity::Error, where,
                           "Get message must bind a result name", "E2"});
        if (set_prefix && m.arguments().empty())
            out.push_back({Severity::Error, where,
                           "Set message must carry at least one argument", "E2"});
    }

    if (receiver->is_io_device()) {
        // E3: environment access convention.
        if (!io_get && !io_set)
            out.push_back({Severity::Error, where,
                           "message to <<IO>> device must use get*/set* prefix", "E3"});
        if (io_get && m.result_name().empty())
            out.push_back({Severity::Error, where,
                           "get* on <<IO>> device must bind a result name", "E3"});
        if (io_set && m.arguments().empty())
            out.push_back({Severity::Error, where,
                           "set* on <<IO>> device must carry an argument", "E3"});
    }

    // E6 / W3: passive-object calls.
    if (!receiver->is_thread() && !receiver->is_io_device() &&
        !receiver->is_platform()) {
        const Class* cls = receiver->classifier();
        if (cls) {
            const Operation* decl = cls->find_operation(op);
            if (!decl) {
                out.push_back({Severity::Error, where,
                               "receiver class '" + cls->name() +
                                   "' has no operation '" + op + "'", "E6"});
            } else if (decl->outputs().empty()) {
                out.push_back({Severity::Warning, where,
                               "operation '" + op +
                                   "' has no out/return parameter; the block "
                                   "will produce no dataflow", "W3"});
            }
        }
    }
}

}  // namespace

std::vector<Issue> check(const Model& model) {
    std::vector<Issue> out;

    for (const SequenceDiagram* d : model.sequence_diagrams())
        for (const Message* m : d->messages()) check_message(*d, *m, out);

    // E7: one producer per (consumer, variable) across all diagrams.
    std::map<std::pair<const ObjectInstance*, std::string>,
             const ObjectInstance*>
        producer_of;
    auto check_link = [&](const ObjectInstance* producer,
                          const ObjectInstance* consumer,
                          const std::string& var, const std::string& where) {
        auto [it, inserted] = producer_of.emplace(
            std::make_pair(consumer, var), producer);
        if (!inserted && it->second != producer)
            out.push_back({Severity::Error, where,
                           "thread '" + consumer->name() + "' receives '" +
                               var + "' from both '" + it->second->name() +
                               "' and '" + producer->name() + "'", "E7"});
    };
    for (const SequenceDiagram* d : model.sequence_diagrams()) {
        for (const Message* m : d->messages()) {
            const ObjectInstance* sender = m->from()->represents();
            const ObjectInstance* receiver = m->to()->represents();
            if (!sender->is_thread() || !receiver->is_thread() ||
                sender == receiver)
                continue;
            std::string where = d->name() + "/" + m->operation_name();
            if (m->operation_name().rfind("Set", 0) == 0) {
                for (const MessageArgument& a : m->arguments())
                    check_link(sender, receiver, a.name, where);
            } else if (m->operation_name().rfind("Get", 0) == 0 &&
                       !m->result_name().empty()) {
                check_link(receiver, sender, m->result_name(), where);
            }
        }
    }

    // Deployment rules.
    if (const DeploymentDiagram* dd = model.deployment_or_null()) {
        std::set<const ObjectInstance*> deployed;
        for (const Deployment& dep : dd->deployments()) {
            std::string where = "deployment/" + dep.artifact->name();
            if (!dep.artifact->is_thread())
                out.push_back({Severity::Error, where,
                               "deployed artifact is not <<SASchedRes>>", "E4"});
            if (!dep.node->is_processor())
                out.push_back({Severity::Error, where,
                               "deployment target '" + dep.node->name() +
                                   "' is not <<SAengine>>", "E4"});
            if (!deployed.insert(dep.artifact).second)
                out.push_back({Severity::Error, where,
                               "thread deployed more than once", "E5"});
        }
        bool has_processor = false;
        for (const NodeInstance* n : dd->nodes())
            if (n->is_processor()) has_processor = true;
        if (has_processor && dd->deployments().empty())
            out.push_back({Severity::Warning, "deployment",
                           "deployment diagram declares processors but "
                           "allocates no threads", "W2"});
    }

    // W1: dead threads.
    for (const ObjectInstance* obj : model.objects()) {
        if (!obj->is_thread()) continue;
        bool referenced = false;
        for (const SequenceDiagram* d : model.sequence_diagrams()) {
            for (const auto& l : d->lifelines()) {
                if (l->represents() == obj) {
                    referenced = true;
                    break;
                }
            }
            if (referenced) break;
        }
        if (!referenced)
            out.push_back({Severity::Warning, obj->name(),
                           "thread never appears in any sequence diagram", "W1"});
    }

    return out;
}

bool check(const Model& model, diag::DiagnosticEngine& engine) {
    auto issues = check(model);
    for (const Issue& i : issues) {
        std::string code = "uml.";
        code += (i.rule && i.rule[0]) ? i.rule : "wellformed";
        engine.report(i.severity == Severity::Error ? diag::Severity::Error
                                                    : diag::Severity::Warning,
                      std::move(code), "[" + i.where + "] " + i.message);
    }
    return only_warnings(issues);
}

bool only_warnings(const std::vector<Issue>& issues) {
    for (const auto& i : issues)
        if (i.severity == Severity::Error) return false;
    return true;
}

std::string format_issues(const std::vector<Issue>& issues) {
    std::ostringstream out;
    for (const auto& i : issues) {
        out << (i.severity == Severity::Error ? "error" : "warning") << " ["
            << i.where << "]: " << i.message << '\n';
    }
    return out.str();
}

}  // namespace uhcg::uml
