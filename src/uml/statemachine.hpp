// statemachine.hpp — UML state machines, the source model of the
// control-flow generation branch in Fig. 1 ("UML tool code generation"
// from "state diagrams or FSM-like models").
//
// The subset covered is what BridgePoint-class generators consume: flat or
// hierarchically-composed states, completion/initial transitions, event
// triggers, guard expressions, entry/exit/effect actions.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace uhcg::uml {

class StateMachine;
class State;

/// A transition between two states of the same machine.
class Transition {
public:
    Transition(State* source, State* target) : source_(source), target_(target) {}

    State* source() const { return source_; }
    State* target() const { return target_; }

    /// Event name triggering the transition; empty = completion transition.
    const std::string& trigger() const { return trigger_; }
    void set_trigger(std::string event) { trigger_ = std::move(event); }

    /// Boolean guard expression in the target language (verbatim).
    const std::string& guard() const { return guard_; }
    void set_guard(std::string expr) { guard_ = std::move(expr); }

    /// Effect action code executed when the transition fires.
    const std::string& effect() const { return effect_; }
    void set_effect(std::string code) { effect_ = std::move(code); }

private:
    State* source_;
    State* target_;
    std::string trigger_;
    std::string guard_;
    std::string effect_;
};

/// A state; may be composite (owning a nested region of substates).
class State {
public:
    State(std::string name, StateMachine* machine, State* parent)
        : name_(std::move(name)), machine_(machine), parent_(parent) {}

    const std::string& name() const { return name_; }
    StateMachine* machine() const { return machine_; }
    State* parent() const { return parent_; }
    bool is_composite() const { return !children_.empty(); }

    const std::string& entry_action() const { return entry_; }
    void set_entry_action(std::string code) { entry_ = std::move(code); }
    const std::string& exit_action() const { return exit_; }
    void set_exit_action(std::string code) { exit_ = std::move(code); }

    State& add_substate(std::string name);
    const std::vector<std::unique_ptr<State>>& substates() const {
        return children_;
    }
    /// Initial substate of this composite region (nullptr when simple).
    State* initial_substate() const { return initial_; }
    void set_initial_substate(State& s) { initial_ = &s; }

private:
    std::string name_;
    StateMachine* machine_;
    State* parent_;
    std::string entry_;
    std::string exit_;
    std::vector<std::unique_ptr<State>> children_;
    State* initial_ = nullptr;
};

/// A UML state machine (one region at top level).
class StateMachine {
public:
    explicit StateMachine(std::string name) : name_(std::move(name)) {}
    StateMachine(const StateMachine&) = delete;
    StateMachine& operator=(const StateMachine&) = delete;
    StateMachine(StateMachine&&) = default;
    StateMachine& operator=(StateMachine&&) = default;

    const std::string& name() const { return name_; }

    State& add_state(std::string name);
    State* find_state(std::string_view name);
    const State* find_state(std::string_view name) const;
    /// Top-level states, declaration order.
    std::vector<const State*> states() const;
    /// All states including substates, pre-order.
    std::vector<const State*> all_states() const;

    State* initial_state() const { return initial_; }
    void set_initial_state(State& s) { initial_ = &s; }

    Transition& add_transition(State& source, State& target);
    std::vector<const Transition*> transitions() const;
    /// Transitions leaving `state`, declaration order.
    std::vector<const Transition*> outgoing(const State& state) const;

    /// Distinct trigger event names, first-use order.
    std::vector<std::string> events() const;

private:
    std::string name_;
    std::vector<std::unique_ptr<State>> states_;
    std::vector<std::unique_ptr<Transition>> transitions_;
    State* initial_ = nullptr;
};

}  // namespace uhcg::uml
