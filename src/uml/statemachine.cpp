#include "uml/statemachine.hpp"

#include <algorithm>

namespace uhcg::uml {

State& State::add_substate(std::string name) {
    children_.push_back(std::make_unique<State>(std::move(name), machine_, this));
    return *children_.back();
}

State& StateMachine::add_state(std::string name) {
    states_.push_back(std::make_unique<State>(std::move(name), this, nullptr));
    return *states_.back();
}

namespace {
const State* find_in(const std::vector<std::unique_ptr<State>>& states,
                     std::string_view name) {
    for (const auto& s : states) {
        if (s->name() == name) return s.get();
        if (const State* nested = find_in(s->substates(), name)) return nested;
    }
    return nullptr;
}

void collect(const std::vector<std::unique_ptr<State>>& states,
             std::vector<const State*>& out) {
    for (const auto& s : states) {
        out.push_back(s.get());
        collect(s->substates(), out);
    }
}
}  // namespace

State* StateMachine::find_state(std::string_view name) {
    return const_cast<State*>(find_in(states_, name));
}

const State* StateMachine::find_state(std::string_view name) const {
    return find_in(states_, name);
}

std::vector<const State*> StateMachine::states() const {
    std::vector<const State*> out;
    for (const auto& s : states_) out.push_back(s.get());
    return out;
}

std::vector<const State*> StateMachine::all_states() const {
    std::vector<const State*> out;
    collect(states_, out);
    return out;
}

Transition& StateMachine::add_transition(State& source, State& target) {
    transitions_.push_back(std::make_unique<Transition>(&source, &target));
    return *transitions_.back();
}

std::vector<const Transition*> StateMachine::transitions() const {
    std::vector<const Transition*> out;
    for (const auto& t : transitions_) out.push_back(t.get());
    return out;
}

std::vector<const Transition*> StateMachine::outgoing(const State& state) const {
    std::vector<const Transition*> out;
    for (const auto& t : transitions_)
        if (t->source() == &state) out.push_back(t.get());
    return out;
}

std::vector<std::string> StateMachine::events() const {
    std::vector<std::string> out;
    for (const auto& t : transitions_) {
        if (t->trigger().empty()) continue;
        if (std::find(out.begin(), out.end(), t->trigger()) == out.end())
            out.push_back(t->trigger());
    }
    return out;
}

}  // namespace uhcg::uml
