// activity.hpp — UML activity diagrams as an alternative thread-behaviour
// notation.
//
// §6 (future work): "other behavior diagrams could also be used by a
// designer, since UML provides them. Thus, we plan to extend this mapping
// to support other UML diagrams, such as activity diagrams." This module
// adds the activity subset that is equivalent to the supported sequence
// diagrams: one activity per thread, call-operation actions with input
// pins (argument names) and output pins (result bindings), object flows
// implied by pin-name matching — then lowers activities to ordinary
// interactions so the whole existing flow (§4.1 mapping, §4.2
// optimizations, KPN retargeting) consumes them unchanged.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "uml/model.hpp"

namespace uhcg::uml {

/// A call-operation action: the performer invokes `operation` on `target`.
class CallAction {
public:
    CallAction(std::string operation, ObjectInstance* target)
        : operation_(std::move(operation)), target_(target) {}

    const std::string& operation() const { return operation_; }
    ObjectInstance* target() const { return target_; }

    /// Input pins: value names consumed (→ message arguments).
    CallAction& pin_in(std::string var);
    const std::vector<std::string>& inputs() const { return inputs_; }

    /// Output pin: name bound to the call's result (→ message result).
    CallAction& pin_out(std::string var);
    const std::string& output() const { return output_; }

    /// Transferred bytes for inter-thread calls (task-graph edge weight).
    CallAction& data(double bytes);
    double data_size() const { return data_size_; }

private:
    std::string operation_;
    ObjectInstance* target_;
    std::vector<std::string> inputs_;
    std::string output_;
    double data_size_ = 1.0;
};

/// An activity describing one thread's behaviour: actions in control-flow
/// order (the activity's action sequence along its control edges).
class Activity {
public:
    Activity(std::string name, ObjectInstance* performer)
        : name_(std::move(name)), performer_(performer) {}

    const std::string& name() const { return name_; }
    /// The <<SASchedRes>> object whose behaviour this activity describes.
    ObjectInstance* performer() const { return performer_; }

    CallAction& add_call(std::string operation, ObjectInstance& target);
    std::vector<const CallAction*> actions() const;
    std::vector<CallAction*> actions();

private:
    std::string name_;
    ObjectInstance* performer_;
    std::vector<std::unique_ptr<CallAction>> actions_;
};

/// Container mix-in: activities owned by a Model (kept separate from
/// model.hpp to avoid growing its interface; the registry lives here).
class ActivityRegistry {
public:
    Activity& add(std::string name, ObjectInstance& performer);
    std::vector<const Activity*> activities() const;
    std::vector<Activity*> activities();
    bool empty() const { return activities_.empty(); }

private:
    std::vector<std::unique_ptr<Activity>> activities_;
};

/// Lowers every activity in `registry` into an equivalent sequence diagram
/// added to `model` (named "<activity>_seq"): each call action becomes a
/// message from the performer's lifeline with the pins as arguments/
/// result. Returns the number of diagrams synthesized.
std::size_t lower_activities(Model& model, const ActivityRegistry& registry);

}  // namespace uhcg::uml
