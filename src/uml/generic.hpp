// generic.hpp — bridge between the typed uml::Model API and the reflective
// model::ObjectModel layer.
//
// The paper's transformation is a model-to-model mapping executed by a
// QVT/ATL-class engine over metamodel-conformant object graphs. This file
// registers the UML metamodel with the reflective layer and converts typed
// models to/from generic ones, so uhcg::transform rules can traverse UML
// the way the Java/EMF prototype did.
//
// State machines are deliberately not part of the generic projection: the
// FSM branch maps them directly (uhcg::fsm), as Fig. 1 routes control-flow
// models to a separate generator.
#pragma once

#include "model/metamodel.hpp"
#include "model/object.hpp"
#include "uml/model.hpp"

namespace uhcg::uml {

/// The UML metamodel (subset used by the flow), registered once.
const model::Metamodel& uml_metamodel();

/// Projects a typed model into a generic one (deep copy).
model::ObjectModel to_generic(const Model& model);

/// Rebuilds a typed model from a generic one. Throws std::runtime_error on
/// graphs that do not conform to uml_metamodel().
Model from_generic(const model::ObjectModel& generic);

}  // namespace uhcg::uml
