// engine.hpp — rule-based model-to-model transformation engine.
//
// The paper prescribes QVT/ATL-class technology for the mapping ("In order
// to be flexible, technologies for model transformation, such as smartQVT
// and ATL, should be used"). This engine reproduces the execution model
// those tools share:
//
//  * *matched rules*: (source metaclass, guard) → imperative body creating
//    target elements; applied to every matching source object, in rule
//    registration order;
//  * *trace links*: every rule application records source→target links;
//    later rules resolve references through the trace (ATL's implicit
//    resolveTemp), which is how cross-references in the target model are
//    wired without ordering headaches;
//  * *lazy rules*: invoked explicitly from rule bodies for on-demand
//    element creation (one target per distinct source+rule, memoized).
//
// The engine is metamodel-agnostic: the UML→CAAM mapping in uhcg::core and
// the retargeting examples (UML→FSM) are both expressed on it.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "model/object.hpp"

namespace uhcg::transform {

/// Trace model: records which target objects each rule derived from each
/// source object.
class Trace {
public:
    void record(const model::Object& source, const std::string& rule,
                model::Object& target);

    /// Targets created from `source` by `rule` (creation order).
    std::vector<model::Object*> targets(const model::Object& source,
                                        const std::string& rule) const;
    /// First target created from `source` by any rule, or nullptr.
    model::Object* resolve(const model::Object& source) const;
    /// First target created from `source` by `rule`, or nullptr.
    model::Object* resolve(const model::Object& source,
                           const std::string& rule) const;

    std::size_t link_count() const { return links_.size(); }

private:
    struct Link {
        const model::Object* source;
        std::string rule;
        model::Object* target;
    };
    // (source, rule) hashed once at construction: resolve() is on the hot
    // path of every cross-reference a rule body wires, and rehashing the
    // rule string per probe (and again on table growth) dominated it.
    struct Key {
        const model::Object* source;
        std::string rule;
        std::size_t hash;
        Key(const model::Object* s, std::string r)
            : source(s), rule(std::move(r)) {
            std::size_t h = std::hash<const model::Object*>{}(source);
            hash = h ^ (std::hash<std::string>{}(rule) + 0x9e3779b97f4a7c15ULL +
                        (h << 6) + (h >> 2));
        }
        bool operator==(const Key& o) const {
            return source == o.source && rule == o.rule;
        }
    };
    struct KeyHash {
        std::size_t operator()(const Key& k) const { return k.hash; }
    };
    std::vector<Link> links_;
    // (source, rule) → link indices, for O(1) resolution.
    std::unordered_map<Key, std::vector<std::size_t>, KeyHash> by_source_rule_;
    std::unordered_map<const model::Object*, std::size_t> first_by_source_;
};

class Engine;

/// Execution context handed to rule bodies.
class Context {
public:
    Context(Engine& engine, const model::ObjectModel& source,
            model::ObjectModel& target, Trace& trace)
        : engine_(&engine), source_(&source), target_(&target), trace_(&trace) {}

    const model::ObjectModel& source() const { return *source_; }
    model::ObjectModel& target() { return *target_; }
    Trace& trace() { return *trace_; }

    /// Creates a target object and records the trace link for `rule`.
    model::Object& create(const model::Object& source, const std::string& rule,
                          std::string_view target_class, std::string id = {});

    /// Invokes a lazy rule on `source`; returns the (memoized) target.
    model::Object& call_lazy(const std::string& rule, const model::Object& source);

private:
    Engine* engine_;
    const model::ObjectModel* source_;
    model::ObjectModel* target_;
    Trace* trace_;
};

/// A matched rule.
struct Rule {
    std::string name;
    /// Source metaclass filter; instances conforming to it are matched.
    std::string source_class;
    /// Optional guard; nullptr = always applies.
    std::function<bool(const model::Object&)> guard;
    /// Imperative body. Must create its targets through Context::create so
    /// trace links exist for downstream rules.
    std::function<void(Context&, const model::Object&)> body;
};

/// A lazy rule: creates exactly one target object per source, on demand.
struct LazyRule {
    std::string name;
    std::string target_class;
    /// Body initializing the freshly created target.
    std::function<void(Context&, const model::Object&, model::Object&)> body;
};

/// Per-run statistics (rule → number of applications).
struct RunStats {
    std::map<std::string, std::size_t> applications;
    std::size_t source_objects = 0;
    std::size_t target_objects = 0;
    std::size_t trace_links = 0;
};

class Engine {
public:
    explicit Engine(const model::Metamodel& target_metamodel)
        : target_mm_(&target_metamodel) {}

    Engine& add_rule(Rule rule);
    Engine& add_lazy_rule(LazyRule rule);

    /// Runs all matched rules (registration order; per rule, source objects
    /// in creation order) and returns the target model. The trace out-param
    /// is optional; pass one to inspect/extend the mapping afterwards.
    model::ObjectModel run(const model::ObjectModel& source,
                           Trace* trace_out = nullptr,
                           RunStats* stats_out = nullptr);

private:
    friend class Context;

    const model::Metamodel* target_mm_;
    std::vector<Rule> rules_;
    std::vector<LazyRule> lazy_rules_;
};

}  // namespace uhcg::transform
