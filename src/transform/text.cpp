#include "transform/text.hpp"

#include <cctype>
#include <stdexcept>

namespace uhcg::transform {

CodeWriter& CodeWriter::line(std::string_view text) {
    if (!text.empty())
        for (int i = 0; i < depth_ * indent_width_; ++i) out_.put(' ');
    out_ << text << '\n';
    return *this;
}

CodeWriter& CodeWriter::open(std::string_view text) {
    line(text);
    indent();
    return *this;
}

CodeWriter& CodeWriter::close(std::string_view text) {
    dedent();
    line(text);
    return *this;
}

CodeWriter& CodeWriter::raw(std::string_view text) {
    out_ << text;
    return *this;
}

void CodeWriter::dedent() {
    if (depth_ == 0) throw std::logic_error("CodeWriter: dedent below zero");
    --depth_;
}

std::string expand_template(std::string_view text,
                            const std::map<std::string, std::string>& values) {
    std::string out;
    out.reserve(text.size());
    std::size_t i = 0;
    while (i < text.size()) {
        if (text[i] == '$' && i + 1 < text.size() && text[i + 1] == '{') {
            std::size_t end = text.find('}', i + 2);
            if (end == std::string_view::npos)
                throw std::invalid_argument("unterminated ${...} placeholder");
            std::string key(text.substr(i + 2, end - i - 2));
            auto it = values.find(key);
            if (it == values.end())
                throw std::invalid_argument("template placeholder '${" + key +
                                            "}' has no value");
            out += it->second;
            i = end + 1;
        } else {
            out += text[i++];
        }
    }
    return out;
}

std::string sanitize_identifier(std::string_view name) {
    std::string out;
    out.reserve(name.size());
    for (char c : name)
        out += std::isalnum(static_cast<unsigned char>(c)) ? c : '_';
    if (out.empty() || std::isdigit(static_cast<unsigned char>(out[0])))
        out.insert(out.begin(), '_');
    return out;
}

}  // namespace uhcg::transform
