// text.hpp — model-to-text support (Fig. 2, step 4 is a "model-to-text
// transformation"). Two pieces:
//  * CodeWriter — indentation-aware emitter used by every generator
//    (mdl, C, C++ thread code);
//  * Template — minimal ${placeholder} expansion for boilerplate headers.
#pragma once

#include <map>
#include <sstream>
#include <string>
#include <string_view>

namespace uhcg::transform {

/// Indentation-aware text emitter.
class CodeWriter {
public:
    explicit CodeWriter(int indent_width = 4) : indent_width_(indent_width) {}

    /// Writes one line at the current indentation.
    CodeWriter& line(std::string_view text = {});
    /// Writes a line and increases indentation (e.g. "if (x) {").
    CodeWriter& open(std::string_view text);
    /// Decreases indentation and writes a line (e.g. "}").
    CodeWriter& close(std::string_view text = "}");
    /// Raw append, no indentation or newline.
    CodeWriter& raw(std::string_view text);
    CodeWriter& blank() { return line(); }

    void indent() { ++depth_; }
    void dedent();

    std::string str() const { return out_.str(); }

private:
    std::ostringstream out_;
    int indent_width_;
    int depth_ = 0;
};

/// Expands ${key} placeholders from the given map. Unknown placeholders
/// throw std::invalid_argument (silent misses breed broken codegen).
std::string expand_template(std::string_view text,
                            const std::map<std::string, std::string>& values);

/// Makes an arbitrary name a valid C identifier (non-alnum → '_', leading
/// digit prefixed). Collision-free renaming is the caller's concern.
std::string sanitize_identifier(std::string_view name);

}  // namespace uhcg::transform
