#include "transform/engine.hpp"

#include <stdexcept>

namespace uhcg::transform {

void Trace::record(const model::Object& source, const std::string& rule,
                   model::Object& target) {
    links_.push_back({&source, rule, &target});
    by_source_rule_[Key(&source, rule)].push_back(links_.size() - 1);
    first_by_source_.emplace(&source, links_.size() - 1);
}

std::vector<model::Object*> Trace::targets(const model::Object& source,
                                           const std::string& rule) const {
    std::vector<model::Object*> out;
    auto it = by_source_rule_.find(Key(&source, rule));
    if (it == by_source_rule_.end()) return out;
    for (std::size_t i : it->second) out.push_back(links_[i].target);
    return out;
}

model::Object* Trace::resolve(const model::Object& source) const {
    auto it = first_by_source_.find(&source);
    return it == first_by_source_.end() ? nullptr : links_[it->second].target;
}

model::Object* Trace::resolve(const model::Object& source,
                              const std::string& rule) const {
    auto it = by_source_rule_.find(Key(&source, rule));
    if (it == by_source_rule_.end() || it->second.empty()) return nullptr;
    return links_[it->second.front()].target;
}

model::Object& Context::create(const model::Object& source, const std::string& rule,
                               std::string_view target_class, std::string id) {
    model::Object& obj = target_->create(target_class, std::move(id));
    trace_->record(source, rule, obj);
    return obj;
}

model::Object& Context::call_lazy(const std::string& rule,
                                  const model::Object& source) {
    // Memoized: at most one target per (source, lazy rule).
    if (model::Object* existing = trace_->resolve(source, rule)) return *existing;
    for (const LazyRule& lazy : engine_->lazy_rules_) {
        if (lazy.name != rule) continue;
        model::Object& target = create(source, rule, lazy.target_class);
        lazy.body(*this, source, target);
        return target;
    }
    throw std::invalid_argument("no lazy rule named '" + rule + "'");
}

Engine& Engine::add_rule(Rule rule) {
    if (rule.name.empty() || !rule.body)
        throw std::invalid_argument("rules need a name and a body");
    rules_.push_back(std::move(rule));
    return *this;
}

Engine& Engine::add_lazy_rule(LazyRule rule) {
    if (rule.name.empty() || !rule.body)
        throw std::invalid_argument("lazy rules need a name and a body");
    lazy_rules_.push_back(std::move(rule));
    return *this;
}

model::ObjectModel Engine::run(const model::ObjectModel& source, Trace* trace_out,
                               RunStats* stats_out) {
    model::ObjectModel target(*target_mm_);
    Trace local_trace;
    Trace& trace = trace_out ? *trace_out : local_trace;
    Context ctx(*this, source, target, trace);

    RunStats stats;
    stats.source_objects = source.size();
    for (const Rule& rule : rules_) {
        for (const model::Object* obj : source.all_of(rule.source_class)) {
            if (rule.guard && !rule.guard(*obj)) continue;
            rule.body(ctx, *obj);
            ++stats.applications[rule.name];
        }
    }
    stats.target_objects = target.size();
    stats.trace_links = trace.link_count();
    if (stats_out) *stats_out = stats;
    return target;
}

}  // namespace uhcg::transform
