// object.hpp — typed object instances conforming to a Metamodel.
//
// Objects live in an ObjectModel, which owns every instance (stable
// addresses, arena-style). Containment is recorded as parent/child links on
// top of that central ownership, so moving an object between containers
// never invalidates pointers — the property the transformation engine's
// trace links depend on.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "model/metamodel.hpp"

namespace uhcg::model {

/// Slot value for attributes. Enum literals are carried as strings and
/// validated against the declaring MetaAttribute.
using Value = std::variant<std::string, std::int64_t, double, bool>;

std::string value_to_string(const Value& value);
/// Parses `text` according to `type`; throws std::invalid_argument on
/// malformed input.
Value value_from_string(AttrType type, const std::string& text);

class ObjectModel;

/// One instance of a MetaClass.
class Object {
public:
    Object(const MetaClass& meta, std::string id, ObjectModel* owner)
        : meta_(&meta), id_(std::move(id)), owner_(owner) {}
    Object(const Object&) = delete;
    Object& operator=(const Object&) = delete;

    const MetaClass& meta() const { return *meta_; }
    const std::string& id() const { return id_; }
    bool is_a(std::string_view class_name) const;

    // --- attributes -------------------------------------------------------
    /// Sets an attribute slot; throws std::invalid_argument if the class has
    /// no such attribute or the value's type does not match the declaration.
    void set(std::string_view name, Value value);
    void set(std::string_view name, const char* value) {
        set(name, Value(std::string(value)));
    }
    /// True when the slot was explicitly set (defaults do not count).
    bool has(std::string_view name) const;
    /// Returns the slot value, falling back to the declared default; throws
    /// std::out_of_range when the slot is unset and has no default.
    Value get(std::string_view name) const;
    std::string get_string(std::string_view name) const;
    std::int64_t get_int(std::string_view name) const;
    double get_real(std::string_view name) const;
    bool get_bool(std::string_view name) const;

    // --- references -------------------------------------------------------
    /// Appends to a many-reference / sets a single reference. Containment
    /// references also reparent the target (which must be parentless for
    /// add; set_ref releases any previous child first).
    void add_ref(std::string_view name, Object& target);
    void set_ref(std::string_view name, Object* target);
    void clear_ref(std::string_view name);
    bool remove_ref(std::string_view name, Object& target);
    /// Targets of the reference, declaration order. Empty when unset.
    const std::vector<Object*>& refs(std::string_view name) const;
    /// Single-reference convenience: first target or nullptr.
    Object* ref(std::string_view name) const;

    /// Containing object (via some containment reference) or nullptr.
    Object* parent() const { return parent_; }
    /// Name of the containment reference in parent holding this object.
    const std::string& containing_feature() const { return containing_feature_; }

    /// All objects directly contained by this one (all containment refs,
    /// declaration order of the references).
    std::vector<Object*> contained() const;

private:
    friend class ObjectModel;

    const MetaReference& checked_reference(std::string_view name) const;

    const MetaClass* meta_;
    std::string id_;
    ObjectModel* owner_;
    Object* parent_ = nullptr;
    std::string containing_feature_;
    std::map<std::string, Value, std::less<>> attrs_;
    std::map<std::string, std::vector<Object*>, std::less<>> refs_;
};

/// Owns all Objects of one model instance and indexes them by id.
class ObjectModel {
public:
    explicit ObjectModel(const Metamodel& meta) : meta_(&meta) {}
    ObjectModel(const ObjectModel&) = delete;
    ObjectModel& operator=(const ObjectModel&) = delete;
    ObjectModel(ObjectModel&& other) noexcept { *this = std::move(other); }
    ObjectModel& operator=(ObjectModel&& other) noexcept {
        meta_ = other.meta_;
        objects_ = std::move(other.objects_);
        by_id_ = std::move(other.by_id_);
        next_id_ = other.next_id_;
        for (auto& obj : objects_) obj->owner_ = this;  // re-anchor back pointers
        return *this;
    }

    const Metamodel& metamodel() const { return *meta_; }

    /// Creates an instance of `class_name` (must exist and be concrete).
    /// A fresh id is generated when `id` is empty.
    Object& create(std::string_view class_name, std::string id = {});

    /// nullptr when absent.
    Object* find(std::string_view id);
    const Object* find(std::string_view id) const;

    /// Objects with no parent, creation order.
    std::vector<Object*> roots() const;
    /// Every object, creation order.
    std::vector<Object*> objects() const;
    /// All objects whose class conforms to `class_name`, creation order.
    std::vector<Object*> all_of(std::string_view class_name) const;

    std::size_t size() const { return objects_.size(); }

private:
    const Metamodel* meta_;
    std::vector<std::unique_ptr<Object>> objects_;
    std::map<std::string, Object*, std::less<>> by_id_;
    std::uint64_t next_id_ = 1;
};

}  // namespace uhcg::model
