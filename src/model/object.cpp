#include "model/object.hpp"

#include <algorithm>

namespace uhcg::model {
namespace {

const std::vector<Object*> kNoRefs;

bool type_matches(AttrType type, const Value& value) {
    switch (type) {
        case AttrType::String:
        case AttrType::Enum:
            return std::holds_alternative<std::string>(value);
        case AttrType::Int: return std::holds_alternative<std::int64_t>(value);
        case AttrType::Real:
            // Accept ints for real slots; widen silently.
            return std::holds_alternative<double>(value) ||
                   std::holds_alternative<std::int64_t>(value);
        case AttrType::Bool: return std::holds_alternative<bool>(value);
    }
    return false;
}

}  // namespace

std::string value_to_string(const Value& value) {
    return std::visit(
        [](const auto& v) -> std::string {
            using T = std::decay_t<decltype(v)>;
            if constexpr (std::is_same_v<T, std::string>) {
                return v;
            } else if constexpr (std::is_same_v<T, bool>) {
                return v ? "true" : "false";
            } else {
                return std::to_string(v);
            }
        },
        value);
}

Value value_from_string(AttrType type, const std::string& text) {
    try {
        switch (type) {
            case AttrType::String:
            case AttrType::Enum:
                return text;
            case AttrType::Int: return static_cast<std::int64_t>(std::stoll(text));
            case AttrType::Real: return std::stod(text);
            case AttrType::Bool:
                if (text == "true" || text == "1") return true;
                if (text == "false" || text == "0") return false;
                throw std::invalid_argument("not a bool");
        }
    } catch (const std::exception&) {
        throw std::invalid_argument("cannot parse '" + text + "' as " +
                                    std::string(to_string(type)));
    }
    throw std::invalid_argument("unknown attribute type");
}

bool Object::is_a(std::string_view class_name) const {
    const MetaClass* ancestor = owner_->metamodel().find_class(class_name);
    return ancestor != nullptr && meta_->conforms_to(*ancestor);
}

void Object::set(std::string_view name, Value value) {
    const MetaAttribute* decl = meta_->find_attribute(name);
    if (!decl)
        throw std::invalid_argument("class " + meta_->name() +
                                    " has no attribute '" + std::string(name) + "'");
    if (!type_matches(decl->type, value))
        throw std::invalid_argument("type mismatch setting " + meta_->name() + "." +
                                    std::string(name));
    if (decl->type == AttrType::Real && std::holds_alternative<std::int64_t>(value))
        value = static_cast<double>(std::get<std::int64_t>(value));
    if (decl->type == AttrType::Enum) {
        const std::string& literal = std::get<std::string>(value);
        if (std::find(decl->literals.begin(), decl->literals.end(), literal) ==
            decl->literals.end())
            throw std::invalid_argument("'" + literal + "' is not a literal of enum " +
                                        meta_->name() + "." + std::string(name));
    }
    attrs_.insert_or_assign(std::string(name), std::move(value));
}

bool Object::has(std::string_view name) const {
    return attrs_.find(name) != attrs_.end();
}

Value Object::get(std::string_view name) const {
    if (auto it = attrs_.find(name); it != attrs_.end()) return it->second;
    const MetaAttribute* decl = meta_->find_attribute(name);
    if (!decl)
        throw std::out_of_range("class " + meta_->name() + " has no attribute '" +
                                std::string(name) + "'");
    if (decl->default_value)
        return value_from_string(decl->type, *decl->default_value);
    throw std::out_of_range("attribute " + meta_->name() + "." + std::string(name) +
                            " of object '" + id_ + "' is unset and has no default");
}

std::string Object::get_string(std::string_view name) const {
    return std::get<std::string>(get(name));
}
std::int64_t Object::get_int(std::string_view name) const {
    return std::get<std::int64_t>(get(name));
}
double Object::get_real(std::string_view name) const {
    Value v = get(name);
    if (std::holds_alternative<std::int64_t>(v))
        return static_cast<double>(std::get<std::int64_t>(v));
    return std::get<double>(v);
}
bool Object::get_bool(std::string_view name) const {
    return std::get<bool>(get(name));
}

const MetaReference& Object::checked_reference(std::string_view name) const {
    const MetaReference* decl = meta_->find_reference(name);
    if (!decl)
        throw std::invalid_argument("class " + meta_->name() + " has no reference '" +
                                    std::string(name) + "'");
    return *decl;
}

void Object::add_ref(std::string_view name, Object& target) {
    const MetaReference& decl = checked_reference(name);
    const MetaClass* target_class = owner_->metamodel().find_class(decl.target);
    if (target_class && !target.meta().conforms_to(*target_class))
        throw std::invalid_argument("object of class " + target.meta().name() +
                                    " cannot be referenced by " + meta_->name() + "." +
                                    decl.name + " (expects " + decl.target + ")");
    auto& slot = refs_[std::string(name)];
    if (!decl.many && !slot.empty())
        throw std::invalid_argument("reference " + meta_->name() + "." + decl.name +
                                    " is single-valued and already set");
    if (decl.containment) {
        if (target.parent_ != nullptr)
            throw std::invalid_argument("object '" + target.id() +
                                        "' is already contained elsewhere");
        target.parent_ = this;
        target.containing_feature_ = decl.name;
    }
    slot.push_back(&target);
}

void Object::set_ref(std::string_view name, Object* target) {
    clear_ref(name);
    if (target != nullptr) add_ref(name, *target);
}

void Object::clear_ref(std::string_view name) {
    const MetaReference& decl = checked_reference(name);
    auto it = refs_.find(name);
    if (it == refs_.end()) return;
    if (decl.containment) {
        for (Object* child : it->second) {
            child->parent_ = nullptr;
            child->containing_feature_.clear();
        }
    }
    refs_.erase(it);
}

bool Object::remove_ref(std::string_view name, Object& target) {
    const MetaReference& decl = checked_reference(name);
    auto it = refs_.find(name);
    if (it == refs_.end()) return false;
    auto pos = std::find(it->second.begin(), it->second.end(), &target);
    if (pos == it->second.end()) return false;
    if (decl.containment) {
        target.parent_ = nullptr;
        target.containing_feature_.clear();
    }
    it->second.erase(pos);
    return true;
}

const std::vector<Object*>& Object::refs(std::string_view name) const {
    checked_reference(name);  // diagnose typos even on unset slots
    auto it = refs_.find(name);
    return it == refs_.end() ? kNoRefs : it->second;
}

Object* Object::ref(std::string_view name) const {
    const auto& slot = refs(name);
    return slot.empty() ? nullptr : slot.front();
}

std::vector<Object*> Object::contained() const {
    std::vector<Object*> out;
    for (const MetaReference* decl : meta_->all_references()) {
        if (!decl->containment) continue;
        auto it = refs_.find(decl->name);
        if (it == refs_.end()) continue;
        out.insert(out.end(), it->second.begin(), it->second.end());
    }
    return out;
}

Object& ObjectModel::create(std::string_view class_name, std::string id) {
    const MetaClass& meta = meta_->get_class(class_name);
    if (meta.is_abstract())
        throw std::invalid_argument("cannot instantiate abstract class " +
                                    meta.name());
    if (id.empty()) {
        do {
            id = "_" + std::to_string(next_id_++);
        } while (by_id_.count(id) != 0);
    } else if (by_id_.count(id) != 0) {
        throw std::invalid_argument("duplicate object id: " + id);
    }
    objects_.push_back(std::make_unique<Object>(meta, id, this));
    Object& obj = *objects_.back();
    by_id_.emplace(obj.id(), &obj);
    return obj;
}

Object* ObjectModel::find(std::string_view id) {
    auto it = by_id_.find(id);
    return it == by_id_.end() ? nullptr : it->second;
}

const Object* ObjectModel::find(std::string_view id) const {
    auto it = by_id_.find(id);
    return it == by_id_.end() ? nullptr : it->second;
}

std::vector<Object*> ObjectModel::roots() const {
    std::vector<Object*> out;
    for (const auto& obj : objects_)
        if (obj->parent() == nullptr) out.push_back(obj.get());
    return out;
}

std::vector<Object*> ObjectModel::objects() const {
    std::vector<Object*> out;
    out.reserve(objects_.size());
    for (const auto& obj : objects_) out.push_back(obj.get());
    return out;
}

std::vector<Object*> ObjectModel::all_of(std::string_view class_name) const {
    std::vector<Object*> out;
    for (const auto& obj : objects_)
        if (obj->is_a(class_name)) out.push_back(obj.get());
    return out;
}

}  // namespace uhcg::model
