// ecore_io.hpp — E-core-style XML serialization of ObjectModels.
//
// The paper's step 3 hands the intermediate Simulink CAAM around "using the
// E-core format (XML-like)". We reproduce that interchange format:
//
//   <uhcg:model metamodel="SimulinkCAAM">
//     <object class="Model" id="m1" name="top">
//       <object class="CpuSubsystem" id="c1" feature="cpus" .../>
//       <ref name="source" target="c1"/>
//     </object>
//   </uhcg:model>
//
// Attributes are serialized as XML attributes, containment as nested
// <object> elements tagged with the owning feature, and cross references as
// <ref> elements resolved by id in a second pass.
#pragma once

#include <string>

#include "model/object.hpp"
#include "xml/dom.hpp"

namespace uhcg::model {

/// Serializes `model` (every root object and its containment tree).
xml::Document to_xml(const ObjectModel& model);
std::string to_xml_string(const ObjectModel& model);

/// Rebuilds an ObjectModel from a document produced by to_xml. The caller
/// supplies the metamodel; mismatched class/feature names throw
/// std::runtime_error.
ObjectModel from_xml(const Metamodel& meta, const xml::Document& doc);
ObjectModel from_xml_string(const Metamodel& meta, const std::string& text);

void save_file(const ObjectModel& model, const std::string& path);
ObjectModel load_file(const Metamodel& meta, const std::string& path);

}  // namespace uhcg::model
