#include "model/metamodel.hpp"

#include <set>

namespace uhcg::model {

std::string_view to_string(AttrType type) {
    switch (type) {
        case AttrType::String: return "string";
        case AttrType::Int: return "int";
        case AttrType::Real: return "real";
        case AttrType::Bool: return "bool";
        case AttrType::Enum: return "enum";
    }
    return "?";
}

const MetaClass* MetaClass::super() const {
    if (super_name_.empty()) return nullptr;
    return owner_->find_class(super_name_);
}

MetaAttribute& MetaClass::add_attribute(MetaAttribute attr) {
    attrs_.push_back(std::move(attr));
    return attrs_.back();
}

MetaReference& MetaClass::add_reference(MetaReference ref) {
    refs_.push_back(std::move(ref));
    return refs_.back();
}

const MetaAttribute* MetaClass::find_attribute(std::string_view name) const {
    for (const auto& a : attrs_)
        if (a.name == name) return &a;
    if (const MetaClass* s = super()) return s->find_attribute(name);
    return nullptr;
}

const MetaReference* MetaClass::find_reference(std::string_view name) const {
    for (const auto& r : refs_)
        if (r.name == name) return &r;
    if (const MetaClass* s = super()) return s->find_reference(name);
    return nullptr;
}

std::vector<const MetaAttribute*> MetaClass::all_attributes() const {
    std::vector<const MetaAttribute*> out;
    if (const MetaClass* s = super()) out = s->all_attributes();
    for (const auto& a : attrs_) out.push_back(&a);
    return out;
}

std::vector<const MetaReference*> MetaClass::all_references() const {
    std::vector<const MetaReference*> out;
    if (const MetaClass* s = super()) out = s->all_references();
    for (const auto& r : refs_) out.push_back(&r);
    return out;
}

bool MetaClass::conforms_to(const MetaClass& ancestor) const {
    for (const MetaClass* c = this; c != nullptr; c = c->super())
        if (c == &ancestor) return true;
    return false;
}

MetaClass& Metamodel::add_class(std::string name) {
    auto [it, inserted] =
        classes_.emplace(name, std::make_unique<MetaClass>(name, this));
    if (!inserted)
        throw std::invalid_argument("duplicate metaclass: " + name);
    order_.push_back(it->second.get());
    return *it->second;
}

const MetaClass* Metamodel::find_class(std::string_view name) const {
    auto it = classes_.find(name);
    return it == classes_.end() ? nullptr : it->second.get();
}

MetaClass* Metamodel::find_class(std::string_view name) {
    auto it = classes_.find(name);
    return it == classes_.end() ? nullptr : it->second.get();
}

const MetaClass& Metamodel::get_class(std::string_view name) const {
    if (const MetaClass* c = find_class(name)) return *c;
    throw std::out_of_range("metamodel '" + name_ + "' has no class '" +
                            std::string(name) + "'");
}

std::vector<const MetaClass*> Metamodel::classes() const { return order_; }

std::vector<std::string> Metamodel::check() const {
    std::vector<std::string> problems;
    for (const MetaClass* c : order_) {
        // Inheritance chain must resolve and be acyclic.
        std::set<const MetaClass*> seen;
        for (const MetaClass* s = c; s != nullptr; s = s->super()) {
            if (!seen.insert(s).second) {
                problems.push_back("inheritance cycle through class " + c->name());
                break;
            }
        }
        for (const auto& a : c->own_attributes()) {
            if (a.type == AttrType::Enum && a.literals.empty())
                problems.push_back("enum attribute " + c->name() + "." + a.name +
                                   " has no literals");
        }
        for (const auto& r : c->own_references()) {
            if (!find_class(r.target))
                problems.push_back("reference " + c->name() + "." + r.name +
                                   " targets unknown class " + r.target);
        }
    }
    return problems;
}

}  // namespace uhcg::model
