// metamodel.hpp — a small EMF/E-core-like reflective model layer.
//
// The paper's prototype was "implemented in Java using the API provided by
// the Eclipse EMF"; model-to-model transformation operates on *typed object
// graphs conforming to a metamodel*, not on hand-written structs. This
// layer reproduces that: a Metamodel declares classes with attributes
// (string/int/double/bool/enum), containment references (ownership) and
// cross references; Objects are instances whose slots are checked against
// the metamodel at mutation time.
//
// Both the UML metamodel and the Simulink CAAM metamodel register
// themselves here, which is what lets the generic transform engine and the
// E-core XML serializer work on either side of the mapping.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace uhcg::model {

class MetaClass;
class Metamodel;

/// Primitive slot types supported by attributes.
enum class AttrType { String, Int, Real, Bool, Enum };

std::string_view to_string(AttrType type);

/// Declaration of one attribute of a MetaClass.
struct MetaAttribute {
    std::string name;
    AttrType type = AttrType::String;
    /// For Enum attributes: the closed set of admissible literals.
    std::vector<std::string> literals;
    /// Serialized default; empty optional means "required, no default".
    std::optional<std::string> default_value;
};

/// Declaration of one reference of a MetaClass.
struct MetaReference {
    std::string name;
    /// Target class name (resolved against the owning metamodel).
    std::string target;
    /// Containment references own their targets (tree edges); non-containment
    /// references are cross links serialized by id.
    bool containment = false;
    /// Upper bound: false = at most one target, true = ordered collection.
    bool many = false;
    /// Lower bound of 1 makes validation flag absent targets.
    bool required = false;
};

/// A class in the metamodel: named, optionally abstract, single inheritance.
class MetaClass {
public:
    friend class Metamodel;
    MetaClass(std::string name, const Metamodel* owner)
        : name_(std::move(name)), owner_(owner) {}

    const std::string& name() const { return name_; }
    bool is_abstract() const { return abstract_; }
    void set_abstract(bool value) { abstract_ = value; }

    /// Sets the superclass by name (resolved lazily; must exist by the time
    /// the metamodel is frozen).
    void set_super(std::string name) { super_name_ = std::move(name); }
    const MetaClass* super() const;

    MetaAttribute& add_attribute(MetaAttribute attr);
    MetaReference& add_reference(MetaReference ref);

    /// Lookup including inherited features; nullptr when absent.
    const MetaAttribute* find_attribute(std::string_view name) const;
    const MetaReference* find_reference(std::string_view name) const;

    /// Own (non-inherited) features, declaration order.
    const std::vector<MetaAttribute>& own_attributes() const { return attrs_; }
    const std::vector<MetaReference>& own_references() const { return refs_; }

    /// All features including inherited, supers first.
    std::vector<const MetaAttribute*> all_attributes() const;
    std::vector<const MetaReference*> all_references() const;

    /// True if this class is `ancestor` or transitively inherits from it.
    bool conforms_to(const MetaClass& ancestor) const;

private:
    std::string name_;
    const Metamodel* owner_;
    bool abstract_ = false;
    std::string super_name_;
    std::vector<MetaAttribute> attrs_;
    std::vector<MetaReference> refs_;
};

/// A metamodel: a named package of MetaClasses.
class Metamodel {
public:
    explicit Metamodel(std::string name) : name_(std::move(name)) {}
    Metamodel(const Metamodel&) = delete;
    Metamodel& operator=(const Metamodel&) = delete;
    Metamodel(Metamodel&& other) noexcept { *this = std::move(other); }
    Metamodel& operator=(Metamodel&& other) noexcept {
        name_ = std::move(other.name_);
        classes_ = std::move(other.classes_);
        order_ = std::move(other.order_);
        for (auto& [_, cls] : classes_) cls->owner_ = this;  // re-anchor
        return *this;
    }

    const std::string& name() const { return name_; }

    MetaClass& add_class(std::string name);
    /// nullptr when absent.
    const MetaClass* find_class(std::string_view name) const;
    MetaClass* find_class(std::string_view name);
    /// Throws std::out_of_range when absent.
    const MetaClass& get_class(std::string_view name) const;

    std::vector<const MetaClass*> classes() const;

    /// Checks internal consistency (supers resolve, reference targets exist,
    /// enum attributes have literals, no inheritance cycles). Returns the
    /// list of problems; empty means well-formed.
    std::vector<std::string> check() const;

private:
    std::string name_;
    // map keeps pointers stable and lookup cheap; declaration order is kept
    // separately for deterministic iteration.
    std::map<std::string, std::unique_ptr<MetaClass>, std::less<>> classes_;
    std::vector<const MetaClass*> order_;
};

}  // namespace uhcg::model
