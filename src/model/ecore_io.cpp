#include "model/ecore_io.hpp"

#include <stdexcept>

#include "xml/parser.hpp"
#include "xml/writer.hpp"

namespace uhcg::model {
namespace {

void write_object(xml::Element& parent, const Object& obj,
                  const std::string& feature) {
    xml::Element& elem = parent.add_child("object");
    elem.set_attribute("class", obj.meta().name());
    elem.set_attribute("id", obj.id());
    if (!feature.empty()) elem.set_attribute("feature", feature);
    for (const MetaAttribute* attr : obj.meta().all_attributes()) {
        if (obj.has(attr->name))
            elem.set_attribute(attr->name, value_to_string(obj.get(attr->name)));
    }
    for (const MetaReference* ref : obj.meta().all_references()) {
        const auto& targets = obj.refs(ref->name);
        if (targets.empty()) continue;
        if (ref->containment) {
            for (const Object* child : targets)
                write_object(elem, *child, ref->name);
        } else {
            for (const Object* target : targets) {
                xml::Element& r = elem.add_child("ref");
                r.set_attribute("name", ref->name);
                r.set_attribute("target", target->id());
            }
        }
    }
}

struct PendingRef {
    Object* source;
    std::string feature;
    std::string target_id;
};

Object& read_object(ObjectModel& model, const xml::Element& elem,
                    std::vector<PendingRef>& pending) {
    const std::string* class_name = elem.find_attribute("class");
    const std::string* id = elem.find_attribute("id");
    if (!class_name || !id)
        throw std::runtime_error("object element missing class/id attribute");
    Object& obj = model.create(*class_name, *id);
    for (const auto& attr : elem.attributes()) {
        if (attr.name == "class" || attr.name == "id" || attr.name == "feature")
            continue;
        const MetaAttribute* decl = obj.meta().find_attribute(attr.name);
        if (!decl)
            throw std::runtime_error("class " + *class_name +
                                     " has no attribute '" + attr.name + "'");
        obj.set(attr.name, value_from_string(decl->type, attr.value));
    }
    for (const xml::Element* child : elem.child_elements()) {
        if (child->name() == "object") {
            Object& nested = read_object(model, *child, pending);
            std::string feature = child->attribute_or("feature", "");
            if (feature.empty())
                throw std::runtime_error("contained object '" + nested.id() +
                                         "' lacks a feature attribute");
            obj.add_ref(feature, nested);
        } else if (child->name() == "ref") {
            pending.push_back({&obj, child->attribute_or("name", ""),
                               child->attribute_or("target", "")});
        } else {
            throw std::runtime_error("unexpected element <" + child->name() +
                                     "> inside object");
        }
    }
    return obj;
}

}  // namespace

xml::Document to_xml(const ObjectModel& model) {
    xml::Document doc("uhcg:model");
    doc.root().set_attribute("metamodel", model.metamodel().name());
    for (const Object* root : model.roots()) write_object(doc.root(), *root, "");
    return doc;
}

std::string to_xml_string(const ObjectModel& model) {
    return xml::write(to_xml(model));
}

ObjectModel from_xml(const Metamodel& meta, const xml::Document& doc) {
    if (doc.root().name() != "uhcg:model")
        throw std::runtime_error("not a uhcg model file (root is <" +
                                 doc.root().name() + ">)");
    std::string declared = doc.root().attribute_or("metamodel", "");
    if (declared != meta.name())
        throw std::runtime_error("model file conforms to metamodel '" + declared +
                                 "', expected '" + meta.name() + "'");
    ObjectModel model(meta);
    std::vector<PendingRef> pending;
    for (const xml::Element* child : doc.root().children_named("object"))
        read_object(model, *child, pending);
    for (const auto& p : pending) {
        Object* target = model.find(p.target_id);
        if (!target)
            throw std::runtime_error("dangling reference " + p.feature + " -> " +
                                     p.target_id);
        p.source->add_ref(p.feature, *target);
    }
    return model;
}

ObjectModel from_xml_string(const Metamodel& meta, const std::string& text) {
    return from_xml(meta, xml::parse(text));
}

void save_file(const ObjectModel& model, const std::string& path) {
    xml::write_file(to_xml(model), path);
}

ObjectModel load_file(const Metamodel& meta, const std::string& path) {
    return from_xml(meta, xml::parse_file(path));
}

}  // namespace uhcg::model
