// validate.hpp — conformance checking of an ObjectModel against its
// metamodel. The transformation pipeline validates the intermediate
// Simulink CAAM model (Fig. 2, step 3) before mdl generation; a model that
// fails validation is rejected instead of producing a broken .mdl file.
#pragma once

#include <string>
#include <vector>

#include "diag/diag.hpp"
#include "model/object.hpp"

namespace uhcg::model {

struct Diagnostic {
    /// Id of the offending object (empty for model-level problems).
    std::string object_id;
    std::string message;
};

/// Checks every object: required attributes present (or defaulted), enum
/// values legal, required references populated, single-valued references
/// not over-filled, containment forest acyclic. Returns all problems found.
std::vector<Diagnostic> validate(const ObjectModel& model);

/// Reports every conformance problem into `engine` (code
/// "model.conformance", the object id in the message) and returns whether
/// the model conforms.
bool validate(const ObjectModel& model, diag::DiagnosticEngine& engine);

/// Throws std::runtime_error listing every diagnostic if validation fails.
void validate_or_throw(const ObjectModel& model);

}  // namespace uhcg::model
