#include "model/validate.hpp"

#include <set>
#include <sstream>

namespace uhcg::model {

std::vector<Diagnostic> validate(const ObjectModel& model) {
    std::vector<Diagnostic> out;
    for (const Object* obj : model.objects()) {
        const MetaClass& meta = obj->meta();
        for (const MetaAttribute* attr : meta.all_attributes()) {
            if (!obj->has(attr->name) && !attr->default_value)
                out.push_back({obj->id(), "required attribute '" + attr->name +
                                              "' of " + meta.name() + " is unset"});
        }
        for (const MetaReference* ref : meta.all_references()) {
            const auto& targets = obj->refs(ref->name);
            if (ref->required && targets.empty())
                out.push_back({obj->id(), "required reference '" + ref->name +
                                              "' of " + meta.name() + " is empty"});
            if (!ref->many && targets.size() > 1)
                out.push_back({obj->id(), "single-valued reference '" + ref->name +
                                              "' holds " +
                                              std::to_string(targets.size()) +
                                              " targets"});
        }
        // Containment must be acyclic: walk to the root, detecting loops.
        std::set<const Object*> seen;
        for (const Object* p = obj; p != nullptr; p = p->parent()) {
            if (!seen.insert(p).second) {
                out.push_back({obj->id(), "containment cycle detected"});
                break;
            }
        }
    }
    return out;
}

bool validate(const ObjectModel& model, diag::DiagnosticEngine& engine) {
    auto diagnostics = validate(model);
    for (const Diagnostic& d : diagnostics)
        engine.error(diag::codes::kModelConformance,
                     d.object_id.empty() ? d.message
                                         : "[" + d.object_id + "] " + d.message);
    return diagnostics.empty();
}

void validate_or_throw(const ObjectModel& model) {
    auto diagnostics = validate(model);
    if (diagnostics.empty()) return;
    std::ostringstream msg;
    msg << "model does not conform to metamodel '" << model.metamodel().name()
        << "' (" << diagnostics.size() << " problem(s)):";
    for (const auto& d : diagnostics)
        msg << "\n  [" << d.object_id << "] " << d.message;
    throw std::runtime_error(msg.str());
}

}  // namespace uhcg::model
