// machine.hpp — flat finite-state-machine metamodel, the target language of
// the control-flow branch (Fig. 2 maps UML to "FSM meta-model"; Fig. 1
// feeds it to an FSM-based code generator in the BridgePoint style).
//
// Unlike uml::StateMachine, an fsm::Machine is flat: composite states have
// been dissolved by the UML→FSM mapping (fsm/from_uml.hpp). Guards and
// actions are opaque strings in the target language; the interpreter binds
// them to callbacks, the code generator splices them verbatim.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace uhcg::fsm {

using StateId = std::size_t;

struct FsmTransition {
    StateId source = 0;
    StateId target = 0;
    std::string event;   ///< empty = completion transition
    std::string guard;   ///< empty = unguarded
    std::string action;  ///< effect code
};

class Machine {
public:
    explicit Machine(std::string name) : name_(std::move(name)) {}

    const std::string& name() const { return name_; }

    StateId add_state(std::string name, std::string entry_action = {},
                      std::string exit_action = {});
    std::size_t state_count() const { return state_names_.size(); }
    const std::string& state_name(StateId s) const { return state_names_.at(s); }
    const std::string& entry_action(StateId s) const { return entries_.at(s); }
    const std::string& exit_action(StateId s) const { return exits_.at(s); }
    std::optional<StateId> find_state(std::string_view name) const;

    void set_initial(StateId s);
    StateId initial() const;
    bool has_initial() const { return initial_.has_value(); }

    void add_transition(FsmTransition t);
    const std::vector<FsmTransition>& transitions() const { return transitions_; }
    /// Transitions leaving `s`, declaration order (= firing priority).
    std::vector<const FsmTransition*> outgoing(StateId s) const;

    /// Distinct event names, first-use order.
    std::vector<std::string> events() const;

    /// Static checks: initial state set, endpoints in range, no duplicate
    /// (state, event, guard) triple (nondeterminism), all states reachable
    /// from the initial state. Returns problems; empty = well-formed.
    std::vector<std::string> check() const;

private:
    std::string name_;
    std::vector<std::string> state_names_;
    std::vector<std::string> entries_;
    std::vector<std::string> exits_;
    std::vector<FsmTransition> transitions_;
    std::optional<StateId> initial_;
};

}  // namespace uhcg::fsm
