#include "fsm/machine.hpp"

#include <algorithm>
#include <set>
#include <tuple>
#include <stdexcept>

namespace uhcg::fsm {

StateId Machine::add_state(std::string name, std::string entry_action,
                           std::string exit_action) {
    if (find_state(name))
        throw std::invalid_argument("duplicate state '" + name + "' in machine " +
                                    name_);
    state_names_.push_back(std::move(name));
    entries_.push_back(std::move(entry_action));
    exits_.push_back(std::move(exit_action));
    return state_names_.size() - 1;
}

std::optional<StateId> Machine::find_state(std::string_view name) const {
    for (StateId s = 0; s < state_names_.size(); ++s)
        if (state_names_[s] == name) return s;
    return std::nullopt;
}

void Machine::set_initial(StateId s) {
    if (s >= state_count()) throw std::out_of_range("initial state out of range");
    initial_ = s;
}

StateId Machine::initial() const {
    if (!initial_) throw std::logic_error("machine " + name_ + " has no initial state");
    return *initial_;
}

void Machine::add_transition(FsmTransition t) {
    if (t.source >= state_count() || t.target >= state_count())
        throw std::out_of_range("transition endpoint out of range");
    transitions_.push_back(std::move(t));
}

std::vector<const FsmTransition*> Machine::outgoing(StateId s) const {
    std::vector<const FsmTransition*> out;
    for (const auto& t : transitions_)
        if (t.source == s) out.push_back(&t);
    return out;
}

std::vector<std::string> Machine::events() const {
    std::vector<std::string> out;
    for (const auto& t : transitions_) {
        if (t.event.empty()) continue;
        if (std::find(out.begin(), out.end(), t.event) == out.end())
            out.push_back(t.event);
    }
    return out;
}

std::vector<std::string> Machine::check() const {
    std::vector<std::string> problems;
    if (!initial_) problems.push_back("no initial state");

    // Nondeterminism: same (source, event, guard) twice.
    std::set<std::tuple<StateId, std::string, std::string>> seen;
    for (const auto& t : transitions_) {
        if (!seen.insert(std::make_tuple(t.source, t.event, t.guard)).second)
            problems.push_back("nondeterministic transitions from '" +
                               state_names_[t.source] + "' on event '" + t.event +
                               "' guard '" + t.guard + "'");
    }

    // Reachability from the initial state.
    if (initial_) {
        std::vector<bool> reached(state_count(), false);
        std::vector<StateId> stack{*initial_};
        reached[*initial_] = true;
        while (!stack.empty()) {
            StateId s = stack.back();
            stack.pop_back();
            for (const auto& t : transitions_) {
                if (t.source == s && !reached[t.target]) {
                    reached[t.target] = true;
                    stack.push_back(t.target);
                }
            }
        }
        for (StateId s = 0; s < state_count(); ++s)
            if (!reached[s])
                problems.push_back("state '" + state_names_[s] +
                                   "' is unreachable from the initial state");
    }
    return problems;
}

}  // namespace uhcg::fsm
