#include "fsm/interpret.hpp"

#include <stdexcept>

namespace uhcg::fsm {

Interpreter::Interpreter(const Machine& machine) : machine_(&machine) {
    auto problems = machine.check();
    if (!problems.empty())
        throw std::runtime_error("cannot interpret ill-formed FSM: " +
                                 problems.front());
    reset();
}

void Interpreter::bind_guard(const std::string& guard, std::function<bool()> fn) {
    guards_[guard] = std::move(fn);
}

void Interpreter::bind_action(const std::string& action, std::function<void()> fn) {
    actions_[action] = std::move(fn);
}

void Interpreter::reset() {
    current_ = machine_->initial();
    log_.clear();
    fired_ = 0;
    if (!machine_->entry_action(current_).empty())
        execute(machine_->entry_action(current_));
}

bool Interpreter::guard_holds(const std::string& guard) const {
    if (guard.empty()) return true;
    auto it = guards_.find(guard);
    // Fail closed: an unimplemented guard never fires its transition.
    return it != guards_.end() && it->second();
}

void Interpreter::execute(const std::string& action) {
    if (action.empty()) return;
    log_.push_back(action);
    auto it = actions_.find(action);
    if (it != actions_.end()) it->second();
}

bool Interpreter::step(const std::string& event) {
    for (const FsmTransition* t : machine_->outgoing(current_)) {
        if (t->event != event) continue;
        if (!guard_holds(t->guard)) continue;
        execute(machine_->exit_action(current_));
        execute(t->action);
        current_ = t->target;
        execute(machine_->entry_action(current_));
        ++fired_;
        return true;
    }
    return false;
}

std::size_t Interpreter::run_to_completion() {
    std::size_t count = 0;
    // Bound by the state count: a completion cycle would otherwise spin.
    while (count < machine_->state_count() && step()) ++count;
    return count;
}

}  // namespace uhcg::fsm
