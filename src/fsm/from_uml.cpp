#include "fsm/from_uml.hpp"

#include <map>
#include <stdexcept>

namespace uhcg::fsm {
namespace {

bool is_leaf(const uml::State& s) { return !s.is_composite(); }

/// Leaf states under `s` (s itself when simple), pre-order.
void collect_leaves(const uml::State& s, std::vector<const uml::State*>& out) {
    if (is_leaf(s)) {
        out.push_back(&s);
        return;
    }
    for (const auto& sub : s.substates()) collect_leaves(*sub, out);
}

/// Follows initial-substate chains down to a leaf; records the entry
/// actions passed on the way (outermost first).
const uml::State& drill_to_leaf(const uml::State& s, std::string& entry_chain) {
    if (is_leaf(s)) return s;
    const uml::State* init = s.initial_substate();
    if (!init)
        throw std::runtime_error("composite state '" + s.name() +
                                 "' has no initial substate");
    // Only composite way-stations contribute here; the final leaf's entry
    // action runs via the flat machine's own entry_action.
    if (!is_leaf(*init) && !init->entry_action().empty()) {
        if (!entry_chain.empty()) entry_chain += ' ';
        entry_chain += init->entry_action();
    }
    return drill_to_leaf(*init, entry_chain);
}

/// Exit actions of the composite ancestors of `leaf`, innermost first, up
/// to (excluding) `ancestor`. The leaf's own exit action is excluded: the
/// flat machine runs it through exit_action(source).
std::string exit_chain(const uml::State& leaf, const uml::State* ancestor) {
    std::string out;
    for (const uml::State* s = leaf.parent(); s != nullptr && s != ancestor;
         s = s->parent()) {
        if (s->exit_action().empty()) continue;
        if (!out.empty()) out += ' ';
        out += s->exit_action();
    }
    return out;
}

}  // namespace

Machine from_uml(const uml::StateMachine& source) {
    Machine out(source.name());

    // 1. One flat state per UML leaf state; composites contribute their
    //    entry action to each leaf reached through them is handled at
    //    transition level, so the leaf keeps its own actions here.
    std::map<const uml::State*, StateId> state_map;
    for (const uml::State* s : source.all_states()) {
        if (!is_leaf(*s)) continue;
        state_map[s] = out.add_state(s->name(), s->entry_action(), s->exit_action());
    }
    if (state_map.empty())
        throw std::runtime_error("state machine '" + source.name() +
                                 "' has no leaf states");

    // 2. Initial state: drill through initial substates to a leaf.
    if (!source.initial_state())
        throw std::runtime_error("state machine '" + source.name() +
                                 "' has no initial state");
    std::string initial_entries;
    const uml::State& initial_leaf =
        drill_to_leaf(*source.initial_state(), initial_entries);
    out.set_initial(state_map.at(&initial_leaf));

    // 3. Transitions: replicate composite-source transitions to each leaf
    //    substate; retarget composite-target transitions to the drilled
    //    leaf; compose exit/entry chains into the action.
    for (const uml::Transition* t : source.transitions()) {
        std::vector<const uml::State*> sources;
        collect_leaves(*t->source(), sources);

        std::string entry_extra;
        // Entering a composite target runs the composite's entry action
        // before drilling down.
        if (!is_leaf(*t->target()) && !t->target()->entry_action().empty())
            entry_extra = t->target()->entry_action();
        std::string drilled_entries = entry_extra;
        const uml::State& target_leaf = drill_to_leaf(*t->target(), drilled_entries);

        for (const uml::State* src_leaf : sources) {
            FsmTransition ft;
            ft.source = state_map.at(src_leaf);
            ft.target = state_map.at(&target_leaf);
            ft.event = t->trigger();
            ft.guard = t->guard();
            // Action order: exits (innermost-first, up to the transition's
            // source scope), then the effect, then drilled entry actions.
            std::string action;
            std::string exits =
                exit_chain(*src_leaf, t->source()->parent());
            auto append = [&action](const std::string& piece) {
                if (piece.empty()) return;
                if (!action.empty()) action += ' ';
                action += piece;
            };
            append(exits);
            append(t->effect());
            append(drilled_entries);
            ft.action = std::move(action);
            out.add_transition(std::move(ft));
        }
    }

    return out;
}

}  // namespace uhcg::fsm
