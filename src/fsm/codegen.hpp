// codegen.hpp — FSM → C code generation (the "UML tool code generation"
// branch of Fig. 1, BridgePoint style: enum-of-states, switch-based step
// function, guards/actions spliced verbatim).
#pragma once

#include <string>

#include "fsm/machine.hpp"

namespace uhcg::fsm {

struct CCodeOptions {
    /// Prefix for all generated identifiers (defaults to the machine name,
    /// sanitized).
    std::string prefix;
    /// Emit a trace printf on every transition.
    bool trace = false;
    /// Extra header #included by the generated .c — where the user
    /// declares the functions/variables the guard and action strings
    /// reference (BridgePoint's "bridge" header).
    std::string context_include;
};

/// Generated artifact: a header and an implementation file.
struct GeneratedC {
    std::string header;
    std::string source;
    std::string header_name;  ///< suggested file name, e.g. "crane_fsm.h"
    std::string source_name;
};

GeneratedC generate_c(const Machine& machine, const CCodeOptions& options = {});

}  // namespace uhcg::fsm
