// from_uml.hpp — the control-flow mapping of Fig. 2: UML state machine →
// flat FSM model.
//
// Flattening rules:
//  * simple states map 1:1;
//  * a composite state dissolves into its (recursively flattened)
//    substates; entering it means entering its initial substate, with
//    entry actions of the composite chained before the substate's own;
//  * a transition leaving a composite state is replicated onto every leaf
//    substate (UML's "outer transitions apply in all substates"), with the
//    exit chain composed innermost-first;
//  * the machine's initial state follows the initial-substate chain down
//    to a leaf.
#pragma once

#include "fsm/machine.hpp"
#include "uml/statemachine.hpp"

namespace uhcg::fsm {

/// Flattens a UML state machine. Throws std::runtime_error when the model
/// is not mappable (no initial state, composite without initial substate).
Machine from_uml(const uml::StateMachine& machine);

}  // namespace uhcg::fsm
