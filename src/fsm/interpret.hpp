// interpret.hpp — FSM interpreter: executes a Machine directly, binding
// guard/action strings to host callbacks. Used by the tests (semantics
// oracle for the generated C code) and by the fsm_elevator example.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "fsm/machine.hpp"

namespace uhcg::fsm {

class Interpreter {
public:
    explicit Interpreter(const Machine& machine);

    /// Binds the exact guard string to a predicate. Unbound non-empty
    /// guards evaluate to false (fail-closed: an unimplemented guard never
    /// silently fires).
    void bind_guard(const std::string& guard, std::function<bool()> fn);
    /// Binds the exact action string to a callback. Unbound actions are
    /// recorded in the action log but otherwise no-ops.
    void bind_action(const std::string& action, std::function<void()> fn);

    /// Resets to the initial state (runs its entry action).
    void reset();
    StateId current() const { return current_; }
    const std::string& current_name() const {
        return machine_->state_name(current_);
    }

    /// Dispatches one event (empty = completion event). Returns true when a
    /// transition fired; fires at most one transition (run-to-completion is
    /// the caller's loop).
    bool step(const std::string& event = {});
    /// Steps completion transitions until none fires (bounded by the state
    /// count to survive mis-modeled loops); returns fired count.
    std::size_t run_to_completion();

    /// Every action/entry/exit string executed so far, order of execution.
    const std::vector<std::string>& action_log() const { return log_; }
    std::size_t transitions_fired() const { return fired_; }

private:
    bool guard_holds(const std::string& guard) const;
    void execute(const std::string& action);

    const Machine* machine_;
    StateId current_ = 0;
    std::map<std::string, std::function<bool()>> guards_;
    std::map<std::string, std::function<void()>> actions_;
    std::vector<std::string> log_;
    std::size_t fired_ = 0;
};

}  // namespace uhcg::fsm
