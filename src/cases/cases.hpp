// cases.hpp — the reference UML models of the paper, ready to feed the
// flow. Shared by the examples, the test suite and the benchmark harness
// so every consumer exercises identical inputs.
//
//  * didactic_model()  — Fig. 3: 2 CPUs, 3 threads, a Dec S-function, a
//    Platform Product, an <<IO>> device, inter- and intra-CPU channels;
//  * crane_model()     — §5.1: the crane control system (Moser & Nebel,
//    DATE'99) as 3 threads on one CPU whose closed control loop forces
//    automatic temporal-barrier insertion;
//  * synthetic_model() — §5.2: twelve communicating threads whose traffic
//    matrix reproduces the Fig. 7(a) task graph, used to validate the
//    automatic thread allocation;
//  * crane_sfunctions()/synthetic_sfunctions() — native behaviours for the
//    S-functions, registered with the execution engine (the "C code
//    compiled and linked" of §4.1).
#pragma once

#include <cstdint>

#include "sim/engine.hpp"
#include "uml/model.hpp"
#include "uml/statemachine.hpp"

namespace uhcg::cases {

/// Fig. 3 didactic system (deployment diagram decides the mapping).
uml::Model didactic_model();

/// §5.1 crane control system: plant → filter → controller → plant loop,
/// three threads deployed on a single CPU.
uml::Model crane_model();
/// Registers plant/filter/control behaviours (discretized crane physics).
void register_crane_sfunctions(sim::SFunctionRegistry& registry,
                               double dt = 0.05, double setpoint = 1.0);

/// §5.2 synthetic example: twelve threads A..M (no K), traffic per the
/// Fig. 7(a) edge costs. No deployment diagram — allocation is automatic.
uml::Model synthetic_model();
/// Registers the per-thread workload behaviours.
void register_synthetic_sfunctions(sim::SFunctionRegistry& registry);

/// Control-flow case for the FSM branch: an elevator controller state
/// machine (with a composite "Moving" state).
uml::StateMachine elevator_state_machine();

/// Heterogeneous case for the strategy dispatcher: the crane's dataflow
/// thread loop plus the elevator state machine in one model, so a single
/// `uhcg generate` run exercises the CAAM, FSM and fallback C++ branches.
uml::Model mixed_model();

/// Synthetic workload generator for sweeps: a random but convention-
/// conforming application of `threads` worker threads arranged in
/// `layers` ranks; every thread computes one value (S-function "work")
/// from its inputs and Sets it to its successors. Deterministic per seed.
uml::Model random_application(std::uint64_t seed, std::size_t threads,
                              std::size_t layers);

}  // namespace uhcg::cases
