#include "cases/cases.hpp"

#include <cmath>
#include <random>
#include <string>

#include "uml/builder.hpp"

namespace uhcg::cases {
namespace {

// Crane physics constants (linearized gantry crane, Moser & Nebel's case
// study re-dimensioned for a fixed-step discrete model).
constexpr double kCartMass = 10.0;  // kg
constexpr double kLoadMass = 1.0;   // kg
constexpr double kGravity = 9.81;   // m/s^2
constexpr double kCable = 2.0;      // m
constexpr double kCartDamping = 2.0;
constexpr double kSwingDamping = 0.5;

// Controller gains (PD on position + swing damping).
constexpr double kKp = 12.0;
constexpr double kKd = 5.0;
constexpr double kKa = 10.0;

// C sources attached to the UML operations — the §4.1 "behavior described
// in a C code that is compiled and linked" — consumed verbatim by the CAAM
// code generator. They mirror the native behaviours registered with the
// execution engine.
const char* kPlantSource = R"(    /* linearized gantry crane, Euler integration, dt = 0.05 */
    static double x = 0, v = 0, th = 0, om = 0;
    const double dt = 0.05;
    double F = (nin > 0) ? in[0] : 0.0;
    double acc = (F - 2.0 * v + 1.0 * 9.81 * th) / 10.0;
    double aacc = -(acc + 9.81 * th + 0.5 * om) / 2.0;
    x += dt * v; v += dt * acc;
    th += dt * om; om += dt * aacc;
    if (nout > 0) out[0] = x;
    if (nout > 1) out[1] = th;)";

const char* kFilterSource = R"(    /* first-order low-pass */
    static double y = 0;
    double u = (nin > 0) ? in[0] : 0.0;
    y += 0.5 * (u - y);
    if (nout > 0) out[0] = y;)";

const char* kControlSource = R"(    /* PD position control + swing damping, setpoint 1.0 */
    static double prev_e = 0;
    const double dt = 0.05;
    double pos = (nin > 0) ? in[0] : 0.0;
    double ang = (nin > 1) ? in[1] : 0.0;
    double e = 1.0 - pos;
    double F = 12.0 * e + 5.0 * (e - prev_e) / dt - 10.0 * ang;
    prev_e = e;
    if (nout > 0) out[0] = F;)";

}  // namespace

uml::Model didactic_model() {
    uml::ModelBuilder b("didactic");
    b.cls("Calc").op("calc").in("a").result("r");
    b.cls("Dec").op("dec").in("x").result("r");
    b.thread("T1");
    b.thread("T2");
    b.thread("T3");
    b.passive("Calc1", "Calc");
    b.passive("Dec1", "Dec");
    b.platform();
    b.iodevice("IODevice");

    auto t1 = b.seq("T1_behaviour");
    t1.message("T1", "Calc1", "calc").arg("a").result("r1");
    t1.message("T1", "Dec1", "dec").arg("x").result("r2");
    t1.message("T1", "Platform", "mult").arg("r1").arg("r2").result("r3");
    t1.message("T1", "T2", "SetValue").arg("r3").data(8);
    t1.message("T1", "T3", "GetValue").result("v").data(4);

    auto t2 = b.seq("T2_behaviour");
    t2.message("T2", "Platform", "mult").arg("r3").arg("2.0").result("w");
    t2.message("T2", "IODevice", "setOut").arg("w");

    auto t3 = b.seq("T3_behaviour");
    t3.message("T3", "IODevice", "getValue").result("s");
    t3.message("T3", "Platform", "gain").arg("s").result("v");

    b.cpu("CPU1");
    b.cpu("CPU2");
    b.bus("bus", {"CPU1", "CPU2"});
    b.deploy("T1", "CPU1").deploy("T2", "CPU1").deploy("T3", "CPU2");
    return b.take();
}

uml::Model crane_model() {
    uml::ModelBuilder b("crane");
    {
        auto plant = b.cls("Plant").op("plant");
        plant.in("F");
        plant.out("xc");
        plant.out("alpha");
        plant.body(kPlantSource);
    }
    {
        auto filter = b.cls("Filter").op("filter");
        filter.in("u");
        filter.result("y");
        filter.body(kFilterSource);
    }
    {
        auto control = b.cls("Control").op("control");
        control.in("pos");
        control.in("ang");
        control.result("F");
        control.body(kControlSource);
    }

    b.thread("T1");  // plant thread
    b.thread("T2");  // filter/monitor thread
    b.thread("T3");  // controller thread
    b.passive("ThePlant", "Plant");
    b.passive("PosFilter", "Filter");
    b.passive("Controller", "Control");
    b.iodevice("Display");

    // T1: actuate the plant with the controller's force, publish sensors.
    auto t1 = b.seq("T1_behaviour");
    t1.message("T1", "ThePlant", "plant").arg("F").arg("xc").arg("alpha");
    t1.message("T1", "T2", "SetPos").arg("xc").data(8);
    t1.message("T1", "T3", "SetAngle").arg("alpha").data(8);

    // T2: low-pass the position, forward it, drive the display.
    auto t2 = b.seq("T2_behaviour");
    t2.message("T2", "PosFilter", "filter").arg("xc").result("pos_f");
    t2.message("T2", "T3", "SetPosF").arg("pos_f").data(8);
    t2.message("T2", "Display", "setDisplay").arg("pos_f");

    // T3: close the loop — this is the cyclic path §4.2.2 must break.
    auto t3 = b.seq("T3_behaviour");
    t3.message("T3", "Controller", "control").arg("pos_f").arg("alpha").result("F");
    t3.message("T3", "T1", "SetForce").arg("F").data(8);

    // §5.1: "The three threads were mapped to the same processor, which was
    // defined through a deployment diagram."
    b.cpu("CPU1");
    b.deploy("T1", "CPU1").deploy("T2", "CPU1").deploy("T3", "CPU1");
    return b.take();
}

void register_crane_sfunctions(sim::SFunctionRegistry& registry, double dt,
                               double setpoint) {
    registry.register_function(
        "plant",
        [dt](std::span<const double> in, std::span<double> out, double,
             std::vector<double>& state) {
            double& x = state[0];
            double& v = state[1];
            double& th = state[2];
            double& om = state[3];
            double F = in.empty() ? 0.0 : in[0];
            double acc =
                (F - kCartDamping * v + kLoadMass * kGravity * th) / kCartMass;
            double aacc = -(acc + kGravity * th + kSwingDamping * om) / kCable;
            x += dt * v;
            v += dt * acc;
            th += dt * om;
            om += dt * aacc;
            if (!out.empty()) out[0] = x;
            if (out.size() > 1) out[1] = th;
        },
        4);
    registry.register_function(
        "filter",
        [](std::span<const double> in, std::span<double> out, double,
           std::vector<double>& state) {
            double u = in.empty() ? 0.0 : in[0];
            state[0] += 0.5 * (u - state[0]);
            if (!out.empty()) out[0] = state[0];
        },
        1);
    registry.register_function(
        "control",
        [dt, setpoint](std::span<const double> in, std::span<double> out, double,
                       std::vector<double>& state) {
            double pos = in.empty() ? 0.0 : in[0];
            double ang = in.size() > 1 ? in[1] : 0.0;
            double e = setpoint - pos;
            double F = kKp * e + kKd * (e - state[0]) / dt - kKa * ang;
            state[0] = e;
            if (!out.empty()) out[0] = F;
        },
        1);
}

uml::Model synthetic_model() {
    uml::ModelBuilder b("synthetic");
    b.platform();

    // Twelve threads A..M (no K), as in Fig. 6/7.
    const char* names[] = {"A", "B", "C", "D", "E", "F",
                           "G", "H", "I", "J", "L", "M"};
    for (const char* n : names) b.thread(n);

    // Traffic matrix of the Fig. 7(a) task graph: (from, to, cost).
    struct EdgeSpec {
        const char* from;
        const char* to;
        double cost;
    };
    const EdgeSpec edges[] = {
        {"A", "B", 10}, {"B", "C", 11}, {"C", "D", 10}, {"D", "F", 12},
        {"F", "J", 10}, {"A", "E", 2},  {"E", "I", 8},  {"I", "J", 3},
        {"B", "G", 3},  {"G", "M", 9},  {"M", "J", 2},  {"C", "H", 2},
        {"H", "L", 7},  {"L", "J", 1},
    };

    // One interaction describing the whole application (Fig. 6 is "a block
    // of interactions of this sequence diagram").
    auto sd = b.seq("synthetic_interactions");
    for (const char* n : names) {
        std::string name(n);
        std::string var = "v" + name;
        // Gather this thread's inputs (variables of its predecessors).
        std::vector<std::string> inputs;
        for (const EdgeSpec& e : edges)
            if (name == e.to) inputs.push_back(std::string("v") + e.from);
        // Compute the thread's own value: an S-function over its inputs
        // (source threads take a literal seed).
        auto msg = sd.message(name, "Platform", "work");
        if (inputs.empty()) msg.arg("1.0");
        for (const std::string& in : inputs) msg.arg(in);
        msg.result(var);
        // Publish to every successor with the Fig. 7(a) edge cost.
        for (const EdgeSpec& e : edges)
            if (name == e.from)
                sd.message(name, e.to, "Set" + var).arg(var).data(e.cost);
    }
    // No deployment diagram: §4.2.3 makes it unnecessary.
    return b.take();
}

void register_synthetic_sfunctions(sim::SFunctionRegistry& registry) {
    registry.register_function(
        "work", [](std::span<const double> in, std::span<double> out, double,
                   std::vector<double>&) {
            double sum = 0.0;
            for (double v : in) sum += v;
            if (!out.empty()) out[0] = sum + 1.0;
        });
}

namespace {

void populate_elevator(uml::StateMachine& sm) {
    uml::State& idle = sm.add_state("Idle");
    idle.set_entry_action("motor_off();");
    uml::State& doors = sm.add_state("DoorsOpen");
    doors.set_entry_action("open_door();");
    doors.set_exit_action("close_door();");
    uml::State& moving = sm.add_state("Moving");
    moving.set_entry_action("motor_on();");
    moving.set_exit_action("motor_off();");
    uml::State& up = moving.add_substate("MovingUp");
    up.set_entry_action("dir_up();");
    uml::State& down = moving.add_substate("MovingDown");
    down.set_entry_action("dir_down();");
    moving.set_initial_substate(up);
    sm.set_initial_state(idle);

    sm.add_transition(idle, up).set_trigger("call_up");
    sm.add_transition(idle, down).set_trigger("call_down");
    {
        uml::Transition& t = sm.add_transition(moving, doors);
        t.set_trigger("arrived");
        t.set_effect("announce_floor();");
    }
    {
        uml::Transition& t = sm.add_transition(doors, idle);
        t.set_trigger("door_timeout");
        t.set_guard("no_pending_calls");
    }
    {
        uml::Transition& t = sm.add_transition(doors, up);
        t.set_trigger("door_timeout");
        t.set_guard("pending_call_above");
    }
}

}  // namespace

uml::StateMachine elevator_state_machine() {
    uml::StateMachine sm("Elevator");
    populate_elevator(sm);
    return sm;
}

uml::Model mixed_model() {
    uml::Model m = crane_model();
    m.set_name("mixed");
    populate_elevator(m.add_state_machine("Elevator"));
    return m;
}

uml::Model random_application(std::uint64_t seed, std::size_t threads,
                              std::size_t layers) {
    std::mt19937_64 rng(seed);
    std::uniform_real_distribution<double> cost(1.0, 16.0);
    std::uniform_real_distribution<double> coin(0.0, 1.0);
    uml::ModelBuilder b("app" + std::to_string(seed));
    b.platform();
    layers = std::max<std::size_t>(1, layers);
    std::vector<std::vector<std::string>> layer_names(layers);
    for (std::size_t t = 0; t < threads; ++t) {
        std::string name = "W" + std::to_string(t);
        b.thread(name);
        layer_names[t % layers].push_back(name);
    }
    // Edges only between adjacent layers, at least one per producer, so
    // the thread graph is a DAG and every value has a consumer.
    std::vector<std::pair<std::string, std::string>> edges;
    for (std::size_t l = 0; l + 1 < layers; ++l) {
        for (const std::string& from : layer_names[l]) {
            bool any = false;
            for (const std::string& to : layer_names[l + 1]) {
                if (coin(rng) < 0.5) {
                    edges.emplace_back(from, to);
                    any = true;
                }
            }
            if (!any && !layer_names[l + 1].empty())
                edges.emplace_back(from, layer_names[l + 1].front());
        }
    }
    auto sd = b.seq("interactions");
    for (std::size_t l = 0; l < layers; ++l) {
        for (const std::string& name : layer_names[l]) {
            std::string var = "v" + name;
            auto msg = sd.message(name, "Platform", "work");
            bool has_input = false;
            for (const auto& [from, to] : edges) {
                if (to == name) {
                    msg.arg("v" + from);
                    has_input = true;
                }
            }
            if (!has_input) msg.arg("1.0");
            msg.result(var);
            for (const auto& [from, to] : edges)
                if (from == name)
                    sd.message(name, to, "Set" + var).arg(var).data(cost(rng));
        }
    }
    return b.take();
}

}  // namespace uhcg::cases
