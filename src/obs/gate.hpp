// gate.hpp — perf-regression gate over uhcg-bench reports.
//
// Compares a fresh bench run against a committed baseline
// (`bench/baselines/`). Both sides are `uhcg-bench-report-v1` aggregates
// (or bare `uhcg-bench-v1` reports); google-benchmark inputs embedded in
// an aggregate are ignored — the reproduction rows are the contract.
//
// Row classification, by label:
//  * timing rows — label contains "(ms)". Checked against the baseline
//    with a relative tolerance, after *median-ratio calibration*: the
//    median fresh/baseline ratio across all timing rows is treated as the
//    machine-speed factor and divided out, so a uniformly slower CI
//    runner does not trip the gate while a single-row regression still
//    does. (A *uniform* global slowdown is invisible to *these* rows by
//    construction; the budget rows below close that blind spot.)
//  * budget rows — label contains "(/ms)": absolute work-per-wall-ms
//    throughput (e.g. "dse simulations (/ms)"). Checked *uncalibrated*
//    against a floor of `budget_floor_pct` percent of the baseline value,
//    so a uniform global slowdown — which median-ratio calibration absorbs
//    by design — still trips the gate once throughput collapses.
//  * determinism counters — any other numeric row. Must match exactly:
//    candidate counts, cache hits and dedup statistics never drift on a
//    healthy build.
//  * text rows — must match byte-for-byte.
//  * skipped rows — labels matching `skip_substrings` (machine-shape
//    facts like "hardware threads" and derived ratios like "speedup").
//
// A label present in the baseline but missing fresh fails the gate; a new
// fresh-only label warns (it becomes enforced once the baseline is
// regenerated).
#pragma once

#include <string>
#include <vector>

namespace uhcg::obs {

struct GateOptions {
    /// Allowed relative wall-time regression, percent, post-calibration.
    double tolerance_pct = 25.0;
    /// Divide out the median fresh/baseline timing ratio first.
    bool calibrate = true;
    /// Budget rows ("(/ms)") must stay at or above this percentage of the
    /// baseline throughput, with no calibration. Generous on purpose: the
    /// row exists to catch order-of-magnitude collapses that uniform-ratio
    /// calibration would absorb, not to re-litigate machine speed.
    double budget_floor_pct = 25.0;
    /// Rows whose label contains any of these are not compared.
    std::vector<std::string> skip_substrings = {
        "hardware threads", "pool jobs", "speedup", "tracing overhead"};
};

struct GateCheck {
    enum class Status { Pass, Warn, Fail };
    Status status = Status::Pass;
    std::string label;
    std::string detail;
};

struct GateResult {
    bool passed = false;
    /// Median fresh/baseline timing ratio that was divided out (1.0 when
    /// calibration is off or no timing rows exist on both sides).
    double calibration = 1.0;
    std::vector<GateCheck> checks;

    std::size_t failures() const;
    std::size_t warnings() const;
    /// Human rendering: one line per check, then the verdict.
    std::string render() const;
};

/// Runs the gate. `baseline_json` / `fresh_json` are the document texts.
/// Returns false (with `error`) only when a document cannot be parsed or
/// holds no `uhcg-bench-v1` rows — comparison verdicts land in `result`.
bool gate_reports(const std::string& baseline_json,
                  const std::string& fresh_json, const GateOptions& options,
                  GateResult& result, std::string& error);

}  // namespace uhcg::obs
