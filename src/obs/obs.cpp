#include "obs/obs.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <memory>
#include <mutex>
#include <sstream>

namespace uhcg::obs {
namespace {

std::atomic<bool> g_enabled{false};
std::atomic<std::uint64_t> g_next_span_id{1};

/// Steady-clock nanoseconds since the first observability call of the
/// process; relative stamps keep the JSON small and diff-friendly.
std::uint64_t now_ns() {
    static const auto epoch = std::chrono::steady_clock::now();
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch)
            .count());
}

// ---------------------------------------------------------------------------
// Per-thread span buffers.

struct ThreadBuffer {
    // Only the owning thread touches these — no lock.
    std::uint64_t open_span = 0;       ///< innermost open span id
    std::uint64_t inherited_parent = 0;  ///< ScopedContext injection
    std::uint32_t depth = 0;

    // Shared with spans_snapshot()/reset_spans() — guarded.
    std::mutex mutex;
    std::vector<SpanRecord> records;
    std::uint64_t next_seq = 0;
    std::uint32_t ordinal = 0;
};

struct BufferRegistry {
    std::mutex mutex;
    std::vector<std::shared_ptr<ThreadBuffer>> buffers;
};

BufferRegistry& buffer_registry() {
    static BufferRegistry registry;
    return registry;
}

ThreadBuffer& local_buffer() {
    thread_local std::shared_ptr<ThreadBuffer> buffer = [] {
        auto fresh = std::make_shared<ThreadBuffer>();
        BufferRegistry& registry = buffer_registry();
        std::lock_guard<std::mutex> lock(registry.mutex);
        fresh->ordinal = static_cast<std::uint32_t>(registry.buffers.size());
        registry.buffers.push_back(fresh);
        return fresh;
    }();
    return *buffer;
}

// ---------------------------------------------------------------------------
// Metric registry. Map nodes are stable, so returned references live for
// the process; the transparent comparator makes string_view lookups
// allocation-free (the disabled-mode zero-allocation guarantee).

struct MetricRegistry {
    std::mutex mutex;
    std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters;
    std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms;
};

MetricRegistry& metric_registry() {
    static MetricRegistry registry;
    return registry;
}

std::string json_escape(std::string_view text) {
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    return out;
}

double to_ms(std::uint64_t ns) { return static_cast<double>(ns) / 1e6; }

/// Per-name aggregation used by both the summary and the profile table.
struct Aggregate {
    std::string category;
    std::size_t count = 0;
    std::uint64_t total_ns = 0;
    std::uint64_t self_ns = 0;
    std::uint64_t min_ns = UINT64_MAX;
    std::uint64_t max_ns = 0;
};

std::map<std::string, Aggregate> aggregate_spans(
    const std::vector<SpanRecord>& spans) {
    // Children's time subtracts from the parent's self time.
    std::map<std::uint64_t, std::uint64_t> children_ns;
    for (const SpanRecord& s : spans)
        if (s.parent) children_ns[s.parent] += s.dur_ns;

    std::map<std::string, Aggregate> by_name;
    for (const SpanRecord& s : spans) {
        Aggregate& agg = by_name[s.name];
        if (agg.count == 0) agg.category = s.category;
        ++agg.count;
        agg.total_ns += s.dur_ns;
        auto child = children_ns.find(s.id);
        std::uint64_t nested = child == children_ns.end() ? 0 : child->second;
        agg.self_ns += s.dur_ns > nested ? s.dur_ns - nested : 0;
        agg.min_ns = std::min(agg.min_ns, s.dur_ns);
        agg.max_ns = std::max(agg.max_ns, s.dur_ns);
    }
    return by_name;
}

std::uint32_t thread_count_of(const std::vector<SpanRecord>& spans) {
    std::uint32_t max_ordinal = 0;
    for (const SpanRecord& s : spans)
        max_ordinal = std::max(max_ordinal, s.thread + 1);
    return max_ordinal;
}

}  // namespace

// ---------------------------------------------------------------------------
// Enable switch.

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

// ---------------------------------------------------------------------------
// Metrics.

std::size_t Histogram::bucket_index(std::uint64_t value) {
    return static_cast<std::size_t>(std::bit_width(value));
}

std::uint64_t Histogram::bucket_floor(std::size_t index) {
    if (index == 0) return 0;
    return 1ull << (index - 1);
}

std::uint64_t Histogram::bucket_ceil(std::size_t index) {
    if (index == 0) return 0;
    if (index >= 64) return UINT64_MAX;
    return (1ull << index) - 1;
}

void Histogram::reset() {
    for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
}

Counter& counter(std::string_view name) {
    MetricRegistry& registry = metric_registry();
    std::lock_guard<std::mutex> lock(registry.mutex);
    auto it = registry.counters.find(name);
    if (it == registry.counters.end())
        it = registry.counters
                 .emplace(std::string(name), std::make_unique<Counter>())
                 .first;
    return *it->second;
}

Histogram& histogram(std::string_view name) {
    MetricRegistry& registry = metric_registry();
    std::lock_guard<std::mutex> lock(registry.mutex);
    auto it = registry.histograms.find(name);
    if (it == registry.histograms.end())
        it = registry.histograms
                 .emplace(std::string(name), std::make_unique<Histogram>())
                 .first;
    return *it->second;
}

MetricsSnapshot metrics_snapshot() {
    MetricRegistry& registry = metric_registry();
    std::lock_guard<std::mutex> lock(registry.mutex);
    MetricsSnapshot snapshot;
    for (const auto& [name, counter] : registry.counters)
        snapshot.counters.emplace(name, counter->value());
    for (const auto& [name, histogram] : registry.histograms) {
        HistogramSnapshot h;
        h.count = histogram->count();
        h.sum = histogram->sum();
        for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
            std::uint64_t n = histogram->bucket(b);
            if (n == 0) continue;
            h.buckets.push_back(
                {Histogram::bucket_floor(b), Histogram::bucket_ceil(b), n});
        }
        snapshot.histograms.emplace(name, std::move(h));
    }
    return snapshot;
}

void reset_metrics() {
    MetricRegistry& registry = metric_registry();
    std::lock_guard<std::mutex> lock(registry.mutex);
    for (auto& [name, counter] : registry.counters) counter->reset();
    for (auto& [name, histogram] : registry.histograms) histogram->reset();
}

// ---------------------------------------------------------------------------
// Spans.

Context current_context() {
    ThreadBuffer& buffer = local_buffer();
    return {buffer.open_span ? buffer.open_span : buffer.inherited_parent};
}

ScopedContext::ScopedContext(Context context) {
    if (!enabled()) return;
    ThreadBuffer& buffer = local_buffer();
    previous_ = buffer.inherited_parent;
    buffer.inherited_parent = context.span_id;
    armed_ = true;
}

ScopedContext::~ScopedContext() {
    if (!armed_) return;
    local_buffer().inherited_parent = previous_;
}

ObsSpan::ObsSpan(std::string_view name, std::string_view category) {
    if (!enabled()) return;
    ThreadBuffer& buffer = local_buffer();
    name_.assign(name);
    if (category.empty()) {
        std::size_t dot = name.find('.');
        category_.assign(dot == std::string_view::npos ? name
                                                       : name.substr(0, dot));
    } else {
        category_.assign(category);
    }
    id_ = g_next_span_id.fetch_add(1, std::memory_order_relaxed);
    parent_ = buffer.open_span ? buffer.open_span : buffer.inherited_parent;
    prev_open_ = buffer.open_span;
    buffer.open_span = id_;
    depth_ = buffer.depth++;
    armed_ = true;
    start_ns_ = now_ns();
}

void ObsSpan::annotate(std::string_view key, std::string_view value) {
    if (!armed_) return;
    attr_key_.assign(key);
    attr_value_.assign(value);
}

ObsSpan::~ObsSpan() {
    if (!armed_) return;
    std::uint64_t end = now_ns();
    ThreadBuffer& buffer = local_buffer();
    buffer.open_span = prev_open_;
    --buffer.depth;
    SpanRecord record;
    record.name = std::move(name_);
    record.category = std::move(category_);
    record.id = id_;
    record.parent = parent_;
    record.start_ns = start_ns_;
    record.dur_ns = end > start_ns_ ? end - start_ns_ : 0;
    record.thread = buffer.ordinal;
    record.depth = depth_;
    record.attr_key = std::move(attr_key_);
    record.attr_value = std::move(attr_value_);
    std::lock_guard<std::mutex> lock(buffer.mutex);
    record.seq = buffer.next_seq++;
    buffer.records.push_back(std::move(record));
}

std::vector<SpanRecord> spans_snapshot() {
    std::vector<std::shared_ptr<ThreadBuffer>> buffers;
    {
        BufferRegistry& registry = buffer_registry();
        std::lock_guard<std::mutex> lock(registry.mutex);
        buffers = registry.buffers;
    }
    std::vector<SpanRecord> all;
    for (const auto& buffer : buffers) {
        std::lock_guard<std::mutex> lock(buffer->mutex);
        all.insert(all.end(), buffer->records.begin(), buffer->records.end());
    }
    // (start, thread, seq) is a total order: two spans of one thread never
    // share a seq, so the merge is deterministic for any given record set.
    std::sort(all.begin(), all.end(),
              [](const SpanRecord& a, const SpanRecord& b) {
                  if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
                  if (a.thread != b.thread) return a.thread < b.thread;
                  return a.seq < b.seq;
              });
    return all;
}

void reset_spans() {
    std::vector<std::shared_ptr<ThreadBuffer>> buffers;
    {
        BufferRegistry& registry = buffer_registry();
        std::lock_guard<std::mutex> lock(registry.mutex);
        buffers = registry.buffers;
    }
    for (const auto& buffer : buffers) {
        std::lock_guard<std::mutex> lock(buffer->mutex);
        buffer->records.clear();
    }
}

// ---------------------------------------------------------------------------
// Exporters.

std::string chrome_trace_json(const std::vector<SpanRecord>& spans,
                              const MetricsSnapshot* metrics) {
    std::ostringstream out;
    out << "{\n\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [";
    bool first = true;
    auto sep = [&] {
        out << (first ? "\n" : ",\n");
        first = false;
    };
    std::uint32_t threads = thread_count_of(spans);
    for (std::uint32_t t = 0; t < threads; ++t) {
        sep();
        out << "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, "
               "\"tid\": "
            << t << ", \"args\": {\"name\": \""
            << (t == 0 ? "uhcg-main" : "uhcg-worker-" + std::to_string(t))
            << "\"}}";
    }
    for (const SpanRecord& s : spans) {
        sep();
        out << "{\"name\": \"" << json_escape(s.name) << "\", \"cat\": \""
            << json_escape(s.category) << "\", \"ph\": \"X\", \"ts\": "
            << static_cast<double>(s.start_ns) / 1e3
            << ", \"dur\": " << static_cast<double>(s.dur_ns) / 1e3
            << ", \"pid\": 1, \"tid\": " << s.thread << ", \"args\": {\"id\": "
            << s.id << ", \"parent\": " << s.parent;
        if (!s.attr_key.empty())
            out << ", \"" << json_escape(s.attr_key) << "\": \""
                << json_escape(s.attr_value) << '"';
        out << "}}";
    }
    if (metrics && !metrics->counters.empty()) {
        sep();
        out << "{\"name\": \"uhcg_counters\", \"ph\": \"M\", \"pid\": 1, "
               "\"tid\": 0, \"args\": {";
        bool first_counter = true;
        for (const auto& [name, value] : metrics->counters) {
            if (!first_counter) out << ", ";
            first_counter = false;
            out << '"' << json_escape(name) << "\": " << value;
        }
        out << "}}";
    }
    out << "\n]\n}";
    return out.str();
}

std::string summary_json(const std::vector<SpanRecord>& spans,
                         const MetricsSnapshot& metrics) {
    std::map<std::string, Aggregate> by_name = aggregate_spans(spans);
    std::uint64_t wall_ns = 0;
    for (const SpanRecord& s : spans)
        wall_ns = std::max(wall_ns, s.start_ns + s.dur_ns);

    std::ostringstream out;
    out << "{\n  \"schema\": \"uhcg-obs-v1\",\n  \"spans\": [";
    bool first = true;
    for (const auto& [name, agg] : by_name) {
        out << (first ? "\n    " : ",\n    ");
        first = false;
        out << "{\"name\": \"" << json_escape(name) << "\", \"category\": \""
            << json_escape(agg.category) << "\", \"count\": " << agg.count
            << ", \"total_ms\": " << to_ms(agg.total_ns)
            << ", \"self_ms\": " << to_ms(agg.self_ns)
            << ", \"min_ms\": " << to_ms(agg.min_ns)
            << ", \"max_ms\": " << to_ms(agg.max_ns) << '}';
    }
    out << (by_name.empty() ? "]" : "\n  ]") << ",\n  \"counters\": {";
    first = true;
    for (const auto& [name, value] : metrics.counters) {
        out << (first ? "\n    " : ",\n    ");
        first = false;
        out << '"' << json_escape(name) << "\": " << value;
    }
    out << (metrics.counters.empty() ? "}" : "\n  }") << ",\n  \"histograms\": {";
    first = true;
    for (const auto& [name, h] : metrics.histograms) {
        out << (first ? "\n    " : ",\n    ");
        first = false;
        out << '"' << json_escape(name) << "\": {\"count\": " << h.count
            << ", \"sum\": " << h.sum << ", \"buckets\": [";
        for (std::size_t b = 0; b < h.buckets.size(); ++b) {
            if (b) out << ", ";
            out << "{\"ge\": " << h.buckets[b].floor
                << ", \"le\": " << h.buckets[b].ceil
                << ", \"count\": " << h.buckets[b].count << '}';
        }
        out << "]}";
    }
    out << (metrics.histograms.empty() ? "}" : "\n  }")
        << ",\n  \"totals\": {\"spans\": " << spans.size()
        << ", \"threads\": " << thread_count_of(spans)
        << ", \"wall_ms\": " << to_ms(wall_ns) << "}\n}";
    return out.str();
}

std::string profile_table(const std::vector<SpanRecord>& spans,
                          const MetricsSnapshot& metrics) {
    std::map<std::string, Aggregate> by_name = aggregate_spans(spans);
    std::vector<const std::pair<const std::string, Aggregate>*> order;
    order.reserve(by_name.size());
    for (const auto& entry : by_name) order.push_back(&entry);
    std::sort(order.begin(), order.end(), [](const auto* a, const auto* b) {
        if (a->second.total_ns != b->second.total_ns)
            return a->second.total_ns > b->second.total_ns;
        return a->first < b->first;
    });

    std::ostringstream out;
    char line[160];
    std::snprintf(line, sizeof line, "%-32s %7s %12s %12s %12s\n", "span",
                  "count", "total (ms)", "self (ms)", "mean (ms)");
    out << line;
    for (const auto* entry : order) {
        const Aggregate& agg = entry->second;
        std::snprintf(line, sizeof line, "%-32s %7zu %12.3f %12.3f %12.3f\n",
                      entry->first.c_str(), agg.count, to_ms(agg.total_ns),
                      to_ms(agg.self_ns),
                      to_ms(agg.total_ns / std::max<std::size_t>(agg.count, 1)));
        out << line;
    }
    bool any_counter = false;
    for (const auto& [name, value] : metrics.counters) {
        if (value == 0) continue;
        if (!any_counter) out << "\ncounters:\n";
        any_counter = true;
        std::snprintf(line, sizeof line, "  %-40s %zu\n", name.c_str(),
                      static_cast<std::size_t>(value));
        out << line;
    }
    for (const auto& [name, h] : metrics.histograms) {
        if (h.count == 0) continue;
        std::snprintf(line, sizeof line,
                      "  %-40s n=%zu sum=%zu mean=%.1f\n", name.c_str(),
                      static_cast<std::size_t>(h.count),
                      static_cast<std::size_t>(h.sum),
                      static_cast<double>(h.sum) /
                          static_cast<double>(std::max<std::uint64_t>(h.count, 1)));
        out << line;
    }
    return out.str();
}

}  // namespace uhcg::obs
