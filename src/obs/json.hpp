// json.hpp — minimal JSON reader for the observability tooling.
//
// The repo's emitters build JSON by hand; the perf gate and the obs test
// suite also need to *read* it back (bench reports, trace files). This is
// a small recursive-descent parser over a DOM `Value` — strict enough to
// reject malformed documents, with line/column in the error message. It
// deliberately lives in `obs` (dependency-free) so tools and tests can
// link it without pulling in the model stack.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace uhcg::obs::json {

class Value {
public:
    enum class Kind { Null, Boolean, Number, String, Array, Object };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<Value> array;
    /// Insertion-ordered — round-trips preserve author ordering.
    std::vector<std::pair<std::string, Value>> object;

    bool is_null() const { return kind == Kind::Null; }
    bool is_bool() const { return kind == Kind::Boolean; }
    bool is_number() const { return kind == Kind::Number; }
    bool is_string() const { return kind == Kind::String; }
    bool is_array() const { return kind == Kind::Array; }
    bool is_object() const { return kind == Kind::Object; }

    /// First member named `key`, or nullptr (also for non-objects).
    const Value* find(std::string_view key) const;
};

/// Resource limits enforced while parsing. The defaults are generous
/// enough for every trusted artifact in the repo (bench reports, traces),
/// yet bound the two unbounded-input hazards: recursion depth (a deeply
/// nested document must not overflow the stack) and input size. Callers
/// parsing *untrusted* bytes — the serve daemon's request frames — pass
/// deliberately tighter limits.
struct ParseLimits {
    /// Maximum container nesting depth (objects + arrays). 0 rejects any
    /// container; the default comfortably covers hand-written documents
    /// while keeping recursion shallow.
    std::size_t max_depth = 128;
    /// Maximum input size in bytes; 0 = unlimited.
    std::size_t max_bytes = 0;
};

/// Parses one JSON document (trailing whitespace allowed, trailing junk
/// rejected). On failure returns false and sets `error` to a
/// "line:column: message" description. Limit violations are structured
/// parse errors, never crashes: "nesting exceeds depth limit <n>" and
/// "input exceeds size limit <n> bytes".
bool parse(std::string_view text, Value& out, std::string& error,
           const ParseLimits& limits = {});

}  // namespace uhcg::obs::json
