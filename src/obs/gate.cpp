#include "obs/gate.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <optional>
#include <sstream>

#include "obs/json.hpp"

namespace uhcg::obs {
namespace {

struct Row {
    bool numeric = false;
    double number = 0.0;
    std::string text;
};

/// Ordered so missing/extra-label reporting is deterministic.
using RowMap = std::map<std::string, Row>;

void collect_rows(const json::Value& report, RowMap& out) {
    const json::Value* schema = report.find("schema");
    if (!schema || !schema->is_string() || schema->string != "uhcg-bench-v1")
        return;  // e.g. an embedded google-benchmark document
    const json::Value* rows = report.find("rows");
    if (!rows || !rows->is_array()) return;
    for (const json::Value& entry : rows->array) {
        const json::Value* label = entry.find("label");
        if (!label || !label->is_string()) continue;
        Row row;
        if (const json::Value* number = entry.find("number");
            number && number->is_number()) {
            row.numeric = true;
            row.number = number->number;
        } else if (const json::Value* value = entry.find("value");
                   value && value->is_string()) {
            row.text = value->string;
        } else {
            continue;
        }
        // Later duplicates win — matches how a reader scans the table.
        out[label->string] = row;
    }
}

bool extract(const std::string& text, const char* which, RowMap& out,
             std::string& error) {
    json::Value doc;
    if (!json::parse(text, doc, error)) {
        error = std::string(which) + ": " + error;
        return false;
    }
    const json::Value* schema = doc.find("schema");
    if (schema && schema->is_string() &&
        schema->string == "uhcg-bench-report-v1") {
        if (const json::Value* inputs = doc.find("inputs");
            inputs && inputs->is_array())
            for (const json::Value& input : inputs->array)
                if (const json::Value* report = input.find("report"))
                    collect_rows(*report, out);
    } else {
        collect_rows(doc, out);
    }
    if (out.empty()) {
        error = std::string(which) + ": no uhcg-bench-v1 rows found";
        return false;
    }
    return true;
}

bool is_budget(const std::string& label) {
    return label.find("(/ms)") != std::string::npos;
}

bool is_timing(const std::string& label) {
    // "(ms)" is not a substring of "(/ms)", but keep the budget check first
    // everywhere so the classification order is explicit.
    return !is_budget(label) && label.find("(ms)") != std::string::npos;
}

bool skipped(const std::string& label, const GateOptions& options) {
    for (const std::string& needle : options.skip_substrings)
        if (label.find(needle) != std::string::npos) return true;
    return false;
}

std::string format_number(double value) {
    char buffer[64];
    std::snprintf(buffer, sizeof buffer, "%g", value);
    return buffer;
}

}  // namespace

std::size_t GateResult::failures() const {
    return static_cast<std::size_t>(
        std::count_if(checks.begin(), checks.end(), [](const GateCheck& c) {
            return c.status == GateCheck::Status::Fail;
        }));
}

std::size_t GateResult::warnings() const {
    return static_cast<std::size_t>(
        std::count_if(checks.begin(), checks.end(), [](const GateCheck& c) {
            return c.status == GateCheck::Status::Warn;
        }));
}

std::string GateResult::render() const {
    std::ostringstream out;
    out << "perf gate (calibration x" << format_number(calibration) << ")\n";
    for (const GateCheck& check : checks) {
        const char* tag = check.status == GateCheck::Status::Fail ? "FAIL"
                          : check.status == GateCheck::Status::Warn
                              ? "WARN"
                              : "  ok";
        out << "  [" << tag << "] " << check.label;
        if (!check.detail.empty()) out << " — " << check.detail;
        out << '\n';
    }
    out << (passed ? "PASS" : "FAIL") << " (" << checks.size() << " checks, "
        << failures() << " failures, " << warnings() << " warnings)\n";
    return out.str();
}

bool gate_reports(const std::string& baseline_json,
                  const std::string& fresh_json, const GateOptions& options,
                  GateResult& result, std::string& error) {
    RowMap baseline, fresh;
    if (!extract(baseline_json, "baseline", baseline, error)) return false;
    if (!extract(fresh_json, "fresh", fresh, error)) return false;

    result = GateResult{};

    // Calibration factor: median fresh/baseline ratio over timing rows.
    double calibration = 1.0;
    if (options.calibrate) {
        std::vector<double> ratios;
        for (const auto& [label, base] : baseline) {
            if (!base.numeric || !is_timing(label) || skipped(label, options))
                continue;
            auto it = fresh.find(label);
            if (it == fresh.end() || !it->second.numeric) continue;
            if (base.number > 0.0 && it->second.number > 0.0)
                ratios.push_back(it->second.number / base.number);
        }
        if (!ratios.empty()) {
            std::sort(ratios.begin(), ratios.end());
            calibration = ratios[ratios.size() / 2];
            if (ratios.size() % 2 == 0)
                calibration =
                    (ratios[ratios.size() / 2 - 1] + calibration) / 2.0;
        }
    }
    result.calibration = calibration;

    for (const auto& [label, base] : baseline) {
        GateCheck check;
        check.label = label;
        if (skipped(label, options)) {
            check.detail = "skipped (machine-shape row)";
            result.checks.push_back(std::move(check));
            continue;
        }
        auto it = fresh.find(label);
        if (it == fresh.end()) {
            check.status = GateCheck::Status::Fail;
            check.detail = "missing from fresh run";
            result.checks.push_back(std::move(check));
            continue;
        }
        const Row& now = it->second;
        if (base.numeric != now.numeric) {
            check.status = GateCheck::Status::Fail;
            check.detail = "row kind changed (number vs text)";
        } else if (!base.numeric) {
            if (base.text != now.text) {
                check.status = GateCheck::Status::Fail;
                check.detail = "\"" + base.text + "\" -> \"" + now.text + "\"";
            } else {
                check.detail = "\"" + now.text + "\"";
            }
        } else if (is_budget(label)) {
            // Absolute throughput floor, deliberately uncalibrated: a
            // uniform machine slowdown shifts every timing ratio equally
            // (so calibration hides it) but still collapses work-per-ms.
            double floor = base.number * options.budget_floor_pct / 100.0;
            check.detail = format_number(base.number) + " -> " +
                           format_number(now.number) + " /ms (floor " +
                           format_number(floor) + ", uncalibrated)";
            if (base.number > 0.0 && now.number < floor)
                check.status = GateCheck::Status::Fail;
        } else if (is_timing(label)) {
            double adjusted =
                calibration > 0.0 ? now.number / calibration : now.number;
            double limit = base.number * (1.0 + options.tolerance_pct / 100.0);
            check.detail = format_number(base.number) + " -> " +
                           format_number(now.number) + " ms (adj " +
                           format_number(adjusted) + ", limit " +
                           format_number(limit) + ")";
            if (base.number > 0.0 && adjusted > limit)
                check.status = GateCheck::Status::Fail;
        } else {
            // Determinism counter: any drift means behavior changed.
            if (base.number != now.number) {
                check.status = GateCheck::Status::Fail;
                check.detail = format_number(base.number) + " -> " +
                               format_number(now.number) + " (exact match required)";
            } else {
                check.detail = format_number(now.number);
            }
        }
        result.checks.push_back(std::move(check));
    }

    for (const auto& [label, row] : fresh) {
        if (baseline.count(label) || skipped(label, options)) continue;
        GateCheck check;
        check.status = GateCheck::Status::Warn;
        check.label = label;
        check.detail = "not in baseline (regenerate to enforce)";
        result.checks.push_back(std::move(check));
    }

    result.passed = result.failures() == 0;
    return true;
}

}  // namespace uhcg::obs
