// obs.hpp — process-wide observability substrate for the whole flow.
//
// Every layer of the pipeline (XML parsing, XMI loading, task-graph
// mining, clustering/allocation, DSE sweeps, sim/KPN execution, flow
// passes, code emission) instruments itself against this one module:
//
//  * *hierarchical spans* — RAII `ObsSpan` records a named, steady-clock
//    timed interval into a per-thread buffer. Spans nest: each span knows
//    its parent (the innermost open span on the same thread, or the
//    logical parent propagated across a thread-pool fan-out via
//    `ScopedContext`). Buffers merge deterministically on collection.
//  * *metrics registry* — named `Counter`s (monotonic, relaxed-atomic)
//    and `Histogram`s (fixed log2 buckets) shared process-wide; hot paths
//    cache the returned reference so steady-state cost is one atomic add.
//  * *near-zero cost when disabled* — tracing is off by default; a
//    disabled `ObsSpan` is one relaxed atomic load, no clock read, no
//    allocation. Counters stay live (they are cheap and several reports
//    read them), but callers may gate expensive counting on `enabled()`.
//  * *exporters* — Chrome `trace_event` JSON (loadable in chrome://tracing
//    and Perfetto), the machine-readable `uhcg-obs-v1` summary, and a
//    human `--profile` table. The flow layer's `uhcg-flow-trace-v1` pass
//    trace is a coarser view over the same instrumentation points.
//
// Thread safety: everything here is safe to call from any thread,
// including pool workers. Span bookkeeping that only the owning thread
// touches (open-span stack, depth) is lock-free; the record buffer takes
// an uncontended per-thread mutex so `spans_snapshot()` may run
// concurrently with producers.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace uhcg::obs {

// ---------------------------------------------------------------------------
// Enable switch.

/// True when span tracing is armed (counters are always live).
bool enabled();
/// Flips tracing on/off process-wide. Spans already open are unaffected.
void set_enabled(bool on);

// ---------------------------------------------------------------------------
// Metrics registry.

/// Monotonic counter. Increments are relaxed atomics — safe from any
/// thread, imposing one `lock add` on the hot path.
class Counter {
public:
    void add(std::uint64_t delta = 1) {
        value_.fetch_add(delta, std::memory_order_relaxed);
    }
    std::uint64_t value() const {
        return value_.load(std::memory_order_relaxed);
    }
    void reset() { value_.store(0, std::memory_order_relaxed); }

private:
    std::atomic<std::uint64_t> value_{0};
};

/// Histogram over fixed log2 buckets. Bucket 0 holds the value 0; bucket
/// b (1 <= b <= 64) holds values in [2^(b-1), 2^b - 1] — i.e. the bucket
/// index is the bit width of the value. No configuration, no allocation,
/// mergeable by addition.
class Histogram {
public:
    static constexpr std::size_t kBuckets = 65;

    void observe(std::uint64_t value) {
        buckets_[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
        count_.fetch_add(1, std::memory_order_relaxed);
        sum_.fetch_add(value, std::memory_order_relaxed);
    }

    /// Bucket index for a value: 0 for 0, else bit_width(value).
    static std::size_t bucket_index(std::uint64_t value);
    /// Inclusive bounds of bucket `index`: [floor, ceil].
    static std::uint64_t bucket_floor(std::size_t index);
    static std::uint64_t bucket_ceil(std::size_t index);

    std::uint64_t bucket(std::size_t index) const {
        return buckets_[index].load(std::memory_order_relaxed);
    }
    std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
    std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
    void reset();

private:
    std::atomic<std::uint64_t> buckets_[kBuckets]{};
    std::atomic<std::uint64_t> count_{0};
    std::atomic<std::uint64_t> sum_{0};
};

/// Returns the process-wide counter registered under `name`, creating it
/// on first use. The reference is stable for the process lifetime — cache
/// it (e.g. in a function-local static) on hot paths.
Counter& counter(std::string_view name);

/// As `counter`, for histograms.
Histogram& histogram(std::string_view name);

/// One histogram bucket in a snapshot: values in [floor, ceil] (both
/// inclusive) occurred `count` times. Empty buckets are omitted.
struct HistogramBucket {
    std::uint64_t floor = 0;
    std::uint64_t ceil = 0;
    std::uint64_t count = 0;
};

struct HistogramSnapshot {
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::vector<HistogramBucket> buckets;
};

/// Point-in-time copy of every registered metric, name-sorted (the
/// registry map is ordered), so rendering is deterministic.
struct MetricsSnapshot {
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, HistogramSnapshot> histograms;
};

MetricsSnapshot metrics_snapshot();

/// Zeroes every registered metric (tests and repeated bench sections).
void reset_metrics();

// ---------------------------------------------------------------------------
// Spans.

/// One completed span as collected from the per-thread buffers.
struct SpanRecord {
    std::string name;
    std::string category;   ///< layer tag; defaults to the dotted prefix
    std::uint64_t id = 0;        ///< process-unique, 1-based
    std::uint64_t parent = 0;    ///< 0 = root
    std::uint64_t start_ns = 0;  ///< steady-clock, relative to process epoch
    std::uint64_t dur_ns = 0;
    std::uint32_t thread = 0;    ///< stable per-thread ordinal, 0 = first
    std::uint32_t depth = 0;     ///< nesting depth on its own thread
    std::uint64_t seq = 0;       ///< per-thread completion sequence
    std::string attr_key;        ///< optional annotation (empty = none)
    std::string attr_value;
};

/// Logical parent handle for cross-thread fan-out: capture on the
/// submitting thread, install with `ScopedContext` inside the worker so
/// worker spans join the submitter's subtree.
struct Context {
    std::uint64_t span_id = 0;
};

/// The innermost open span on this thread (or its inherited context).
Context current_context();

/// Installs `context` as this thread's inherited parent for spans opened
/// while it is alive; restores the previous inheritance on destruction.
class ScopedContext {
public:
    explicit ScopedContext(Context context);
    ~ScopedContext();
    ScopedContext(const ScopedContext&) = delete;
    ScopedContext& operator=(const ScopedContext&) = delete;

private:
    std::uint64_t previous_ = 0;
    bool armed_ = false;
};

/// RAII span. When tracing is disabled, construction is one relaxed
/// atomic load and destruction a branch — no clock read, no allocation.
/// `category` defaults to `name` up to its first '.' (the layer tag:
/// "xml.parse" → "xml").
class ObsSpan {
public:
    explicit ObsSpan(std::string_view name, std::string_view category = {});
    ~ObsSpan();
    ObsSpan(const ObsSpan&) = delete;
    ObsSpan& operator=(const ObsSpan&) = delete;

    /// True when this span is actually recording (tracing was enabled at
    /// construction).
    bool armed() const { return armed_; }
    std::uint64_t id() const { return id_; }

    /// Attaches one key/value annotation, exported in the Chrome-trace
    /// `args` object (e.g. the simulation backend pricing a sweep). A
    /// second call overwrites; no-op on a disarmed span.
    void annotate(std::string_view key, std::string_view value);

private:
    std::string name_;
    std::string category_;
    std::string attr_key_;
    std::string attr_value_;
    std::uint64_t id_ = 0;
    std::uint64_t parent_ = 0;
    std::uint64_t prev_open_ = 0;
    std::uint64_t start_ns_ = 0;
    std::uint32_t depth_ = 0;
    bool armed_ = false;
};

/// Merged copy of every thread's completed spans, deterministically
/// ordered by (start_ns, thread ordinal, per-thread sequence) — a total
/// order, so identical record sets always merge identically.
std::vector<SpanRecord> spans_snapshot();

/// Drops every completed span (open spans keep recording into the fresh
/// buffer generation).
void reset_spans();

// ---------------------------------------------------------------------------
// Exporters.

/// Chrome trace_event JSON: an object with "traceEvents" (complete "X"
/// events, microsecond timestamps, one tid per recorded thread) plus
/// thread-name metadata — loadable in chrome://tracing and Perfetto.
/// Counters are attached as a final global metadata event when given.
std::string chrome_trace_json(const std::vector<SpanRecord>& spans,
                              const MetricsSnapshot* metrics = nullptr);

/// Machine-readable run summary, schema `uhcg-obs-v1`:
/// { "schema": "uhcg-obs-v1",
///   "spans": [{"name","category","count","total_ms","self_ms",
///              "min_ms","max_ms"}...],            // aggregated by name
///   "counters": {"name": value, ...},
///   "histograms": {"name": {"count","sum",
///                  "buckets":[{"ge","le","count"}...]}, ...},
///   "totals": {"spans": N, "threads": T, "wall_ms": W} }
std::string summary_json(const std::vector<SpanRecord>& spans,
                         const MetricsSnapshot& metrics);

/// Human `--profile` table: spans aggregated by name (count, total, self,
/// mean), sorted by total time descending, then the non-zero counters.
std::string profile_table(const std::vector<SpanRecord>& spans,
                          const MetricsSnapshot& metrics);

}  // namespace uhcg::obs
