#include "obs/json.hpp"

#include <cmath>
#include <cstdlib>

namespace uhcg::obs::json {
namespace {

class Parser {
public:
    Parser(std::string_view text, std::string& error,
           const ParseLimits& limits)
        : text_(text), error_(error), limits_(limits) {}

    bool run(Value& out) {
        if (limits_.max_bytes && text_.size() > limits_.max_bytes)
            return fail("input exceeds size limit " +
                        std::to_string(limits_.max_bytes) + " bytes");
        skip_ws();
        if (!parse_value(out)) return false;
        skip_ws();
        if (pos_ != text_.size()) return fail("trailing characters");
        return true;
    }

private:
    bool fail(const std::string& message) {
        std::size_t line = 1, column = 1;
        for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
            if (text_[i] == '\n') {
                ++line;
                column = 1;
            } else {
                ++column;
            }
        }
        error_ = std::to_string(line) + ":" + std::to_string(column) + ": " +
                 message;
        return false;
    }

    void skip_ws() {
        while (pos_ < text_.size()) {
            char c = text_[pos_];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
            ++pos_;
        }
    }

    bool eof() const { return pos_ >= text_.size(); }
    char peek() const { return text_[pos_]; }

    bool literal(std::string_view word) {
        if (text_.substr(pos_, word.size()) != word)
            return fail("invalid literal");
        pos_ += word.size();
        return true;
    }

    bool parse_value(Value& out) {
        if (eof()) return fail("unexpected end of input");
        switch (peek()) {
            case '{': return parse_object(out);
            case '[': return parse_array(out);
            case '"':
                out.kind = Value::Kind::String;
                return parse_string(out.string);
            case 't':
                out.kind = Value::Kind::Boolean;
                out.boolean = true;
                return literal("true");
            case 'f':
                out.kind = Value::Kind::Boolean;
                out.boolean = false;
                return literal("false");
            case 'n':
                out.kind = Value::Kind::Null;
                return literal("null");
            default: return parse_number(out);
        }
    }

    /// Containers recurse through parse_value; every nesting level must
    /// pass this gate first, so a hostile document fails with a
    /// structured error long before the call stack is at risk.
    bool enter() {
        if (++depth_ > limits_.max_depth)
            return fail("nesting exceeds depth limit " +
                        std::to_string(limits_.max_depth));
        return true;
    }
    void leave() { --depth_; }

    bool parse_object(Value& out) {
        out.kind = Value::Kind::Object;
        if (!enter()) return false;
        ++pos_;  // '{'
        skip_ws();
        if (!eof() && peek() == '}') {
            ++pos_;
            leave();
            return true;
        }
        while (true) {
            skip_ws();
            if (eof() || peek() != '"') return fail("expected member name");
            std::string key;
            if (!parse_string(key)) return false;
            skip_ws();
            if (eof() || peek() != ':') return fail("expected ':'");
            ++pos_;
            skip_ws();
            Value member;
            if (!parse_value(member)) return false;
            out.object.emplace_back(std::move(key), std::move(member));
            skip_ws();
            if (eof()) return fail("unterminated object");
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == '}') {
                ++pos_;
                leave();
                return true;
            }
            return fail("expected ',' or '}'");
        }
    }

    bool parse_array(Value& out) {
        out.kind = Value::Kind::Array;
        if (!enter()) return false;
        ++pos_;  // '['
        skip_ws();
        if (!eof() && peek() == ']') {
            ++pos_;
            leave();
            return true;
        }
        while (true) {
            skip_ws();
            Value element;
            if (!parse_value(element)) return false;
            out.array.push_back(std::move(element));
            skip_ws();
            if (eof()) return fail("unterminated array");
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == ']') {
                ++pos_;
                leave();
                return true;
            }
            return fail("expected ',' or ']'");
        }
    }

    bool parse_string(std::string& out) {
        ++pos_;  // opening quote
        out.clear();
        while (true) {
            if (eof()) return fail("unterminated string");
            char c = text_[pos_++];
            if (c == '"') return true;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (eof()) return fail("unterminated escape");
            char esc = text_[pos_++];
            switch (esc) {
                case '"': out += '"'; break;
                case '\\': out += '\\'; break;
                case '/': out += '/'; break;
                case 'b': out += '\b'; break;
                case 'f': out += '\f'; break;
                case 'n': out += '\n'; break;
                case 'r': out += '\r'; break;
                case 't': out += '\t'; break;
                case 'u': {
                    if (pos_ + 4 > text_.size())
                        return fail("truncated \\u escape");
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        char h = text_[pos_++];
                        code <<= 4;
                        if (h >= '0' && h <= '9')
                            code |= static_cast<unsigned>(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            code |= static_cast<unsigned>(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F')
                            code |= static_cast<unsigned>(h - 'A' + 10);
                        else
                            return fail("invalid \\u escape");
                    }
                    // UTF-8 encode the BMP code point (surrogate pairs are
                    // passed through as-is — the emitters never produce them).
                    if (code < 0x80) {
                        out += static_cast<char>(code);
                    } else if (code < 0x800) {
                        out += static_cast<char>(0xC0 | (code >> 6));
                        out += static_cast<char>(0x80 | (code & 0x3F));
                    } else {
                        out += static_cast<char>(0xE0 | (code >> 12));
                        out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
                        out += static_cast<char>(0x80 | (code & 0x3F));
                    }
                    break;
                }
                default: return fail("invalid escape");
            }
        }
    }

    bool parse_number(Value& out) {
        std::size_t start = pos_;
        if (!eof() && peek() == '-') ++pos_;
        while (!eof() && ((peek() >= '0' && peek() <= '9') || peek() == '.' ||
                          peek() == 'e' || peek() == 'E' || peek() == '+' ||
                          peek() == '-'))
            ++pos_;
        if (pos_ == start) return fail("expected a value");
        std::string token(text_.substr(start, pos_ - start));
        char* end = nullptr;
        double parsed = std::strtod(token.c_str(), &end);
        if (end != token.c_str() + token.size() || !std::isfinite(parsed)) {
            pos_ = start;
            return fail("invalid number");
        }
        out.kind = Value::Kind::Number;
        out.number = parsed;
        return true;
    }

    std::string_view text_;
    std::string& error_;
    ParseLimits limits_;
    std::size_t pos_ = 0;
    std::size_t depth_ = 0;
};

}  // namespace

const Value* Value::find(std::string_view key) const {
    if (kind != Kind::Object) return nullptr;
    for (const auto& [name, value] : object)
        if (name == key) return &value;
    return nullptr;
}

bool parse(std::string_view text, Value& out, std::string& error,
           const ParseLimits& limits) {
    return Parser(text, error, limits).run(out);
}

}  // namespace uhcg::obs::json
