#include "dse/explore.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <sstream>

#include "taskgraph/baselines.hpp"
#include "taskgraph/dsc.hpp"
#include "taskgraph/linear.hpp"

namespace uhcg::dse {
namespace {

Candidate evaluate(const taskgraph::TaskGraph& graph, std::string strategy,
                   taskgraph::Clustering clustering,
                   const sim::MpsocParams& params) {
    Candidate c{std::move(strategy),
                static_cast<std::size_t>(clustering.cluster_count()),
                std::move(clustering)};
    sim::MpsocResult r = sim::simulate_mpsoc(graph, c.clustering, params);
    c.makespan = r.makespan;
    c.inter_traffic = r.inter_traffic;
    c.bus_busy = r.bus_busy;
    double busy = 0.0;
    for (double b : r.cpu_busy) busy += b;
    c.cpu_utilization =
        r.makespan > 0.0
            ? busy / (r.makespan * static_cast<double>(r.cpu_busy.size()))
            : 0.0;
    return c;
}

}  // namespace

ExploreResult explore(const uml::Model& model, const core::CommModel& comm,
                      const ExploreOptions& options) {
    taskgraph::TaskGraph graph = core::build_task_graph(model, comm);
    std::size_t n = graph.task_count();
    std::size_t max_cpus = options.max_processors == 0
                               ? n
                               : std::min(options.max_processors, n);

    ExploreResult result;
    if (n == 0) return result;

    // Unbounded linear clustering picks its own processor count — the
    // §4.2.3 default — and anchors the sweep.
    result.candidates.push_back(evaluate(
        graph, "linear", taskgraph::linear_clustering(graph), options.cost_model));
    result.candidates.push_back(
        evaluate(graph, "dsc", taskgraph::dsc_clustering(graph),
                 options.cost_model));

    for (std::size_t k = 1; k <= max_cpus; ++k) {
        taskgraph::LinearClusteringOptions lc;
        lc.max_clusters = k;
        result.candidates.push_back(evaluate(
            graph, "linear/k", taskgraph::linear_clustering(graph, lc),
            options.cost_model));
        result.candidates.push_back(
            evaluate(graph, "load-balance",
                     taskgraph::load_balance_clustering(graph, k),
                     options.cost_model));
        result.candidates.push_back(
            evaluate(graph, "round-robin",
                     taskgraph::round_robin_clustering(graph, k),
                     options.cost_model));
        for (std::size_t s = 0; s < options.random_samples; ++s)
            result.candidates.push_back(evaluate(
                graph, "random",
                taskgraph::random_clustering(graph, k, 77 + k * 31 + s),
                options.cost_model));
    }

    // Pareto front over (processors ↓, makespan ↓).
    for (std::size_t i = 0; i < result.candidates.size(); ++i) {
        const Candidate& a = result.candidates[i];
        bool dominated = false;
        for (const Candidate& b : result.candidates) {
            if (&a == &b) continue;
            bool no_worse = b.processors <= a.processors &&
                            b.makespan <= a.makespan + 1e-9;
            bool strictly_better =
                b.processors < a.processors || b.makespan < a.makespan - 1e-9;
            if (no_worse && strictly_better) {
                dominated = true;
                break;
            }
        }
        result.candidates[i].pareto = !dominated;
    }
    // The front keeps one representative per processor count (ties are
    // common — several strategies can produce the same clustering).
    std::map<std::size_t, std::size_t> by_cpus;
    for (std::size_t i = 0; i < result.candidates.size(); ++i) {
        const Candidate& c = result.candidates[i];
        if (!c.pareto) continue;
        auto [it, inserted] = by_cpus.emplace(c.processors, i);
        if (!inserted && c.makespan < result.candidates[it->second].makespan)
            it->second = i;
    }
    for (const auto& [cpus, index] : by_cpus) result.pareto_front.push_back(index);

    // Recommendation: minimum makespan, ties broken toward fewer CPUs.
    result.best = 0;
    for (std::size_t i = 1; i < result.candidates.size(); ++i) {
        const Candidate& cur = result.candidates[i];
        const Candidate& best = result.candidates[result.best];
        if (cur.makespan < best.makespan - 1e-9 ||
            (std::abs(cur.makespan - best.makespan) <= 1e-9 &&
             cur.processors < best.processors))
            result.best = i;
    }
    return result;
}

core::Allocation to_allocation(const uml::Model& model,
                               const Candidate& candidate) {
    core::Allocation out;
    for (std::size_t p = 0; p < candidate.processors; ++p)
        out.add_processor("CPU" + std::to_string(p));
    auto threads = model.threads();
    if (threads.size() != candidate.clustering.task_count())
        throw std::invalid_argument(
            "candidate does not match the model's thread count");
    for (std::size_t t = 0; t < threads.size(); ++t)
        out.assign(*threads[t],
                   static_cast<std::size_t>(candidate.clustering.cluster_of(t)));
    return out;
}

core::Allocation best_allocation(const uml::Model& model,
                                 const core::CommModel& comm,
                                 const ExploreOptions& options) {
    ExploreResult result = explore(model, comm, options);
    if (result.candidates.empty())
        throw std::runtime_error("nothing to explore: model has no threads");
    return to_allocation(model, result.candidates[result.best]);
}

std::string format(const ExploreResult& result) {
    std::ostringstream out;
    out << "candidates=" << result.candidates.size() << "  pareto front:\n";
    for (std::size_t i : result.pareto_front) {
        const Candidate& c = result.candidates[i];
        out << "  CPUs=" << c.processors << "  makespan=" << c.makespan
            << "  inter=" << c.inter_traffic << "  util=" << c.cpu_utilization
            << "  [" << c.strategy << "]"
            << (i == result.best ? "  <= recommended" : "") << '\n';
    }
    return out.str();
}

}  // namespace uhcg::dse
