#include "dse/explore.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <sstream>
#include <string_view>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "core/parallel.hpp"
#include "obs/obs.hpp"
#include "sim/backend.hpp"
#include "sim/batch.hpp"
#include "taskgraph/baselines.hpp"
#include "taskgraph/dsc.hpp"
#include "taskgraph/linear.hpp"

namespace uhcg::dse {
namespace {

// ---------------------------------------------------------------------------
// Fingerprints. 64-bit FNV-1a over canonical byte streams; the clustering
// fingerprint renumbers cluster ids by first appearance so strategy-specific
// labelings of the same partition collide.

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t fnv1a(std::uint64_t hash, std::uint64_t value) {
    for (int byte = 0; byte < 8; ++byte) {
        hash ^= (value >> (byte * 8)) & 0xffu;
        hash *= kFnvPrime;
    }
    return hash;
}

std::uint64_t fnv1a(std::uint64_t hash, double value) {
    return fnv1a(hash, std::bit_cast<std::uint64_t>(value));
}

std::uint64_t fnv1a(std::uint64_t hash, std::string_view text) {
    for (unsigned char byte : text) {
        hash ^= byte;
        hash *= kFnvPrime;
    }
    return hash;
}

std::uint64_t graph_fingerprint(const taskgraph::TaskGraph& graph) {
    std::uint64_t h = fnv1a(kFnvOffset, graph.task_count());
    for (std::size_t t = 0; t < graph.task_count(); ++t)
        h = fnv1a(h, graph.weight(t));
    for (const taskgraph::Edge& e : graph.edges()) {
        h = fnv1a(h, e.from);
        h = fnv1a(h, e.to);
        h = fnv1a(h, e.cost);
        h = fnv1a(h, static_cast<std::uint64_t>(e.produce));
        h = fnv1a(h, static_cast<std::uint64_t>(e.consume));
    }
    return h;
}

std::uint64_t params_fingerprint(const sim::MpsocParams& p) {
    std::uint64_t h = fnv1a(kFnvOffset, p.cycles_per_work);
    h = fnv1a(h, p.swfifo_cost_per_byte);
    h = fnv1a(h, p.gfifo_cost_per_byte);
    h = fnv1a(h, p.bus_setup);
    return fnv1a(h, static_cast<std::uint64_t>(p.shared_bus));
}

// ---------------------------------------------------------------------------
// Process-wide memoization of simulate_mpsoc, so repeated budgets inside a
// sweep, the best_allocation convenience path and repeated explorations all
// pay for each unique (graph, clustering, cost model) exactly once.

struct CacheKey {
    std::uint64_t graph = 0;
    std::uint64_t clustering = 0;
    std::uint64_t params = 0;
    /// Fingerprint of the *effective* backend name, so inexact backends
    /// never alias exact entries. A fallback compiles to dynamic-fifo and
    /// deliberately shares its entries — it runs the same engine.
    std::uint64_t backend = 0;
    bool operator==(const CacheKey&) const = default;
};

struct CacheKeyHash {
    std::size_t operator()(const CacheKey& k) const {
        return static_cast<std::size_t>(fnv1a(
            fnv1a(fnv1a(fnv1a(kFnvOffset, k.graph), k.clustering), k.params),
            k.backend));
    }
};

class SimulationCache {
public:
    bool lookup(const CacheKey& key, sim::MpsocResult& out) {
        std::lock_guard<std::mutex> lock(mutex_);
        ++lookups_;
        auto it = map_.find(key);
        if (it == map_.end()) return false;
        ++hits_;
        it->second.stamp = ++stamp_;  // recency for trim()
        out = it->second.result;
        return true;
    }

    void insert(const CacheKey& key, const sim::MpsocResult& result) {
        std::lock_guard<std::mutex> lock(mutex_);
        // Crude bound: a sweep over huge generated apps must not grow the
        // process without limit; dropping everything keeps hits deterministic
        // per run (lookups happen before any insert of the same run).
        if (map_.size() >= kMaxEntries) map_.clear();
        map_.emplace(key, Entry{result, ++stamp_});
    }

    SimCacheStats stats() {
        std::lock_guard<std::mutex> lock(mutex_);
        return {map_.size(), lookups_, hits_};
    }

    void clear() {
        std::lock_guard<std::mutex> lock(mutex_);
        map_.clear();
        lookups_ = 0;
        hits_ = 0;
    }

    /// Least-recently-used eviction down to `max_entries` — the hook a
    /// resident host (the serve daemon) uses to keep the process-wide
    /// memo inside its memory budget instead of the all-or-nothing bound
    /// above. Returns the number of entries dropped.
    std::size_t trim(std::size_t max_entries) {
        std::lock_guard<std::mutex> lock(mutex_);
        if (map_.size() <= max_entries) return 0;
        std::vector<std::uint64_t> stamps;
        stamps.reserve(map_.size());
        for (const auto& [key, entry] : map_) stamps.push_back(entry.stamp);
        // The (size - max) smallest stamps are the eviction set.
        std::size_t drop = map_.size() - max_entries;
        std::nth_element(stamps.begin(), stamps.begin() + (drop - 1),
                         stamps.end());
        std::uint64_t threshold = stamps[drop - 1];
        std::size_t dropped = 0;
        for (auto it = map_.begin(); it != map_.end();) {
            if (it->second.stamp <= threshold) {
                it = map_.erase(it);
                ++dropped;
            } else {
                ++it;
            }
        }
        return dropped;
    }

private:
    static constexpr std::size_t kMaxEntries = 1u << 16;
    struct Entry {
        sim::MpsocResult result;
        std::uint64_t stamp = 0;  ///< monotone recency (insert or hit)
    };
    std::mutex mutex_;
    std::unordered_map<CacheKey, Entry, CacheKeyHash> map_;
    std::size_t lookups_ = 0;
    std::size_t hits_ = 0;
    std::uint64_t stamp_ = 0;
};

SimulationCache& cache() {
    static SimulationCache instance;
    return instance;
}

/// One planned (strategy, budget, seed) candidate: name + how to build it.
struct Descriptor {
    std::string strategy;
    std::function<taskgraph::Clustering()> make;
};

void fill_metrics(Candidate& c, const sim::MpsocResult& r) {
    c.makespan = r.makespan;
    c.inter_traffic = r.inter_traffic;
    c.bus_busy = r.bus_busy;
    double busy = 0.0;
    for (double b : r.cpu_busy) busy += b;
    c.cpu_utilization =
        r.makespan > 0.0
            ? busy / (r.makespan * static_cast<double>(r.cpu_busy.size()))
            : 0.0;
}

}  // namespace

std::uint64_t clustering_fingerprint(const taskgraph::Clustering& clustering) {
    std::vector<int> canon(clustering.task_count(), -1);
    int next_id = 0;
    std::uint64_t h = fnv1a(kFnvOffset, clustering.task_count());
    for (std::size_t t = 0; t < clustering.task_count(); ++t) {
        int cluster = clustering.cluster_of(t);
        // Renumber by first appearance: label-invariant identity.
        int& dense = canon[static_cast<std::size_t>(cluster)];
        if (dense < 0) dense = next_id++;
        h = fnv1a(h, static_cast<std::uint64_t>(dense));
    }
    return h;
}

ExploreResult explore(const uml::Model& model, const core::CommModel& comm,
                      const ExploreOptions& options,
                      diag::DiagnosticEngine* engine) {
    obs::ObsSpan explore_span("dse.explore");
    const sim::Backend& backend = sim::backend_or_throw(options.backend);
    explore_span.annotate("sim.backend", backend.name());
    taskgraph::TaskGraph graph = core::build_task_graph(model, comm);
    const std::size_t n = graph.task_count();

    ExploreResult result;
    result.stats.backend = std::string(backend.name());
    result.stats.effective_backend = result.stats.backend;
    if (n == 0) return result;
    const std::size_t max_cpus = options.max_processors == 0
                                     ? n
                                     : std::min(options.max_processors, n);
    const std::size_t jobs = core::effective_jobs(options.jobs);

    // 1. Plan every (strategy, budget, seed) candidate up front, in the
    //    fixed order the result exposes. Unbounded linear clustering picks
    //    its own processor count — the §4.2.3 default — and anchors the
    //    sweep; the per-budget strategies and random samples add diversity.
    std::vector<Descriptor> plan;
    plan.reserve(2 + max_cpus * (3 + options.random_samples));
    plan.push_back(
        {"linear", [&graph] { return taskgraph::linear_clustering(graph); }});
    plan.push_back(
        {"dsc", [&graph] { return taskgraph::dsc_clustering(graph); }});
    for (std::size_t k = 1; k <= max_cpus; ++k) {
        plan.push_back({"linear/k", [&graph, k] {
                            taskgraph::LinearClusteringOptions lc;
                            lc.max_clusters = k;
                            return taskgraph::linear_clustering(graph, lc);
                        }});
        plan.push_back({"load-balance", [&graph, k] {
                            return taskgraph::load_balance_clustering(graph, k);
                        }});
        plan.push_back({"round-robin", [&graph, k] {
                            return taskgraph::round_robin_clustering(graph, k);
                        }});
        for (std::size_t s = 0; s < options.random_samples; ++s)
            plan.push_back({"random", [&graph, k, s] {
                                return taskgraph::random_clustering(
                                    graph, k, 77 + k * 31 + s);
                            }});
    }

    // 2. Build the clusterings (each generator is independent and reads the
    //    graph only).
    std::vector<taskgraph::Clustering> clusterings(plan.size(),
                                                   taskgraph::Clustering(0));
    {
        obs::ObsSpan span("dse.cluster-sweep");
        core::parallel_for(plan.size(), jobs, [&](std::size_t i) {
            clusterings[i] = plan[i].make();
        });
    }

    // 3. Fingerprint and deduplicate *before* simulation: several strategies
    //    routinely produce the same partition (round-robin at k = n is the
    //    discrete clustering, bounded linear at large k repeats, ...).
    std::vector<std::uint64_t> fingerprints(plan.size());
    for (std::size_t i = 0; i < plan.size(); ++i)
        fingerprints[i] = clustering_fingerprint(clusterings[i]);
    std::unordered_map<std::uint64_t, std::size_t> slot_of;  // fp → slot
    slot_of.reserve(plan.size() * 2);
    std::vector<std::size_t> unique_index;  // slot → first candidate index
    unique_index.reserve(plan.size());
    for (std::size_t i = 0; i < plan.size(); ++i) {
        auto [it, inserted] =
            slot_of.emplace(fingerprints[i], unique_index.size());
        if (inserted) unique_index.push_back(i);
        (void)it;
    }

    // 4. Compile the graph on the requested backend (the per-(graph,
    //    params) precomputation, shared read-only by every worker; an sdf
    //    request on non-static rates falls back to dynamic-fifo here,
    //    reporting into `engine`), probe the memo cache per unique
    //    clustering, then fan the surviving evaluations out across the
    //    pool in *chunks*: each chunk mints one BackendEvaluator (partial
    //    caches, schedule-prefix reuse between consecutive candidates), so
    //    a pool task amortizes dispatch over `chunk` candidates.
    std::unique_ptr<sim::CompiledModel> compiled =
        backend.compile(graph, options.cost_model, engine);
    result.stats.effective_backend = std::string(compiled->effective_backend());
    const std::uint64_t graph_fp = graph_fingerprint(graph);
    const std::uint64_t params_fp = params_fingerprint(options.cost_model);
    const std::uint64_t backend_fp =
        fnv1a(kFnvOffset, compiled->effective_backend());
    std::vector<sim::MpsocResult> unique_results(unique_index.size());
    std::vector<std::size_t> to_simulate;
    to_simulate.reserve(unique_index.size());
    for (std::size_t slot = 0; slot < unique_index.size(); ++slot) {
        CacheKey key{graph_fp, fingerprints[unique_index[slot]], params_fp,
                     backend_fp};
        if (!cache().lookup(key, unique_results[slot]))
            to_simulate.push_back(slot);
    }
    // Locality order: neighbors (same strategy, adjacent budgets) differ by
    // few task moves, so placing them consecutively in a chunk maximizes
    // partial/prefix reuse. Purely an evaluation order — results land in
    // fixed slots, so rankings stay byte-identical to the exhaustive path.
    std::vector<std::size_t> sim_order = to_simulate;
    std::sort(sim_order.begin(), sim_order.end(),
              [&](std::size_t a, std::size_t b) {
                  std::size_t ia = unique_index[a];
                  std::size_t ib = unique_index[b];
                  if (plan[ia].strategy != plan[ib].strategy)
                      return plan[ia].strategy < plan[ib].strategy;
                  int ka = clusterings[ia].cluster_count();
                  int kb = clusterings[ib].cluster_count();
                  if (ka != kb) return ka < kb;
                  return ia < ib;
              });
    const std::size_t chunk = options.chunk_size == 0 ? core::kDefaultChunkSize
                                                      : options.chunk_size;
    const std::size_t num_chunks = (sim_order.size() + chunk - 1) / chunk;
    std::vector<sim::BatchStats> chunk_stats(num_chunks);
    {
        obs::ObsSpan span("dse.simulate-sweep");
        span.annotate("sim.backend", compiled->effective_backend());
        core::parallel_for_chunked(
            sim_order.size(), jobs, chunk,
            [&](std::size_t begin, std::size_t end) {
                obs::ObsSpan chunk_span("sim.mpsoc-batch");
                chunk_span.annotate("sim.backend",
                                    compiled->effective_backend());
                std::unique_ptr<sim::BackendEvaluator> evaluator =
                    compiled->evaluator();
                for (std::size_t t = begin; t < end; ++t) {
                    std::size_t slot = sim_order[t];
                    unique_results[slot] =
                        evaluator->evaluate(clusterings[unique_index[slot]]);
                }
                chunk_stats[begin / chunk] = evaluator->stats();
            });
    }
    for (std::size_t slot : to_simulate)
        cache().insert({graph_fp, fingerprints[unique_index[slot]], params_fp,
                        backend_fp},
                       unique_results[slot]);

    // Optional oracle check: re-price every unique clustering on a fresh,
    // chain-free evaluator of the same compiled model and require bitwise
    // equality on every metric. For an exact non-default backend the
    // makespan is additionally cross-checked bitwise against the
    // dynamic-fifo reference engine — the backend-equivalence contract.
    if (options.verify_full) {
        obs::ObsSpan span("dse.verify-full");
        const bool cross_check =
            compiled->exact() &&
            compiled->effective_backend() != sim::kDefaultBackend;
        core::parallel_for(unique_index.size(), jobs, [&](std::size_t slot) {
            sim::MpsocResult fresh =
                compiled->evaluator()->evaluate(
                    clusterings[unique_index[slot]]);
            const sim::MpsocResult& inc = unique_results[slot];
            bool same = fresh.makespan == inc.makespan &&
                        fresh.bus_busy == inc.bus_busy &&
                        fresh.inter_traffic == inc.inter_traffic &&
                        fresh.intra_traffic == inc.intra_traffic &&
                        fresh.bus_transfers == inc.bus_transfers &&
                        fresh.cpu_busy == inc.cpu_busy;
            if (!same)
                throw std::logic_error(
                    "dse verify-full: incremental metrics diverge from full "
                    "re-simulation (strategy " +
                    plan[unique_index[slot]].strategy + ")");
            if (cross_check) {
                sim::MpsocResult reference = sim::simulate_mpsoc(
                    graph, clusterings[unique_index[slot]],
                    options.cost_model);
                if (reference.makespan != inc.makespan)
                    throw std::logic_error(
                        "dse verify-full: backend '" +
                        std::string(compiled->effective_backend()) +
                        "' makespan diverges from dynamic-fifo (strategy " +
                        plan[unique_index[slot]].strategy + ")");
            }
        });
        result.stats.verified = unique_index.size();
    }

    // 5. Assemble candidates in plan order; every clustering moves, never
    //    copies, and duplicates reuse their representative's metrics.
    result.candidates.reserve(plan.size());
    for (std::size_t i = 0; i < plan.size(); ++i) {
        Candidate c{plan[i].strategy,
                    static_cast<std::size_t>(clusterings[i].cluster_count()),
                    std::move(clusterings[i])};
        c.fingerprint = fingerprints[i];
        fill_metrics(c, unique_results[slot_of.at(fingerprints[i])]);
        result.candidates.push_back(std::move(c));
    }
    result.stats.candidates = result.candidates.size();
    result.stats.unique_clusterings = unique_index.size();
    result.stats.duplicates_skipped =
        result.candidates.size() - unique_index.size();
    result.stats.simulations = to_simulate.size();
    result.stats.cache_hits = unique_index.size() - to_simulate.size();
    result.stats.jobs = jobs;
    result.stats.chunks = num_chunks;
    for (const sim::BatchStats& s : chunk_stats) {
        result.stats.partial_reuse += s.partials_reused;
        result.stats.prefix_tasks_reused += s.prefix_tasks_reused;
    }
    obs::counter("dse.candidates").add(result.stats.candidates);
    obs::counter("dse.cache_hits").add(result.stats.cache_hits);
    obs::counter("dse.simulations").add(result.stats.simulations);
    obs::counter("dse.duplicates_skipped").add(result.stats.duplicates_skipped);
    obs::counter("dse.partial_reuse").add(result.stats.partial_reuse);
    obs::counter("dse.prefix_reuse").add(result.stats.prefix_tasks_reused);
    obs::counter("dse.chunks").add(result.stats.chunks);
    if (result.stats.verified)
        obs::counter("dse.verified").add(result.stats.verified);

    // 6. Pareto front over (processors ↓, makespan ↓) in one sort-based
    //    O(m log m) pass. A candidate is dominated iff some candidate with
    //    strictly fewer processors has makespan <= its own + eps, or one
    //    with the same count has makespan < its own - eps.
    constexpr double kEps = 1e-9;
    std::vector<std::size_t> order(result.candidates.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        const Candidate& ca = result.candidates[a];
        const Candidate& cb = result.candidates[b];
        if (ca.processors != cb.processors) return ca.processors < cb.processors;
        if (ca.makespan != cb.makespan) return ca.makespan < cb.makespan;
        return a < b;
    });
    double best_fewer = std::numeric_limits<double>::infinity();
    for (std::size_t at = 0; at < order.size();) {
        std::size_t group_end = at;
        const std::size_t procs = result.candidates[order[at]].processors;
        double best_same = std::numeric_limits<double>::infinity();
        std::size_t representative = order.size();
        while (group_end < order.size() &&
               result.candidates[order[group_end]].processors == procs) {
            Candidate& c = result.candidates[order[group_end]];
            bool dominated = best_fewer <= c.makespan + kEps ||
                             best_same < c.makespan - kEps;
            c.pareto = !dominated;
            if (c.pareto && representative == order.size())
                representative = order[group_end];
            best_same = std::min(best_same, c.makespan);
            ++group_end;
        }
        // The front keeps one representative per processor count (ties are
        // common — several strategies can produce the same clustering): the
        // first in (makespan, index) order, matching the historical scan.
        if (representative != order.size())
            result.pareto_front.push_back(representative);
        best_fewer = std::min(best_fewer, best_same);
        at = group_end;
    }

    // 7. Recommendation: minimum makespan, ties broken toward fewer CPUs.
    result.best = 0;
    for (std::size_t i = 1; i < result.candidates.size(); ++i) {
        const Candidate& cur = result.candidates[i];
        const Candidate& best = result.candidates[result.best];
        if (cur.makespan < best.makespan - kEps ||
            (std::abs(cur.makespan - best.makespan) <= kEps &&
             cur.processors < best.processors))
            result.best = i;
    }
    return result;
}

std::optional<core::Allocation> to_allocation(const uml::Model& model,
                                              const Candidate& candidate,
                                              diag::DiagnosticEngine& engine) {
    auto threads = model.threads();
    if (threads.size() != candidate.clustering.task_count()) {
        engine.report(
            diag::Severity::Error, diag::codes::kDseMismatch,
            "candidate clustering covers " +
                std::to_string(candidate.clustering.task_count()) +
                " task(s) but model '" + model.name() + "' has " +
                std::to_string(threads.size()) + " thread(s)",
            {},
            {"candidates are only valid for the model whose exploration "
             "produced them — re-run dse::explore against this model"});
        return std::nullopt;
    }
    core::Allocation out;
    for (std::size_t p = 0; p < candidate.processors; ++p)
        out.add_processor("CPU" + std::to_string(p));
    for (std::size_t t = 0; t < threads.size(); ++t)
        out.assign(*threads[t],
                   static_cast<std::size_t>(candidate.clustering.cluster_of(t)));
    return out;
}

core::Allocation to_allocation(const uml::Model& model,
                               const Candidate& candidate) {
    diag::DiagnosticEngine engine;
    auto out = to_allocation(model, candidate, engine);
    if (!out)
        throw std::invalid_argument(engine.diagnostics().front().message);
    return *std::move(out);
}

std::optional<core::Allocation> best_allocation(const uml::Model& model,
                                                const core::CommModel& comm,
                                                diag::DiagnosticEngine& engine,
                                                const ExploreOptions& options) {
    ExploreResult result = explore(model, comm, options, &engine);
    if (result.candidates.empty()) {
        engine.report(diag::Severity::Error, diag::codes::kDseEmpty,
                      "nothing to explore: model '" + model.name() +
                          "' has no threads",
                      {},
                      {"the task graph mined from the sequence diagrams is "
                       "empty — declare <<SASchedRes>> objects first"});
        return std::nullopt;
    }
    return to_allocation(model, result.candidates[result.best], engine);
}

core::Allocation best_allocation(const uml::Model& model,
                                 const core::CommModel& comm,
                                 const ExploreOptions& options) {
    diag::DiagnosticEngine engine;
    auto out = best_allocation(model, comm, engine, options);
    if (!out) throw std::runtime_error(engine.diagnostics().front().message);
    return *std::move(out);
}

std::string format(const ExploreResult& result) {
    std::ostringstream out;
    out << "candidates=" << result.candidates.size() << "  pareto front:\n";
    for (std::size_t i : result.pareto_front) {
        const Candidate& c = result.candidates[i];
        out << "  CPUs=" << c.processors << "  makespan=" << c.makespan
            << "  inter=" << c.inter_traffic << "  util=" << c.cpu_utilization
            << "  [" << c.strategy << "]"
            << (i == result.best ? "  <= recommended" : "") << '\n';
    }
    return out.str();
}

SimCacheStats simulation_cache_stats() { return cache().stats(); }

void clear_simulation_cache() { cache().clear(); }

std::size_t trim_simulation_cache(std::size_t max_entries) {
    std::size_t dropped = cache().trim(max_entries);
    if (dropped) obs::counter("dse.cache_trimmed").add(dropped);
    return dropped;
}

}  // namespace uhcg::dse
