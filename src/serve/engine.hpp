// engine.hpp — the serve daemon's request engine (transport-free).
//
// One `Engine` maps a `uhcg-serve-v1` request payload (JSON, already
// de-framed) to exactly one response payload. Keeping it free of sockets
// makes the robustness contract directly testable: the malformed-request
// corpus, deadline handling, cache behaviour and fault isolation all
// exercise `handle()` in-process, and the socket `Server` stays a thin
// queue-and-threads shell around it.
//
// Request schema (one JSON object per frame):
//   { "method": "generate|explore|simulate|status|ping|shutdown",
//     "id": <string|number, echoed back>,
//     "deadline_ms": <number, optional — falls back to the server default>,
//     "model_xmi": "<serialized XMI>",          // or:
//     "model_hash": "<hex key from a previous response>",
//     "params": { ... method-specific, see DESIGN.md §12 } }
//
// Response schema:
//   { "schema": "uhcg-serve-v1", "id": ..., "ok": true|false,
//     "method": "...", "model_hash": "...", "cache": "hit|miss",
//     "wall_ms": ..., "result": {...} }            // ok = true
//   { "schema": "uhcg-serve-v1", "id": ..., "ok": false,
//     "error": {"code": "serve.*", "message": "..."},
//     "diagnostics": [{"severity","code","message"}...] }  // ok = false
//
// Robustness contract: `handle()` never throws and never terminates the
// process — malformed JSON, an invalid model, a quarantined strategy, an
// expired deadline or an internal exception each produce a structured
// error response for *that request only*.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <string_view>

#include "flow/checkpoint.hpp"
#include "serve/cache.hpp"
#include "serve/frame.hpp"

namespace uhcg::obs::json {
class Value;
}

namespace uhcg::serve {

struct EngineOptions {
    /// Byte budget for the resident model cache; 0 = unbounded.
    std::size_t cache_budget_bytes = 256u << 20;
    /// Deadline applied to requests that do not carry their own;
    /// 0 = none.
    std::uint64_t default_deadline_ms = 0;
    /// LRU bound for the process-wide DSE memo cache, enforced after
    /// every explore request; 0 disables trimming.
    std::size_t dse_memo_max_entries = 1u << 14;
    /// Server-side checkpoint directory for generate requests; warm
    /// re-generates of an unchanged model replay completed units
    /// byte-identically. Empty disables checkpointing.
    std::string checkpoint_dir;
    /// Periodic GC for `checkpoint_dir` (both-zero = no GC).
    flow::CheckpointStore::PruneOptions checkpoint_gc;
    /// Stale `.uhcg-stage` staging directories under output roots that
    /// generate requests have written to are pruned on the housekeeping
    /// cadence once older than this (debris of clients killed mid-run);
    /// 0 disables the GC.
    std::uint64_t stale_stage_ttl_seconds = 3600;
    /// Upper bound fed to the hardened JSON parser; transports should
    /// pass their frame limit so the two layers agree.
    std::size_t max_request_bytes = kDefaultMaxFrameBytes;
};

/// Live occupancy gauges owned by the transport; `status` reads them.
/// All-zero when the engine runs transport-free (tests, bench).
struct TransportGauges {
    std::atomic<std::size_t> queue_depth{0};
    std::atomic<std::size_t> in_flight{0};
    std::atomic<std::size_t> connections{0};
};

class Engine {
public:
    using Clock = std::chrono::steady_clock;

    explicit Engine(EngineOptions options);

    /// Processes one request; `received` is when the transport finished
    /// reading the frame, so queue wait counts against the deadline.
    /// Always returns exactly one response payload; never throws.
    std::string handle(std::string_view request_json,
                       Clock::time_point received);
    std::string handle(std::string_view request_json) {
        return handle(request_json, Clock::now());
    }

    /// Rejection payloads the transport sends without dispatching
    /// (admission control and drain). Best-effort: the request id is
    /// echoed when the payload parses at all.
    std::string overloaded_response(std::string_view request_json,
                                    std::size_t queue_limit) const;
    std::string shutting_down_response(std::string_view request_json) const;
    /// For transport-level framing violations (oversized declared
    /// length); no id, since no payload was read.
    static std::string frame_error_response(std::string_view message);

    /// Set once a `shutdown` request was handled; the transport drains.
    bool shutdown_requested() const {
        return shutdown_.load(std::memory_order_relaxed);
    }

    void set_gauges(const TransportGauges* gauges) { gauges_ = gauges; }

    ModelCache& cache() { return cache_; }
    const EngineOptions& options() const { return options_; }

private:
    std::string dispatch(const std::string& id, const std::string& method,
                         const obs::json::Value& doc,
                         Clock::time_point received,
                         std::uint64_t deadline_ms);
    void housekeeping();

    EngineOptions options_;
    ModelCache cache_;
    Clock::time_point started_;
    std::atomic<bool> shutdown_{false};
    std::atomic<std::uint64_t> requests_total_{0};
    std::atomic<std::uint64_t> requests_ok_{0};
    std::atomic<std::uint64_t> requests_failed_{0};
    std::atomic<std::uint64_t> deadline_exceeded_{0};
    std::atomic<std::uint64_t> housekeeping_tick_{0};
    /// Output roots generate requests committed into — the stale-staging
    /// GC's scan list. Bounded; a daemon serving arbitrarily many distinct
    /// roots GCs the first kMaxOutRoots (the common case is one or two).
    std::mutex out_roots_mutex_;
    std::set<std::string> out_roots_;
    const TransportGauges* gauges_ = nullptr;

    /// Per-explore reuse accounting (plain integers mirroring
    /// dse::ExploreStats) so `status` can show whether explore requests
    /// run warm (memo hits) or cold-but-incremental (partial reuse)
    /// server-side. `totals` accumulate over the process; `last` is the
    /// most recent explore request.
    struct DseActivity {
        std::uint64_t explores = 0;
        std::uint64_t simulations = 0;
        std::uint64_t cache_hits = 0;
        std::uint64_t partial_reuse = 0;
        std::uint64_t prefix_tasks_reused = 0;
        /// Effective simulation backend of the most recent explore (only
        /// meaningful on `last`; empty before the first request).
        std::string backend;
    };
    mutable std::mutex dse_mutex_;
    DseActivity dse_totals_;
    DseActivity dse_last_;
    /// Explore count per *effective* simulation backend, for the status
    /// rollup — shows whether clients actually exercise sdf/analytic.
    std::map<std::string, std::uint64_t> dse_by_backend_;
};

}  // namespace uhcg::serve
