// cache.hpp — the daemon's resident model cache.
//
// The whole point of `uhcg serve` (ROADMAP item 2): `xml.parse` +
// `uml.xmi-load` are re-paid on every CLI invocation even for unchanged
// models. The cache keeps the parsed `uml::Model` — plus the mined
// communication model, which every explore/simulate request needs —
// resident across requests, keyed by the content hash of the serialized
// XMI bytes, exactly like flow checkpoints: any model edit changes the
// key, so staleness is structurally impossible.
//
// Eviction is LRU under a configurable byte budget (an *estimate*: the
// parsed in-memory model is priced as a multiple of its source bytes;
// the point is a hard upper bound on growth, not accounting precision).
// Occupancy and churn surface as `serve.cache_*` metrics and through
// the `status` request.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "core/comm.hpp"
#include "diag/diag.hpp"
#include "uml/model.hpp"

namespace uhcg::serve {

/// One cached, parsed model. Handed out as shared_ptr-to-const so an
/// in-flight request keeps its model alive even if the entry is evicted
/// mid-request — eviction only drops the cache's reference.
struct ResidentModel {
    std::string hash;   ///< hex FNV-1a of `bytes` (the cache key)
    std::string bytes;  ///< serialized XMI — checkpoint keys hash these
    uml::Model model;
    core::CommModel comm;  ///< mined once; explore/simulate reuse it
    std::size_t charge_bytes = 0;  ///< what this entry costs the budget
};

class ModelCache {
public:
    /// `budget_bytes` bounds the summed charge of resident entries;
    /// 0 = unbounded. The most recently admitted entry is always kept —
    /// a budget smaller than one model degenerates to cache-per-request,
    /// never to a failure.
    explicit ModelCache(std::size_t budget_bytes);

    /// Content hash of serialized model bytes, as the lowercase hex key
    /// clients may send back (`model_hash`) to skip re-uploading.
    static std::string hash_bytes(std::string_view bytes);

    /// Looks up by hash and marks the entry most-recently-used. Counts
    /// `serve.cache_hits` / `serve.cache_misses`.
    std::shared_ptr<const ResidentModel> find(const std::string& hash);

    /// Parses `bytes` and admits the result, evicting LRU entries over
    /// budget (`serve.cache_evictions`). A model that fails to parse
    /// reports into `engine` and returns nullptr — nothing is cached, so
    /// a poisoned payload cannot occupy the budget. If the hash is
    /// already resident, the existing entry is returned (hit).
    std::shared_ptr<const ResidentModel> admit(std::string bytes,
                                               diag::DiagnosticEngine& engine);

    struct Stats {
        std::size_t entries = 0;
        std::size_t bytes = 0;         ///< summed charge of resident entries
        std::size_t budget_bytes = 0;  ///< 0 = unbounded
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t evictions = 0;
    };
    Stats stats() const;

private:
    void evict_over_budget_locked();
    void touch_locked(const std::string& hash);

    mutable std::mutex mutex_;
    std::size_t budget_bytes_;
    std::size_t bytes_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t evictions_ = 0;
    /// Front = most recently used.
    std::list<std::shared_ptr<const ResidentModel>> lru_;
    std::unordered_map<std::string, decltype(lru_)::iterator> index_;
};

}  // namespace uhcg::serve
