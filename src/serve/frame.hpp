// frame.hpp — length-prefixed framing for the `uhcg serve` protocol.
//
// Every message on a serve connection is one frame: a 4-byte big-endian
// payload length followed by exactly that many payload bytes (UTF-8 JSON,
// schema `uhcg-serve-v1`). The length prefix makes the stream
// self-delimiting without any in-band escaping, and lets the reader
// reject an oversized declaration *before* allocating — the first line of
// the daemon's admission control.
//
// The codec distinguishes the failure modes the robustness suite needs to
// tell apart: a clean end-of-stream between frames (client done), a
// truncated frame (client died mid-request), and an oversized declared
// length (hostile or corrupt client).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace uhcg::serve {

/// Largest payload a frame may declare by default (requests carry whole
/// XMI models, so this is generous; it exists to bound allocation, not to
/// ration traffic).
inline constexpr std::size_t kDefaultMaxFrameBytes = 16u << 20;

/// Wire size of the length prefix.
inline constexpr std::size_t kFrameHeaderBytes = 4;

/// Prepends the big-endian length prefix (in-memory encoder; the fd path
/// uses write_frame).
std::string encode_frame(std::string_view payload);

enum class FrameStatus {
    Ok,         ///< one complete frame read
    Eof,        ///< clean end of stream between frames
    Truncated,  ///< stream ended inside a header or payload
    Oversized,  ///< declared length exceeds the limit (nothing consumed
                ///< beyond the header; the connection is unrecoverable)
    Error,      ///< read(2) failed
};

std::string_view to_string(FrameStatus status);

/// Blocking read of one frame from `fd` (retries EINTR and short reads).
/// On Ok, `payload` holds the frame body. On Oversized, `payload` holds a
/// human-readable description of the violation.
FrameStatus read_frame(int fd, std::string& payload,
                       std::size_t max_bytes = kDefaultMaxFrameBytes);

/// Blocking write of one framed payload (header + body, retries EINTR and
/// short writes, never raises SIGPIPE). Returns false when the peer is
/// gone — callers treat that as a disconnect, not an error.
bool write_frame(int fd, std::string_view payload);

}  // namespace uhcg::serve
