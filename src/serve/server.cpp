#include "serve/server.hpp"

#include <cerrno>
#include <cstring>
#include <utility>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "obs/obs.hpp"

namespace uhcg::serve {
namespace {

void close_fd(int& fd) {
    if (fd >= 0) {
        ::close(fd);
        fd = -1;
    }
}

}  // namespace

Server::Server(ServerOptions options)
    : options_(std::move(options)), engine_([&] {
          EngineOptions engine_options = options_.engine;
          // The JSON parser's input bound and the frame codec's length
          // bound must agree, or one layer's "fine" is the other's abuse.
          engine_options.max_request_bytes = options_.max_frame_bytes;
          return engine_options;
      }()) {
    engine_.set_gauges(&gauges_);
}

Server::~Server() {
    if (listening_.load(std::memory_order_acquire) &&
        !drained_.load(std::memory_order_acquire)) {
        notify_stop();
        wait();
    }
    close_fd(listen_fd_);
    close_fd(wake_pipe_[0]);
    close_fd(wake_pipe_[1]);
}

bool Server::start(std::string& error) {
    if (options_.socket_path.empty()) {
        error = "socket path is empty";
        return false;
    }
    sockaddr_un addr{};
    if (options_.socket_path.size() >= sizeof(addr.sun_path)) {
        error = "socket path too long (limit " +
                std::to_string(sizeof(addr.sun_path) - 1) + " bytes): " +
                options_.socket_path;
        return false;
    }

    if (::pipe(wake_pipe_) != 0) {
        error = std::string("pipe: ") + std::strerror(errno);
        return false;
    }
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
        error = std::string("socket: ") + std::strerror(errno);
        return false;
    }
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, options_.socket_path.c_str(),
                options_.socket_path.size() + 1);
    // A stale socket file from a killed predecessor would make bind fail
    // forever; removing it is the unix-socket equivalent of the txout
    // stale-stage sweep.
    ::unlink(options_.socket_path.c_str());
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
        error = "bind " + options_.socket_path + ": " + std::strerror(errno);
        close_fd(listen_fd_);
        return false;
    }
    if (::listen(listen_fd_, 64) != 0) {
        error = std::string("listen: ") + std::strerror(errno);
        close_fd(listen_fd_);
        return false;
    }

    if (options_.workers == 0) options_.workers = 1;
    for (std::size_t i = 0; i < options_.workers; ++i)
        workers_.emplace_back([this] { worker_loop(); });
    acceptor_ = std::thread([this] { accept_loop(); });
    listening_.store(true, std::memory_order_release);
    return true;
}

void Server::notify_stop() {
    // Async-signal-safe: one write(2); the acceptor's poll wakes up.
    if (wake_pipe_[1] >= 0) {
        char byte = 1;
        [[maybe_unused]] ssize_t n = ::write(wake_pipe_[1], &byte, 1);
    }
}

void Server::stop() {
    notify_stop();
    wait();
}

void Server::wait() {
    std::lock_guard<std::mutex> lifecycle(lifecycle_mutex_);
    if (drained_.load(std::memory_order_acquire)) return;
    if (acceptor_.joinable()) acceptor_.join();
    // No new connections from here on: refuse instead of queueing into a
    // daemon that will never serve them.
    close_fd(listen_fd_);
    drain();
    ::unlink(options_.socket_path.c_str());
    drained_.store(true, std::memory_order_release);
}

void Server::accept_loop() {
    while (true) {
        pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {wake_pipe_[0], POLLIN, 0}};
        int ready = ::poll(fds, 2, -1);
        if (ready < 0) {
            if (errno == EINTR) continue;
            break;
        }
        if (fds[1].revents & (POLLIN | POLLERR | POLLHUP)) break;
        if (!(fds[0].revents & POLLIN)) continue;
        int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR || errno == ECONNABORTED) continue;
            break;
        }
        auto connection = std::make_shared<Connection>();
        connection->fd = fd;
        gauges_.connections.fetch_add(1, std::memory_order_relaxed);
        obs::counter("serve.connections").add(1);
        std::lock_guard<std::mutex> lock(connections_mutex_);
        connections_.push_back(connection);
        connection_threads_.emplace_back(
            [this, connection] { connection_loop(connection); });
    }
}

void Server::connection_loop(std::shared_ptr<Connection> connection) {
    while (true) {
        std::string payload;
        FrameStatus status =
            read_frame(connection->fd, payload, options_.max_frame_bytes);
        if (status == FrameStatus::Eof) break;
        if (status == FrameStatus::Truncated) {
            // Mid-request disconnect: the client died inside a frame.
            // Nothing to respond to — no complete request ever arrived.
            obs::counter("serve.disconnects").add(1);
            break;
        }
        if (status == FrameStatus::Oversized) {
            // The stream is beyond resynchronization (we refused to
            // consume the declared payload), so answer once and close.
            obs::counter("serve.frame_errors").add(1);
            respond(connection, Engine::frame_error_response(payload));
            break;
        }
        if (status == FrameStatus::Error) break;

        Engine::Clock::time_point received = Engine::Clock::now();
        bool rejected_shutdown = false;
        bool rejected_overload = false;
        {
            std::unique_lock<std::mutex> lock(queue_mutex_);
            if (draining_.load(std::memory_order_relaxed)) {
                rejected_shutdown = true;
            } else if (queue_.size() >= options_.queue_limit) {
                rejected_overload = true;
            } else {
                queue_.push_back({std::move(payload), connection, received});
                gauges_.queue_depth.fetch_add(1, std::memory_order_relaxed);
                obs::counter("serve.accepted").add(1);
            }
        }
        if (rejected_shutdown) {
            obs::counter("serve.rejected_shutdown").add(1);
            respond(connection, engine_.shutting_down_response(payload));
            continue;  // keep answering until the client hangs up
        }
        if (rejected_overload) {
            // Admission control: reject now, with the queue bound in the
            // message, instead of buffering unboundedly.
            obs::counter("serve.rejected_overload").add(1);
            respond(connection,
                    engine_.overloaded_response(payload, options_.queue_limit));
            continue;
        }
        queue_cv_.notify_one();
    }
    gauges_.connections.fetch_sub(1, std::memory_order_relaxed);
    ::shutdown(connection->fd, SHUT_RDWR);
}

void Server::worker_loop() {
    while (true) {
        Request request;
        {
            std::unique_lock<std::mutex> lock(queue_mutex_);
            queue_cv_.wait(lock, [this] {
                return !queue_.empty() ||
                       draining_.load(std::memory_order_relaxed);
            });
            if (queue_.empty()) {
                if (draining_.load(std::memory_order_relaxed)) return;
                continue;
            }
            request = std::move(queue_.front());
            queue_.pop_front();
            gauges_.queue_depth.fetch_sub(1, std::memory_order_relaxed);
        }
        gauges_.in_flight.fetch_add(1, std::memory_order_relaxed);
        std::string response = engine_.handle(request.payload, request.received);
        respond(request.connection, response);
        gauges_.in_flight.fetch_sub(1, std::memory_order_relaxed);
        if (engine_.shutdown_requested()) notify_stop();
    }
}

void Server::respond(const std::shared_ptr<Connection>& connection,
                     std::string_view payload) {
    std::lock_guard<std::mutex> lock(connection->write_mutex);
    if (!write_frame(connection->fd, payload))
        obs::counter("serve.write_failures").add(1);
}

void Server::drain() {
    std::deque<Request> pending;
    {
        std::lock_guard<std::mutex> lock(queue_mutex_);
        draining_.store(true, std::memory_order_relaxed);
        pending.swap(queue_);
        gauges_.queue_depth.store(0, std::memory_order_relaxed);
    }
    queue_cv_.notify_all();

    // Queued-but-unstarted requests are answered, not dropped: exactly
    // one structured response per request, even across shutdown.
    for (const Request& request : pending) {
        obs::counter("serve.rejected_shutdown").add(1);
        respond(request.connection,
                engine_.shutting_down_response(request.payload));
    }

    // Workers finish whatever is in flight (transactional outputs commit
    // or roll back whole), then exit on the empty+draining condition.
    for (std::thread& worker : workers_) worker.join();
    workers_.clear();

    // Unblock connection readers parked in read_frame on idle sockets.
    {
        std::lock_guard<std::mutex> lock(connections_mutex_);
        for (const std::weak_ptr<Connection>& weak : connections_)
            if (std::shared_ptr<Connection> connection = weak.lock())
                ::shutdown(connection->fd, SHUT_RD);
    }
    std::vector<std::thread> readers;
    {
        std::lock_guard<std::mutex> lock(connections_mutex_);
        readers.swap(connection_threads_);
    }
    for (std::thread& reader : readers) reader.join();

    // Close every surviving connection fd.
    std::lock_guard<std::mutex> lock(connections_mutex_);
    for (const std::weak_ptr<Connection>& weak : connections_)
        if (std::shared_ptr<Connection> connection = weak.lock())
            close_fd(connection->fd);
    connections_.clear();
}

}  // namespace uhcg::serve
