#include "serve/frame.hpp"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

namespace uhcg::serve {
namespace {

/// Reads exactly `size` bytes. Returns the bytes actually read (< size on
/// EOF) or -1 on a read error.
ssize_t read_exact(int fd, char* out, std::size_t size) {
    std::size_t got = 0;
    while (got < size) {
        ssize_t n = ::read(fd, out + got, size - got);
        if (n > 0) {
            got += static_cast<std::size_t>(n);
            continue;
        }
        if (n == 0) break;  // EOF
        if (errno == EINTR) continue;
        return -1;
    }
    return static_cast<ssize_t>(got);
}

bool write_exact(int fd, const char* data, std::size_t size) {
    std::size_t sent = 0;
    while (sent < size) {
        // send(MSG_NOSIGNAL) so a vanished client surfaces as EPIPE, not a
        // process-killing SIGPIPE; plain files/pipes (ENOTSOCK) fall back
        // to write(2) — tests drive the codec over pipes.
        ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
        if (n < 0 && errno == ENOTSOCK)
            n = ::write(fd, data + sent, size - sent);
        if (n > 0) {
            sent += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && errno == EINTR) continue;
        return false;
    }
    return true;
}

}  // namespace

std::string_view to_string(FrameStatus status) {
    switch (status) {
        case FrameStatus::Ok: return "ok";
        case FrameStatus::Eof: return "eof";
        case FrameStatus::Truncated: return "truncated";
        case FrameStatus::Oversized: return "oversized";
        case FrameStatus::Error: return "error";
    }
    return "unknown";
}

std::string encode_frame(std::string_view payload) {
    std::string framed;
    framed.reserve(kFrameHeaderBytes + payload.size());
    std::uint32_t size = static_cast<std::uint32_t>(payload.size());
    framed.push_back(static_cast<char>((size >> 24) & 0xFF));
    framed.push_back(static_cast<char>((size >> 16) & 0xFF));
    framed.push_back(static_cast<char>((size >> 8) & 0xFF));
    framed.push_back(static_cast<char>(size & 0xFF));
    framed.append(payload);
    return framed;
}

FrameStatus read_frame(int fd, std::string& payload, std::size_t max_bytes) {
    char header[kFrameHeaderBytes];
    ssize_t got = read_exact(fd, header, sizeof header);
    if (got < 0) return FrameStatus::Error;
    if (got == 0) return FrameStatus::Eof;
    if (static_cast<std::size_t>(got) < sizeof header)
        return FrameStatus::Truncated;

    std::uint32_t size = (static_cast<std::uint32_t>(
                              static_cast<unsigned char>(header[0]))
                          << 24) |
                         (static_cast<std::uint32_t>(
                              static_cast<unsigned char>(header[1]))
                          << 16) |
                         (static_cast<std::uint32_t>(
                              static_cast<unsigned char>(header[2]))
                          << 8) |
                         static_cast<std::uint32_t>(
                             static_cast<unsigned char>(header[3]));
    if (size > max_bytes) {
        payload = "declared frame length " + std::to_string(size) +
                  " exceeds limit " + std::to_string(max_bytes);
        return FrameStatus::Oversized;
    }

    payload.resize(size);
    if (size) {
        got = read_exact(fd, payload.data(), size);
        if (got < 0) return FrameStatus::Error;
        if (static_cast<std::size_t>(got) < size) return FrameStatus::Truncated;
    }
    return FrameStatus::Ok;
}

bool write_frame(int fd, std::string_view payload) {
    std::string framed = encode_frame(payload);
    return write_exact(fd, framed.data(), framed.size());
}

}  // namespace uhcg::serve
