// server.hpp — the `uhcg serve` daemon shell: Unix-domain socket
// transport, admission control, worker pool, graceful drain.
//
// Division of labour: the Engine (engine.hpp) owns request semantics; the
// Server owns everything that can only go wrong in a long-lived process —
//
//  * *admission control* — frames land in a bounded queue; when it is
//    full the connection thread answers `serve.overloaded` immediately
//    instead of buffering without bound (backpressure, not OOM);
//  * *concurrency* — a fixed worker pool drains the queue; responses
//    carry the request id, so one connection may pipeline requests and
//    receive responses out of order;
//  * *graceful drain* — on SIGTERM/SIGINT (via the async-signal-safe
//    `notify_stop()`), a `shutdown` request, or `stop()`: the listener
//    closes, queued-but-unstarted requests get `serve.shutting-down`,
//    in-flight requests run to completion (their transactional outputs
//    commit or roll back whole), then connections close and the socket
//    file is unlinked;
//  * *per-connection fault tolerance* — a client that dies mid-frame,
//    declares an oversized length, or writes garbage affects only its
//    own connection.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/engine.hpp"

namespace uhcg::serve {

struct ServerOptions {
    std::string socket_path;
    /// Worker threads draining the request queue.
    std::size_t workers = 2;
    /// Bounded queue depth; a full queue rejects with serve.overloaded.
    std::size_t queue_limit = 64;
    /// Frame-size ceiling (also fed to the JSON parser limits).
    std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
    EngineOptions engine;
};

class Server {
public:
    explicit Server(ServerOptions options);
    ~Server();

    Server(const Server&) = delete;
    Server& operator=(const Server&) = delete;

    /// Binds the socket and spawns acceptor + workers. Returns false with
    /// `error` set when the socket cannot be created.
    bool start(std::string& error);

    /// Blocks until the daemon has fully drained (after notify_stop(),
    /// stop(), or a `shutdown` request).
    void wait();

    /// Begins graceful drain. Safe from any thread; *not* from a signal
    /// handler — handlers use notify_stop().
    void stop();

    /// Async-signal-safe drain trigger (one write(2) to a self-pipe).
    void notify_stop();

    Engine& engine() { return engine_; }
    const ServerOptions& options() const { return options_; }

    /// True once start() succeeded and the acceptor is listening.
    bool listening() const { return listening_.load(std::memory_order_acquire); }

private:
    struct Connection {
        int fd = -1;
        std::mutex write_mutex;  ///< workers + reader share the fd
    };
    struct Request {
        std::string payload;
        std::shared_ptr<Connection> connection;
        Engine::Clock::time_point received;
    };

    void accept_loop();
    void connection_loop(std::shared_ptr<Connection> connection);
    void worker_loop();
    void respond(const std::shared_ptr<Connection>& connection,
                 std::string_view payload);
    void drain();

    ServerOptions options_;
    Engine engine_;
    TransportGauges gauges_;

    int listen_fd_ = -1;
    int wake_pipe_[2] = {-1, -1};
    std::atomic<bool> listening_{false};
    std::atomic<bool> draining_{false};
    std::atomic<bool> drained_{false};

    std::mutex queue_mutex_;
    std::condition_variable queue_cv_;
    std::deque<Request> queue_;

    std::thread acceptor_;
    std::vector<std::thread> workers_;
    std::mutex connections_mutex_;
    std::vector<std::thread> connection_threads_;
    std::vector<std::weak_ptr<Connection>> connections_;

    std::mutex lifecycle_mutex_;
};

}  // namespace uhcg::serve
