#include "serve/engine.hpp"

#include <algorithm>
#include <exception>
#include <sstream>
#include <utility>
#include <vector>

#include "core/allocation.hpp"
#include "diag/diag.hpp"
#include "dse/explore.hpp"
#include "flow/generate.hpp"
#include "flow/txout.hpp"
#include "obs/json.hpp"
#include "obs/obs.hpp"
#include "sim/backend.hpp"
#include "sim/mpsoc.hpp"

namespace uhcg::serve {
namespace {

constexpr const char* kSchema = "uhcg-serve-v1";

/// Untrusted request bytes go through the hardened parser: shallow depth
/// (no legitimate request nests deeply) and the transport's size limit.
obs::json::ParseLimits request_limits(std::size_t max_bytes) {
    obs::json::ParseLimits limits;
    limits.max_depth = 32;
    limits.max_bytes = max_bytes;
    return limits;
}

std::string quote(std::string_view text) {
    std::string out;
    out.reserve(text.size() + 2);
    out.push_back('"');
    out += diag::json_escape(text);
    out.push_back('"');
    return out;
}

std::string number_text(double value) {
    std::ostringstream out;
    out << value;
    return out.str();
}

/// The request id, rendered as the JSON token echoed in the response:
/// strings stay strings, numbers stay numbers, anything else is null.
std::string id_token(const obs::json::Value* doc) {
    if (!doc) return "null";
    const obs::json::Value* id = doc->find("id");
    if (!id) return "null";
    if (id->is_string()) return quote(id->string);
    if (id->is_number()) return number_text(id->number);
    return "null";
}

const obs::json::Value* find_param(const obs::json::Value& doc,
                                   std::string_view key) {
    if (const obs::json::Value* params = doc.find("params"))
        if (const obs::json::Value* v = params->find(key)) return v;
    return nullptr;
}

std::string param_string(const obs::json::Value& doc, std::string_view key,
                         std::string fallback = {}) {
    const obs::json::Value* v = find_param(doc, key);
    return v && v->is_string() ? v->string : fallback;
}

double param_number(const obs::json::Value& doc, std::string_view key,
                    double fallback = 0.0) {
    const obs::json::Value* v = find_param(doc, key);
    return v && v->is_number() ? v->number : fallback;
}

bool param_bool(const obs::json::Value& doc, std::string_view key,
                bool fallback = false) {
    const obs::json::Value* v = find_param(doc, key);
    return v && v->is_bool() ? v->boolean : fallback;
}

std::string diagnostics_json(const diag::DiagnosticEngine& engine) {
    std::string out = "[";
    bool first = true;
    for (const diag::Diagnostic& d : engine.diagnostics()) {
        if (!first) out += ",";
        first = false;
        out += "{\"severity\":" + quote(diag::to_string(d.severity)) +
               ",\"code\":" + quote(d.code) +
               ",\"message\":" + quote(d.message) + "}";
    }
    return out + "]";
}

std::string error_response(const std::string& id, std::string_view code,
                           std::string_view message,
                           const diag::DiagnosticEngine* diagnostics = nullptr) {
    std::string out = std::string("{\"schema\":") + quote(kSchema) +
                      ",\"id\":" + id + ",\"ok\":false,\"error\":{\"code\":" +
                      quote(code) + ",\"message\":" + quote(message) + "}";
    if (diagnostics && !diagnostics->empty())
        out += ",\"diagnostics\":" + diagnostics_json(*diagnostics);
    return out + "}";
}

double ms_since(Engine::Clock::time_point start) {
    return std::chrono::duration<double, std::milli>(Engine::Clock::now() -
                                                     start)
        .count();
}

}  // namespace

Engine::Engine(EngineOptions options)
    : options_(std::move(options)),
      cache_(options_.cache_budget_bytes),
      started_(Clock::now()) {}

std::string Engine::frame_error_response(std::string_view message) {
    return error_response("null", "serve.frame", message);
}

std::string Engine::overloaded_response(std::string_view request_json,
                                        std::size_t queue_limit) const {
    obs::json::Value doc;
    std::string err;
    bool parsed = obs::json::parse(request_json, doc, err,
                                   request_limits(options_.max_request_bytes));
    return error_response(
        id_token(parsed ? &doc : nullptr), "serve.overloaded",
        "request queue full (limit " + std::to_string(queue_limit) +
            ") — retry with backoff");
}

std::string Engine::shutting_down_response(std::string_view request_json) const {
    obs::json::Value doc;
    std::string err;
    bool parsed = obs::json::parse(request_json, doc, err,
                                   request_limits(options_.max_request_bytes));
    return error_response(id_token(parsed ? &doc : nullptr),
                          "serve.shutting-down",
                          "daemon is draining; request was not started");
}

std::string Engine::handle(std::string_view request_json,
                           Clock::time_point received) {
    obs::ObsSpan span("serve.request", "serve");
    static obs::Counter& request_counter = obs::counter("serve.requests");
    request_counter.add(1);
    requests_total_.fetch_add(1, std::memory_order_relaxed);

    obs::json::Value doc;
    std::string parse_error;
    if (!obs::json::parse(request_json, doc, parse_error,
                          request_limits(options_.max_request_bytes))) {
        requests_failed_.fetch_add(1, std::memory_order_relaxed);
        obs::counter("serve.bad_requests").add(1);
        return error_response("null", "serve.parse",
                              "invalid request JSON: " + parse_error);
    }
    const std::string id = id_token(&doc);
    if (!doc.is_object()) {
        requests_failed_.fetch_add(1, std::memory_order_relaxed);
        obs::counter("serve.bad_requests").add(1);
        return error_response(id, "serve.bad-request",
                              "request must be a JSON object");
    }

    const obs::json::Value* method_value = doc.find("method");
    if (!method_value || !method_value->is_string()) {
        requests_failed_.fetch_add(1, std::memory_order_relaxed);
        obs::counter("serve.bad_requests").add(1);
        return error_response(id, "serve.bad-request",
                              "missing string field 'method'");
    }
    const std::string& method = method_value->string;

    std::uint64_t deadline_ms = options_.default_deadline_ms;
    if (const obs::json::Value* d = doc.find("deadline_ms"))
        if (d->is_number() && d->number >= 0)
            deadline_ms = static_cast<std::uint64_t>(d->number);
    if (deadline_ms && ms_since(received) >= static_cast<double>(deadline_ms)) {
        // Expired while queued: reject before doing any work — that is
        // the whole point of admission-time deadlines.
        deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
        obs::counter("serve.deadline_exceeded").add(1);
        requests_failed_.fetch_add(1, std::memory_order_relaxed);
        return error_response(id, "serve.deadline",
                              "deadline of " + std::to_string(deadline_ms) +
                                  " ms expired before the request started");
    }

    std::string response;
    try {
        response = dispatch(id, method, doc, received, deadline_ms);
    } catch (const std::exception& e) {
        // Per-request fault isolation: whatever escaped, only this
        // request fails; the daemon keeps serving.
        obs::counter("serve.internal_errors").add(1);
        response = error_response(id, "serve.internal",
                                  std::string("internal error: ") + e.what());
    } catch (...) {
        obs::counter("serve.internal_errors").add(1);
        response = error_response(id, "serve.internal",
                                  "internal error: unknown exception");
    }

    if (response.find("\"ok\":true") != std::string::npos)
        requests_ok_.fetch_add(1, std::memory_order_relaxed);
    else
        requests_failed_.fetch_add(1, std::memory_order_relaxed);

    housekeeping();
    return response;
}

std::string Engine::dispatch(const std::string& id, const std::string& method,
                             const obs::json::Value& doc,
                             Clock::time_point received,
                             std::uint64_t deadline_ms) {
    obs::ObsSpan span("serve." + method, "serve");

    auto ok_head = [&](std::string_view cache_state,
                       const std::string& model_hash) {
        std::string out = std::string("{\"schema\":") + quote(kSchema) +
                          ",\"id\":" + id + ",\"ok\":true,\"method\":" +
                          quote(method);
        if (!model_hash.empty())
            out += ",\"model_hash\":" + quote(model_hash) +
                   ",\"cache\":" + quote(cache_state);
        return out;
    };
    auto finish = [&](std::string head, std::string result_json) {
        bool deadline_hit =
            deadline_ms &&
            ms_since(received) > static_cast<double>(deadline_ms);
        if (deadline_hit) {
            deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
            obs::counter("serve.deadline_exceeded").add(1);
        }
        head += ",\"wall_ms\":" + number_text(ms_since(received));
        if (deadline_hit) head += ",\"deadline_exceeded\":true";
        return head + ",\"result\":" + result_json + "}";
    };

    if (method == "ping") return finish(ok_head("", ""), "{\"pong\":true}");

    if (method == "shutdown") {
        shutdown_.store(true, std::memory_order_relaxed);
        return finish(ok_head("", ""), "{\"draining\":true}");
    }

    if (method == "status") {
        ModelCache::Stats cache = cache_.stats();
        std::uint64_t uptime_ms =
            static_cast<std::uint64_t>(ms_since(started_));
        std::ostringstream result;
        result << "{\"uptime_ms\":" << uptime_ms << ",\"requests\":{\"total\":"
               << requests_total_.load(std::memory_order_relaxed)
               << ",\"ok\":" << requests_ok_.load(std::memory_order_relaxed)
               << ",\"failed\":"
               << requests_failed_.load(std::memory_order_relaxed)
               << ",\"deadline_exceeded\":"
               << deadline_exceeded_.load(std::memory_order_relaxed) << "}";
        // Always present so status consumers need no schema branch;
        // all-zero when the engine runs transport-free (tests, bench).
        static const TransportGauges kNoTransport;
        const TransportGauges& transport = gauges_ ? *gauges_ : kNoTransport;
        result << ",\"transport\":{\"queue_depth\":"
               << transport.queue_depth.load(std::memory_order_relaxed)
               << ",\"in_flight\":"
               << transport.in_flight.load(std::memory_order_relaxed)
               << ",\"connections\":"
               << transport.connections.load(std::memory_order_relaxed) << "}";
        result << ",\"cache\":{\"entries\":" << cache.entries
               << ",\"bytes\":" << cache.bytes
               << ",\"budget_bytes\":" << cache.budget_bytes
               << ",\"hits\":" << cache.hits << ",\"misses\":" << cache.misses
               << ",\"evictions\":" << cache.evictions << "}";
        // Explore reuse, server-side: memo hits say a request ran warm,
        // partial reuse says a cold sweep was still incremental. Always
        // present (zeros before the first explore) so dashboards need no
        // schema branch.
        {
            std::lock_guard<std::mutex> lock(dse_mutex_);
            result << ",\"dse\":{\"explores\":" << dse_totals_.explores
                   << ",\"total\":{\"simulations\":" << dse_totals_.simulations
                   << ",\"cache_hits\":" << dse_totals_.cache_hits
                   << ",\"partial_reuse\":" << dse_totals_.partial_reuse
                   << ",\"prefix_tasks_reused\":"
                   << dse_totals_.prefix_tasks_reused
                   << "},\"last\":{\"simulations\":" << dse_last_.simulations
                   << ",\"cache_hits\":" << dse_last_.cache_hits
                   << ",\"partial_reuse\":" << dse_last_.partial_reuse
                   << ",\"prefix_tasks_reused\":"
                   << dse_last_.prefix_tasks_reused
                   << ",\"backend\":" << quote(dse_last_.backend)
                   << "},\"by_backend\":{";
            bool first_backend = true;
            for (const auto& [name, count] : dse_by_backend_) {
                result << (first_backend ? "" : ",") << quote(name) << ":"
                       << count;
                first_backend = false;
            }
            result << "}}";
        }
        // Per-category counter rollup: "xml.nodes_parsed" lands under
        // "xml", "serve.cache_hits" under "serve" — the status consumer's
        // view of the whole obs registry without histogram noise.
        obs::MetricsSnapshot metrics = obs::metrics_snapshot();
        result << ",\"counters\":{";
        std::string category;
        bool first_category = true;
        bool first_counter = true;
        for (const auto& [name, value] : metrics.counters) {
            std::string prefix = name.substr(0, name.find('.'));
            std::string rest =
                name.size() > prefix.size() ? name.substr(prefix.size() + 1)
                                            : name;
            if (prefix != category) {
                if (!category.empty()) result << "}";
                result << (first_category ? "" : ",") << quote(prefix) << ":{";
                category = prefix;
                first_category = false;
                first_counter = true;
            }
            result << (first_counter ? "" : ",") << quote(rest) << ":" << value;
            first_counter = false;
        }
        if (!category.empty()) result << "}";
        result << "}}";
        return finish(ok_head("", ""), result.str());
    }

    if (method != "generate" && method != "explore" && method != "simulate") {
        obs::counter("serve.bad_requests").add(1);
        return error_response(id, "serve.unknown-method",
                              "unknown method '" + method +
                                  "' (want generate, explore, simulate, "
                                  "status, ping or shutdown)");
    }

    // ----- model resolution: bytes (admit) or hash (must be resident) ----
    std::shared_ptr<const ResidentModel> resident;
    std::string cache_state = "miss";
    const obs::json::Value* xmi = doc.find("model_xmi");
    const obs::json::Value* hash_field = doc.find("model_hash");
    if (xmi && xmi->is_string()) {
        std::string hash = ModelCache::hash_bytes(xmi->string);
        resident = cache_.find(hash);
        if (resident) {
            cache_state = "hit";
        } else {
            diag::DiagnosticEngine parse_engine;
            resident = cache_.admit(xmi->string, parse_engine);
            if (!resident)
                return error_response(id, "serve.model-invalid",
                                      "model failed to parse; see diagnostics",
                                      &parse_engine);
        }
    } else if (hash_field && hash_field->is_string()) {
        resident = cache_.find(hash_field->string);
        if (!resident)
            return error_response(
                id, "serve.unknown-model",
                "model '" + hash_field->string +
                    "' is not resident (evicted or never sent) — resend "
                    "model_xmi");
        cache_state = "hit";
    } else {
        obs::counter("serve.bad_requests").add(1);
        return error_response(id, "serve.bad-request",
                              "method '" + method +
                                  "' needs 'model_xmi' or 'model_hash'");
    }

    // Deadline piggyback: whatever budget the request has left becomes
    // the per-pass wall budget of the work below, so a long pass cannot
    // blow through the request deadline unbounded.
    std::uint64_t remaining_ms = 0;
    if (deadline_ms) {
        double elapsed = ms_since(received);
        remaining_ms =
            elapsed >= static_cast<double>(deadline_ms)
                ? 1
                : deadline_ms - static_cast<std::uint64_t>(elapsed);
    }

    if (method == "generate") {
        flow::GenerateOptions options;
        options.mapper.auto_allocate = param_bool(doc, "auto_allocate", false);
        options.mapper.max_processors = static_cast<std::size_t>(
            param_number(doc, "max_processors", 0));
        options.iterations =
            static_cast<std::size_t>(param_number(doc, "iterations", 100));
        options.with_kpn = param_bool(doc, "with_kpn", false);
        options.caam_c = param_bool(doc, "caam_c", true);
        options.caam_dot = param_bool(doc, "caam_dot", true);
        options.gen_jobs =
            static_cast<std::size_t>(param_number(doc, "gen_jobs", 1));
        options.resilience.model_bytes = resident->bytes;
        options.resilience.pass_budget.wall_ms = static_cast<std::uint64_t>(
            param_number(doc, "pass_budget_ms", 0));
        if (remaining_ms &&
            (!options.resilience.pass_budget.wall_ms ||
             options.resilience.pass_budget.wall_ms > remaining_ms))
            options.resilience.pass_budget.wall_ms = remaining_ms;
        if (!options_.checkpoint_dir.empty()) {
            options.resilience.checkpoint_dir = options_.checkpoint_dir;
            options.resilience.resume = true;
        }

        diag::DiagnosticEngine engine;
        flow::GenerateResult result =
            flow::generate(resident->model, options, engine, nullptr);

        if (result.status == flow::GenerateStatus::Failed)
            return error_response(id, "serve.generate-failed",
                                  "every strategy failed; see diagnostics",
                                  &engine);

        // Optional transactional commit: the staging-dir protocol means a
        // drain or crash mid-commit never leaves a torn artifact.
        std::string out_dir = param_string(doc, "out");
        std::size_t committed = 0;
        if (!out_dir.empty()) {
            flow::OutputTransaction tx(out_dir);
            for (const flow::StrategyResult& sr : result.results)
                for (const flow::GeneratedFile& f : sr.files)
                    tx.write(f.name, f.contents);
            tx.write("generate-manifest.json",
                     flow::to_manifest_json(result) + "\n");
            committed = tx.commit();
            // Remember the root for the housekeeping stale-staging GC.
            constexpr std::size_t kMaxOutRoots = 64;
            std::lock_guard<std::mutex> lock(out_roots_mutex_);
            if (out_roots_.size() < kMaxOutRoots) out_roots_.insert(out_dir);
        }

        bool return_files = param_bool(doc, "return_files", false);
        std::ostringstream r;
        r << "{\"status\":" << quote(flow::to_string(result.status))
          << ",\"subsystems\":" << result.partitions.subsystems.size()
          << ",\"files\":[";
        bool first = true;
        for (const flow::StrategyResult& sr : result.results)
            for (const flow::GeneratedFile& f : sr.files) {
                r << (first ? "" : ",") << "{\"name\":" << quote(f.name)
                  << ",\"strategy\":" << quote(sr.strategy)
                  << ",\"bytes\":" << f.contents.size()
                  << ",\"cached\":" << (sr.cached ? "true" : "false");
                if (return_files) r << ",\"contents\":" << quote(f.contents);
                r << "}";
                first = false;
            }
        r << "],\"quarantined\":[";
        first = true;
        for (const flow::QuarantineRecord& q : result.quarantined) {
            r << (first ? "" : ",") << "{\"strategy\":" << quote(q.strategy)
              << ",\"subsystem\":" << quote(q.subsystem)
              << ",\"reason\":" << quote(q.reason) << "}";
            first = false;
        }
        r << "]";
        if (!out_dir.empty())
            r << ",\"out\":" << quote(out_dir) << ",\"committed\":" << committed;
        r << "}";
        return finish(ok_head(cache_state, resident->hash), r.str());
    }

    if (method == "explore") {
        dse::ExploreOptions options;
        options.max_processors = static_cast<std::size_t>(
            param_number(doc, "max_processors", 0));
        options.jobs = static_cast<std::size_t>(param_number(doc, "jobs", 1));
        options.random_samples = static_cast<std::size_t>(
            param_number(doc, "random_samples", 3));
        options.chunk_size =
            static_cast<std::size_t>(param_number(doc, "chunk", 0));
        options.verify_full = param_bool(doc, "verify_full", false);
        options.backend = param_string(doc, "backend");
        if (!sim::find_backend(options.backend))
            return error_response(id, "serve.bad-request",
                                  "unknown simulation backend '" +
                                      options.backend +
                                      "' (want dynamic-fifo, analytic or "
                                      "sdf)");
        dse::ExploreResult result;
        diag::DiagnosticEngine explore_diags;
        try {
            result = dse::explore(resident->model, resident->comm, options,
                                  &explore_diags);
        } catch (const std::exception& e) {
            return error_response(
                id, "serve.bad-model",
                "model is not explorable: " + std::string(e.what()));
        }
        if (result.candidates.empty())
            return error_response(id, "serve.bad-model",
                                  "nothing to explore: model has no threads");
        const dse::Candidate& best = result.candidates[result.best];
        std::ostringstream r;
        r << "{\"candidates\":" << result.candidates.size()
          << ",\"best\":{\"strategy\":" << quote(best.strategy)
          << ",\"processors\":" << best.processors
          << ",\"makespan\":" << number_text(best.makespan)
          << ",\"cpu_utilization\":" << number_text(best.cpu_utilization)
          << "},\"pareto\":[";
        for (std::size_t i = 0; i < result.pareto_front.size(); ++i) {
            const dse::Candidate& c = result.candidates[result.pareto_front[i]];
            r << (i ? "," : "") << "{\"processors\":" << c.processors
              << ",\"makespan\":" << number_text(c.makespan) << "}";
        }
        r << "],\"stats\":{\"simulations\":" << result.stats.simulations
          << ",\"cache_hits\":" << result.stats.cache_hits
          << ",\"duplicates_skipped\":" << result.stats.duplicates_skipped
          << ",\"partial_reuse\":" << result.stats.partial_reuse
          << ",\"prefix_tasks_reused\":" << result.stats.prefix_tasks_reused
          << ",\"chunks\":" << result.stats.chunks
          << ",\"verified\":" << result.stats.verified
          << ",\"jobs\":" << result.stats.jobs
          << ",\"backend\":" << quote(result.stats.backend)
          << ",\"effective_backend\":"
          << quote(result.stats.effective_backend);
        if (explore_diags.count_code(diag::codes::kSimBackendFallback))
            r << ",\"backend_fallback\":true";
        r << "}}";
        {
            std::lock_guard<std::mutex> lock(dse_mutex_);
            dse_last_ = DseActivity{0, result.stats.simulations,
                                    result.stats.cache_hits,
                                    result.stats.partial_reuse,
                                    result.stats.prefix_tasks_reused,
                                    result.stats.effective_backend};
            ++dse_totals_.explores;
            dse_totals_.simulations += result.stats.simulations;
            dse_totals_.cache_hits += result.stats.cache_hits;
            dse_totals_.partial_reuse += result.stats.partial_reuse;
            dse_totals_.prefix_tasks_reused +=
                result.stats.prefix_tasks_reused;
            ++dse_by_backend_[result.stats.effective_backend];
        }
        return finish(ok_head(cache_state, resident->hash), r.str());
    }

    // method == "simulate": one cost-model estimate of the auto mapping.
    sim::MpsocParams params;
    params.cycles_per_work =
        param_number(doc, "cycles_per_work", params.cycles_per_work);
    params.gfifo_cost_per_byte = param_number(doc, "gfifo_cost_per_byte",
                                              params.gfifo_cost_per_byte);
    std::size_t max_processors =
        static_cast<std::size_t>(param_number(doc, "max_processors", 0));
    std::string backend = param_string(doc, "backend");
    if (!sim::find_backend(backend))
        return error_response(id, "serve.bad-request",
                              "unknown simulation backend '" + backend +
                                  "' (want dynamic-fifo, analytic or sdf)");
    sim::MpsocResult sim_result;
    std::string effective_backend;
    diag::DiagnosticEngine sim_diags;
    try {
        taskgraph::TaskGraph graph =
            core::build_task_graph(resident->model, resident->comm);
        taskgraph::Clustering clustering = core::auto_clustering(
            resident->model, resident->comm, max_processors);
        std::unique_ptr<sim::CompiledModel> compiled =
            sim::backend_or_throw(backend).compile(graph, params, &sim_diags);
        effective_backend = compiled->effective_backend();
        sim_result = compiled->evaluator()->evaluate(clustering);
    } catch (const std::exception& e) {
        // A model the simulator cannot schedule (e.g. a feedback cycle in
        // the task graph) is an input property, not an internal error —
        // mirror the explore classification.
        return error_response(
            id, "serve.bad-model",
            "model is not simulatable: " + std::string(e.what()));
    }
    std::ostringstream r;
    r << "{\"makespan\":" << number_text(sim_result.makespan)
      << ",\"bus_busy\":" << number_text(sim_result.bus_busy)
      << ",\"inter_traffic\":" << number_text(sim_result.inter_traffic)
      << ",\"intra_traffic\":" << number_text(sim_result.intra_traffic)
      << ",\"bus_transfers\":" << sim_result.bus_transfers
      << ",\"processors\":" << sim_result.cpu_busy.size()
      << ",\"backend\":" << quote(effective_backend);
    if (sim_diags.count_code(diag::codes::kSimBackendFallback))
        r << ",\"backend_fallback\":true";
    r << "}";
    return finish(ok_head(cache_state, resident->hash), r.str());
}

void Engine::housekeeping() {
    // Bound the process-wide DSE memo so a long-lived daemon cannot grow
    // it without limit (the CLI one-shot never could).
    if (options_.dse_memo_max_entries)
        dse::trim_simulation_cache(options_.dse_memo_max_entries);
    // Directory-scanning GC passes are cheap enough to run on a cadence,
    // pointless to run per request.
    if (housekeeping_tick_.fetch_add(1, std::memory_order_relaxed) % 16 != 0)
        return;
    if (!options_.checkpoint_dir.empty() &&
        (options_.checkpoint_gc.max_age_seconds ||
         options_.checkpoint_gc.max_count)) {
        flow::CheckpointStore store(options_.checkpoint_dir);
        store.prune(options_.checkpoint_gc);
    }
    // Stale staging GC: `.uhcg-stage` debris under any output root a
    // generate request has committed into (a client killed mid-request
    // never commits its stage). Age-gated so a request running right now
    // keeps its live stage.
    if (options_.stale_stage_ttl_seconds) {
        std::vector<std::string> roots;
        {
            std::lock_guard<std::mutex> lock(out_roots_mutex_);
            roots.assign(out_roots_.begin(), out_roots_.end());
        }
        for (const std::string& root : roots)
            flow::prune_stale_stages(root, options_.stale_stage_ttl_seconds);
    }
}

}  // namespace uhcg::serve
