#include "serve/cache.hpp"

#include <sstream>
#include <utility>

#include "flow/checkpoint.hpp"
#include "obs/obs.hpp"
#include "uml/xmi.hpp"

namespace uhcg::serve {
namespace {

/// The in-memory model (DOM-free typed elements + the mined comm model)
/// empirically lands within a small multiple of the XMI source; the
/// constant floor covers tiny models. Deliberately a coarse over-estimate:
/// the budget is a ceiling on growth, not a memory profiler.
std::size_t charge_for(std::size_t source_bytes) {
    return source_bytes * 4 + 4096;
}

/// serve.cache_bytes is a gauge over a monotonic Counter: writers hold the
/// cache mutex, so reset+add is not racy with other writers, and readers
/// see a recent whole value.
void publish_bytes_gauge(std::size_t bytes) {
    static obs::Counter& gauge = obs::counter("serve.cache_bytes");
    gauge.reset();
    gauge.add(bytes);
}

}  // namespace

ModelCache::ModelCache(std::size_t budget_bytes)
    : budget_bytes_(budget_bytes) {}

std::string ModelCache::hash_bytes(std::string_view bytes) {
    std::ostringstream out;
    out << std::hex << flow::CheckpointStore::fnv1a(bytes);
    return out.str();
}

void ModelCache::touch_locked(const std::string& hash) {
    auto it = index_.find(hash);
    if (it == index_.end()) return;
    lru_.splice(lru_.begin(), lru_, it->second);
    it->second = lru_.begin();
}

std::shared_ptr<const ResidentModel> ModelCache::find(const std::string& hash) {
    static obs::Counter& hit_counter = obs::counter("serve.cache_hits");
    static obs::Counter& miss_counter = obs::counter("serve.cache_misses");
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = index_.find(hash);
    if (it == index_.end()) {
        ++misses_;
        miss_counter.add(1);
        return nullptr;
    }
    ++hits_;
    hit_counter.add(1);
    touch_locked(hash);
    return *index_.find(hash)->second;
}

std::shared_ptr<const ResidentModel> ModelCache::admit(
    std::string bytes, diag::DiagnosticEngine& engine) {
    std::string hash = hash_bytes(bytes);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = index_.find(hash);
        if (it != index_.end()) {
            ++hits_;
            obs::counter("serve.cache_hits").add(1);
            touch_locked(hash);
            return *index_.find(hash)->second;
        }
    }

    // Parse outside the lock: concurrent requests admitting different
    // models must not serialize on each other's xml.parse. A duplicate
    // admit of the same model races benignly — the second insert finds
    // the key resident and is dropped.
    uml::Model model =
        uml::from_xmi_string(bytes, engine, "<serve:" + hash + ">");
    if (engine.has_errors()) return nullptr;
    core::CommModel comm = core::analyze_communication(model);

    auto entry = std::make_shared<ResidentModel>(
        ResidentModel{hash, std::move(bytes), std::move(model),
                      std::move(comm), 0});
    entry->charge_bytes = charge_for(entry->bytes.size());

    std::lock_guard<std::mutex> lock(mutex_);
    auto it = index_.find(hash);
    if (it != index_.end()) {
        touch_locked(hash);
        return *index_.find(hash)->second;
    }
    lru_.push_front(entry);
    index_.emplace(hash, lru_.begin());
    bytes_ += entry->charge_bytes;
    evict_over_budget_locked();
    publish_bytes_gauge(bytes_);
    return entry;
}

void ModelCache::evict_over_budget_locked() {
    if (!budget_bytes_) return;
    static obs::Counter& eviction_counter = obs::counter("serve.cache_evictions");
    // Never evict the most recent entry: the request that admitted it is
    // about to use it, and an over-sized single model must still serve.
    while (bytes_ > budget_bytes_ && lru_.size() > 1) {
        const auto& victim = lru_.back();
        bytes_ -= victim->charge_bytes;
        index_.erase(victim->hash);
        lru_.pop_back();
        ++evictions_;
        eviction_counter.add(1);
    }
}

ModelCache::Stats ModelCache::stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return {lru_.size(), bytes_, budget_bytes_, hits_, misses_, evictions_};
}

}  // namespace uhcg::serve
