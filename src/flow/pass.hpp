// pass.hpp — the unified flow layer: a typed pass manager.
//
// The paper's Fig. 2 flow is a sequence of model transformations; this
// layer gives every step one shape so the heterogeneous branches of Fig. 1
// (Simulink CAAM, FSM code generation, multithreaded fallback, KPN
// retargeting) compose over a single observable substrate:
//
//  * *artifacts* — typed values (the UML model, the communication model,
//    the CAAM, the .mdl text, ...) held in an ArtifactStore keyed by
//    C++ type; an artifact type can carry a stable dotted name via an
//    ArtifactTraits specialization, used in traces and error messages;
//  * *passes* — named units of work declaring which artifact types they
//    read and write; bodies receive a PassContext for artifact access,
//    diagnostics, and per-pass counters;
//  * *scheduling* — deterministic: passes run in topological order of
//    their artifact dependencies, with registration order breaking ties,
//    so the same registered pipeline always executes identically;
//  * *observability* — every executed pass records wall time, its
//    counters, and the number of diagnostics it reported into a FlowTrace
//    that renders as machine-readable JSON (schema `uhcg-flow-trace-v1`).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <typeindex>
#include <typeinfo>
#include <unordered_map>
#include <vector>

#include "diag/diag.hpp"

namespace uhcg::flow {

/// Structural misuse of the flow layer (missing artifact, duplicate
/// producer, cyclic pass graph). Input-model problems are *diagnostics*,
/// never FlowErrors.
class FlowError : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

/// Specialize to give an artifact type a stable dotted name:
///   template <> struct ArtifactTraits<core::CommModel> {
///       static constexpr const char* name = "core.comm"; };
template <typename T>
struct ArtifactTraits {
    static constexpr const char* name = nullptr;  // fallback: typeid name
};

/// Identity of an artifact slot: the C++ type plus its display name.
struct ArtifactKey {
    std::type_index type;
    std::string name;

    bool operator==(const ArtifactKey& other) const { return type == other.type; }
};

template <typename T>
ArtifactKey artifact_key() {
    const char* n = ArtifactTraits<T>::name;
    return {std::type_index(typeid(T)), n ? n : typeid(T).name()};
}

/// Type-keyed artifact container. At most one artifact per type; re-putting
/// replaces the previous value. Values are owned by the store.
class ArtifactStore {
public:
    template <typename T>
    T& put(T value) {
        ArtifactKey key = artifact_key<T>();
        auto holder = std::make_shared<T>(std::move(value));
        T* raw = holder.get();
        auto it = entries_.find(key.type);
        if (it == entries_.end()) {
            entries_.emplace(key.type, Entry{std::move(holder), key.name});
            order_.push_back(key.type);
        } else {
            it->second = Entry{std::move(holder), key.name};
        }
        return *raw;
    }

    template <typename T>
    T* get() {
        auto it = entries_.find(std::type_index(typeid(T)));
        return it == entries_.end() ? nullptr
                                    : static_cast<T*>(it->second.value.get());
    }
    template <typename T>
    const T* get() const {
        auto it = entries_.find(std::type_index(typeid(T)));
        return it == entries_.end() ? nullptr
                                    : static_cast<const T*>(it->second.value.get());
    }

    /// Like get(), but a missing artifact is a structural error.
    template <typename T>
    T& require() {
        if (T* value = get<T>()) return *value;
        throw FlowError("missing artifact '" + artifact_key<T>().name + "'");
    }
    template <typename T>
    const T& require() const {
        if (const T* value = get<T>()) return *value;
        throw FlowError("missing artifact '" + artifact_key<T>().name + "'");
    }

    template <typename T>
    bool has() const {
        return entries_.count(std::type_index(typeid(T))) > 0;
    }
    bool has(const ArtifactKey& key) const { return entries_.count(key.type) > 0; }

    std::size_t size() const { return entries_.size(); }
    /// Artifact display names, first-put order.
    std::vector<std::string> names() const;

private:
    struct Entry {
        std::shared_ptr<void> value;
        std::string name;
    };
    std::unordered_map<std::type_index, Entry> entries_;
    std::vector<std::type_index> order_;
};

/// Handed to pass bodies: artifact access, diagnostics, counters, and the
/// failure latch that stops the pipeline after the current pass.
class PassContext {
public:
    PassContext(ArtifactStore& store, diag::DiagnosticEngine& diags)
        : store_(&store), diags_(&diags) {}

    ArtifactStore& store() { return *store_; }
    diag::DiagnosticEngine& diags() { return *diags_; }

    template <typename T>
    const T& in() const {
        return static_cast<const ArtifactStore&>(*store_).require<T>();
    }
    template <typename T>
    T& inout() {
        return store_->require<T>();
    }
    template <typename T>
    T& out(T value) {
        return store_->put(std::move(value));
    }

    /// Per-pass metric, surfaced in the trace (e.g. "channels", "rules").
    void count(const std::string& counter, std::uint64_t delta = 1) {
        counters_[counter] += delta;
    }
    const std::map<std::string, std::uint64_t>& counters() const {
        return counters_;
    }

    /// Marks the run failed; the manager stops scheduling after this pass.
    void fail() { failed_ = true; }
    bool failed() const { return failed_; }

private:
    ArtifactStore* store_;
    diag::DiagnosticEngine* diags_;
    std::map<std::string, std::uint64_t> counters_;
    bool failed_ = false;
};

/// A named unit of work with declared artifact dependencies.
struct Pass {
    std::string name;
    std::vector<ArtifactKey> inputs;
    std::vector<ArtifactKey> outputs;
    /// Explicit ordering edges for passes whose dependency is an in-place
    /// mutation rather than a produced artifact (a barrier, in pass-manager
    /// terms). Names not present in the manager are ignored.
    std::vector<std::string> after;
    std::function<void(PassContext&)> run;

    Pass(std::string pass_name, std::function<void(PassContext&)> body)
        : name(std::move(pass_name)), run(std::move(body)) {}

    template <typename T>
    Pass& reads() {
        inputs.push_back(artifact_key<T>());
        return *this;
    }
    template <typename T>
    Pass& writes() {
        outputs.push_back(artifact_key<T>());
        return *this;
    }
    Pass& runs_after(std::string pass_name) {
        after.push_back(std::move(pass_name));
        return *this;
    }
};

/// Deterministic capped-backoff retry policy. A failed pass re-runs only
/// when every error it reported in the failing attempt is classified
/// transient (diag::is_transient) — watchdog trips, budget overruns,
/// injected transient faults. Input defects never retry: the same pass
/// over the same artifacts reproduces them.
struct RetryPolicy {
    /// Additional attempts after the first (0 = never retry).
    std::size_t max_retries = 0;
    /// Delay before the first retry; 0 keeps retries immediate (tests).
    std::uint64_t backoff_ms = 0;
    /// Multiplier applied per further retry (deterministic, no jitter).
    double backoff_factor = 2.0;
    /// Upper bound on any single delay.
    std::uint64_t backoff_cap_ms = 2000;

    /// Delay before retry number `retry_index` (0-based), in ms.
    std::uint64_t delay_for_retry(std::size_t retry_index) const;
};

/// Per-pass resource budget. Wall time is checked when the pass body
/// returns (bodies that can stall internally — sim/kpn execution — bound
/// themselves via their WatchdogBudgets); an overrun becomes a
/// transient-classified flow.pass-timeout error and fails the pass, so
/// the RetryPolicy may re-run it and quarantine applies otherwise.
struct PassBudget {
    std::uint64_t wall_ms = 0;  ///< 0 = unlimited
};

/// One executed pass in the trace.
struct PassTraceEntry {
    std::string pass;
    std::string group;  ///< strategy / partition the pass ran under
    double wall_ms = 0.0;      ///< summed over all attempts
    std::size_t attempts = 1;  ///< 1 + retries actually taken
    std::size_t errors = 0;    ///< diagnostics with severity >= Error
    std::size_t warnings = 0;  ///< warnings reported during the pass
    std::size_t notes = 0;
    std::uint64_t budget_ms = 0;  ///< wall budget in force (0 = unlimited)
    std::map<std::string, std::uint64_t> counters;
    std::vector<std::string> reads;
    std::vector<std::string> writes;
};

/// A generated output recorded for the trace (file name + producer).
struct TraceOutput {
    std::string path;
    std::string strategy;
    std::size_t bytes = 0;
};

/// One subsystem partition recorded for the trace.
struct TracePartition {
    std::string name;
    std::string kind;      ///< "dataflow" | "control-flow"
    std::string strategy;  ///< dispatched generator, "" when none
    std::vector<std::string> units;
};

/// Trace sink shared by every pass manager of one flow run; renders the
/// machine-readable JSON document (schema `uhcg-flow-trace-v1`).
class FlowTrace {
public:
    void set_model(std::string name) { model_ = std::move(name); }
    const std::string& model() const { return model_; }

    void add(PassTraceEntry entry) { entries_.push_back(std::move(entry)); }
    void add_partition(TracePartition p) { partitions_.push_back(std::move(p)); }
    void add_output(TraceOutput o) { outputs_.push_back(std::move(o)); }

    const std::vector<PassTraceEntry>& entries() const { return entries_; }
    const std::vector<TracePartition>& partitions() const { return partitions_; }
    const std::vector<TraceOutput>& outputs() const { return outputs_; }

    double total_wall_ms() const;
    std::size_t total_errors() const;
    std::size_t total_warnings() const;

    /// Schema `uhcg-flow-trace-v1`:
    /// { "schema": "uhcg-flow-trace-v1", "model": "...",
    ///   "passes": [{"name","group","wall_ms","diagnostics":{...},
    ///               "counters":{...},"reads":[...],"writes":[...]}],
    ///   "partitions": [{"name","kind","strategy","units":[...]}],
    ///   "outputs": [{"path","strategy","bytes"}],
    ///   "totals": {"wall_ms","passes","errors","warnings"} }
    std::string to_json() const;

private:
    std::string model_;
    std::vector<PassTraceEntry> entries_;
    std::vector<TracePartition> partitions_;
    std::vector<TraceOutput> outputs_;
};

/// Registers passes and runs them in deterministic topological order.
class PassManager {
public:
    explicit PassManager(std::string name = "flow") : name_(std::move(name)) {}

    Pass& add(Pass pass);
    const std::string& name() const { return name_; }
    std::size_t pass_count() const { return passes_.size(); }

    /// Exceptions escaping a pass body: trapped (default) they become a
    /// Fatal diagnostic carrying `internal_error_code` and fail the run;
    /// untrapped they propagate to the caller.
    void set_trap_exceptions(bool trap) { trap_exceptions_ = trap; }
    void set_internal_error_code(std::string code) {
        internal_code_ = std::move(code);
    }

    /// Retry/budget enforcement (resilience layer). Both default off.
    void set_retry_policy(RetryPolicy policy) { retry_ = policy; }
    const RetryPolicy& retry_policy() const { return retry_; }
    void set_pass_budget(PassBudget budget) { budget_ = budget; }
    const PassBudget& pass_budget() const { return budget_; }

    /// The deterministic execution order. Throws FlowError on duplicate
    /// producers or cyclic declarations. Inputs with no registered
    /// producer must be seeded in the store before run().
    std::vector<const Pass*> schedule() const;

    struct RunResult {
        bool ok = true;
        std::size_t passes_run = 0;
    };

    /// Runs the scheduled passes against `store`, reporting through
    /// `engine` and appending one PassTraceEntry per executed pass to
    /// `trace` (labelled `group`) when given. Stops after a pass that
    /// called PassContext::fail() or raised a trapped exception.
    RunResult run(ArtifactStore& store, diag::DiagnosticEngine& engine,
                  FlowTrace* trace = nullptr, const std::string& group = {});

private:
    std::string name_;
    std::vector<Pass> passes_;
    bool trap_exceptions_ = true;
    std::string internal_code_ = "flow.internal";
    RetryPolicy retry_;
    PassBudget budget_;
};

}  // namespace uhcg::flow
