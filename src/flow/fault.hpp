// fault.hpp — pass-level fault injection for the resilience layer.
//
// PR 1's mutate harness corrupts *inputs*; this extends fault injection to
// the flow itself: any pass of any strategy can be armed to misbehave at
// its entry point, deterministically, so the chaos suite can prove that a
// broken pass quarantines only its own subsystem and never tears the
// run's outputs. Sites are named "<group>/<pass>" — the same labels the
// uhcg-flow-trace-v1 trace records (e.g. "fsm-c:control:Elevator/
// fsm.flatten"), so every traced pass is an injection point.
//
// The injector is process-wide (the strategies build their PassManagers
// internally, out of reach of a per-manager hook) and inert unless armed;
// `uhcg generate --inject-fault <spec>` arms it from the CLI for the
// chaos-smoke CI job.
#pragma once

#include <cstddef>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

namespace uhcg::flow {

class PassContext;

namespace fault {

/// Thrown by `Injector::fire_crash` — the in-process stand-in for a
/// process death (`kill -9`) at a campaign-level site. Deliberately NOT a
/// plain std::runtime_error subclass the per-job fault guard would
/// swallow: the campaign runner rethrows it past its quarantine guard so
/// the chaos suite can crash a sweep at an exact site and then prove
/// `--resume` replays byte-identically.
struct CrashInjected : std::runtime_error {
    using std::runtime_error::runtime_error;
};

enum class Kind {
    /// Throw std::runtime_error from the pass entry — exercises the
    /// trap-exceptions path (becomes a Fatal internal diagnostic).
    Throw,
    /// Report a Fatal flow.quarantine diagnostic and fail the pass —
    /// exercises the diagnostic-fatal path without unwinding.
    Fatal,
    /// Report a transient-classified flow.transient error and fail; the
    /// site heals after `count` hits — exercises the RetryPolicy.
    Transient,
};

struct Injection {
    std::string site;  ///< exact "<group>/<pass>" label, or a substring
    Kind kind = Kind::Throw;
    /// Remaining hits before the site heals (Transient) or stops firing.
    std::size_t remaining = static_cast<std::size_t>(-1);
    std::size_t hits = 0;  ///< how often this injection actually fired
};

/// Process-wide injection table. `fire`/`fire_crash` are thread-safe —
/// the parallel generate dispatcher runs pass entries on pool workers —
/// but arm/disarm still belong between generate() calls: re-arming while
/// a flow is in flight would make which unit trips the fault racy.
class Injector {
public:
    static Injector& instance();

    /// Arms `kind` at every site whose label contains `site` as a
    /// substring (exact labels match themselves). `count` bounds how
    /// often the fault fires; Transient sites succeed afterwards.
    void arm(std::string site, Kind kind,
             std::size_t count = static_cast<std::size_t>(-1));
    void disarm_all();
    bool armed() const;
    std::vector<Injection> injections() const;

    /// Called by PassManager at each pass entry with the trace label.
    /// May throw (Kind::Throw) or report-and-fail through `ctx`.
    void fire(const std::string& site, PassContext& ctx);

    /// Campaign-level probe outside any pass: an armed Throw or Fatal
    /// injection matching `site` throws CrashInjected (Transient is
    /// ignored here — there is no pass to heal). Used by the campaign
    /// runner at its dispatch/job/journal/aggregate sites.
    void fire_crash(const std::string& site);

    /// Parses a CLI spec "throw:<site>", "fatal:<site>" or
    /// "transient[xN]:<site>" and arms it. Returns false on bad syntax.
    bool arm_spec(const std::string& spec);

private:
    mutable std::mutex mutex_;
    std::vector<Injection> injections_;
};

}  // namespace fault
}  // namespace uhcg::flow
