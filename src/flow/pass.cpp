#include "flow/pass.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <sstream>
#include <thread>

#include "flow/fault.hpp"
#include "obs/obs.hpp"

namespace uhcg::flow {

std::vector<std::string> ArtifactStore::names() const {
    std::vector<std::string> out;
    out.reserve(order_.size());
    for (const std::type_index& type : order_) out.push_back(entries_.at(type).name);
    return out;
}

double FlowTrace::total_wall_ms() const {
    double total = 0.0;
    for (const PassTraceEntry& e : entries_) total += e.wall_ms;
    return total;
}

std::size_t FlowTrace::total_errors() const {
    std::size_t total = 0;
    for (const PassTraceEntry& e : entries_) total += e.errors;
    return total;
}

std::size_t FlowTrace::total_warnings() const {
    std::size_t total = 0;
    for (const PassTraceEntry& e : entries_) total += e.warnings;
    return total;
}

namespace {

void append_string_array(std::ostringstream& out,
                         const std::vector<std::string>& values) {
    out << '[';
    for (std::size_t i = 0; i < values.size(); ++i) {
        if (i) out << ',';
        out << '"' << diag::json_escape(values[i]) << '"';
    }
    out << ']';
}

}  // namespace

std::string FlowTrace::to_json() const {
    std::ostringstream out;
    out << "{\n  \"schema\": \"uhcg-flow-trace-v1\",\n";
    out << "  \"model\": \"" << diag::json_escape(model_) << "\",\n";
    out << "  \"passes\": [";
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        const PassTraceEntry& e = entries_[i];
        out << (i ? ",\n    " : "\n    ");
        out << "{\"name\": \"" << diag::json_escape(e.pass) << "\", \"group\": \""
            << diag::json_escape(e.group) << "\", \"wall_ms\": " << e.wall_ms
            << ", \"attempts\": " << e.attempts
            << ", \"budget_ms\": " << e.budget_ms
            << ", \"diagnostics\": {\"errors\": " << e.errors
            << ", \"warnings\": " << e.warnings << ", \"notes\": " << e.notes
            << "}, \"counters\": {";
        std::size_t c = 0;
        for (const auto& [counter, value] : e.counters) {
            if (c++) out << ", ";
            out << '"' << diag::json_escape(counter) << "\": " << value;
        }
        out << "}, \"reads\": ";
        append_string_array(out, e.reads);
        out << ", \"writes\": ";
        append_string_array(out, e.writes);
        out << '}';
    }
    out << (entries_.empty() ? "]" : "\n  ]") << ",\n";
    out << "  \"partitions\": [";
    for (std::size_t i = 0; i < partitions_.size(); ++i) {
        const TracePartition& p = partitions_[i];
        out << (i ? ",\n    " : "\n    ");
        out << "{\"name\": \"" << diag::json_escape(p.name) << "\", \"kind\": \""
            << diag::json_escape(p.kind) << "\", \"strategy\": \""
            << diag::json_escape(p.strategy) << "\", \"units\": ";
        append_string_array(out, p.units);
        out << '}';
    }
    out << (partitions_.empty() ? "]" : "\n  ]") << ",\n";
    out << "  \"outputs\": [";
    for (std::size_t i = 0; i < outputs_.size(); ++i) {
        const TraceOutput& o = outputs_[i];
        out << (i ? ",\n    " : "\n    ");
        out << "{\"path\": \"" << diag::json_escape(o.path)
            << "\", \"strategy\": \"" << diag::json_escape(o.strategy)
            << "\", \"bytes\": " << o.bytes << '}';
    }
    out << (outputs_.empty() ? "]" : "\n  ]") << ",\n";
    out << "  \"totals\": {\"wall_ms\": " << total_wall_ms()
        << ", \"passes\": " << entries_.size()
        << ", \"errors\": " << total_errors()
        << ", \"warnings\": " << total_warnings() << "}\n}";
    return out.str();
}

Pass& PassManager::add(Pass pass) {
    if (pass.name.empty() || !pass.run)
        throw FlowError("passes need a name and a body");
    passes_.push_back(std::move(pass));
    return passes_.back();
}

std::vector<const Pass*> PassManager::schedule() const {
    const std::size_t n = passes_.size();

    // Producer of each artifact type; two producers for one slot would make
    // the dataflow ambiguous.
    std::unordered_map<std::type_index, std::size_t> producer;
    for (std::size_t i = 0; i < n; ++i)
        for (const ArtifactKey& out : passes_[i].outputs) {
            auto [it, inserted] = producer.emplace(out.type, i);
            if (!inserted && it->second != i)
                throw FlowError("pass manager '" + name_ + "': artifact '" +
                                out.name + "' has two producers ('" +
                                passes_[it->second].name + "' and '" +
                                passes_[i].name + "')");
        }
    std::unordered_map<std::string, std::size_t> by_name;
    for (std::size_t i = 0; i < n; ++i) by_name.emplace(passes_[i].name, i);

    // Dependency edges: artifact producers plus explicit `after` barriers.
    std::vector<std::vector<std::size_t>> dependents(n);
    std::vector<std::size_t> indegree(n, 0);
    auto add_edge = [&](std::size_t from, std::size_t to) {
        if (from == to) return;
        dependents[from].push_back(to);
        ++indegree[to];
    };
    for (std::size_t i = 0; i < n; ++i) {
        for (const ArtifactKey& in : passes_[i].inputs) {
            auto it = producer.find(in.type);
            if (it != producer.end()) add_edge(it->second, i);
            // No producer: the artifact must be seeded in the store; run()
            // verifies that when the pass executes.
        }
        for (const std::string& barrier : passes_[i].after) {
            auto it = by_name.find(barrier);
            if (it != by_name.end()) add_edge(it->second, i);
        }
    }

    // Kahn's algorithm; the ready set is drained lowest-registration-index
    // first, which makes the order total and deterministic.
    std::vector<std::size_t> ready;
    for (std::size_t i = 0; i < n; ++i)
        if (indegree[i] == 0) ready.push_back(i);
    std::vector<const Pass*> order;
    order.reserve(n);
    while (!ready.empty()) {
        auto lowest = std::min_element(ready.begin(), ready.end());
        std::size_t next = *lowest;
        ready.erase(lowest);
        order.push_back(&passes_[next]);
        for (std::size_t dep : dependents[next])
            if (--indegree[dep] == 0) ready.push_back(dep);
    }
    if (order.size() != n) {
        std::string cyclic;
        for (std::size_t i = 0; i < n; ++i)
            if (indegree[i] > 0) cyclic += (cyclic.empty() ? "" : ", ") + passes_[i].name;
        throw FlowError("pass manager '" + name_ +
                        "': cyclic pass dependencies through: " + cyclic);
    }
    return order;
}

std::uint64_t RetryPolicy::delay_for_retry(std::size_t retry_index) const {
    if (backoff_ms == 0) return 0;
    double delay = static_cast<double>(backoff_ms);
    for (std::size_t i = 0; i < retry_index; ++i) delay *= backoff_factor;
    double cap = static_cast<double>(backoff_cap_ms);
    return static_cast<std::uint64_t>(std::min(delay, cap));
}

PassManager::RunResult PassManager::run(ArtifactStore& store,
                                        diag::DiagnosticEngine& engine,
                                        FlowTrace* trace,
                                        const std::string& group) {
    RunResult result;
    const std::string group_prefix = group + "/";
    for (const Pass* pass : schedule()) {
        // Every declared input must exist by now — either produced by an
        // earlier pass or seeded by the caller. A missing input is a
        // permanent condition: no retry.
        bool inputs_ok = true;
        for (const ArtifactKey& in : pass->inputs) {
            if (store.has(in)) continue;
            engine.error(diag::codes::kFlowMissingArtifact,
                         "pass '" + pass->name + "' requires artifact '" +
                             in.name + "' which no pass produced and the "
                             "caller did not seed");
            inputs_ok = false;
        }

        const std::size_t errors_before = engine.error_count();
        const std::size_t warnings_before = engine.warning_count();
        const std::size_t diags_before = engine.size();

        bool failed = !inputs_ok;
        double wall_ms = 0.0;
        std::size_t attempts = inputs_ok ? 0 : 1;
        std::map<std::string, std::uint64_t> counters;

        while (inputs_ok) {
            PassContext ctx(store, engine);
            ++attempts;
            const std::size_t attempt_errors = engine.error_count();
            const std::size_t attempt_diags = engine.size();

            if (attempts > 1) obs::counter("flow.retries").add(1);
            auto start = std::chrono::steady_clock::now();
            {
                // Pass names carry their layer as a dotted prefix
                // ("core.mapping" → category "core"), so this one span
                // covers every layer the pass managers orchestrate. Scoped
                // to the attempt only — backoff sleeps stay outside.
                obs::ObsSpan attempt_span(pass->name);
                if (trap_exceptions_) {
                    try {
                        fault::Injector::instance().fire(
                            group_prefix + pass->name, ctx);
                        if (!ctx.failed()) pass->run(ctx);
                    } catch (const std::exception& e) {
                        engine.report(diag::Severity::Fatal, internal_code_,
                                      e.what());
                        ctx.fail();
                    }
                } else {
                    fault::Injector::instance().fire(group_prefix + pass->name,
                                                     ctx);
                    if (!ctx.failed()) pass->run(ctx);
                }
            }
            auto stop = std::chrono::steady_clock::now();
            double attempt_ms =
                std::chrono::duration<double, std::milli>(stop - start).count();
            wall_ms += attempt_ms;

            // Wall budget: a pass that overran becomes a transient-
            // classified failure — slowness may pass on retry, and a
            // persistently slow pass quarantines like any other failure.
            if (budget_.wall_ms != 0 &&
                attempt_ms > static_cast<double>(budget_.wall_ms)) {
                // The attempt number keeps repeated overruns distinct so
                // the engine's dedupe cannot swallow a retry's evidence.
                engine.error(
                    diag::codes::kFlowPassTimeout,
                    "pass '" + pass->name + "' attempt " +
                        std::to_string(attempts) +
                        " exceeded its wall budget (" +
                        std::to_string(static_cast<std::uint64_t>(attempt_ms)) +
                        " ms > " + std::to_string(budget_.wall_ms) + " ms)");
                ctx.fail();
            }

            counters = ctx.counters();
            failed = ctx.failed();
            if (!failed) break;

            // Retry only when this attempt's errors are all transient.
            const std::size_t new_errors = engine.error_count() - attempt_errors;
            bool retryable = new_errors > 0 && attempts <= retry_.max_retries;
            if (retryable)
                for (std::size_t i = attempt_diags; i < engine.size(); ++i) {
                    const diag::Diagnostic& d = engine.diagnostics()[i];
                    if (d.severity >= diag::Severity::Error &&
                        !diag::is_transient(d.code))
                        retryable = false;
                }
            if (!retryable) break;

            std::uint64_t delay = retry_.delay_for_retry(attempts - 1);
            engine.note(diag::codes::kFlowRetry,
                        "pass '" + pass->name + "' failed on a transient "
                        "diagnostic; retry " + std::to_string(attempts) +
                        " of " + std::to_string(retry_.max_retries) +
                        " after " + std::to_string(delay) + " ms");
            if (delay)
                std::this_thread::sleep_for(std::chrono::milliseconds(delay));
        }
        ++result.passes_run;

        if (trace) {
            PassTraceEntry entry;
            entry.pass = pass->name;
            entry.group = group;
            entry.wall_ms = wall_ms;
            entry.attempts = attempts;
            entry.budget_ms = budget_.wall_ms;
            entry.errors = engine.error_count() - errors_before;
            entry.warnings = engine.warning_count() - warnings_before;
            std::size_t new_diags = engine.size() - diags_before;
            entry.notes = new_diags - entry.errors - entry.warnings;
            entry.counters = std::move(counters);
            for (const ArtifactKey& in : pass->inputs) entry.reads.push_back(in.name);
            for (const ArtifactKey& out : pass->outputs)
                entry.writes.push_back(out.name);
            trace->add(std::move(entry));
        }

        if (failed) {
            result.ok = false;
            return result;
        }
    }
    return result;
}

}  // namespace uhcg::flow
