#include "flow/txout.hpp"

#include <chrono>
#include <fstream>
#include <stdexcept>
#include <system_error>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#endif

#include "obs/obs.hpp"

namespace uhcg::flow {

namespace fs = std::filesystem;

namespace {
constexpr const char* kStageName = ".uhcg-stage";

/// Best-effort directory fsync: makes the renames durable on POSIX.
/// Failure is not an error — some filesystems reject fsync on
/// directories, and the rename itself already guaranteed atomicity.
void sync_directory(const fs::path& dir) {
#if defined(__unix__) || defined(__APPLE__)
    int fd = ::open(dir.c_str(), O_RDONLY);
    if (fd < 0) return;
    ::fsync(fd);
    ::close(fd);
#else
    (void)dir;
#endif
}
}  // namespace

OutputTransaction::OutputTransaction(fs::path dir, CommitMode mode)
    : dir_(std::move(dir)), stage_(dir_ / kStageName), mode_(mode) {
    std::error_code ec;
    fs::create_directories(dir_, ec);
    if (ec)
        throw std::runtime_error("cannot create output directory '" +
                                 dir_.string() + "': " + ec.message());
    // A stale stage is debris from a killed run; it was never committed,
    // so discarding it is always safe.
    fs::remove_all(stage_, ec);
    fs::create_directories(stage_, ec);
    if (ec)
        throw std::runtime_error("cannot create staging directory '" +
                                 stage_.string() + "': " + ec.message());
}

OutputTransaction::~OutputTransaction() {
    if (!done_) rollback();
}

void OutputTransaction::write(const std::string& name,
                              std::string_view contents) {
    fs::path target = stage_ / name;
    std::ofstream out(target, std::ios::binary);
    if (!out)
        throw std::runtime_error("cannot stage output file '" +
                                 target.string() + "'");
    out.write(contents.data(),
              static_cast<std::streamsize>(contents.size()));
    out.close();
    if (!out)
        throw std::runtime_error("short write staging '" + target.string() +
                                 "'");
    ++staged_;
    bytes_staged_ += contents.size();
    names_.insert(name);
}

std::size_t OutputTransaction::commit() {
    obs::ObsSpan span("txout.commit");
    std::size_t committed = 0;
    // std::set iteration gives the sorted, deduplicated rename sequence —
    // identical for any producer order, which keeps parallel generate's
    // on-disk effects byte-for-byte those of a serial run.
    for (const std::string& name : names_) {
        fs::rename(stage_ / name,
                   dir_ / name);  // atomic within one filesystem
        ++committed;
        obs::counter("txout.renames").add(1);
        if (mode_ == CommitMode::PerFile) sync_directory(dir_);
    }
    if (mode_ == CommitMode::Batched && committed) sync_directory(dir_);
    std::error_code ec;
    fs::remove_all(stage_, ec);
    done_ = true;
    obs::counter("txout.commit_batches").add(1);
    obs::counter("txout.files_committed").add(committed);
    obs::counter("txout.bytes_committed").add(bytes_staged_);
    return committed;
}

void OutputTransaction::rollback() {
    std::error_code ec;
    fs::remove_all(stage_, ec);
    done_ = true;
}

namespace {

void scan_for_stages(const fs::path& dir, std::uint64_t max_age_seconds,
                     std::size_t depth_left, StaleStageStats& stats) {
    std::error_code ec;
    fs::directory_iterator it(
        dir, fs::directory_options::skip_permission_denied, ec);
    if (ec) return;
    const auto now = fs::file_time_type::clock::now();
    for (const fs::directory_entry& entry : it) {
        std::error_code entry_ec;
        if (!entry.is_directory(entry_ec) || entry_ec) continue;
        if (entry.path().filename() == kStageName) {
            ++stats.scanned;
            fs::file_time_type mtime = entry.last_write_time(entry_ec);
            if (entry_ec) continue;
            auto age = std::chrono::duration_cast<std::chrono::seconds>(
                now - mtime);
            if (age.count() < 0 ||
                static_cast<std::uint64_t>(age.count()) < max_age_seconds)
                continue;
            fs::remove_all(entry.path(), entry_ec);
            if (!entry_ec) {
                ++stats.pruned;
                obs::counter("txout.stale_dirs_pruned").add();
            }
            continue;  // never descend into a stage
        }
        if (depth_left > 0)
            scan_for_stages(entry.path(), max_age_seconds, depth_left - 1,
                            stats);
    }
}

}  // namespace

StaleStageStats prune_stale_stages(const fs::path& root,
                                   std::uint64_t max_age_seconds,
                                   std::size_t max_depth) {
    StaleStageStats stats;
    std::error_code ec;
    if (!fs::exists(root, ec) || ec) return stats;
    scan_for_stages(root, max_age_seconds, max_depth, stats);
    return stats;
}

void write_file_atomic(const fs::path& path, std::string_view contents) {
    fs::path tmp = path;
    tmp += ".uhcg-tmp";
    {
        std::ofstream out(tmp, std::ios::binary);
        if (!out)
            throw std::runtime_error("cannot write '" + tmp.string() + "'");
        out.write(contents.data(),
                  static_cast<std::streamsize>(contents.size()));
        if (!out)
            throw std::runtime_error("short write to '" + tmp.string() + "'");
    }
    fs::rename(tmp, path);
}

}  // namespace uhcg::flow
