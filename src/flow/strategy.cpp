#include "flow/strategy.hpp"

#include "codegen/caam_to_c.hpp"
#include "codegen/uml_to_cpp.hpp"
#include "flow/caam_passes.hpp"
#include "fsm/codegen.hpp"
#include "fsm/from_uml.hpp"
#include "fsm/machine.hpp"
#include "kpn/execute.hpp"
#include "kpn/from_uml.hpp"
#include "obs/obs.hpp"
#include "sim/backend.hpp"
#include "sim/engine.hpp"
#include "simulink/dot.hpp"
#include "simulink/mdl.hpp"
#include "transform/text.hpp"

namespace uhcg::flow {

/// The machine a control-flow strategy consumes (non-owning).
struct SourceMachine {
    const uml::StateMachine* machine = nullptr;
};

/// Read-only view of the shared mapping, seeded into each emitter's own
/// store so the emit pass is still a traced, fault-injectable pass.
struct SharedCaamRef {
    const SharedCaam* shared = nullptr;
};

/// The per-CPU C program emitted from the shared CAAM (caam-c).
struct CaamCProgram {
    codegen::GeneratedProgram program;
};

/// The Graphviz text emitted from the shared CAAM (caam-dot).
struct CaamDotText {
    std::string text;
};

template <>
struct ArtifactTraits<SourceMachine> {
    static constexpr const char* name = "uml.statemachine";
};
template <>
struct ArtifactTraits<SharedCaamRef> {
    static constexpr const char* name = "caam.shared";
};
template <>
struct ArtifactTraits<CaamCProgram> {
    static constexpr const char* name = "caam.c-program";
};
template <>
struct ArtifactTraits<CaamDotText> {
    static constexpr const char* name = "caam.dot";
};
template <>
struct ArtifactTraits<fsm::Machine> {
    static constexpr const char* name = "fsm.machine";
};
template <>
struct ArtifactTraits<fsm::GeneratedC> {
    static constexpr const char* name = "fsm.c";
};
template <>
struct ArtifactTraits<codegen::CppProgram> {
    static constexpr const char* name = "codegen.cpp-threads";
};
template <>
struct ArtifactTraits<kpn::KpnMappingOutput> {
    static constexpr const char* name = "kpn.network";
};

namespace {

std::string group_label(std::string_view strategy, const Subsystem& subsystem) {
    return std::string(strategy) + ":" + subsystem.name;
}

void apply_resilience(PassManager& pm, const StrategyContext& context) {
    pm.set_retry_policy(context.retry);
    pm.set_pass_budget(context.pass_budget);
}

/// Schedulability probe over the emitted CAAM — the cmd_map check as a
/// pass. A combinational cycle becomes a structured sim.deadlock error and
/// fails the strategy; any other build failure (unregistered S-functions
/// in the empty probe registry) is expected and skips the probe. With
/// `sim_steps` > 0 a watchdogged smoke run follows, so the sim watchdog
/// budget is exercised (and surfaced in the trace) from `uhcg generate`.
void register_schedulability_probe(PassManager& pm, std::size_t sim_steps) {
    const std::size_t steps = sim_steps;
    pm.add(Pass("sim.schedulability",
                [steps](PassContext& ctx) {
                    const simulink::Model& caam = ctx.in<simulink::Model>();
                    sim::SFunctionRegistry probe;
                    try {
                        sim::Simulator check(caam, probe);
                        ctx.count("schedule-blocks", check.schedule().size());
                        if (steps) {
                            sim::WatchdogBudget budget;
                            budget.max_steps = steps;
                            ctx.count("budget-steps", steps);
                            sim::SimResult r =
                                check.run(steps, ctx.diags(), budget);
                            ctx.count("sim-steps", r.steps);
                            if (r.budget_exhausted) ctx.fail();
                        }
                    } catch (const sim::DeadlockError& e) {
                        std::vector<std::string> notes;
                        std::string joined;
                        for (const std::string& b : e.cycle())
                            joined += (joined.empty() ? "" : ", ") + b;
                        notes.push_back("blocked block(s): " + joined);
                        for (const sim::CycleEdge& edge : e.edges())
                            notes.push_back("combinational dependency: " +
                                            edge.from + " -> " + edge.to);
                        notes.push_back(
                            "insert a temporal barrier (UnitDelay) on the "
                            "loop — §4.2.2");
                        ctx.diags().report(
                            diag::Severity::Error, diag::codes::kSimDeadlock,
                            "generated CAAM has a combinational cycle "
                            "through " +
                                std::to_string(e.cycle().size()) +
                                " block(s) — dataflow deadlock",
                            {}, std::move(notes));
                        ctx.fail();
                    } catch (const std::exception&) {
                        // S-functions the empty probe registry cannot bind;
                        // not a mapping defect.
                        ctx.count("probe-skipped");
                    }
                })
           .reads<simulink::Model>()
           .runs_after("caam.delays")
           .runs_after("caam.validate"));
}

/// Advisory cost estimate of the chosen allocation on the configured
/// simulation backend (sim/backend.hpp) — the §4.2.3 estimate surfaced as
/// trace counters from `uhcg generate`, without failing the strategy: a
/// model the cost model cannot price (no threads, detached subsystem) just
/// counts `estimate-skipped`. Backend fallbacks (sdf on a multirate graph)
/// land in the diagnostics as the usual sim.backend-fallback warning.
void register_estimate_pass(PassManager& pm, std::string backend) {
    pm.add(Pass("sim.estimate",
                [backend = std::move(backend)](PassContext& ctx) {
                    try {
                        const uml::Model& model =
                            *ctx.in<SourceModel>().model;
                        const core::CommModel& comm =
                            ctx.in<core::CommModel>();
                        const core::Allocation& alloc =
                            ctx.in<core::Allocation>();
                        taskgraph::TaskGraph graph =
                            core::build_task_graph(model, comm);
                        auto threads = model.threads();
                        std::vector<int> assignment;
                        assignment.reserve(threads.size());
                        for (const uml::ObjectInstance* t : threads)
                            assignment.push_back(static_cast<int>(
                                alloc.processor_of(*t)));
                        sim::MpsocResult estimate = sim::simulate_backend(
                            graph, taskgraph::Clustering::from_assignment(
                                       std::move(assignment)),
                            {}, backend, &ctx.diags());
                        ctx.count("estimate-cpus", estimate.cpu_busy.size());
                        ctx.count("estimate-makespan",
                                  static_cast<std::size_t>(estimate.makespan));
                        ctx.count("estimate-bus-transfers",
                                  estimate.bus_transfers);
                    } catch (const std::exception&) {
                        // Advisory only: an unpriceable model is not a
                        // generation defect.
                        ctx.count("estimate-skipped");
                    }
                })
           .reads<SourceModel>()
           .reads<core::CommModel>()
           .reads<core::Allocation>()
           .runs_after("caam.validate"));
}

/// Shared prelude of every caam-family emitter: resolve the dispatcher's
/// SharedCaam, or compute a private one for standalone strategy calls.
/// Returns nullptr (with `result.ok = false`) when the mapping failed —
/// the emitter then returns its result untouched and the dispatcher
/// quarantines it with the prep's diagnostics.
const SharedCaam* resolve_shared_caam(const StrategyContext& context,
                                      diag::DiagnosticEngine& engine,
                                      FlowTrace* trace, SharedCaam& local,
                                      StrategyResult& result) {
    const SharedCaam* shared = context.shared_caam;
    if (shared == nullptr) {
        local = compute_shared_caam(context, engine, trace);
        shared = &local;
    }
    if (!shared->ok) {
        result.ok = false;
        return nullptr;
    }
    return shared;
}

/// Dataflow branch: steps 2–4 ending in .mdl text. The mapping (steps
/// 2–3) lives in the SharedCaam; this strategy only runs the step-4
/// model-to-text pass, so the same analysis feeds caam-c and caam-dot
/// without being recomputed.
class CaamStrategy final : public Strategy {
public:
    std::string_view name() const override { return "simulink-caam"; }
    bool handles(const Subsystem& s) const override {
        return s.machine == nullptr && !s.threads.empty();
    }

    StrategyResult generate(const StrategyContext& context,
                            diag::DiagnosticEngine& engine,
                            FlowTrace* trace) override {
        StrategyResult result;
        result.strategy = std::string(name());
        result.subsystem = context.subsystem->name;

        SharedCaam local;
        const SharedCaam* shared =
            resolve_shared_caam(context, engine, trace, local, result);
        // The legacy report travels with the mdl result whether or not the
        // mapping succeeded — cmd_generate --report prints it either way.
        if (context.shared_caam)
            result.mapper_report = context.shared_caam->mapper_report;
        else
            result.mapper_report = local.mapper_report;
        if (!shared) return result;

        ArtifactStore store;
        store.put(SharedCaamRef{shared});
        PassManager pm("simulink-caam");
        apply_resilience(pm, context);
        pm.add(Pass("simulink.emit",
                    [](PassContext& ctx) {
                        const SharedCaam& s = *ctx.in<SharedCaamRef>().shared;
                        MdlText& mdl =
                            ctx.out(MdlText{simulink::write_mdl(s.caam)});
                        ctx.count("bytes", mdl.text.size());
                    })
               .reads<SharedCaamRef>()
               .writes<MdlText>());
        auto run = pm.run(store, engine, trace,
                          group_label(name(), *context.subsystem));
        result.ok = run.ok;
        if (MdlText* mdl = store.get<MdlText>())
            result.files.push_back(
                {transform::sanitize_identifier(context.model->name()) + ".mdl",
                 std::move(mdl->text)});
        return result;
    }
};

/// Dataflow branch: the same CAAM emitted as a per-CPU C99 program — the
/// multithread software-generation step, from the shared mapping.
class CaamCStrategy final : public Strategy {
public:
    std::string_view name() const override { return "caam-c"; }
    bool handles(const Subsystem& s) const override {
        return s.machine == nullptr && !s.threads.empty();
    }

    StrategyResult generate(const StrategyContext& context,
                            diag::DiagnosticEngine& engine,
                            FlowTrace* trace) override {
        StrategyResult result;
        result.strategy = std::string(name());
        result.subsystem = context.subsystem->name;

        SharedCaam local;
        const SharedCaam* shared =
            resolve_shared_caam(context, engine, trace, local, result);
        if (!shared) return result;

        ArtifactStore store;
        store.put(SharedCaamRef{shared});
        PassManager pm("caam-c");
        apply_resilience(pm, context);
        pm.add(Pass("caam.emit-c",
                    [](PassContext& ctx) {
                        const SharedCaam& s = *ctx.in<SharedCaamRef>().shared;
                        CaamCProgram& prog = ctx.out(CaamCProgram{
                            codegen::generate_c_program(s.caam)});
                        std::size_t bytes = 0;
                        for (const auto& [name, contents] : prog.program.files)
                            bytes += contents.size();
                        ctx.count("files", prog.program.files.size());
                        ctx.count("channels", prog.program.channel_count);
                        ctx.count("sfunctions", prog.program.sfunction_count);
                        ctx.count("bytes", bytes);
                    })
               .reads<SharedCaamRef>()
               .writes<CaamCProgram>());
        auto run = pm.run(store, engine, trace,
                          group_label(name(), *context.subsystem));
        result.ok = run.ok;
        if (CaamCProgram* prog = store.get<CaamCProgram>()) {
            const std::string prefix =
                transform::sanitize_identifier(context.model->name()) + "_";
            for (auto& [name, contents] : prog->program.files)
                result.files.push_back({prefix + name, std::move(contents)});
        }
        return result;
    }
};

/// Dataflow branch: the same CAAM exported as a Graphviz block diagram.
class CaamDotStrategy final : public Strategy {
public:
    std::string_view name() const override { return "caam-dot"; }
    bool handles(const Subsystem& s) const override {
        return s.machine == nullptr && !s.threads.empty();
    }

    StrategyResult generate(const StrategyContext& context,
                            diag::DiagnosticEngine& engine,
                            FlowTrace* trace) override {
        StrategyResult result;
        result.strategy = std::string(name());
        result.subsystem = context.subsystem->name;

        SharedCaam local;
        const SharedCaam* shared =
            resolve_shared_caam(context, engine, trace, local, result);
        if (!shared) return result;

        ArtifactStore store;
        store.put(SharedCaamRef{shared});
        PassManager pm("caam-dot");
        apply_resilience(pm, context);
        pm.add(Pass("caam.emit-dot",
                    [](PassContext& ctx) {
                        const SharedCaam& s = *ctx.in<SharedCaamRef>().shared;
                        CaamDotText& dot = ctx.out(
                            CaamDotText{simulink::to_dot(s.caam)});
                        ctx.count("bytes", dot.text.size());
                    })
               .reads<SharedCaamRef>()
               .writes<CaamDotText>());
        auto run = pm.run(store, engine, trace,
                          group_label(name(), *context.subsystem));
        result.ok = run.ok;
        if (CaamDotText* dot = store.get<CaamDotText>())
            result.files.push_back(
                {transform::sanitize_identifier(context.model->name()) +
                     "_caam.dot",
                 std::move(dot->text)});
        return result;
    }
};

/// Control branch: UML state machine → flat FSM → C header + source.
class FsmStrategy final : public Strategy {
public:
    std::string_view name() const override { return "fsm-c"; }
    bool handles(const Subsystem& s) const override {
        return s.machine != nullptr;
    }

    StrategyResult generate(const StrategyContext& context,
                            diag::DiagnosticEngine& engine,
                            FlowTrace* trace) override {
        StrategyResult result;
        result.strategy = std::string(name());
        result.subsystem = context.subsystem->name;

        ArtifactStore store;
        store.put(SourceMachine{context.subsystem->machine});
        PassManager pm("fsm-c");
        pm.set_internal_error_code(diag::codes::kFsmInvalid);
        apply_resilience(pm, context);

        pm.add(Pass("fsm.flatten",
                    [](PassContext& ctx) {
                        const uml::StateMachine& sm =
                            *ctx.in<SourceMachine>().machine;
                        fsm::Machine& machine = ctx.out(fsm::from_uml(sm));
                        ctx.count("states", machine.state_count());
                        ctx.count("transitions", machine.transitions().size());
                        // Gate on this machine's own problems, not the
                        // whole engine: under quarantine another
                        // subsystem's failure must not fail this one.
                        auto problems = machine.check();
                        for (const std::string& p : problems)
                            ctx.diags().error(diag::codes::kFsmInvalid,
                                              machine.name() + ": " + p);
                        if (!problems.empty()) ctx.fail();
                    })
               .reads<SourceMachine>()
               .writes<fsm::Machine>());

        pm.add(Pass("fsm.emit-c",
                    [](PassContext& ctx) {
                        fsm::GeneratedC& code = ctx.out(
                            fsm::generate_c(ctx.in<fsm::Machine>()));
                        ctx.count("bytes",
                                  code.header.size() + code.source.size());
                    })
               .reads<fsm::Machine>()
               .writes<fsm::GeneratedC>());

        auto run = pm.run(store, engine, trace,
                          group_label(name(), *context.subsystem));
        result.ok = run.ok;
        if (fsm::GeneratedC* code = store.get<fsm::GeneratedC>()) {
            result.files.push_back({code->header_name, std::move(code->header)});
            result.files.push_back({code->source_name, std::move(code->source)});
        }
        return result;
    }
};

/// Fallback branch: multithreaded C++ from the same model.
class CppThreadsStrategy final : public Strategy {
public:
    std::string_view name() const override { return "cpp-threads"; }
    bool handles(const Subsystem& s) const override {
        return s.machine == nullptr && !s.threads.empty();
    }

    StrategyResult generate(const StrategyContext& context,
                            diag::DiagnosticEngine& engine,
                            FlowTrace* trace) override {
        StrategyResult result;
        result.strategy = std::string(name());
        result.subsystem = context.subsystem->name;

        ArtifactStore store;
        store.put(SourceModel{context.model});
        PassManager pm("cpp-threads");
        apply_resilience(pm, context);

        const std::size_t iterations = context.iterations;
        pm.add(Pass("codegen.threads",
                    [iterations](PassContext& ctx) {
                        const uml::Model& model = *ctx.in<SourceModel>().model;
                        codegen::CppProgram& program =
                            ctx.out(codegen::generate_cpp_threads(
                                model, iterations, ctx.diags()));
                        ctx.count("threads", program.thread_count);
                        ctx.count("queues", program.queue_count);
                        ctx.count("bytes", program.source.size());
                    })
               .reads<SourceModel>()
               .writes<codegen::CppProgram>());

        auto run = pm.run(store, engine, trace,
                          group_label(name(), *context.subsystem));
        result.ok = run.ok;
        if (codegen::CppProgram* program = store.get<codegen::CppProgram>())
            result.files.push_back(
                {program->file_name, std::move(program->source)});
        return result;
    }
};

/// §3 retargeting: the KPN mapping, emitted as a network summary.
class KpnStrategy final : public Strategy {
public:
    std::string_view name() const override { return "kpn"; }
    bool handles(const Subsystem& s) const override {
        return s.machine == nullptr && !s.threads.empty();
    }

    StrategyResult generate(const StrategyContext& context,
                            diag::DiagnosticEngine& engine,
                            FlowTrace* trace) override {
        StrategyResult result;
        result.strategy = std::string(name());
        result.subsystem = context.subsystem->name;

        ArtifactStore store;
        store.put(SourceModel{context.model});
        PassManager pm("kpn");
        apply_resilience(pm, context);

        pm.add(Pass("kpn.map",
                    [](PassContext& ctx) {
                        const uml::Model& model = *ctx.in<SourceModel>().model;
                        kpn::KpnMappingOutput& out =
                            ctx.out(kpn::map_to_kpn(model));
                        ctx.count("processes", out.network.processes().size());
                        ctx.count("channels", out.network.channels().size());
                        ctx.count("initial-tokens", out.initial_tokens_inserted);
                        for (const std::string& w : out.warnings)
                            ctx.diags().warning(diag::codes::kMapRule,
                                                "kpn: " + w);
                    })
               .reads<SourceModel>()
               .writes<kpn::KpnMappingOutput>());

        // Watchdogged dry-run of the mapped network — the cmd_kpn check as
        // a pass, with the firing budget configurable from `uhcg generate`
        // (0 keeps the legacy formula) and surfaced as a trace counter. A
        // read-blocked network fails the strategy (quarantining only the
        // KPN branch); a tripped watchdog is a transient diagnostic the
        // RetryPolicy may re-run.
        const std::size_t iterations = context.iterations;
        const std::size_t firings = context.kpn_firings;
        pm.add(Pass("kpn.validate",
                    [iterations, firings](PassContext& ctx) {
                        const kpn::KpnMappingOutput& out =
                            ctx.in<kpn::KpnMappingOutput>();
                        kpn::KernelRegistry registry;
                        for (const auto& p : out.network.processes())
                            registry.register_kernel(
                                p->name(), [](auto, auto outputs, auto&) {
                                    for (double& v : outputs) v = 0.0;
                                });
                        kpn::Executor exec(out.network, registry);
                        kpn::WatchdogBudget budget;
                        budget.max_firings =
                            firings ? firings
                                    : iterations *
                                              out.network.processes().size() *
                                              4 +
                                          1000;
                        ctx.count("budget-firings", budget.max_firings);
                        kpn::KpnResult r =
                            exec.run(iterations, ctx.diags(), budget);
                        ctx.count("rounds", r.rounds);
                        ctx.count("firings", r.firings);
                        ctx.count("max-queue-depth", r.max_queue_depth);
                        if (r.deadlocked || r.budget_exhausted) ctx.fail();
                    })
               .reads<kpn::KpnMappingOutput>());

        auto run = pm.run(store, engine, trace,
                          group_label(name(), *context.subsystem));
        result.ok = run.ok;
        if (kpn::KpnMappingOutput* out = store.get<kpn::KpnMappingOutput>()) {
            transform::CodeWriter w;
            w.line("# KPN '" + out->network.name() + "': " +
                   std::to_string(out->network.processes().size()) +
                   " processes, " +
                   std::to_string(out->network.channels().size()) +
                   " channels, " +
                   std::to_string(out->initial_tokens_inserted) +
                   " initial token(s)");
            for (const kpn::ChannelDecl& c : out->network.channels())
                w.line(c.producer->name() + " --" + c.variable + "--> " +
                       c.consumer->name() +
                       (c.initial_tokens ? "  [seeded]" : ""));
            result.files.push_back(
                {transform::sanitize_identifier(context.model->name()) +
                     "_kpn.txt",
                 w.str()});
        }
        return result;
    }
};

}  // namespace

SharedCaam compute_shared_caam(const StrategyContext& context,
                               diag::DiagnosticEngine& engine,
                               FlowTrace* trace) {
    SharedCaam shared;
    const std::size_t first_diag = engine.size();
    ArtifactStore store;
    store.put(SourceModel{context.model});
    PassManager pm("simulink-caam");
    apply_resilience(pm, context);
    register_caam_passes(pm, context.mapper, CaamPipelineMode::Engine);
    register_schedulability_probe(pm, context.sim_steps);
    register_estimate_pass(pm, context.sim_backend);
    auto run = pm.run(store, engine, trace,
                      group_label("simulink-caam", *context.subsystem));
    fill_mapper_report(shared.mapper_report, store, engine, first_diag);
    obs::counter("flow.caam_shared_computed").add(1);
    if (simulink::Model* caam = store.get<simulink::Model>()) {
        shared.caam = std::move(*caam);
        shared.ok = run.ok;
    }
    return shared;
}

StrategyRegistry& StrategyRegistry::add(std::unique_ptr<Strategy> strategy) {
    strategies_.push_back(std::move(strategy));
    return *this;
}

Strategy* StrategyRegistry::find(std::string_view name) {
    for (const auto& s : strategies_)
        if (s->name() == name) return s.get();
    return nullptr;
}

StrategyRegistry StrategyRegistry::with_builtins() {
    StrategyRegistry registry;
    registry.add(std::make_unique<CaamStrategy>())
        .add(std::make_unique<CaamCStrategy>())
        .add(std::make_unique<CaamDotStrategy>())
        .add(std::make_unique<FsmStrategy>())
        .add(std::make_unique<CppThreadsStrategy>())
        .add(std::make_unique<KpnStrategy>());
    return registry;
}

}  // namespace uhcg::flow
