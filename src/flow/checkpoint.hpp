// checkpoint.hpp — durable checkpoints for `uhcg generate --resume`.
//
// Each successfully completed (strategy × subsystem) unit of a generate
// run serializes its generated files to one checkpoint file, keyed by a
// content hash over (serialized model, generation options, strategy,
// subsystem). `--resume` replays matching checkpoints instead of
// re-running the unit: outputs are byte-identical by construction (the
// bytes themselves are replayed) and any input change — model edit,
// different options — changes the key and forces a re-run. Checkpoints
// are written incrementally (one atomic file per completed unit), so a
// killed run resumes from the last completed strategy.
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <string_view>

#include "flow/strategy.hpp"

namespace uhcg::flow {

class CheckpointStore {
public:
    /// Uses (and lazily creates) `dir` for checkpoint files.
    explicit CheckpointStore(std::filesystem::path dir);

    const std::filesystem::path& dir() const { return dir_; }

    /// FNV-1a 64-bit, the repo's standard fingerprint primitive.
    static std::uint64_t fnv1a(std::string_view bytes,
                               std::uint64_t hash = 14695981039346656037ULL);

    /// Content-hash key of one generate unit. Any change to the model
    /// bytes, the options fingerprint, or the routing changes the key.
    static std::string key(std::string_view model_bytes,
                           std::string_view options_fingerprint,
                           std::string_view strategy,
                           std::string_view subsystem);

    /// Loads the checkpoint for `key` into `out` (strategy, subsystem,
    /// files). Returns false when absent, unreadable, or corrupt — a
    /// damaged checkpoint is treated as a miss, never an error.
    bool load(const std::string& key, StrategyResult& out) const;

    /// Serializes a completed unit under `key` (temp file + atomic
    /// rename). Only call for successful results; failed strategies must
    /// re-run on resume.
    void save(const std::string& key, const StrategyResult& result) const;

    /// Removes the checkpoint for `key` if present (used when a unit that
    /// previously succeeded fails on a re-run with the same inputs).
    void drop(const std::string& key) const;

    /// Garbage collection for the checkpoint directory. Without it, every
    /// model edit leaves its stale keyed entries behind forever.
    struct PruneOptions {
        /// Entries whose file is older than this are removed; 0 = no age
        /// bound.
        std::uint64_t max_age_seconds = 0;
        /// Keep at most this many entries (newest win); 0 = no count
        /// bound.
        std::size_t max_count = 0;
    };
    struct PruneResult {
        std::size_t scanned = 0;
        std::size_t pruned = 0;
    };

    /// Applies both bounds (age first, then count, oldest-first with the
    /// file name as a deterministic tie-break). Unreadable entries are
    /// skipped, never fatal. Each removal bumps the
    /// `flow.checkpoints_pruned` counter.
    PruneResult prune(const PruneOptions& options) const;

private:
    std::filesystem::path path_for(const std::string& key) const;
    std::filesystem::path dir_;
};

}  // namespace uhcg::flow
