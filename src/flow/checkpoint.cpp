#include "flow/checkpoint.hpp"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <sstream>
#include <vector>

#include "flow/txout.hpp"
#include "obs/obs.hpp"

namespace uhcg::flow {

namespace fs = std::filesystem;

namespace {

constexpr const char* kSchema = "uhcg-flow-checkpoint-v1";

// One length-prefixed field: "<tag> <byte-count>\n<bytes>\n". Byte counts
// make the format safe for arbitrary generated contents (newlines, quotes).
void put_field(std::ostringstream& out, const char* tag,
               std::string_view bytes) {
    out << tag << ' ' << bytes.size() << '\n' << bytes << '\n';
}

bool get_field(std::istream& in, const std::string& expected_tag,
               std::string& bytes) {
    std::string tag;
    std::size_t size = 0;
    if (!(in >> tag >> size) || tag != expected_tag) return false;
    if (in.get() != '\n') return false;
    bytes.resize(size);
    if (size && !in.read(bytes.data(), static_cast<std::streamsize>(size)))
        return false;
    return in.get() == '\n';
}

}  // namespace

CheckpointStore::CheckpointStore(fs::path dir) : dir_(std::move(dir)) {
    std::error_code ec;
    fs::create_directories(dir_, ec);
    // Failure surfaces on save(); load() just misses.
}

std::uint64_t CheckpointStore::fnv1a(std::string_view bytes,
                                     std::uint64_t hash) {
    for (unsigned char c : bytes) {
        hash ^= c;
        hash *= 1099511628211ULL;
    }
    return hash;
}

std::string CheckpointStore::key(std::string_view model_bytes,
                                 std::string_view options_fingerprint,
                                 std::string_view strategy,
                                 std::string_view subsystem) {
    // Chain the fields through one running hash, separated so that the
    // concatenation of two fields can't collide with a shifted split.
    std::uint64_t h = fnv1a(model_bytes);
    h = fnv1a("|", h);
    h = fnv1a(options_fingerprint, h);
    h = fnv1a("|", h);
    h = fnv1a(strategy, h);
    h = fnv1a("|", h);
    h = fnv1a(subsystem, h);
    std::ostringstream out;
    out << std::hex << h;
    return std::string(strategy) + "-" + std::string(subsystem) + "-" +
           out.str();
}

fs::path CheckpointStore::path_for(const std::string& key) const {
    return dir_ / (key + ".ckpt");
}

bool CheckpointStore::load(const std::string& key, StrategyResult& out) const {
    std::ifstream in(path_for(key), std::ios::binary);
    if (!in) return false;
    std::string schema;
    if (!std::getline(in, schema) || schema != kSchema) return false;

    StrategyResult loaded;
    loaded.ok = true;
    std::string count_text;
    if (!get_field(in, "strategy", loaded.strategy)) return false;
    if (!get_field(in, "subsystem", loaded.subsystem)) return false;
    if (!get_field(in, "files", count_text)) return false;
    std::size_t count = 0;
    try {
        count = std::stoul(count_text);
    } catch (...) {
        return false;
    }
    for (std::size_t i = 0; i < count; ++i) {
        GeneratedFile file;
        if (!get_field(in, "name", file.name)) return false;
        if (!get_field(in, "data", file.contents)) return false;
        loaded.files.push_back(std::move(file));
    }
    out = std::move(loaded);
    return true;
}

void CheckpointStore::save(const std::string& key,
                           const StrategyResult& result) const {
    std::ostringstream out;
    out << kSchema << '\n';
    put_field(out, "strategy", result.strategy);
    put_field(out, "subsystem", result.subsystem);
    put_field(out, "files", std::to_string(result.files.size()));
    for (const GeneratedFile& file : result.files) {
        put_field(out, "name", file.name);
        put_field(out, "data", file.contents);
    }
    write_file_atomic(path_for(key), out.str());
}

void CheckpointStore::drop(const std::string& key) const {
    std::error_code ec;
    fs::remove(path_for(key), ec);
}

CheckpointStore::PruneResult CheckpointStore::prune(
    const PruneOptions& options) const {
    PruneResult result;
    if (!options.max_age_seconds && !options.max_count) return result;

    struct Entry {
        fs::file_time_type mtime;
        fs::path path;
    };
    std::vector<Entry> entries;
    std::error_code ec;
    for (const auto& item : fs::directory_iterator(dir_, ec)) {
        if (ec) break;
        if (!item.is_regular_file(ec) || item.path().extension() != ".ckpt")
            continue;
        fs::file_time_type mtime = fs::last_write_time(item.path(), ec);
        if (ec) continue;  // vanished or unreadable — someone else's problem
        entries.push_back({mtime, item.path()});
    }
    result.scanned = entries.size();

    // Oldest first; the file name breaks mtime ties so two runs over the
    // same directory always pick the same victims.
    std::sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
        if (a.mtime != b.mtime) return a.mtime < b.mtime;
        return a.path.filename() < b.path.filename();
    });

    std::size_t victims = 0;
    if (options.max_age_seconds) {
        const auto cutoff = fs::file_time_type::clock::now() -
                            std::chrono::seconds(options.max_age_seconds);
        while (victims < entries.size() && entries[victims].mtime < cutoff)
            ++victims;
    }
    if (options.max_count && entries.size() - victims > options.max_count)
        victims = entries.size() - options.max_count;

    static obs::Counter& pruned_counter = obs::counter("flow.checkpoints_pruned");
    for (std::size_t i = 0; i < victims; ++i) {
        std::error_code remove_ec;
        if (fs::remove(entries[i].path, remove_ec) && !remove_ec) {
            ++result.pruned;
            pruned_counter.add(1);
        }
    }
    return result;
}

}  // namespace uhcg::flow
