#include "flow/generate.hpp"

#include <algorithm>
#include <sstream>

#include "core/allocation.hpp"
#include "flow/caam_passes.hpp"
#include "flow/checkpoint.hpp"
#include "obs/obs.hpp"

namespace uhcg::flow {

template <>
struct ArtifactTraits<PartitionReport> {
    static constexpr const char* name = "flow.partition-report";
};

namespace {

std::string join(const std::vector<std::string>& names) {
    std::string out;
    for (const std::string& n : names) out += (out.empty() ? "" : "+") + n;
    return out;
}

/// Options fingerprint for checkpoint keys: every knob that changes what a
/// strategy emits. Computed after the auto-allocation fallback so the key
/// reflects the options actually in force.
std::string options_fingerprint(const GenerateOptions& options) {
    std::ostringstream out;
    out << "auto=" << options.mapper.auto_allocate
        << "|maxp=" << options.mapper.max_processors
        << "|chan=" << options.mapper.infer_channels
        << "|delay=" << options.mapper.insert_delays
        << "|wf=" << options.mapper.enforce_wellformedness
        << "|iters=" << options.iterations
        << "|kpnf=" << options.resilience.kpn_firings
        << "|sims=" << options.resilience.sim_steps
        << "|simbk=" << options.sim_backend;
    return out.str();
}

/// Slice the Error+ diagnostics reported since `first` into a quarantine
/// record: the first message becomes the reason, codes dedupe in order.
QuarantineRecord quarantine_record(const std::string& strategy,
                                   const std::string& subsystem,
                                   const diag::DiagnosticEngine& engine,
                                   std::size_t first) {
    QuarantineRecord record;
    record.strategy = strategy;
    record.subsystem = subsystem;
    for (std::size_t i = first; i < engine.size(); ++i) {
        const diag::Diagnostic& d = engine.diagnostics()[i];
        if (d.severity < diag::Severity::Error) continue;
        if (record.reason.empty()) record.reason = d.message;
        if (std::find(record.error_codes.begin(), record.error_codes.end(),
                      d.code) == record.error_codes.end())
            record.error_codes.push_back(d.code);
    }
    if (record.reason.empty()) record.reason = "strategy failed";
    return record;
}

}  // namespace

std::string_view to_string(GenerateStatus status) {
    switch (status) {
        case GenerateStatus::Ok: return "ok";
        case GenerateStatus::Partial: return "partial";
        case GenerateStatus::Failed: return "failed";
    }
    return "failed";
}

GenerateResult generate(const uml::Model& model, const GenerateOptions& options_in,
                        diag::DiagnosticEngine& engine, FlowTrace* trace) {
    obs::ObsSpan generate_span("flow.generate");
    GenerateResult result;
    if (trace) trace->set_model(model.name());

    // One-shot surface: when the model ships no deployment diagram the
    // only viable allocation is the §4.2.3 automatic one — switch to it
    // instead of failing the CAAM branch.
    GenerateOptions options = options_in;
    if (!options.mapper.auto_allocate && model.deployment_or_null() == nullptr) {
        options.mapper.auto_allocate = true;
        engine.note(diag::codes::kFlowStrategy,
                    "model '" + model.name() +
                        "' has no deployment diagram; using automatic "
                        "allocation (§4.2.3)");
    }

    // Stage 1: the partitioner, run as a pass so it lands in the trace.
    ArtifactStore store;
    store.put(SourceModel{&model});
    PassManager pm("flow");
    pm.set_retry_policy(options.resilience.retry);
    pm.set_pass_budget(options.resilience.pass_budget);
    pm.add(Pass("flow.partition",
                [](PassContext& ctx) {
                    const uml::Model& m = *ctx.in<SourceModel>().model;
                    core::CommModel comm = core::analyze_communication(m);
                    PartitionReport& report = ctx.out(partition(m, comm));
                    // Mine the task graph here too: its shape lands in the
                    // trace for every run, including deployment-diagram
                    // models that never take the auto-allocation path.
                    taskgraph::TaskGraph graph = core::build_task_graph(m, comm);
                    ctx.count("taskgraph-tasks", graph.task_count());
                    ctx.count("taskgraph-edges", graph.edge_count());
                    ctx.count("subsystems", report.subsystems.size());
                    ctx.count("feedback-cycles", report.feedback_cycles);
                    for (const Subsystem& s : report.subsystems)
                        if (s.kind == SubsystemKind::ControlFlow)
                            ctx.count("control-flow");
                        else
                            ctx.count("dataflow");
                })
           .reads<SourceModel>()
           .writes<PartitionReport>());
    auto run = pm.run(store, engine, trace, "partition");
    if (!run.ok || !store.has<PartitionReport>()) {
        result.ok = false;
        result.status = GenerateStatus::Failed;
        return result;
    }
    result.partitions = std::move(store.require<PartitionReport>());

    // Checkpointing needs the model's serialized bytes for a content key.
    const ResilienceOptions& res = options.resilience;
    const bool checkpointing =
        !res.checkpoint_dir.empty() && !res.model_bytes.empty();
    std::unique_ptr<CheckpointStore> checkpoints;
    if (checkpointing)
        checkpoints = std::make_unique<CheckpointStore>(res.checkpoint_dir);
    const std::string options_fp = options_fingerprint(options);

    // Stage 2: dispatch each subsystem to the strategies that handle it.
    // Every unit runs inside a fault guard: a failure quarantines only
    // that (strategy × subsystem) pair, and the loop continues.
    StrategyRegistry registry = StrategyRegistry::with_builtins();
    for (const Subsystem& subsystem : result.partitions.subsystems) {
        std::vector<std::string> wanted;
        if (subsystem.machine) {
            wanted.push_back("fsm-c");
        } else {
            wanted.push_back("simulink-caam");
            if (options.fallback_cpp) wanted.push_back("cpp-threads");
            if (options.with_kpn) wanted.push_back("kpn");
        }

        std::vector<std::string> dispatched;
        for (const std::string& name : wanted) {
            Strategy* strategy = registry.find(name);
            if (!strategy || !strategy->handles(subsystem)) {
                engine.note(diag::codes::kFlowStrategy,
                            "strategy '" + name + "' does not handle "
                            "subsystem '" + subsystem.name + "'");
                continue;
            }
            dispatched.push_back(name);

            std::string key;
            if (checkpointing)
                key = CheckpointStore::key(res.model_bytes, options_fp, name,
                                           subsystem.name);
            if (checkpointing && res.resume) {
                StrategyResult cached;
                if (checkpoints->load(key, cached)) {
                    cached.cached = true;
                    engine.note(diag::codes::kFlowCheckpoint,
                                "strategy '" + name + "' for subsystem '" +
                                    subsystem.name +
                                    "' replayed from checkpoint");
                    if (trace)
                        for (const GeneratedFile& f : cached.files)
                            trace->add_output(
                                {f.name, name, f.contents.size()});
                    result.results.push_back(std::move(cached));
                    continue;
                }
            }

            StrategyContext context;
            context.model = &model;
            context.subsystem = &subsystem;
            context.mapper = options.mapper;
            context.iterations = options.iterations;
            context.retry = res.retry;
            context.pass_budget = res.pass_budget;
            context.kpn_firings = res.kpn_firings;
            context.sim_steps = res.sim_steps;
            context.sim_backend = options.sim_backend;

            const std::size_t diags_before = engine.size();
            StrategyResult sr;
            obs::ObsSpan unit_span("flow.strategy:" + name, "flow");
            try {
                sr = strategy->generate(context, engine, trace);
            } catch (const std::exception& e) {
                // Strategy code outside any pass body escaped; contain it
                // to this unit like any other failure.
                engine.report(diag::Severity::Fatal,
                              diag::codes::kFlowQuarantine,
                              "strategy '" + name + "' raised: " + e.what());
                sr.strategy = name;
                sr.subsystem = subsystem.name;
                sr.ok = false;
                sr.files.clear();
            }

            if (!sr.ok) {
                obs::counter("flow.quarantined").add(1);
                result.quarantined.push_back(quarantine_record(
                    name, subsystem.name, engine, diags_before));
                engine.warning(diag::codes::kFlowQuarantine,
                               "strategy '" + name + "' quarantined for "
                               "subsystem '" + subsystem.name +
                               "'; other subsystems continue");
                // A failed unit never ships files or a checkpoint.
                sr.files.clear();
                if (checkpointing) checkpoints->drop(key);
            } else if (checkpointing) {
                checkpoints->save(key, sr);
            }

            if (trace)
                for (const GeneratedFile& f : sr.files)
                    trace->add_output({f.name, name, f.contents.size()});
            result.results.push_back(std::move(sr));
        }

        if (trace) {
            TracePartition tp;
            tp.name = subsystem.name;
            tp.kind = std::string(to_string(subsystem.kind));
            tp.strategy = join(dispatched);
            if (subsystem.machine) {
                tp.units.push_back(subsystem.machine->name());
            } else {
                for (const uml::ObjectInstance* t : subsystem.threads)
                    tp.units.push_back(t->name());
            }
            trace->add_partition(std::move(tp));
        }
        if (dispatched.empty()) {
            engine.warning(diag::codes::kFlowStrategy,
                           "no registered strategy handles subsystem '" +
                               subsystem.name + "'");
            QuarantineRecord record;
            record.strategy = "none";
            record.subsystem = subsystem.name;
            record.reason = "no registered strategy handles this subsystem";
            record.error_codes.push_back(diag::codes::kFlowStrategy);
            result.quarantined.push_back(std::move(record));
        }
    }

    const bool any_ok = std::any_of(
        result.results.begin(), result.results.end(),
        [](const StrategyResult& r) { return r.ok; });
    if (result.quarantined.empty())
        result.status = GenerateStatus::Ok;
    else if (any_ok)
        result.status = GenerateStatus::Partial;
    else
        result.status = GenerateStatus::Failed;
    result.ok = result.status == GenerateStatus::Ok;
    return result;
}

std::string to_manifest_json(const GenerateResult& result) {
    std::ostringstream out;
    out << "{\n  \"schema\": \"uhcg-flow-manifest-v1\",\n";
    out << "  \"status\": \"" << to_string(result.status) << "\",\n";
    out << "  \"strategies\": [";
    for (std::size_t i = 0; i < result.results.size(); ++i) {
        const StrategyResult& r = result.results[i];
        out << (i ? ",\n    " : "\n    ");
        out << "{\"strategy\": \"" << diag::json_escape(r.strategy)
            << "\", \"subsystem\": \"" << diag::json_escape(r.subsystem)
            << "\", \"ok\": " << (r.ok ? "true" : "false")
            << ", \"cached\": " << (r.cached ? "true" : "false")
            << ", \"files\": [";
        for (std::size_t f = 0; f < r.files.size(); ++f) {
            if (f) out << ", ";
            out << "{\"name\": \"" << diag::json_escape(r.files[f].name)
                << "\", \"bytes\": " << r.files[f].contents.size() << '}';
        }
        out << "]}";
    }
    out << (result.results.empty() ? "]" : "\n  ]") << ",\n";
    out << "  \"quarantined\": [";
    for (std::size_t i = 0; i < result.quarantined.size(); ++i) {
        const QuarantineRecord& q = result.quarantined[i];
        out << (i ? ",\n    " : "\n    ");
        out << "{\"strategy\": \"" << diag::json_escape(q.strategy)
            << "\", \"subsystem\": \"" << diag::json_escape(q.subsystem)
            << "\", \"reason\": \"" << diag::json_escape(q.reason)
            << "\", \"error_codes\": [";
        for (std::size_t c = 0; c < q.error_codes.size(); ++c) {
            if (c) out << ", ";
            out << '"' << diag::json_escape(q.error_codes[c]) << '"';
        }
        out << "]}";
    }
    out << (result.quarantined.empty() ? "]" : "\n  ]") << "\n}";
    return out.str();
}

}  // namespace uhcg::flow
