#include "flow/generate.hpp"

#include "flow/caam_passes.hpp"

namespace uhcg::flow {

template <>
struct ArtifactTraits<PartitionReport> {
    static constexpr const char* name = "flow.partition-report";
};

namespace {

std::string join(const std::vector<std::string>& names) {
    std::string out;
    for (const std::string& n : names) out += (out.empty() ? "" : "+") + n;
    return out;
}

}  // namespace

GenerateResult generate(const uml::Model& model, const GenerateOptions& options_in,
                        diag::DiagnosticEngine& engine, FlowTrace* trace) {
    GenerateResult result;
    if (trace) trace->set_model(model.name());

    // One-shot surface: when the model ships no deployment diagram the
    // only viable allocation is the §4.2.3 automatic one — switch to it
    // instead of failing the CAAM branch.
    GenerateOptions options = options_in;
    if (!options.mapper.auto_allocate && model.deployment_or_null() == nullptr) {
        options.mapper.auto_allocate = true;
        engine.note(diag::codes::kFlowStrategy,
                    "model '" + model.name() +
                        "' has no deployment diagram; using automatic "
                        "allocation (§4.2.3)");
    }

    // Stage 1: the partitioner, run as a pass so it lands in the trace.
    ArtifactStore store;
    store.put(SourceModel{&model});
    PassManager pm("flow");
    pm.add(Pass("flow.partition",
                [](PassContext& ctx) {
                    const uml::Model& m = *ctx.in<SourceModel>().model;
                    PartitionReport& report = ctx.out(partition(m));
                    ctx.count("subsystems", report.subsystems.size());
                    ctx.count("feedback-cycles", report.feedback_cycles);
                    for (const Subsystem& s : report.subsystems)
                        if (s.kind == SubsystemKind::ControlFlow)
                            ctx.count("control-flow");
                        else
                            ctx.count("dataflow");
                })
           .reads<SourceModel>()
           .writes<PartitionReport>());
    auto run = pm.run(store, engine, trace, "partition");
    if (!run.ok || !store.has<PartitionReport>()) {
        result.ok = false;
        return result;
    }
    result.partitions = std::move(store.require<PartitionReport>());

    // Stage 2: dispatch each subsystem to the strategies that handle it.
    StrategyRegistry registry = StrategyRegistry::with_builtins();
    for (const Subsystem& subsystem : result.partitions.subsystems) {
        std::vector<std::string> wanted;
        if (subsystem.machine) {
            wanted.push_back("fsm-c");
        } else {
            wanted.push_back("simulink-caam");
            if (options.fallback_cpp) wanted.push_back("cpp-threads");
            if (options.with_kpn) wanted.push_back("kpn");
        }

        std::vector<std::string> dispatched;
        for (const std::string& name : wanted) {
            Strategy* strategy = registry.find(name);
            if (!strategy || !strategy->handles(subsystem)) {
                engine.note(diag::codes::kFlowStrategy,
                            "strategy '" + name + "' does not handle "
                            "subsystem '" + subsystem.name + "'");
                continue;
            }
            dispatched.push_back(name);

            StrategyContext context;
            context.model = &model;
            context.subsystem = &subsystem;
            context.mapper = options.mapper;
            context.iterations = options.iterations;
            StrategyResult sr = strategy->generate(context, engine, trace);
            if (!sr.ok) result.ok = false;
            if (trace)
                for (const GeneratedFile& f : sr.files)
                    trace->add_output({f.name, name, f.contents.size()});
            result.results.push_back(std::move(sr));
        }

        if (trace) {
            TracePartition tp;
            tp.name = subsystem.name;
            tp.kind = std::string(to_string(subsystem.kind));
            tp.strategy = join(dispatched);
            if (subsystem.machine) {
                tp.units.push_back(subsystem.machine->name());
            } else {
                for (const uml::ObjectInstance* t : subsystem.threads)
                    tp.units.push_back(t->name());
            }
            trace->add_partition(std::move(tp));
        }
        if (dispatched.empty()) {
            engine.warning(diag::codes::kFlowStrategy,
                           "no registered strategy handles subsystem '" +
                               subsystem.name + "'");
            result.ok = false;
        }
    }
    return result;
}

}  // namespace uhcg::flow
