#include "flow/generate.hpp"

#include <algorithm>
#include <sstream>

#include "core/allocation.hpp"
#include "core/parallel.hpp"
#include "flow/caam_passes.hpp"
#include "flow/checkpoint.hpp"
#include "obs/obs.hpp"

namespace uhcg::flow {

template <>
struct ArtifactTraits<PartitionReport> {
    static constexpr const char* name = "flow.partition-report";
};

namespace {

std::string join(const std::vector<std::string>& names) {
    std::string out;
    for (const std::string& n : names) out += (out.empty() ? "" : "+") + n;
    return out;
}

/// Options fingerprint for checkpoint keys: every knob that changes what a
/// strategy emits. Computed after the auto-allocation fallback so the key
/// reflects the options actually in force.
std::string options_fingerprint(const GenerateOptions& options) {
    std::ostringstream out;
    out << "auto=" << options.mapper.auto_allocate
        << "|maxp=" << options.mapper.max_processors
        << "|chan=" << options.mapper.infer_channels
        << "|delay=" << options.mapper.insert_delays
        << "|wf=" << options.mapper.enforce_wellformedness
        << "|iters=" << options.iterations
        << "|caamc=" << options.caam_c
        << "|caamdot=" << options.caam_dot
        << "|kpnf=" << options.resilience.kpn_firings
        << "|sims=" << options.resilience.sim_steps
        << "|simbk=" << options.sim_backend;
    return out.str();
}

/// Slice the Error+ diagnostics reported since `first` into a quarantine
/// record: the first message becomes the reason, codes dedupe in order.
QuarantineRecord quarantine_record(const std::string& strategy,
                                   const std::string& subsystem,
                                   const diag::DiagnosticEngine& engine,
                                   std::size_t first) {
    QuarantineRecord record;
    record.strategy = strategy;
    record.subsystem = subsystem;
    for (std::size_t i = first; i < engine.size(); ++i) {
        const diag::Diagnostic& d = engine.diagnostics()[i];
        if (d.severity < diag::Severity::Error) continue;
        if (record.reason.empty()) record.reason = d.message;
        if (std::find(record.error_codes.begin(), record.error_codes.end(),
                      d.code) == record.error_codes.end())
            record.error_codes.push_back(d.code);
    }
    if (record.reason.empty()) record.reason = "strategy failed";
    return record;
}

}  // namespace

std::string_view to_string(GenerateStatus status) {
    switch (status) {
        case GenerateStatus::Ok: return "ok";
        case GenerateStatus::Partial: return "partial";
        case GenerateStatus::Failed: return "failed";
    }
    return "failed";
}

GenerateResult generate(const uml::Model& model, const GenerateOptions& options_in,
                        diag::DiagnosticEngine& engine, FlowTrace* trace) {
    obs::ObsSpan generate_span("flow.generate");
    GenerateResult result;
    if (trace) trace->set_model(model.name());

    // One-shot surface: when the model ships no deployment diagram the
    // only viable allocation is the §4.2.3 automatic one — switch to it
    // instead of failing the CAAM branch.
    GenerateOptions options = options_in;
    if (!options.mapper.auto_allocate && model.deployment_or_null() == nullptr) {
        options.mapper.auto_allocate = true;
        engine.note(diag::codes::kFlowStrategy,
                    "model '" + model.name() +
                        "' has no deployment diagram; using automatic "
                        "allocation (§4.2.3)");
    }

    // Stage 1: the partitioner, run as a pass so it lands in the trace.
    ArtifactStore store;
    store.put(SourceModel{&model});
    PassManager pm("flow");
    pm.set_retry_policy(options.resilience.retry);
    pm.set_pass_budget(options.resilience.pass_budget);
    pm.add(Pass("flow.partition",
                [](PassContext& ctx) {
                    const uml::Model& m = *ctx.in<SourceModel>().model;
                    core::CommModel comm = core::analyze_communication(m);
                    PartitionReport& report = ctx.out(partition(m, comm));
                    // Mine the task graph here too: its shape lands in the
                    // trace for every run, including deployment-diagram
                    // models that never take the auto-allocation path.
                    taskgraph::TaskGraph graph = core::build_task_graph(m, comm);
                    ctx.count("taskgraph-tasks", graph.task_count());
                    ctx.count("taskgraph-edges", graph.edge_count());
                    ctx.count("subsystems", report.subsystems.size());
                    ctx.count("feedback-cycles", report.feedback_cycles);
                    for (const Subsystem& s : report.subsystems)
                        if (s.kind == SubsystemKind::ControlFlow)
                            ctx.count("control-flow");
                        else
                            ctx.count("dataflow");
                })
           .reads<SourceModel>()
           .writes<PartitionReport>());
    auto run = pm.run(store, engine, trace, "partition");
    if (!run.ok || !store.has<PartitionReport>()) {
        result.ok = false;
        result.status = GenerateStatus::Failed;
        return result;
    }
    result.partitions = std::move(store.require<PartitionReport>());

    // Checkpointing needs the model's serialized bytes for a content key.
    const ResilienceOptions& res = options.resilience;
    const bool checkpointing =
        !res.checkpoint_dir.empty() && !res.model_bytes.empty();
    std::unique_ptr<CheckpointStore> checkpoints;
    if (checkpointing)
        checkpoints = std::make_unique<CheckpointStore>(res.checkpoint_dir);
    const std::string options_fp = options_fingerprint(options);

    // Stage 2: dispatch each (strategy × subsystem) unit, optionally
    // across the core::parallel pool (--gen-jobs). The unit list is fixed
    // up front in canonical order (subsystem order × wanted order);
    // workers fill per-unit slots through private DiagnosticEngines and
    // FlowTraces, and a serial fold afterwards merges everything back in
    // canonical order — so the output tree, manifest and diagnostic
    // stream are byte-identical for every job count. Each dataflow
    // subsystem's CAAM mapping is computed once (compute_shared_caam) and
    // consumed read-only by all three caam-family emitters.
    constexpr std::size_t kNoPrep = static_cast<std::size_t>(-1);
    struct PrepState {
        const Subsystem* subsystem = nullptr;
        SharedCaam shared;
        diag::DiagnosticEngine engine;
        FlowTrace trace;
    };
    struct UnitState {
        const Subsystem* subsystem = nullptr;
        std::string name;
        Strategy* strategy = nullptr;
        std::string key;
        /// Index into `preps` for live caam-family units; kNoPrep else.
        std::size_t prep = static_cast<std::size_t>(-1);
        bool cached = false;
        StrategyResult sr;
        diag::DiagnosticEngine engine;
        FlowTrace trace;
    };

    StrategyRegistry registry = StrategyRegistry::with_builtins();
    std::vector<PrepState> preps;
    std::vector<UnitState> units;

    // Serial planning pass: wanted lists, checkpoint replay, shared-prep
    // assignment, trace partitions. Everything order-sensitive that is
    // cheap stays on the calling thread.
    for (const Subsystem& subsystem : result.partitions.subsystems) {
        std::vector<std::string> wanted;
        if (subsystem.machine) {
            wanted.push_back("fsm-c");
        } else {
            wanted.push_back("simulink-caam");
            if (options.caam_c) wanted.push_back("caam-c");
            if (options.caam_dot) wanted.push_back("caam-dot");
            if (options.fallback_cpp) wanted.push_back("cpp-threads");
            if (options.with_kpn) wanted.push_back("kpn");
        }

        std::vector<std::string> dispatched;
        std::size_t prep_index = kNoPrep;
        for (const std::string& name : wanted) {
            Strategy* strategy = registry.find(name);
            if (!strategy || !strategy->handles(subsystem)) {
                engine.note(diag::codes::kFlowStrategy,
                            "strategy '" + name + "' does not handle "
                            "subsystem '" + subsystem.name + "'");
                continue;
            }
            dispatched.push_back(name);

            UnitState unit;
            unit.subsystem = &subsystem;
            unit.name = name;
            unit.strategy = strategy;
            if (checkpointing)
                unit.key = CheckpointStore::key(res.model_bytes, options_fp,
                                                name, subsystem.name);
            if (checkpointing && res.resume) {
                StrategyResult cached;
                if (checkpoints->load(unit.key, cached)) {
                    cached.cached = true;
                    unit.cached = true;
                    unit.sr = std::move(cached);
                    unit.engine.note(diag::codes::kFlowCheckpoint,
                                     "strategy '" + name +
                                         "' for subsystem '" +
                                         subsystem.name +
                                         "' replayed from checkpoint");
                }
            }
            const bool caam_family = name == "simulink-caam" ||
                                     name == "caam-c" || name == "caam-dot";
            if (!unit.cached && caam_family) {
                if (prep_index == kNoPrep) {
                    prep_index = preps.size();
                    preps.emplace_back();
                    preps.back().subsystem = &subsystem;
                }
                unit.prep = prep_index;
            }
            units.push_back(std::move(unit));
        }

        if (trace) {
            TracePartition tp;
            tp.name = subsystem.name;
            tp.kind = std::string(to_string(subsystem.kind));
            tp.strategy = join(dispatched);
            if (subsystem.machine) {
                tp.units.push_back(subsystem.machine->name());
            } else {
                for (const uml::ObjectInstance* t : subsystem.threads)
                    tp.units.push_back(t->name());
            }
            trace->add_partition(std::move(tp));
        }
        if (dispatched.empty()) {
            engine.warning(diag::codes::kFlowStrategy,
                           "no registered strategy handles subsystem '" +
                               subsystem.name + "'");
            QuarantineRecord record;
            record.strategy = "none";
            record.subsystem = subsystem.name;
            record.reason = "no registered strategy handles this subsystem";
            record.error_codes.push_back(diag::codes::kFlowStrategy);
            result.quarantined.push_back(std::move(record));
        }
    }

    auto make_context = [&](const Subsystem& subsystem) {
        StrategyContext context;
        context.model = &model;
        context.subsystem = &subsystem;
        context.mapper = options.mapper;
        context.iterations = options.iterations;
        context.retry = res.retry;
        context.pass_budget = res.pass_budget;
        context.kpn_firings = res.kpn_firings;
        context.sim_steps = res.sim_steps;
        context.sim_backend = options.sim_backend;
        return context;
    };

    auto run_unit = [&](UnitState& unit) {
        StrategyContext context = make_context(*unit.subsystem);
        if (unit.prep != kNoPrep)
            context.shared_caam = &preps[unit.prep].shared;
        obs::ObsSpan unit_span("flow.strategy:" + unit.name, "flow");
        FlowTrace* unit_trace = trace ? &unit.trace : nullptr;
        try {
            unit.sr = unit.strategy->generate(context, unit.engine,
                                              unit_trace);
        } catch (const std::exception& e) {
            // Strategy code outside any pass body escaped; contain it to
            // this unit like any other failure.
            unit.engine.report(diag::Severity::Fatal,
                               diag::codes::kFlowQuarantine,
                               "strategy '" + unit.name +
                                   "' raised: " + e.what());
            unit.sr.strategy = unit.name;
            unit.sr.subsystem = unit.subsystem->name;
            unit.sr.ok = false;
            unit.sr.files.clear();
        }
    };

    // Wave 1: every shared CAAM prep plus every live non-caam unit.
    // Wave 2: the caam-family emitters, which read the preps built in
    // wave 1. The fault guard keeps worker exceptions inside their unit,
    // so parallel_for's own rethrow path stays cold.
    std::vector<std::size_t> emitters;
    std::vector<std::size_t> independents;
    for (std::size_t i = 0; i < units.size(); ++i) {
        if (units[i].cached) continue;
        (units[i].prep != kNoPrep ? emitters : independents).push_back(i);
    }
    const std::size_t jobs = options.gen_jobs;
    core::parallel_for(
        preps.size() + independents.size(), jobs, [&](std::size_t i) {
            if (i < preps.size()) {
                PrepState& prep = preps[i];
                StrategyContext context = make_context(*prep.subsystem);
                prep.shared = compute_shared_caam(
                    context, prep.engine, trace ? &prep.trace : nullptr);
            } else {
                run_unit(units[independents[i - preps.size()]]);
            }
        });
    core::parallel_for(emitters.size(), jobs,
                       [&](std::size_t i) { run_unit(units[emitters[i]]); });

    // Serial fold in canonical unit order: a subsystem's prep merges just
    // before its first live caam unit, then each unit's diagnostics,
    // trace entries, outputs, quarantine records and checkpoints.
    std::vector<bool> prep_merged(preps.size(), false);
    for (UnitState& unit : units) {
        if (unit.prep != kNoPrep && !prep_merged[unit.prep]) {
            prep_merged[unit.prep] = true;
            PrepState& prep = preps[unit.prep];
            engine.merge(prep.engine);
            if (trace)
                for (const PassTraceEntry& entry : prep.trace.entries())
                    trace->add(entry);
        }
        engine.merge(unit.engine);
        if (trace)
            for (const PassTraceEntry& entry : unit.trace.entries())
                trace->add(entry);

        StrategyResult sr = std::move(unit.sr);
        if (!unit.cached) {
            if (!sr.ok) {
                obs::counter("flow.quarantined").add(1);
                // A unit downed by its shared prep reported nothing of its
                // own — its quarantine record slices the prep's engine so
                // the reason and codes name the actual mapping failure.
                const bool prep_failed = unit.prep != kNoPrep &&
                                         !preps[unit.prep].shared.ok;
                const diag::DiagnosticEngine& source =
                    (prep_failed && !unit.engine.has_errors())
                        ? preps[unit.prep].engine
                        : unit.engine;
                result.quarantined.push_back(quarantine_record(
                    unit.name, unit.subsystem->name, source, 0));
                engine.warning(diag::codes::kFlowQuarantine,
                               "strategy '" + unit.name +
                                   "' quarantined for subsystem '" +
                                   unit.subsystem->name +
                                   "'; other subsystems continue");
                // A failed unit never ships files or a checkpoint.
                sr.files.clear();
                if (checkpointing) checkpoints->drop(unit.key);
            } else if (checkpointing) {
                checkpoints->save(unit.key, sr);
            }
        }

        if (trace)
            for (const GeneratedFile& f : sr.files)
                trace->add_output({f.name, unit.name, f.contents.size()});
        result.results.push_back(std::move(sr));
    }

    const bool any_ok = std::any_of(
        result.results.begin(), result.results.end(),
        [](const StrategyResult& r) { return r.ok; });
    if (result.quarantined.empty())
        result.status = GenerateStatus::Ok;
    else if (any_ok)
        result.status = GenerateStatus::Partial;
    else
        result.status = GenerateStatus::Failed;
    result.ok = result.status == GenerateStatus::Ok;
    return result;
}

std::string to_manifest_json(const GenerateResult& result) {
    std::ostringstream out;
    out << "{\n  \"schema\": \"uhcg-flow-manifest-v1\",\n";
    out << "  \"status\": \"" << to_string(result.status) << "\",\n";
    out << "  \"strategies\": [";
    for (std::size_t i = 0; i < result.results.size(); ++i) {
        const StrategyResult& r = result.results[i];
        out << (i ? ",\n    " : "\n    ");
        out << "{\"strategy\": \"" << diag::json_escape(r.strategy)
            << "\", \"subsystem\": \"" << diag::json_escape(r.subsystem)
            << "\", \"ok\": " << (r.ok ? "true" : "false")
            << ", \"cached\": " << (r.cached ? "true" : "false")
            << ", \"files\": [";
        for (std::size_t f = 0; f < r.files.size(); ++f) {
            if (f) out << ", ";
            out << "{\"name\": \"" << diag::json_escape(r.files[f].name)
                << "\", \"bytes\": " << r.files[f].contents.size() << '}';
        }
        out << "]}";
    }
    out << (result.results.empty() ? "]" : "\n  ]") << ",\n";
    out << "  \"quarantined\": [";
    for (std::size_t i = 0; i < result.quarantined.size(); ++i) {
        const QuarantineRecord& q = result.quarantined[i];
        out << (i ? ",\n    " : "\n    ");
        out << "{\"strategy\": \"" << diag::json_escape(q.strategy)
            << "\", \"subsystem\": \"" << diag::json_escape(q.subsystem)
            << "\", \"reason\": \"" << diag::json_escape(q.reason)
            << "\", \"error_codes\": [";
        for (std::size_t c = 0; c < q.error_codes.size(); ++c) {
            if (c) out << ", ";
            out << '"' << diag::json_escape(q.error_codes[c]) << '"';
        }
        out << "]}";
    }
    out << (result.quarantined.empty() ? "]" : "\n  ]") << "\n}";
    return out.str();
}

}  // namespace uhcg::flow
