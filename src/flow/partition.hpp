// partition.hpp — the subsystem partitioner: the decision layer of Fig. 1.
//
// "The choice of the most adequate strategy depends on the application
// domain": one UML model may mix dataflow-oriented subsystems (thread
// pipelines exchanging data over Set/Get channels, best served by the
// Simulink CAAM branch) with control-flow-oriented ones (reactive state
// machines, best served by FSM code generation). The partitioner classifies
// the model's subsystems so the strategy dispatcher can route each to its
// generator.
//
// Classification heuristics (each recorded as rationale):
//  * a UML state machine is a control-flow subsystem by construction;
//  * a state machine whose name matches a thread or its classifier binds
//    that thread to the control-flow side (noted, not removed — its data
//    channels still synthesize);
//  * a closed feedback loop in the inter-thread channel graph (the §5.1
//    crane pattern: plant → filter → controller → plant) marks the thread
//    subsystem control-flow-characterised — the CAAM branch still handles
//    it, via §4.2.2 temporal barriers;
//  * a feed-forward thread topology with Set/Get data channels is a
//    dataflow subsystem (the Fig. 3 didactic pattern).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "core/comm.hpp"
#include "uml/model.hpp"

namespace uhcg::flow {

enum class SubsystemKind { Dataflow, ControlFlow };

std::string_view to_string(SubsystemKind kind);

/// One partition of the model: either the thread subsystem (threads
/// non-empty) or a state-machine subsystem (machine non-null).
struct Subsystem {
    std::string name;
    SubsystemKind kind = SubsystemKind::Dataflow;
    std::vector<const uml::ObjectInstance*> threads;
    const uml::StateMachine* machine = nullptr;
    /// Why the classifier decided this way (human-readable, traced).
    std::vector<std::string> rationale;
};

struct PartitionReport {
    std::vector<Subsystem> subsystems;
    /// Model-level character: control-flow when any feedback loop or any
    /// state machine dominates the picture, dataflow otherwise.
    SubsystemKind dominant = SubsystemKind::Dataflow;
    /// Feedback cycles found in the inter-thread channel graph.
    std::size_t feedback_cycles = 0;
    std::vector<std::string> notes;
};

/// Partitions `model`; the overload recomputes the communication analysis.
PartitionReport partition(const uml::Model& model);
PartitionReport partition(const uml::Model& model, const core::CommModel& comm);

}  // namespace uhcg::flow
