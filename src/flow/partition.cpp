#include "flow/partition.hpp"

#include <map>
#include <set>

namespace uhcg::flow {

std::string_view to_string(SubsystemKind kind) {
    return kind == SubsystemKind::Dataflow ? "dataflow" : "control-flow";
}

namespace {

/// Counts the feedback back-edges of the inter-thread channel graph with an
/// iterative colored DFS (white/grey/black), deterministic in thread order.
std::size_t count_feedback_cycles(
    const std::vector<uml::ObjectInstance*>& threads,
    const core::CommModel& comm) {
    enum class Color { White, Grey, Black };
    std::map<const uml::ObjectInstance*, Color> color;
    for (const uml::ObjectInstance* t : threads) color[t] = Color::White;

    std::size_t back_edges = 0;
    for (const uml::ObjectInstance* root : threads) {
        if (color[root] != Color::White) continue;
        // Stack frame: node + next outgoing-channel index to visit.
        std::vector<std::pair<const uml::ObjectInstance*, std::size_t>> stack;
        stack.push_back({root, 0});
        color[root] = Color::Grey;
        while (!stack.empty()) {
            auto& [node, next] = stack.back();
            auto outgoing = comm.outgoing(*node);
            if (next >= outgoing.size()) {
                color[node] = Color::Black;
                stack.pop_back();
                continue;
            }
            const core::Channel* channel = outgoing[next++];
            const uml::ObjectInstance* succ = channel->consumer;
            auto it = color.find(succ);
            if (it == color.end()) continue;  // not a thread of this model
            if (it->second == Color::Grey)
                ++back_edges;
            else if (it->second == Color::White) {
                it->second = Color::Grey;
                stack.push_back({succ, 0});
            }
        }
    }
    return back_edges;
}

}  // namespace

PartitionReport partition(const uml::Model& model) {
    return partition(model, core::analyze_communication(model));
}

PartitionReport partition(const uml::Model& model, const core::CommModel& comm) {
    PartitionReport report;

    std::vector<uml::ObjectInstance*> threads = model.threads();

    // Index the state machines by name so thread/classifier matches bind.
    std::set<std::string> machine_names;
    for (const uml::StateMachine* sm : model.state_machines())
        machine_names.insert(sm->name());

    // Control-flow subsystems: one per state machine.
    for (const uml::StateMachine* sm : model.state_machines()) {
        Subsystem unit;
        unit.name = "control:" + sm->name();
        unit.kind = SubsystemKind::ControlFlow;
        unit.machine = sm;
        unit.rationale.push_back("state machine '" + sm->name() +
                                 "' models reactive control flow (" +
                                 std::to_string(sm->all_states().size()) +
                                 " states, " +
                                 std::to_string(sm->transitions().size()) +
                                 " transitions)");
        for (const uml::ObjectInstance* t : threads) {
            bool name_match =
                t->name() == sm->name() ||
                (t->classifier() && t->classifier()->name() == sm->name());
            if (name_match)
                unit.rationale.push_back("bound to thread '" + t->name() +
                                         "' by name");
        }
        report.subsystems.push_back(std::move(unit));
    }

    // The thread subsystem (at most one; threads share channels, so they
    // partition together and the allocation decides the rest).
    if (!threads.empty()) {
        Subsystem unit;
        unit.name = "threads";
        unit.threads.assign(threads.begin(), threads.end());
        report.feedback_cycles = count_feedback_cycles(threads, comm);

        std::size_t data_channels = comm.channels().size();
        if (report.feedback_cycles > 0) {
            unit.kind = SubsystemKind::ControlFlow;
            unit.rationale.push_back(
                "closed feedback loop detected (" +
                std::to_string(report.feedback_cycles) +
                " back edge(s) in the inter-thread channel graph) — a "
                "control loop in the §5.1 crane sense; the CAAM branch "
                "handles it via §4.2.2 temporal barriers");
        } else {
            unit.kind = SubsystemKind::Dataflow;
            unit.rationale.push_back(
                "feed-forward thread topology with " +
                std::to_string(data_channels) +
                " data channel(s) — a dataflow pipeline in the Fig. 3 sense");
        }
        if (data_channels == 0 && threads.size() > 1)
            unit.rationale.push_back(
                "threads exchange no data — only the multithreaded fallback "
                "branch applies");
        report.subsystems.push_back(std::move(unit));
    } else {
        report.notes.push_back("model has no <<SASchedRes>> threads");
    }

    // Model-level character.
    bool any_control = false;
    for (const Subsystem& s : report.subsystems)
        if (s.kind == SubsystemKind::ControlFlow) any_control = true;
    report.dominant =
        any_control ? SubsystemKind::ControlFlow : SubsystemKind::Dataflow;
    return report;
}

}  // namespace uhcg::flow
