// txout.hpp — transactional artifact output.
//
// Every emitter's files reach disk through a staging directory inside the
// destination, then move into place with atomic renames on commit(). A
// run that aborts — exception, quarantined strategy, killed process —
// leaves the destination exactly as it was: either a file's previous
// version or nothing, never a torn .mdl/C file. Constructing a
// transaction sweeps any stale stage left by a killed predecessor.
//
// commit() batches by default: one rename pass over the staged names in
// sorted order, then a single directory fsync — the PR 5 profile showed
// the per-file rename+sync pattern a close second behind mapping in
// `uhcg generate` wall time. CommitMode::PerFile keeps the legacy
// one-sync-per-rename behaviour for comparison (bench_generate measures
// both; `txout.commit_batches` / `txout.renames` make the win visible).
#pragma once

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <set>
#include <string>
#include <string_view>

namespace uhcg::flow {

/// How commit() moves staged files into the destination.
enum class CommitMode {
    /// One sorted rename pass, one directory fsync at the end.
    Batched,
    /// Directory fsync after every rename (legacy durability pattern).
    PerFile,
};

class OutputTransaction {
public:
    /// Creates `dir` (and the stage under it) if needed. Throws
    /// std::runtime_error when the directory cannot be created.
    explicit OutputTransaction(std::filesystem::path dir,
                               CommitMode mode = CommitMode::Batched);

    /// Rolls back (removes the stage) unless commit() ran.
    ~OutputTransaction();

    OutputTransaction(const OutputTransaction&) = delete;
    OutputTransaction& operator=(const OutputTransaction&) = delete;

    /// Writes one staged file; visible in `dir` only after commit().
    void write(const std::string& name, std::string_view contents);

    std::size_t staged_count() const { return staged_; }
    const std::filesystem::path& dir() const { return dir_; }

    /// Moves every staged file into `dir` (rename, atomic per file on a
    /// POSIX filesystem; sorted name order, so the rename sequence is
    /// deterministic) and removes the stage. Returns files committed.
    std::size_t commit();

    /// Explicit rollback: discards the stage and everything in it.
    void rollback();

private:
    std::filesystem::path dir_;
    std::filesystem::path stage_;
    CommitMode mode_ = CommitMode::Batched;
    /// Staged file names, sorted and deduplicated — the commit worklist.
    std::set<std::string> names_;
    std::size_t staged_ = 0;
    std::size_t bytes_staged_ = 0;
    bool done_ = false;
};

/// Writes `contents` to `path` through a sibling temp file + rename —
/// the single-file cousin of OutputTransaction for map/threads-style
/// one-artifact commands. Throws std::runtime_error on I/O failure.
void write_file_atomic(const std::filesystem::path& path,
                       std::string_view contents);

/// Startup-time GC for staging debris. A transaction sweeps *its own*
/// stage on construction, but a `kill -9` mid-campaign leaves `.uhcg-stage`
/// directories inside job directories that no later transaction ever
/// reopens — those were never reclaimed. This walks `root` (bounded depth)
/// and removes every `.uhcg-stage` whose mtime is older than
/// `max_age_seconds`. The age gate keeps stages of a *concurrently
/// running* process safe; an uncommitted stage is discardable by the
/// transaction protocol, so removal is always correct once it is stale.
/// Each removal bumps the `txout.stale_dirs_pruned` counter. I/O errors
/// skip the entry, never throw.
struct StaleStageStats {
    std::size_t scanned = 0;  ///< stage directories inspected
    std::size_t pruned = 0;   ///< stage directories removed
};
StaleStageStats prune_stale_stages(const std::filesystem::path& root,
                                   std::uint64_t max_age_seconds,
                                   std::size_t max_depth = 4);

}  // namespace uhcg::flow
