// pipeline_compat.cpp — the legacy core::map_to_caam / core::generate_mdl
// surfaces, re-expressed as thin wrappers over the flow pass pipeline.
// Every caller of core/pipeline.hpp gets the pass-manager substrate (and
// its observability) without source changes; outputs are byte-identical to
// the pre-flow monolith.
#include "core/pipeline.hpp"

#include <stdexcept>

#include "flow/caam_passes.hpp"

namespace uhcg::core {

namespace {

flow::PassManager make_manager(const MapperOptions& options,
                               flow::CaamPipelineMode mode, bool with_emit) {
    flow::PassManager pm("core.pipeline");
    flow::register_caam_passes(pm, options, mode);
    if (with_emit) flow::register_mdl_emit_pass(pm, options);
    return pm;
}

}  // namespace

std::vector<std::string> MapperReport::warnings() const {
    std::vector<std::string> out;
    for (const diag::Diagnostic& d : diagnostics) {
        if (d.severity != diag::Severity::Warning) continue;
        if (d.code.rfind("uml.", 0) == 0)
            out.push_back("uml: " + d.message);
        else
            out.push_back(d.message);
    }
    return out;
}

std::optional<simulink::Model> map_to_caam(const uml::Model& model,
                                           const MapperOptions& options,
                                           diag::DiagnosticEngine& engine,
                                           MapperReport* report) {
    MapperReport local;
    MapperReport& r = report ? *report : local;
    const std::size_t first_diag = engine.size();

    flow::ArtifactStore store;
    store.put(flow::SourceModel{&model});
    flow::PassManager pm =
        make_manager(options, flow::CaamPipelineMode::Engine, false);
    auto result = pm.run(store, engine);
    flow::fill_mapper_report(r, store, engine, first_diag);
    if (!result.ok) return std::nullopt;
    simulink::Model* caam = store.get<simulink::Model>();
    if (!caam) return std::nullopt;
    return std::move(*caam);
}

std::optional<std::string> generate_mdl(const uml::Model& model,
                                        const MapperOptions& options,
                                        diag::DiagnosticEngine& engine,
                                        MapperReport* report) {
    MapperReport local;
    MapperReport& r = report ? *report : local;
    const std::size_t first_diag = engine.size();

    flow::ArtifactStore store;
    store.put(flow::SourceModel{&model});
    flow::PassManager pm =
        make_manager(options, flow::CaamPipelineMode::Engine, true);
    auto result = pm.run(store, engine);
    flow::fill_mapper_report(r, store, engine, first_diag);
    if (!result.ok) return std::nullopt;
    flow::MdlText* mdl = store.get<flow::MdlText>();
    if (!mdl) return std::nullopt;
    return std::move(mdl->text);
}

simulink::Model map_to_caam(const uml::Model& model, const MapperOptions& options,
                            MapperReport* report) {
    MapperReport local;
    MapperReport& r = report ? *report : local;

    // The throwing surface still records diagnostics — into an internal
    // engine whose slice lands in the report, where warnings() derives the
    // legacy strings from it.
    diag::DiagnosticEngine internal;
    flow::ArtifactStore store;
    store.put(flow::SourceModel{&model});
    flow::PassManager pm =
        make_manager(options, flow::CaamPipelineMode::Throwing, false);
    try {
        pm.run(store, internal);
    } catch (...) {
        flow::fill_mapper_report(r, store, internal, 0);
        throw;
    }
    flow::fill_mapper_report(r, store, internal, 0);
    return std::move(store.require<simulink::Model>());
}

std::string generate_mdl(const uml::Model& model, const MapperOptions& options,
                         MapperReport* report) {
    MapperReport local;
    MapperReport& r = report ? *report : local;

    diag::DiagnosticEngine internal;
    flow::ArtifactStore store;
    store.put(flow::SourceModel{&model});
    flow::PassManager pm =
        make_manager(options, flow::CaamPipelineMode::Throwing, true);
    try {
        pm.run(store, internal);
    } catch (...) {
        flow::fill_mapper_report(r, store, internal, 0);
        throw;
    }
    flow::fill_mapper_report(r, store, internal, 0);
    return std::move(store.require<flow::MdlText>().text);
}

}  // namespace uhcg::core
