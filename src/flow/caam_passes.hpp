// caam_passes.hpp — the Fig. 2 steps 2–4 re-expressed as flow passes.
//
// The former core/pipeline monolith becomes individual passes over the
// artifact store:
//
//   uml.wellformed   §4.1 convention checks (gate)
//   core.comm        communication analysis over sequence diagrams
//   core.allocate    thread → processor allocation (§4.2.3 or deployment)
//   core.mapping     rule-based model-to-model transformation (step 2)
//   caam.lift        generic CAAM → typed simulink::Model
//   caam.channels    §4.2.1 channel inference (in place)
//   caam.delays      §4.2.2 temporal-barrier insertion (in place)
//   caam.validate    CAAM conformance gate (engine mode only)
//   simulink.emit    step 4 model-to-text (.mdl), when requested
//
// Two modes preserve the two historical pipeline surfaces byte-for-byte:
// Engine mode collects every issue as diagnostics and fails softly (the
// recovering CLI behaviour); Throwing mode throws on ill-formed input and
// propagates mapping exceptions (the library convenience behaviour, which
// also skips CAAM validation).
#pragma once

#include <string>

#include "core/pipeline.hpp"
#include "flow/pass.hpp"
#include "uml/wellformed.hpp"

namespace uhcg::flow {

/// The source UML model, seeded by the caller. Non-owning: keep the model
/// alive for the lifetime of the store.
struct SourceModel {
    const uml::Model* model = nullptr;
};

/// §4.1 well-formedness issues, kept for report assembly.
struct WellformedReport {
    std::vector<uml::Issue> issues;
};

/// The emitted .mdl text (produced by the "simulink.emit" pass).
struct MdlText {
    std::string text;
};

template <>
struct ArtifactTraits<SourceModel> {
    static constexpr const char* name = "uml.model";
};
template <>
struct ArtifactTraits<WellformedReport> {
    static constexpr const char* name = "uml.issues";
};
template <>
struct ArtifactTraits<core::CommModel> {
    static constexpr const char* name = "core.comm";
};
template <>
struct ArtifactTraits<core::Allocation> {
    static constexpr const char* name = "core.allocation";
};
template <>
struct ArtifactTraits<core::MappingOutput> {
    static constexpr const char* name = "core.caam-generic";
};
template <>
struct ArtifactTraits<simulink::Model> {
    static constexpr const char* name = "simulink.caam";
};
template <>
struct ArtifactTraits<core::ChannelReport> {
    static constexpr const char* name = "caam.channel-report";
};
template <>
struct ArtifactTraits<core::DelayReport> {
    static constexpr const char* name = "caam.delay-report";
};
template <>
struct ArtifactTraits<MdlText> {
    static constexpr const char* name = "simulink.mdl";
};

enum class CaamPipelineMode {
    /// Report through the DiagnosticEngine, fail softly, validate the CAAM.
    Engine,
    /// Throw std::runtime_error on ill-formed models, propagate exceptions,
    /// skip validation — the legacy library surface.
    Throwing,
};

/// Registers the steps 2–3 passes (through caam.delays/caam.validate).
/// `options` gates the optional optimization passes exactly as the
/// monolith did.
void register_caam_passes(PassManager& pm, const core::MapperOptions& options,
                          CaamPipelineMode mode);

/// Additionally registers the step-4 "simulink.emit" pass producing MdlText.
void register_mdl_emit_pass(PassManager& pm, const core::MapperOptions& options);

/// Assembles the legacy MapperReport from the store plus the diagnostics
/// `engine` recorded since `first_diagnostic` (the run's slice).
void fill_mapper_report(core::MapperReport& report, const ArtifactStore& store,
                        const diag::DiagnosticEngine& engine,
                        std::size_t first_diagnostic);

}  // namespace uhcg::flow
