// generate.hpp — the one-shot heterogeneous driver: Fig. 1 end to end.
//
// One call partitions a mixed UML model, routes every subsystem to the
// strategies that handle it (dataflow → simulink-caam, control machines →
// fsm-c, plus the multithreaded C++ fallback and the optional KPN
// retargeting) and collects every generated file. Each stage — the
// partitioner included — runs as a pass, so a single FlowTrace covers the
// whole run with per-stage wall time, counters and diagnostics.
//
// Resilience layer: every (strategy × subsystem) unit runs inside a fault
// guard. A failure — thrown exception, fatal diagnostic, exhausted
// retries — quarantines only that unit; every other subsystem still
// generates. The run's outcome is three-valued (Ok / Partial / Failed),
// quarantined units land in a machine-readable failure manifest (schema
// `uhcg-flow-manifest-v1`), and completed units can be checkpointed so a
// later `--resume` run replays them byte-identically instead of
// re-running.
#pragma once

#include "flow/strategy.hpp"

namespace uhcg::flow {

/// Retry, budget, and checkpoint/resume configuration for one run.
struct ResilienceOptions {
    /// Applied to every strategy's internal pass manager.
    RetryPolicy retry;
    PassBudget pass_budget;
    /// KPN dry-run firing budget; 0 = the legacy derived formula.
    std::size_t kpn_firings = 0;
    /// Watchdogged smoke-simulation steps in the schedulability probe;
    /// 0 keeps the probe build-only.
    std::size_t sim_steps = 0;
    /// Checkpoint directory; empty disables checkpointing.
    std::string checkpoint_dir;
    /// Replay matching checkpoints instead of re-running unchanged units.
    bool resume = false;
    /// The serialized source model, hashed into every checkpoint key so a
    /// model edit invalidates stale checkpoints. Checkpointing needs it:
    /// empty disables the store even when checkpoint_dir is set.
    std::string model_bytes;
};

struct GenerateOptions {
    core::MapperOptions mapper;
    /// Loop bound for the fallback threads generator.
    std::size_t iterations = 100;
    /// Also emit the multithreaded C++ program for thread subsystems
    /// ("in case a Simulink compiler is not available").
    bool fallback_cpp = true;
    /// Also emit the §3 KPN retargeting summary for thread subsystems.
    bool with_kpn = false;
    /// Also emit the per-CPU C program from the shared CAAM (caam-c).
    bool caam_c = true;
    /// Also emit the Graphviz block diagram from the shared CAAM (caam-dot).
    bool caam_dot = true;
    /// Worker threads for the (strategy × subsystem) dispatch; 1 = serial
    /// (the legacy behaviour), 0 = one per hardware thread. Output trees,
    /// manifests and diagnostics are byte-identical for every value — the
    /// unit order is fixed up front and per-unit results are folded back
    /// in that canonical order. Deliberately NOT part of the checkpoint
    /// fingerprint: a serial run may resume a parallel one and vice versa.
    std::size_t gen_jobs = 1;
    /// Simulation backend for the advisory sim.estimate pass; empty =
    /// sim::kDefaultBackend.
    std::string sim_backend;
    ResilienceOptions resilience;
};

/// Three-valued run outcome (satellite of the quarantine design): Ok maps
/// to exit 0, Partial to the dedicated partial-success exit code, Failed
/// to the diagnostics exit code.
enum class GenerateStatus { Ok, Partial, Failed };

std::string_view to_string(GenerateStatus status);

/// One quarantined (strategy × subsystem) unit, for the failure manifest.
struct QuarantineRecord {
    std::string strategy;
    std::string subsystem;
    /// First error message of the failing unit — the human-readable why.
    std::string reason;
    /// Stable dotted codes of the unit's Error+ diagnostics, deduplicated
    /// in report order.
    std::vector<std::string> error_codes;
};

struct GenerateResult {
    PartitionReport partitions;
    std::vector<StrategyResult> results;
    std::vector<QuarantineRecord> quarantined;
    GenerateStatus status = GenerateStatus::Ok;
    /// False when the partition pass or any dispatched strategy failed
    /// (kept for callers predating the three-valued status).
    bool ok = true;
};

/// Partitions `model`, dispatches each subsystem to its strategies and
/// collects the generated files. Diagnostics land in `engine`; `trace`
/// (optional) receives every pass entry, partition and output record.
GenerateResult generate(const uml::Model& model, const GenerateOptions& options,
                        diag::DiagnosticEngine& engine,
                        FlowTrace* trace = nullptr);

/// Renders the failure manifest, schema `uhcg-flow-manifest-v1`:
/// { "schema": "uhcg-flow-manifest-v1", "status": "ok|partial|failed",
///   "strategies": [{"strategy","subsystem","ok","cached",
///                   "files":[{"name","bytes"}]}],
///   "quarantined": [{"strategy","subsystem","reason",
///                    "error_codes":[...]}] }
std::string to_manifest_json(const GenerateResult& result);

}  // namespace uhcg::flow
