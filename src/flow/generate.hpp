// generate.hpp — the one-shot heterogeneous driver: Fig. 1 end to end.
//
// One call partitions a mixed UML model, routes every subsystem to the
// strategies that handle it (dataflow → simulink-caam, control machines →
// fsm-c, plus the multithreaded C++ fallback and the optional KPN
// retargeting) and collects every generated file. Each stage — the
// partitioner included — runs as a pass, so a single FlowTrace covers the
// whole run with per-stage wall time, counters and diagnostics.
#pragma once

#include "flow/strategy.hpp"

namespace uhcg::flow {

struct GenerateOptions {
    core::MapperOptions mapper;
    /// Loop bound for the fallback threads generator.
    std::size_t iterations = 100;
    /// Also emit the multithreaded C++ program for thread subsystems
    /// ("in case a Simulink compiler is not available").
    bool fallback_cpp = true;
    /// Also emit the §3 KPN retargeting summary for thread subsystems.
    bool with_kpn = false;
};

struct GenerateResult {
    PartitionReport partitions;
    std::vector<StrategyResult> results;
    /// False when the partition pass or any dispatched strategy failed.
    bool ok = true;
};

/// Partitions `model`, dispatches each subsystem to its strategies and
/// collects the generated files. Diagnostics land in `engine`; `trace`
/// (optional) receives every pass entry, partition and output record.
GenerateResult generate(const uml::Model& model, const GenerateOptions& options,
                        diag::DiagnosticEngine& engine,
                        FlowTrace* trace = nullptr);

}  // namespace uhcg::flow
