#include "flow/fault.hpp"

#include <mutex>
#include <stdexcept>

#include "flow/pass.hpp"

namespace uhcg::flow::fault {

Injector& Injector::instance() {
    static Injector injector;
    return injector;
}

void Injector::arm(std::string site, Kind kind, std::size_t count) {
    std::lock_guard<std::mutex> lock(mutex_);
    injections_.push_back({std::move(site), kind, count, 0});
}

void Injector::disarm_all() {
    std::lock_guard<std::mutex> lock(mutex_);
    injections_.clear();
}

bool Injector::armed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return !injections_.empty();
}

std::vector<Injection> Injector::injections() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return injections_;
}

void Injector::fire(const std::string& site, PassContext& ctx) {
    // Pass entries fire from pool workers under `--gen-jobs`; the hit
    // accounting must be serialized. The action runs outside the lock —
    // the armed site determines it, not the interleaving.
    Kind kind;
    std::size_t remaining;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        Injection* hit = nullptr;
        for (Injection& inj : injections_) {
            if (inj.remaining == 0) continue;
            if (site.find(inj.site) == std::string::npos) continue;
            hit = &inj;
            break;
        }
        if (!hit) return;
        --hit->remaining;
        ++hit->hits;
        kind = hit->kind;
        remaining = hit->remaining;
    }
    switch (kind) {
        case Kind::Throw:
            throw std::runtime_error("injected fault at " + site);
        case Kind::Fatal:
            ctx.diags().report(diag::Severity::Fatal,
                               diag::codes::kFlowQuarantine,
                               "injected fatal fault at " + site);
            ctx.fail();
            return;
        case Kind::Transient:
            ctx.diags().error(diag::codes::kFlowTransient,
                              "injected transient fault at " + site + " (" +
                                  std::to_string(remaining) +
                                  " hit(s) until it heals)");
            ctx.fail();
            return;
    }
}

void Injector::fire_crash(const std::string& site) {
    std::lock_guard<std::mutex> lock(mutex_);
    for (Injection& inj : injections_) {
        if (inj.remaining == 0) continue;
        if (site.find(inj.site) == std::string::npos) continue;
        if (inj.kind == Kind::Transient) continue;
        --inj.remaining;
        ++inj.hits;
        throw CrashInjected("injected crash at " + site);
    }
}

bool Injector::arm_spec(const std::string& spec) {
    std::size_t colon = spec.find(':');
    if (colon == std::string::npos || colon + 1 >= spec.size()) return false;
    std::string kind_text = spec.substr(0, colon);
    std::string site = spec.substr(colon + 1);

    std::size_t count = static_cast<std::size_t>(-1);
    std::size_t x = kind_text.find('x');
    if (x != std::string::npos) {
        try {
            count = std::stoul(kind_text.substr(x + 1));
        } catch (const std::exception&) {
            return false;
        }
        kind_text.resize(x);
    }

    Kind kind;
    if (kind_text == "throw")
        kind = Kind::Throw;
    else if (kind_text == "fatal")
        kind = Kind::Fatal;
    else if (kind_text == "transient")
        kind = Kind::Transient;
    else
        return false;
    arm(std::move(site), kind, count);
    return true;
}

}  // namespace uhcg::flow::fault
