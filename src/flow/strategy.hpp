// strategy.hpp — heterogeneous generation strategies behind one interface.
//
// Fig. 1's branches become registered strategies the dispatcher routes
// subsystem partitions to:
//
//   simulink-caam   dataflow branch: steps 2–4, UML → CAAM → .mdl
//   caam-c          dataflow branch: the same CAAM → per-CPU C program
//   caam-dot        dataflow branch: the same CAAM → Graphviz diagram
//   fsm-c           control branch: UML state machine → flat FSM → C
//   cpp-threads     fallback branch: UML → multithreaded C++ ("in case a
//                   Simulink compiler is not available")
//   kpn             §3 retargeting: UML → Kahn process network summary
//
// The three caam-family emitters share one SharedCaam mapping artifact —
// the paper's amortize-one-analysis-across-many-back-ends shape — which
// compute_shared_caam() builds once per dataflow subsystem; each emitter
// then runs only its model-to-text pass. Every strategy still runs its
// stages through a PassManager, so each lands in the shared FlowTrace
// with per-stage wall time, counters and diagnostics.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/pipeline.hpp"
#include "flow/partition.hpp"
#include "flow/pass.hpp"
#include "simulink/model.hpp"

namespace uhcg::flow {

/// The per-subsystem CAAM mapping result (steps 2–3 plus the
/// schedulability probe and cost estimate), computed once and consumed
/// read-only by every caam-family emitter. Immutable after
/// compute_shared_caam() returns, so concurrent emitter units may share
/// one instance without synchronization. `ok == false` means the mapping
/// pipeline failed; the dispatcher quarantines every dependent emitter
/// with the prep's diagnostics instead of running them.
struct SharedCaam {
    bool ok = false;
    simulink::Model caam{""};
    core::MapperReport mapper_report;
};

/// What a strategy is asked to generate.
struct StrategyContext {
    const uml::Model* model = nullptr;
    const Subsystem* subsystem = nullptr;
    core::MapperOptions mapper;
    /// Loop bound for the fallback threads / KPN dry-run style generators.
    std::size_t iterations = 100;
    /// Resilience layer: applied to every internal pass manager.
    RetryPolicy retry;
    PassBudget pass_budget;
    /// KPN dry-run firing budget (kpn.validate); 0 derives the legacy
    /// formula iterations × processes × 4 + 1000.
    std::size_t kpn_firings = 0;
    /// Watchdogged smoke-simulation steps after the schedulability probe
    /// (sim.schedulability); 0 keeps the probe build-only.
    std::size_t sim_steps = 0;
    /// Simulation backend for the advisory cost-estimate pass
    /// (sim.estimate); empty = sim::kDefaultBackend.
    std::string sim_backend;
    /// Shared mapping for the caam-family emitters, owned by the
    /// dispatcher. Null for non-caam strategies and for standalone
    /// strategy calls — a caam emitter then computes a private mapping.
    const SharedCaam* shared_caam = nullptr;
};

/// Runs the steps 2–3 mapping pipeline (plus schedulability probe and
/// cost estimate) once for `context.subsystem`, tracing under group
/// "simulink-caam:<subsystem>" and bumping the process-wide
/// `flow.caam_shared_computed` counter. Diagnostics land in `engine`;
/// on failure the result has `ok == false` and the engine holds why.
SharedCaam compute_shared_caam(const StrategyContext& context,
                               diag::DiagnosticEngine& engine,
                               FlowTrace* trace);

struct GeneratedFile {
    std::string name;
    std::string contents;
};

struct StrategyResult {
    std::string strategy;
    std::string subsystem;
    bool ok = true;
    /// Replayed from a checkpoint instead of regenerated (`--resume`).
    bool cached = false;
    std::vector<GeneratedFile> files;
    /// Legacy mapping report; populated by the simulink-caam strategy only.
    core::MapperReport mapper_report;
};

class Strategy {
public:
    virtual ~Strategy() = default;
    virtual std::string_view name() const = 0;
    /// True when this strategy can consume `subsystem`.
    virtual bool handles(const Subsystem& subsystem) const = 0;
    /// Generates artifacts for one subsystem, reporting through `engine`
    /// and tracing each internal pass (group = "<name>:<subsystem>").
    virtual StrategyResult generate(const StrategyContext& context,
                                    diag::DiagnosticEngine& engine,
                                    FlowTrace* trace) = 0;
};

/// Name-keyed strategy registry; lookup order is registration order.
class StrategyRegistry {
public:
    StrategyRegistry& add(std::unique_ptr<Strategy> strategy);
    Strategy* find(std::string_view name);
    const std::vector<std::unique_ptr<Strategy>>& strategies() const {
        return strategies_;
    }
    /// The built-in branches of Fig. 1, registration order:
    /// simulink-caam, caam-c, caam-dot, fsm-c, cpp-threads, kpn.
    static StrategyRegistry with_builtins();

private:
    std::vector<std::unique_ptr<Strategy>> strategies_;
};

}  // namespace uhcg::flow
