#include "flow/caam_passes.hpp"

#include <stdexcept>

#include "simulink/caam.hpp"
#include "simulink/generic.hpp"
#include "simulink/mdl.hpp"
#include "uml/wellformed.hpp"

namespace uhcg::flow {

void register_caam_passes(PassManager& pm, const core::MapperOptions& options,
                          CaamPipelineMode mode) {
    const bool engine_mode = mode == CaamPipelineMode::Engine;
    pm.set_trap_exceptions(engine_mode);
    pm.set_internal_error_code(diag::codes::kMapInternal);

    // Gate: the conventions of §4.1 must hold or the mapping mis-wires.
    // All issues are collected before deciding whether to abort, so a model
    // with three independent defects yields three diagnostics in one run.
    pm.add(Pass("uml.wellformed",
                [options, engine_mode](PassContext& ctx) {
                    const uml::Model& model = *ctx.in<SourceModel>().model;
                    auto issues = uml::check(model);
                    ctx.count("issues", issues.size());
                    for (const uml::Issue& i : issues) {
                        std::string code = "uml.";
                        code += (i.rule && i.rule[0]) ? i.rule : "wellformed";
                        ctx.diags().report(i.severity == uml::Severity::Error
                                               ? diag::Severity::Error
                                               : diag::Severity::Warning,
                                           std::move(code),
                                           "[" + i.where + "] " + i.message);
                    }
                    bool gate = options.enforce_wellformedness &&
                                !uml::only_warnings(issues);
                    if (gate && !engine_mode)
                        throw std::runtime_error("UML model is ill-formed:\n" +
                                                 uml::format_issues(issues));
                    ctx.out(WellformedReport{std::move(issues)});
                    if (gate) ctx.fail();
                })
           .reads<SourceModel>()
           .writes<WellformedReport>());

    // Analyses feeding the mapping.
    pm.add(Pass("core.comm",
                [](PassContext& ctx) {
                    const uml::Model& model = *ctx.in<SourceModel>().model;
                    core::CommModel& comm =
                        ctx.out(core::analyze_communication(model));
                    ctx.count("channels", comm.channels().size());
                    ctx.count("io-accesses", comm.io_accesses().size());
                })
           .reads<SourceModel>()
           .writes<core::CommModel>()
           .runs_after("uml.wellformed"));

    pm.add(Pass("core.allocate",
                [options](PassContext& ctx) {
                    const uml::Model& model = *ctx.in<SourceModel>().model;
                    const core::CommModel& comm = ctx.in<core::CommModel>();
                    core::Allocation& alloc = ctx.out(
                        options.auto_allocate
                            ? core::auto_allocate(model, comm,
                                                  options.max_processors)
                            : core::allocation_from_deployment(model));
                    ctx.count("processors", alloc.processor_count());
                })
           .reads<SourceModel>()
           .reads<core::CommModel>()
           .writes<core::Allocation>());

    // Step 2: model-to-model transformation.
    pm.add(Pass("core.mapping",
                [](PassContext& ctx) {
                    const uml::Model& model = *ctx.in<SourceModel>().model;
                    core::MappingOutput& mapped =
                        ctx.out(core::run_mapping(model, ctx.in<core::CommModel>(),
                                                  ctx.in<core::Allocation>()));
                    for (const auto& [rule, count] : mapped.stats.applications)
                        ctx.count("rule." + rule, count);
                    ctx.count("trace-links", mapped.stats.trace_links);
                    for (const std::string& w : mapped.warnings)
                        ctx.diags().warning(diag::codes::kMapRule, w);
                })
           .reads<SourceModel>()
           .reads<core::CommModel>()
           .reads<core::Allocation>()
           .writes<core::MappingOutput>());

    // Lift the generic CAAM into the typed API for optimization.
    pm.add(Pass("caam.lift",
                [](PassContext& ctx) {
                    simulink::Model& caam = ctx.out(
                        simulink::from_generic(ctx.in<core::MappingOutput>().caam));
                    ctx.count("blocks", simulink::caam_stats(caam).total_blocks);
                })
           .reads<core::MappingOutput>()
           .writes<simulink::Model>());

    // Step 3: optimizations (both mutate the CAAM in place, hence barriers).
    if (options.infer_channels) {
        pm.add(Pass("caam.channels",
                    [](PassContext& ctx) {
                        core::ChannelReport& report =
                            ctx.out(core::infer_channels(
                                ctx.inout<simulink::Model>(),
                                ctx.in<core::CommModel>()));
                        ctx.count("intra", report.intra_channels);
                        ctx.count("inter", report.inter_channels);
                        ctx.count("system-ports",
                                  report.system_inputs + report.system_outputs);
                        for (const std::string& w : report.warnings)
                            ctx.diags().warning(diag::codes::kMapChannels, w);
                    })
               .reads<simulink::Model>()
               .reads<core::CommModel>()
               .writes<core::ChannelReport>());
    }
    if (options.insert_delays) {
        pm.add(Pass("caam.delays",
                    [](PassContext& ctx) {
                        core::DelayReport& report = ctx.out(
                            core::insert_temporal_barriers(
                                ctx.inout<simulink::Model>()));
                        ctx.count("barriers", report.inserted);
                    })
               .reads<simulink::Model>()
               .writes<core::DelayReport>()
               .runs_after("caam.channels"));
    }

    // Conformance of the produced CAAM before handing it onward. The
    // legacy throwing surface never validated; keep that contract.
    if (engine_mode) {
        pm.add(Pass("caam.validate",
                    [options](PassContext& ctx) {
                        const simulink::Model& caam = ctx.in<simulink::Model>();
                        auto problems = simulink::validate_caam(caam);
                        ctx.count("problems", problems.size());
                        for (const std::string& p : problems)
                            ctx.diags().error(diag::codes::kCaamInvalid, p);
                        // Gate on this CAAM's own problems, not the whole
                        // engine: under quarantine another subsystem's
                        // failure must not fail this one.
                        if (!problems.empty() &&
                            options.enforce_wellformedness)
                            ctx.fail();
                    })
               .reads<simulink::Model>()
               .runs_after("caam.channels")
               .runs_after("caam.delays"));
    }
}

void register_mdl_emit_pass(PassManager& pm, const core::MapperOptions&) {
    // Step 4: model-to-text.
    pm.add(Pass("simulink.emit",
                [](PassContext& ctx) {
                    MdlText& mdl = ctx.out(
                        MdlText{simulink::write_mdl(ctx.in<simulink::Model>())});
                    ctx.count("bytes", mdl.text.size());
                })
           .reads<simulink::Model>()
           .writes<MdlText>()
           .runs_after("caam.channels")
           .runs_after("caam.delays")
           .runs_after("caam.validate")
           // Present only in the resilient generate pipeline; ignored by
           // the legacy wrappers, which never register the probe.
           .runs_after("sim.schedulability"));
}

void fill_mapper_report(core::MapperReport& report, const ArtifactStore& store,
                        const diag::DiagnosticEngine& engine,
                        std::size_t first_diagnostic) {
    if (const core::MappingOutput* mapped = store.get<core::MappingOutput>())
        report.rule_stats = mapped->stats;
    if (const core::Allocation* alloc = store.get<core::Allocation>())
        report.allocation = *alloc;
    if (const core::ChannelReport* channels = store.get<core::ChannelReport>())
        report.channels = *channels;
    if (const core::DelayReport* delays = store.get<core::DelayReport>())
        report.delays = *delays;
    const auto& diags = engine.diagnostics();
    report.diagnostics.assign(diags.begin() + first_diagnostic, diags.end());
}

}  // namespace uhcg::flow
