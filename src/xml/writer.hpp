// writer.hpp — serializes a dom::Document back to XML text.
//
// The writer is deterministic (attribute and child order preserved) so
// generated model files diff cleanly between runs — a property the tests
// rely on for round-trip checks.
#pragma once

#include <string>

#include "xml/dom.hpp"

namespace uhcg::xml {

struct WriteOptions {
    /// Spaces per nesting level; 0 writes everything on one line.
    int indent = 2;
    /// Emit the <?xml ...?> declaration.
    bool declaration = true;
    /// Collapse childless elements to <name/>.
    bool self_close_empty = true;
};

/// Escapes the five XML special characters for use in character data.
std::string escape_text(std::string_view text);
/// Escapes for use inside a double-quoted attribute value.
std::string escape_attribute(std::string_view text);

std::string write(const Document& doc, const WriteOptions& options = {});
std::string write(const Element& elem, const WriteOptions& options = {});

/// Writes to a file; throws std::runtime_error on I/O failure.
void write_file(const Document& doc, const std::string& path,
                const WriteOptions& options = {});

}  // namespace uhcg::xml
