// dom.hpp — minimal XML document object model used by every serializer in
// uml-hcg (XMI, E-core model files, Simulink mdl-as-XML debug dumps).
//
// The DOM is deliberately small: elements, attributes, text and comment
// nodes. Elements own their children via unique_ptr, so a Document is a
// proper tree with single ownership; raw Element* handles returned by the
// navigation helpers stay valid for the lifetime of the document because
// nodes are never relocated after creation.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace uhcg::xml {

class Element;

/// One attribute on an element. XML attribute order is preserved because
/// tools like EMF emit semantically ordered attributes and round-tripping
/// should be byte-stable.
struct Attribute {
    std::string name;
    std::string value;
};

/// Discriminates the child-node payloads an Element may carry.
enum class NodeKind { Element, Text, Comment };

/// A child node: either a nested element or a chunk of character data.
class Node {
public:
    explicit Node(std::unique_ptr<Element> elem);
    Node(NodeKind kind, std::string text);
    ~Node();
    Node(Node&&) noexcept;
    Node& operator=(Node&&) noexcept;
    Node(const Node&) = delete;
    Node& operator=(const Node&) = delete;

    NodeKind kind() const { return kind_; }
    /// Valid only when kind() == Element.
    Element& element() { return *elem_; }
    const Element& element() const { return *elem_; }
    /// Valid only when kind() is Text or Comment.
    const std::string& text() const { return text_; }
    std::string& text() { return text_; }

private:
    NodeKind kind_;
    std::unique_ptr<Element> elem_;  // set iff kind_ == Element
    std::string text_;               // set otherwise
};

/// An XML element: tag name, ordered attributes, ordered children.
class Element {
public:
    explicit Element(std::string name) : name_(std::move(name)) {}

    const std::string& name() const { return name_; }
    void set_name(std::string n) { name_ = std::move(n); }

    // --- source position --------------------------------------------------
    /// 1-based position of the element's start tag in the parsed input;
    /// line 0 for programmatically built elements. Diagnostics use this to
    /// point at the offending XMI element.
    std::size_t source_line() const { return src_line_; }
    std::size_t source_column() const { return src_column_; }
    void set_source_location(std::size_t line, std::size_t column) {
        src_line_ = line;
        src_column_ = column;
    }

    // --- attributes -------------------------------------------------------
    const std::vector<Attribute>& attributes() const { return attrs_; }
    /// Returns nullptr if absent.
    const std::string* find_attribute(std::string_view name) const;
    /// Returns the attribute value or `fallback` when absent.
    std::string attribute_or(std::string_view name, std::string fallback) const;
    bool has_attribute(std::string_view name) const { return find_attribute(name) != nullptr; }
    /// Sets (replacing any existing value) and returns *this for chaining.
    Element& set_attribute(std::string_view name, std::string_view value);
    bool remove_attribute(std::string_view name);

    // --- children ---------------------------------------------------------
    const std::vector<Node>& children() const { return children_; }
    std::vector<Node>& children() { return children_; }
    /// Appends a child element and returns a stable reference to it.
    Element& add_child(std::string name);
    /// Appends an already-built subtree.
    Element& add_child(std::unique_ptr<Element> elem);
    void add_text(std::string text);
    void add_comment(std::string text);

    /// First child element with the given tag, or nullptr.
    Element* first_child(std::string_view name);
    const Element* first_child(std::string_view name) const;
    /// All child elements (optionally restricted to one tag name).
    std::vector<Element*> child_elements();
    std::vector<const Element*> child_elements() const;
    std::vector<Element*> children_named(std::string_view name);
    std::vector<const Element*> children_named(std::string_view name) const;
    /// Concatenated text content of direct text children.
    std::string text_content() const;
    /// Total number of element nodes in this subtree, including this one.
    std::size_t subtree_size() const;

private:
    std::string name_;
    std::vector<Attribute> attrs_;
    std::vector<Node> children_;
    std::size_t src_line_ = 0;
    std::size_t src_column_ = 0;
};

/// A parsed or programmatically built XML document.
class Document {
public:
    Document() : root_(std::make_unique<Element>("root")) {}
    explicit Document(std::string root_name)
        : root_(std::make_unique<Element>(std::move(root_name))) {}

    Element& root() { return *root_; }
    const Element& root() const { return *root_; }
    void set_root(std::unique_ptr<Element> root) { root_ = std::move(root); }

    /// XML declaration fields (serialized as <?xml version=... ?>).
    std::string version = "1.0";
    std::string encoding = "UTF-8";

private:
    std::unique_ptr<Element> root_;
};

}  // namespace uhcg::xml
