#include "xml/writer.hpp"

#include <fstream>
#include <sstream>

namespace uhcg::xml {
namespace {

void write_indent(std::ostream& out, int indent, int depth) {
    if (indent <= 0) return;
    for (int i = 0; i < indent * depth; ++i) out.put(' ');
}

void write_element(std::ostream& out, const Element& elem,
                   const WriteOptions& options, int depth) {
    write_indent(out, options.indent, depth);
    out << '<' << elem.name();
    for (const auto& a : elem.attributes())
        out << ' ' << a.name << "=\"" << escape_attribute(a.value) << '"';

    if (elem.children().empty() && options.self_close_empty) {
        out << "/>";
        if (options.indent > 0) out << '\n';
        return;
    }
    out << '>';

    // Elements whose only children are text are written inline so that
    // <name>value</name> round-trips without gaining whitespace.
    bool inline_content = true;
    for (const auto& n : elem.children()) {
        if (n.kind() != NodeKind::Text) {
            inline_content = false;
            break;
        }
    }

    if (inline_content) {
        for (const auto& n : elem.children()) out << escape_text(n.text());
    } else {
        if (options.indent > 0) out << '\n';
        for (const auto& n : elem.children()) {
            switch (n.kind()) {
                case NodeKind::Element:
                    write_element(out, n.element(), options, depth + 1);
                    break;
                case NodeKind::Text:
                    write_indent(out, options.indent, depth + 1);
                    out << escape_text(n.text());
                    if (options.indent > 0) out << '\n';
                    break;
                case NodeKind::Comment:
                    write_indent(out, options.indent, depth + 1);
                    out << "<!--" << n.text() << "-->";
                    if (options.indent > 0) out << '\n';
                    break;
            }
        }
        write_indent(out, options.indent, depth);
    }
    out << "</" << elem.name() << '>';
    if (options.indent > 0) out << '\n';
}

}  // namespace

std::string escape_text(std::string_view text) {
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        switch (c) {
            case '<': out += "&lt;"; break;
            case '>': out += "&gt;"; break;
            case '&': out += "&amp;"; break;
            default: out += c;
        }
    }
    return out;
}

std::string escape_attribute(std::string_view text) {
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        switch (c) {
            case '<': out += "&lt;"; break;
            case '>': out += "&gt;"; break;
            case '&': out += "&amp;"; break;
            case '"': out += "&quot;"; break;
            case '\n': out += "&#10;"; break;
            default: out += c;
        }
    }
    return out;
}

std::string write(const Document& doc, const WriteOptions& options) {
    std::ostringstream out;
    if (options.declaration) {
        out << "<?xml version=\"" << doc.version << "\" encoding=\""
            << doc.encoding << "\"?>";
        if (options.indent > 0) out << '\n';
    }
    write_element(out, doc.root(), options, 0);
    return out.str();
}

std::string write(const Element& elem, const WriteOptions& options) {
    std::ostringstream out;
    write_element(out, elem, options, 0);
    return out.str();
}

void write_file(const Document& doc, const std::string& path,
                const WriteOptions& options) {
    std::ofstream out(path, std::ios::binary);
    if (!out) throw std::runtime_error("cannot open file for writing: " + path);
    out << write(doc, options);
    if (!out) throw std::runtime_error("failed writing XML file: " + path);
}

}  // namespace uhcg::xml
