#include "xml/parser.hpp"

#include <cctype>
#include <fstream>
#include <sstream>

#include "obs/obs.hpp"

namespace uhcg::xml {
namespace {

bool is_name_start(char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}

bool is_name_char(char c) {
    return is_name_start(c) || std::isdigit(static_cast<unsigned char>(c)) ||
           c == '-' || c == '.';
}

/// Cursor over the input with line/column tracking for error messages.
class Cursor {
public:
    explicit Cursor(std::string_view input) : input_(input) {}

    bool eof() const { return pos_ >= input_.size(); }
    char peek() const { return input_[pos_]; }
    bool starts_with(std::string_view s) const {
        return input_.substr(pos_, s.size()) == s;
    }

    char advance() {
        char c = input_[pos_++];
        if (c == '\n') {
            ++line_;
            column_ = 1;
        } else {
            ++column_;
        }
        return c;
    }

    void advance_by(std::size_t n) {
        for (std::size_t i = 0; i < n && !eof(); ++i) advance();
    }

    void skip_whitespace() {
        while (!eof() && std::isspace(static_cast<unsigned char>(peek()))) advance();
    }

    [[noreturn]] void fail(std::string message) const {
        throw ParseError(std::move(message), line_, column_);
    }

    void expect(char c) {
        if (eof() || peek() != c)
            fail(std::string("expected '") + c + "'");
        advance();
    }

    void expect(std::string_view s) {
        if (!starts_with(s)) fail("expected '" + std::string(s) + "'");
        advance_by(s.size());
    }

    std::size_t line() const { return line_; }
    std::size_t column() const { return column_; }

private:
    std::string_view input_;
    std::size_t pos_ = 0;
    std::size_t line_ = 1;
    std::size_t column_ = 1;
};

class Parser {
public:
    explicit Parser(std::string_view input) : cur_(input) {}

    Document run() {
        Document doc;
        parse_prolog(doc);
        skip_misc();
        if (cur_.eof() || cur_.peek() != '<')
            cur_.fail("expected root element");
        doc.set_root(parse_element());
        skip_misc();
        if (!cur_.eof()) cur_.fail("content after root element");
        // One batched add per document, not one per element.
        static obs::Counter& nodes = obs::counter("xml.nodes_parsed");
        nodes.add(elements_);
        return doc;
    }

private:
    void parse_prolog(Document& doc) {
        cur_.skip_whitespace();
        if (!cur_.starts_with("<?xml")) return;
        cur_.advance_by(5);
        // Scan pseudo-attributes until "?>".
        while (!cur_.eof() && !cur_.starts_with("?>")) {
            cur_.skip_whitespace();
            if (cur_.starts_with("?>")) break;
            std::string name = parse_name();
            cur_.skip_whitespace();
            cur_.expect('=');
            cur_.skip_whitespace();
            std::string value = parse_quoted();
            if (name == "version") doc.version = value;
            if (name == "encoding") doc.encoding = value;
        }
        cur_.expect("?>");
    }

    /// Skips comments, PIs and whitespace between top-level constructs.
    void skip_misc() {
        for (;;) {
            cur_.skip_whitespace();
            if (cur_.starts_with("<!--")) {
                skip_comment();
            } else if (cur_.starts_with("<?")) {
                skip_pi();
            } else if (cur_.starts_with("<!DOCTYPE")) {
                cur_.fail("DTDs are not supported");
            } else {
                return;
            }
        }
    }

    void skip_comment() {
        cur_.advance_by(4);
        while (!cur_.eof() && !cur_.starts_with("-->")) cur_.advance();
        if (cur_.eof()) cur_.fail("unterminated comment");
        cur_.advance_by(3);
    }

    std::string read_comment() {
        cur_.advance_by(4);
        std::string text;
        while (!cur_.eof() && !cur_.starts_with("-->")) text += cur_.advance();
        if (cur_.eof()) cur_.fail("unterminated comment");
        cur_.advance_by(3);
        return text;
    }

    void skip_pi() {
        cur_.advance_by(2);
        while (!cur_.eof() && !cur_.starts_with("?>")) cur_.advance();
        if (cur_.eof()) cur_.fail("unterminated processing instruction");
        cur_.advance_by(2);
    }

    std::string parse_name() {
        if (cur_.eof() || !is_name_start(cur_.peek())) cur_.fail("expected name");
        std::string name;
        while (!cur_.eof() && is_name_char(cur_.peek())) name += cur_.advance();
        return name;
    }

    std::string parse_quoted() {
        if (cur_.eof() || (cur_.peek() != '"' && cur_.peek() != '\''))
            cur_.fail("expected quoted value");
        char quote = cur_.advance();
        std::string out;
        while (!cur_.eof() && cur_.peek() != quote) {
            if (cur_.peek() == '&') {
                out += parse_entity();
            } else if (cur_.peek() == '<') {
                cur_.fail("'<' in attribute value");
            } else {
                out += cur_.advance();
            }
        }
        if (cur_.eof()) cur_.fail("unterminated attribute value");
        cur_.advance();  // closing quote
        return out;
    }

    std::string parse_entity() {
        cur_.expect('&');
        std::string name;
        while (!cur_.eof() && cur_.peek() != ';') {
            name += cur_.advance();
            if (name.size() > 10) cur_.fail("malformed entity reference");
        }
        if (cur_.eof()) cur_.fail("unterminated entity reference");
        cur_.advance();  // ';'
        if (name == "lt") return "<";
        if (name == "gt") return ">";
        if (name == "amp") return "&";
        if (name == "apos") return "'";
        if (name == "quot") return "\"";
        if (!name.empty() && name[0] == '#') {
            long code = 0;
            try {
                code = (name.size() > 1 && (name[1] == 'x' || name[1] == 'X'))
                           ? std::stol(name.substr(2), nullptr, 16)
                           : std::stol(name.substr(1), nullptr, 10);
            } catch (const std::exception&) {
                cur_.fail("malformed character reference &" + name + ";");
            }
            return encode_utf8(code);
        }
        cur_.fail("unknown entity &" + name + ";");
    }

    static std::string encode_utf8(long code) {
        std::string out;
        auto c = static_cast<unsigned long>(code);
        if (c < 0x80) {
            out += static_cast<char>(c);
        } else if (c < 0x800) {
            out += static_cast<char>(0xC0 | (c >> 6));
            out += static_cast<char>(0x80 | (c & 0x3F));
        } else if (c < 0x10000) {
            out += static_cast<char>(0xE0 | (c >> 12));
            out += static_cast<char>(0x80 | ((c >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (c & 0x3F));
        } else {
            out += static_cast<char>(0xF0 | (c >> 18));
            out += static_cast<char>(0x80 | ((c >> 12) & 0x3F));
            out += static_cast<char>(0x80 | ((c >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (c & 0x3F));
        }
        return out;
    }

    std::unique_ptr<Element> parse_element() {
        ++elements_;
        std::size_t line = cur_.line(), column = cur_.column();
        cur_.expect('<');
        auto elem = std::make_unique<Element>(parse_name());
        elem->set_source_location(line, column);
        // Attributes.
        for (;;) {
            cur_.skip_whitespace();
            if (cur_.eof()) cur_.fail("unterminated start tag");
            if (cur_.peek() == '>' || cur_.starts_with("/>")) break;
            std::string name = parse_name();
            cur_.skip_whitespace();
            cur_.expect('=');
            cur_.skip_whitespace();
            std::string value = parse_quoted();
            if (elem->has_attribute(name))
                cur_.fail("duplicate attribute '" + name + "'");
            elem->set_attribute(name, value);
        }
        if (cur_.starts_with("/>")) {
            cur_.advance_by(2);
            return elem;
        }
        cur_.expect('>');
        parse_content(*elem);
        // parse_content consumed "</"; now the matching close tag name.
        std::string close = parse_name();
        if (close != elem->name())
            cur_.fail("mismatched close tag </" + close + "> for <" + elem->name() + ">");
        cur_.skip_whitespace();
        cur_.expect('>');
        return elem;
    }

    /// Parses children until the start of this element's close tag, whose
    /// leading "</" it consumes.
    void parse_content(Element& parent) {
        std::string text;
        auto flush_text = [&] {
            // Whitespace-only runs between elements are formatting noise in
            // model files; keep only meaningful character data.
            if (text.find_first_not_of(" \t\r\n") != std::string::npos)
                parent.add_text(text);
            text.clear();
        };
        for (;;) {
            if (cur_.eof()) cur_.fail("unterminated element <" + parent.name() + ">");
            if (cur_.starts_with("</")) {
                flush_text();
                cur_.advance_by(2);
                return;
            }
            if (cur_.starts_with("<!--")) {
                flush_text();
                parent.add_comment(read_comment());
            } else if (cur_.starts_with("<![CDATA[")) {
                cur_.advance_by(9);
                while (!cur_.eof() && !cur_.starts_with("]]>")) text += cur_.advance();
                if (cur_.eof()) cur_.fail("unterminated CDATA section");
                cur_.advance_by(3);
            } else if (cur_.starts_with("<?")) {
                flush_text();
                skip_pi();
            } else if (cur_.peek() == '<') {
                flush_text();
                parent.add_child(parse_element());
            } else if (cur_.peek() == '&') {
                text += parse_entity();
            } else {
                text += cur_.advance();
            }
        }
    }

    Cursor cur_;
    std::size_t elements_ = 0;
};

}  // namespace

ParseError::ParseError(std::string message, std::size_t line, std::size_t column)
    : std::runtime_error("XML parse error at " + std::to_string(line) + ":" +
                         std::to_string(column) + ": " + message),
      detail_(std::move(message)),
      line_(line),
      column_(column) {}

ParseError::ParseError(std::string message, std::string file, std::size_t line,
                       std::size_t column)
    : std::runtime_error("XML parse error at " + file + ":" +
                         std::to_string(line) + ":" + std::to_string(column) +
                         ": " + message),
      detail_(std::move(message)),
      file_(std::move(file)),
      line_(line),
      column_(column) {}

Document parse(std::string_view input) {
    obs::ObsSpan span("xml.parse");
    return Parser(input).run();
}

Document parse_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw std::runtime_error("cannot open XML file: " + path);
    std::ostringstream buf;
    buf << in.rdbuf();
    try {
        return parse(buf.str());
    } catch (const ParseError& e) {
        // Re-raise with the path attached; the bare in-memory error would
        // otherwise lose which file of a multi-model batch was at fault.
        throw ParseError(e.detail(), path, e.line(), e.column());
    }
}

}  // namespace uhcg::xml
