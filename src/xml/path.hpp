// path.hpp — XPath-lite selection over the DOM.
//
// Supports exactly the axis/step forms model readers need:
//   "a/b/c"            child steps
//   "a/*/c"            wildcard step
//   "//name"           descendant-or-self search (leading only)
//   "a/b[@id='x']"     attribute-equality predicate
//   "a/b[2]"           1-based positional predicate (after filtering)
// Steps are applied left to right; the result preserves document order
// and contains no duplicates.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "xml/dom.hpp"

namespace uhcg::xml {

/// All elements matching `path` relative to `root` (root is the context
/// node; the first step matches root's children unless the path starts
/// with "//").
std::vector<const Element*> select(const Element& root, std::string_view path);
std::vector<Element*> select(Element& root, std::string_view path);

/// First match or nullptr.
const Element* select_first(const Element& root, std::string_view path);
Element* select_first(Element& root, std::string_view path);

}  // namespace uhcg::xml
