#include "xml/path.hpp"

#include <optional>
#include <stdexcept>

namespace uhcg::xml {
namespace {

struct Step {
    std::string name;                      // tag or "*"
    std::optional<std::string> attr_name;  // [@k='v'] predicate
    std::string attr_value;
    std::optional<std::size_t> position;   // [n] predicate, 1-based
};

std::vector<Step> parse_path(std::string_view path, bool& descendant) {
    descendant = false;
    if (path.substr(0, 2) == "//") {
        descendant = true;
        path.remove_prefix(2);
    }
    std::vector<Step> steps;
    std::size_t start = 0;
    while (start <= path.size()) {
        std::size_t end = path.find('/', start);
        std::string_view part = path.substr(
            start, end == std::string_view::npos ? std::string_view::npos : end - start);
        if (part.empty())
            throw std::invalid_argument("empty step in path: " + std::string(path));
        Step step;
        std::size_t bracket = part.find('[');
        if (bracket == std::string_view::npos) {
            step.name = std::string(part);
        } else {
            step.name = std::string(part.substr(0, bracket));
            std::string_view pred = part.substr(bracket + 1);
            if (pred.empty() || pred.back() != ']')
                throw std::invalid_argument("malformed predicate in path step: " +
                                            std::string(part));
            pred.remove_suffix(1);
            if (!pred.empty() && pred[0] == '@') {
                std::size_t eq = pred.find('=');
                if (eq == std::string_view::npos)
                    throw std::invalid_argument("malformed attribute predicate: " +
                                                std::string(part));
                step.attr_name = std::string(pred.substr(1, eq - 1));
                std::string_view value = pred.substr(eq + 1);
                if (value.size() < 2 || (value.front() != '\'' && value.front() != '"') ||
                    value.back() != value.front())
                    throw std::invalid_argument("predicate value must be quoted: " +
                                                std::string(part));
                step.attr_value = std::string(value.substr(1, value.size() - 2));
            } else {
                step.position = std::stoul(std::string(pred));
                if (*step.position == 0)
                    throw std::invalid_argument("positions are 1-based: " +
                                                std::string(part));
            }
        }
        steps.push_back(std::move(step));
        if (end == std::string_view::npos) break;
        start = end + 1;
    }
    return steps;
}

bool step_matches(const Step& step, const Element& elem) {
    if (step.name != "*" && elem.name() != step.name) return false;
    if (step.attr_name) {
        const std::string* v = elem.find_attribute(*step.attr_name);
        if (!v || *v != step.attr_value) return false;
    }
    return true;
}

void collect_descendants(const Element& elem, const Step& step,
                         std::vector<const Element*>& out) {
    if (step_matches(step, elem)) out.push_back(&elem);
    for (const auto* child : elem.child_elements())
        collect_descendants(*child, step, out);
}

std::vector<const Element*> apply_step(const std::vector<const Element*>& context,
                                       const Step& step, bool descendant) {
    std::vector<const Element*> out;
    for (const Element* e : context) {
        if (descendant) {
            collect_descendants(*e, step, out);
        } else {
            std::vector<const Element*> matched;
            for (const auto* child : e->child_elements())
                if (step_matches(step, *child)) matched.push_back(child);
            if (step.position) {
                if (*step.position <= matched.size())
                    out.push_back(matched[*step.position - 1]);
            } else {
                out.insert(out.end(), matched.begin(), matched.end());
            }
        }
    }
    return out;
}

}  // namespace

std::vector<const Element*> select(const Element& root, std::string_view path) {
    bool descendant = false;
    std::vector<Step> steps = parse_path(path, descendant);
    std::vector<const Element*> context{&root};
    for (std::size_t i = 0; i < steps.size(); ++i) {
        context = apply_step(context, steps[i], descendant && i == 0);
        if (context.empty()) break;
    }
    return context;
}

std::vector<Element*> select(Element& root, std::string_view path) {
    std::vector<Element*> out;
    for (const Element* e : select(static_cast<const Element&>(root), path))
        out.push_back(const_cast<Element*>(e));  // root is non-const, so safe
    return out;
}

const Element* select_first(const Element& root, std::string_view path) {
    auto matches = select(root, path);
    return matches.empty() ? nullptr : matches.front();
}

Element* select_first(Element& root, std::string_view path) {
    auto matches = select(root, path);
    return matches.empty() ? nullptr : matches.front();
}

}  // namespace uhcg::xml
