#include "xml/dom.hpp"

#include <algorithm>

namespace uhcg::xml {

Node::Node(std::unique_ptr<Element> elem)
    : kind_(NodeKind::Element), elem_(std::move(elem)) {}

Node::Node(NodeKind kind, std::string text)
    : kind_(kind), text_(std::move(text)) {}

Node::~Node() = default;
Node::Node(Node&&) noexcept = default;
Node& Node::operator=(Node&&) noexcept = default;

const std::string* Element::find_attribute(std::string_view name) const {
    for (const auto& a : attrs_) {
        if (a.name == name) return &a.value;
    }
    return nullptr;
}

std::string Element::attribute_or(std::string_view name, std::string fallback) const {
    if (const std::string* v = find_attribute(name)) return *v;
    return fallback;
}

Element& Element::set_attribute(std::string_view name, std::string_view value) {
    for (auto& a : attrs_) {
        if (a.name == name) {
            a.value = std::string(value);
            return *this;
        }
    }
    attrs_.push_back(Attribute{std::string(name), std::string(value)});
    return *this;
}

bool Element::remove_attribute(std::string_view name) {
    auto it = std::find_if(attrs_.begin(), attrs_.end(),
                           [&](const Attribute& a) { return a.name == name; });
    if (it == attrs_.end()) return false;
    attrs_.erase(it);
    return true;
}

Element& Element::add_child(std::string name) {
    children_.emplace_back(std::make_unique<Element>(std::move(name)));
    return children_.back().element();
}

Element& Element::add_child(std::unique_ptr<Element> elem) {
    children_.emplace_back(std::move(elem));
    return children_.back().element();
}

void Element::add_text(std::string text) {
    children_.emplace_back(NodeKind::Text, std::move(text));
}

void Element::add_comment(std::string text) {
    children_.emplace_back(NodeKind::Comment, std::move(text));
}

Element* Element::first_child(std::string_view name) {
    for (auto& n : children_) {
        if (n.kind() == NodeKind::Element && n.element().name() == name)
            return &n.element();
    }
    return nullptr;
}

const Element* Element::first_child(std::string_view name) const {
    for (const auto& n : children_) {
        if (n.kind() == NodeKind::Element && n.element().name() == name)
            return &n.element();
    }
    return nullptr;
}

std::vector<Element*> Element::child_elements() {
    std::vector<Element*> out;
    for (auto& n : children_) {
        if (n.kind() == NodeKind::Element) out.push_back(&n.element());
    }
    return out;
}

std::vector<const Element*> Element::child_elements() const {
    std::vector<const Element*> out;
    for (const auto& n : children_) {
        if (n.kind() == NodeKind::Element) out.push_back(&n.element());
    }
    return out;
}

std::vector<Element*> Element::children_named(std::string_view name) {
    std::vector<Element*> out;
    for (auto& n : children_) {
        if (n.kind() == NodeKind::Element && n.element().name() == name)
            out.push_back(&n.element());
    }
    return out;
}

std::vector<const Element*> Element::children_named(std::string_view name) const {
    std::vector<const Element*> out;
    for (const auto& n : children_) {
        if (n.kind() == NodeKind::Element && n.element().name() == name)
            out.push_back(&n.element());
    }
    return out;
}

std::string Element::text_content() const {
    std::string out;
    for (const auto& n : children_) {
        if (n.kind() == NodeKind::Text) out += n.text();
    }
    return out;
}

std::size_t Element::subtree_size() const {
    std::size_t count = 1;
    for (const auto& n : children_) {
        if (n.kind() == NodeKind::Element) count += n.element().subtree_size();
    }
    return count;
}

}  // namespace uhcg::xml
