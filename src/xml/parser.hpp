// parser.hpp — recursive-descent XML parser producing a dom::Document.
//
// Supports the subset of XML that XMI 2.x and E-core files use:
// elements, attributes (single or double quoted), character data with
// entity references, CDATA sections, comments, processing instructions
// (skipped), and an optional XML declaration. DTDs are not supported;
// encountering one raises ParseError, which is the honest behaviour for a
// model-interchange tool (XMI never ships DTDs).
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

#include "xml/dom.hpp"

namespace uhcg::xml {

/// Thrown on malformed input. Carries 1-based line/column of the offence
/// and, when parsing a file, the path — so a caller catching it can build
/// a full source location without re-deriving context.
class ParseError : public std::runtime_error {
public:
    ParseError(std::string message, std::size_t line, std::size_t column);
    ParseError(std::string message, std::string file, std::size_t line,
               std::size_t column);
    /// The parse failure without the position prefix.
    const std::string& detail() const { return detail_; }
    /// Path of the input file; empty for in-memory parses.
    const std::string& file() const { return file_; }
    std::size_t line() const { return line_; }
    std::size_t column() const { return column_; }

private:
    std::string detail_;
    std::string file_;
    std::size_t line_;
    std::size_t column_;
};

/// Parses a complete XML document from memory.
Document parse(std::string_view input);

/// Parses the file at `path`. Throws std::runtime_error if unreadable and
/// ParseError if malformed.
Document parse_file(const std::string& path);

}  // namespace uhcg::xml
