// campaign.hpp — the supervised sweep runner.
//
// `run_campaign` turns an expanded manifest into a campaign tree:
//
//   <out>/jobs/<job-dir>/...        per-job outputs + report.json
//   <out>/campaign-journal.jsonl    crash-safe checkpoint journal
//   <out>/campaign-report.json     aggregate summary + Pareto table
//   <out>/campaign-manifest.json   uhcg-campaign-manifest-v1 failure record
//
// Supervision contract (the robustness tentpole):
//   * Jobs run in deterministic shards over the core thread pool; each
//     job's outputs commit through one OutputTransaction, so a crash
//     mid-job leaves only a stage directory that the next run's stale-GC
//     or re-run discards — never a half-written job.
//   * A failing job (poisoned model, injected fault, exhausted budget) is
//     quarantined: recorded with its first diagnostic, counted, and the
//     sweep continues. Only `fault::CrashInjected` — the chaos suite's
//     stand-in for kill -9 — escapes the guard.
//   * Every finished job appends one hash-guarded journal line; `resume`
//     replays intact entries (an "ok" entry only when its on-disk
//     report.json still matches the recorded hash) and re-runs the rest.
//     Because every artifact is deterministic — no wall times, no
//     absolute paths, no cache statistics — a resumed campaign's final
//     tree is byte-identical to an uninterrupted run's.
//   * Exit mirrors the flow's three-valued outcome: every job ok → Ok,
//     some ok → Partial, none → Failed.
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "campaign/journal.hpp"
#include "campaign/manifest.hpp"
#include "diag/diag.hpp"
#include "flow/pass.hpp"

namespace uhcg::campaign {

struct CampaignOptions {
    std::filesystem::path out_dir = "campaign-out";
    /// Replay the journal instead of starting fresh.
    bool resume = false;
    /// Worker threads running shards (0 = hardware, 1 = serial).
    std::size_t jobs = 0;
    /// Jobs per shard (a shard runs sequentially on one worker); 0 = 1.
    std::size_t shard_size = 0;
    /// Worker threads for each generate job's own strategy dispatch
    /// (GenerateOptions::gen_jobs). Defaults to 1: campaign shards already
    /// occupy the pool, and a nested fan-out from a pool worker degrades
    /// to serial anyway — raising this mainly helps jobs running on the
    /// caller thread of a small campaign.
    std::size_t gen_jobs = 1;
    /// Chaos/CI hook: raise SIGKILL against this very process after the
    /// N-th journal append — a deterministic mid-sweep kill -9. 0 = off.
    std::size_t halt_after = 0;
    /// Passed into every generate job's resilience layer (transient
    /// retry with deterministic backoff).
    flow::RetryPolicy retry;
    /// Per-pass wall budget for generate jobs; 0 = unlimited.
    std::uint64_t pass_budget_ms = 0;
    /// Stale `.uhcg-stage` directories under the campaign tree older than
    /// this are pruned before the sweep starts; 0 disables the GC.
    std::uint64_t stale_stage_ttl_s = 3600;
};

enum class CampaignStatus { Ok, Partial, Failed };

std::string_view to_string(CampaignStatus status);

struct CampaignResult {
    CampaignStatus status = CampaignStatus::Failed;
    std::size_t jobs_total = 0;
    std::size_t jobs_ok = 0;
    std::size_t jobs_quarantined = 0;
    /// Journal entries replayed instead of re-run (`resume` only).
    std::size_t jobs_resumed = 0;
    std::size_t stale_stages_pruned = 0;
    /// Final per-job outcomes in canonical (expansion) order.
    std::vector<JournalEntry> outcomes;
    std::filesystem::path report_path;
    std::filesystem::path manifest_path;
};

/// Runs the campaign described by `manifest` (already parsed; callers
/// check `engine.has_errors()` after load_manifest). Campaign-level
/// problems — an unexpandable manifest, an unwritable output directory —
/// report `campaign.*` diagnostics into `engine` and yield Failed.
CampaignResult run_campaign(const Manifest& manifest,
                            const CampaignOptions& options,
                            diag::DiagnosticEngine& engine);

}  // namespace uhcg::campaign
