// journal.hpp — crash-safe checkpoint journal for campaign runs.
//
// The journal is the campaign's only source of resume truth: one JSONL
// line per finished job (schema `uhcg-campaign-journal-v1`), appended
// *after* the job's transactional outputs committed. Each line carries a
// trailing FNV-1a self-hash (`,"h":"<16 hex>"}`) computed over everything
// before the `,"h"` suffix, and every append is a single write(2) on an
// O_APPEND descriptor — so a `kill -9` at any instant leaves at most one
// torn final line, which `load` detects by the hash guard and discards.
// A torn or stale line simply means that job re-runs; its transactional
// re-commit overwrites the orphaned outputs, which is what makes resume
// replay byte-identical rather than merely convergent.
//
// Entries key on the content-hashed job id (see manifest.hpp): editing a
// model, a cost model or the sweep options changes every affected id, so
// a journal from a different campaign can never mark the wrong job done.
#pragma once

#include <cstddef>
#include <filesystem>
#include <mutex>
#include <string>
#include <vector>

namespace uhcg::campaign {

/// One finished job, as recorded in (or replayed from) the journal.
struct JournalEntry {
    std::string job;     ///< content-hashed job id (16 hex digits)
    std::string dir;     ///< job directory name, relative to the campaign
    std::string status;  ///< "ok" | "quarantined"
    /// FNV-1a hash (16 hex digits) of the committed report.json bytes —
    /// resume only trusts an "ok" entry whose on-disk report still matches.
    std::string report_hash;
    /// Quarantine details (deterministic: first diagnostic code/message).
    std::string error_code;
    std::string error_message;
    std::size_t attempts = 0;  ///< how many attempts the job took
};

/// Append-only journal file with per-line hash guards.
class Journal {
public:
    explicit Journal(std::filesystem::path path) : path_(std::move(path)) {}
    ~Journal();

    Journal(const Journal&) = delete;
    Journal& operator=(const Journal&) = delete;

    /// Reads every intact entry from an existing journal file; a missing
    /// file is an empty journal. Lines with a missing or wrong self-hash
    /// (torn tail after a crash, manual edits) are discarded and counted
    /// on the `campaign.journal_torn` counter. Later entries for the same
    /// job id win (a re-run job appends a fresh line).
    std::vector<JournalEntry> load() const;

    /// Opens the journal for appending. `truncate` starts it fresh (a
    /// non-resume run must not inherit stale entries); otherwise intact
    /// existing lines are preserved and appends go after them.
    void open_for_append(bool truncate);

    /// Serializes `entry` and appends it as one write(2) syscall.
    /// Thread-safe. Requires open_for_append().
    void append(const JournalEntry& entry);

    void close();

    /// Number of appends performed by this object (not counting loaded
    /// lines) — the campaign's `--halt-after` kill switch counts these.
    std::size_t appended() const { return appended_; }

    const std::filesystem::path& path() const { return path_; }

private:
    std::filesystem::path path_;
    mutable std::mutex mutex_;
    int fd_ = -1;
    std::size_t appended_ = 0;
};

}  // namespace uhcg::campaign
