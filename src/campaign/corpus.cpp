#include "campaign/corpus.hpp"

#include <iomanip>
#include <sstream>
#include <stdexcept>

#include "diag/diag.hpp"
#include "flow/checkpoint.hpp"
#include "flow/txout.hpp"
#include "obs/obs.hpp"
#include "uml/builder.hpp"
#include "uml/xmi.hpp"

namespace uhcg::campaign {

namespace {

/// splitmix64 — tiny, seedable, stable across platforms. std::mt19937
/// would work too, but its distribution helpers are not guaranteed
/// bit-identical across standard libraries; corpus bytes must be.
struct Rng {
    std::uint64_t state;
    explicit Rng(std::uint64_t seed) : state(seed) {}
    std::uint64_t next() {
        std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
        z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
        z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
        return z ^ (z >> 31);
    }
    /// Uniform in [0, bound) — bound > 0.
    std::uint64_t below(std::uint64_t bound) { return next() % bound; }
    /// Uniform integer in [lo, hi] inclusive.
    std::uint64_t range(std::uint64_t lo, std::uint64_t hi) {
        return lo + below(hi - lo + 1);
    }
};

void check_options(const CorpusOptions& options) {
    if (options.models == 0)
        throw std::invalid_argument("corpus: models must be >= 1");
    if (options.min_threads < 2)
        throw std::invalid_argument("corpus: min_threads must be >= 2");
    if (options.min_threads > options.max_threads)
        throw std::invalid_argument("corpus: min_threads > max_threads");
    if (options.channel_density > 100)
        throw std::invalid_argument("corpus: channel_density > 100");
    if (options.rate_min > options.rate_max || options.rate_min < 0)
        throw std::invalid_argument("corpus: bad rate bounds");
    if (options.feedback_cycles > options.models)
        throw std::invalid_argument("corpus: feedback_cycles > models");
}

std::string thread_name(std::size_t i) { return "T" + std::to_string(i); }

std::string hex16(std::uint64_t value) {
    static const char* digits = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[static_cast<std::size_t>(i)] = digits[value & 0xF];
        value >>= 4;
    }
    return out;
}

/// Rate with a short decimal rendering (halves), so XMI stays tidy.
double draw_rate(Rng& rng, const CorpusOptions& options) {
    std::uint64_t steps =
        static_cast<std::uint64_t>((options.rate_max - options.rate_min) * 2);
    if (steps == 0) return options.rate_min;
    return options.rate_min +
           static_cast<double>(rng.below(steps + 1)) / 2.0;
}

}  // namespace

uml::Model synth_model(const CorpusOptions& options, std::size_t index) {
    check_options(options);
    if (index >= options.models)
        throw std::invalid_argument("corpus: model index out of range");
    // Mix the index into the seed so models differ but each is stable
    // regardless of how many siblings the corpus has.
    Rng rng(options.seed * 0x100000001B3ULL + index * 0x9E3779B97F4A7C15ULL +
            1);

    const std::size_t threads = static_cast<std::size_t>(
        rng.range(options.min_threads, options.max_threads));
    const bool cyclic =
        index >= options.models - options.feedback_cycles;

    // Channel plan: a spanning condition (every thread past the first
    // reads from one earlier thread) plus density-drawn extras.
    struct Channel {
        std::size_t from, to;
        double rate;
    };
    std::vector<Channel> channels;
    std::vector<std::vector<bool>> has(threads,
                                       std::vector<bool>(threads, false));
    for (std::size_t to = 1; to < threads; ++to) {
        std::size_t from = static_cast<std::size_t>(rng.below(to));
        has[from][to] = true;
        channels.push_back({from, to, draw_rate(rng, options)});
    }
    for (std::size_t from = 0; from + 1 < threads; ++from)
        for (std::size_t to = from + 1; to < threads; ++to) {
            if (has[from][to]) continue;
            if (rng.below(100) < options.channel_density) {
                has[from][to] = true;
                channels.push_back({from, to, draw_rate(rng, options)});
            }
        }
    if (cyclic) {
        // Close a feedback loop: the last thread reports back to the
        // first, which (with the spanning chain) forms a task-graph cycle.
        channels.push_back({threads - 1, 0, draw_rate(rng, options)});
    }

    uml::ModelBuilder b("corpus_" + std::to_string(index));
    b.platform();
    for (std::size_t i = 0; i < threads; ++i) b.thread(thread_name(i));

    auto sd = b.seq("corpus_interactions");
    for (std::size_t i = 0; i < threads; ++i) {
        std::string var = "v" + std::to_string(i);
        std::vector<std::string> inputs;
        for (const Channel& c : channels)
            if (c.to == i && c.from < i)  // forward data only feeds args
                inputs.push_back("v" + std::to_string(c.from));
        auto msg = sd.message(thread_name(i), "Platform", "work");
        if (inputs.empty()) msg.arg("1.0");
        for (const std::string& in : inputs) msg.arg(in);
        msg.result(var);
        for (const Channel& c : channels)
            if (c.from == i)
                sd.message(thread_name(i), thread_name(c.to), "Set" + var)
                    .arg(var)
                    .data(c.rate);
    }
    return b.take();
}

CorpusResult write_corpus(const CorpusOptions& options,
                          const std::filesystem::path& dir) {
    check_options(options);
    obs::ObsSpan span("campaign.corpus");
    CorpusResult result;

    flow::OutputTransaction tx(dir);
    std::ostringstream index_json;
    index_json << "{\n  \"schema\": \"uhcg-corpus-v1\",\n"
               << "  \"seed\": " << options.seed << ",\n"
               << "  \"options\": {\"models\": " << options.models
               << ", \"min_threads\": " << options.min_threads
               << ", \"max_threads\": " << options.max_threads
               << ", \"channel_density\": " << options.channel_density
               << ", \"feedback_cycles\": " << options.feedback_cycles
               << ", \"rate_min\": " << options.rate_min
               << ", \"rate_max\": " << options.rate_max << "},\n"
               << "  \"models\": [\n";

    for (std::size_t i = 0; i < options.models; ++i) {
        uml::Model model = synth_model(options, i);
        std::string xmi = uml::to_xmi_string(model);

        std::ostringstream name;
        name << "corpus-" << std::setfill('0') << std::setw(3) << i
             << ".xmi";

        CorpusModelInfo info;
        info.file = name.str();
        info.threads = 0;
        std::size_t channels = 0;
        for (const uml::SequenceDiagram* diagram : model.sequence_diagrams())
            for (const uml::Message* message : diagram->messages())
                if (message->operation_name().rfind("Set", 0) == 0)
                    ++channels;
        for (const uml::ObjectInstance* obj : model.objects())
            if (obj->is_thread()) ++info.threads;
        info.channels = channels;
        info.cyclic = i >= options.models - options.feedback_cycles;
        info.xmi_hash = hex16(flow::CheckpointStore::fnv1a(xmi));

        tx.write(info.file, xmi);
        index_json << "    {\"file\": \"" << diag::json_escape(info.file)
                   << "\", \"threads\": " << info.threads
                   << ", \"channels\": " << info.channels << ", \"cyclic\": "
                   << (info.cyclic ? "true" : "false") << ", \"xmi_hash\": \""
                   << info.xmi_hash << "\"}"
                   << (i + 1 < options.models ? "," : "") << "\n";
        result.models.push_back(std::move(info));
    }
    index_json << "  ]\n}\n";
    tx.write("corpus-index.json", index_json.str());
    result.files_written = tx.commit();
    obs::counter("campaign.corpus_models").add(result.models.size());
    return result;
}

}  // namespace uhcg::campaign
