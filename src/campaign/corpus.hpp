// corpus.hpp — seeded synthetic UML/XMI corpus generator.
//
// A campaign needs many models; hand-written cases give three. This
// generator produces arbitrarily many in the paper's shape — active
// threads exchanging data over rated channels through Platform "work"
// S-function calls (the Fig. 6 idiom) — from a single seed, fully
// deterministically: the same options always produce byte-identical XMI
// files, which is what lets the chaos suite compare whole campaign trees
// across crash/resume boundaries.
//
// Each model is a layered thread DAG (every thread past the first has at
// least one predecessor, extra channels added by density), optionally
// closed into a feedback cycle. Cyclic models are generated on purpose:
// `dse explore` rejects them with a structured dse.model error while
// `generate` still succeeds via delay insertion, so a corpus with
// `feedback_cycles > 0` exercises the campaign's per-job quarantine path
// with a real, deterministic failure — no fault injection required.
#pragma once

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "uml/model.hpp"

namespace uhcg::campaign {

struct CorpusOptions {
    std::size_t models = 8;     ///< how many models to generate
    std::uint64_t seed = 42;    ///< master seed; model i derives seed ^ i
    std::size_t min_threads = 4;
    std::size_t max_threads = 12;
    /// Percent probability [0,100] of an extra forward channel between any
    /// thread pair beyond the spanning connections.
    unsigned channel_density = 30;
    /// The last `feedback_cycles` models each get one back-channel closing
    /// a cycle in the task graph (deterministic explore failures).
    std::size_t feedback_cycles = 0;
    /// Channel data-rate bounds (bytes per transfer, task-graph edge
    /// weights). Drawn uniformly per channel.
    double rate_min = 1.0;
    double rate_max = 64.0;
};

/// One generated model, as listed in corpus-index.json.
struct CorpusModelInfo {
    std::string file;        ///< file name within the corpus directory
    std::size_t threads = 0;
    std::size_t channels = 0;
    bool cyclic = false;
    std::string xmi_hash;    ///< FNV-1a of the XMI bytes, 16 hex digits
};

struct CorpusResult {
    std::vector<CorpusModelInfo> models;
    std::size_t files_written = 0;  ///< XMI files + the index
};

/// Builds model `index` of the corpus (0-based). Deterministic in
/// (options, index). Throws std::invalid_argument on inconsistent
/// options (models == 0, min > max, rate_min > rate_max,
/// feedback_cycles > models, density > 100).
uml::Model synth_model(const CorpusOptions& options, std::size_t index);

/// Generates the whole corpus into `dir` through one OutputTransaction:
/// corpus-000.xmi … plus corpus-index.json (schema `uhcg-corpus-v1`
/// recording the options and per-model stats). Either every file commits
/// or none do.
CorpusResult write_corpus(const CorpusOptions& options,
                          const std::filesystem::path& dir);

}  // namespace uhcg::campaign
