#include "campaign/campaign.hpp"

#include <algorithm>
#include <csignal>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <stdexcept>

#include "core/comm.hpp"
#include "core/parallel.hpp"
#include "diag/diag.hpp"
#include "dse/explore.hpp"
#include "flow/checkpoint.hpp"
#include "flow/fault.hpp"
#include "flow/generate.hpp"
#include "flow/txout.hpp"
#include "obs/json.hpp"
#include "obs/obs.hpp"
#include "uml/xmi.hpp"

namespace uhcg::campaign {

namespace fs = std::filesystem;

namespace {

std::string hex16(std::uint64_t value) {
    static const char* digits = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[static_cast<std::size_t>(i)] = digits[value & 0xF];
        value >>= 4;
    }
    return out;
}

/// First Error+ diagnostic — the deterministic "why" a job quarantined.
void first_error(const diag::DiagnosticEngine& engine, std::string& code,
                 std::string& message) {
    for (const diag::Diagnostic& d : engine.diagnostics())
        if (d.severity == diag::Severity::Error ||
            d.severity == diag::Severity::Fatal) {
            code = d.code;
            message = d.message;
            return;
        }
}

/// uhcg-bench-v1 row (manual emit mirroring bench::Report::write_json).
struct ReportRow {
    std::string label;
    std::string text;
    double number = 0.0;
    bool numeric = false;
};

std::string render_report(const std::string& experiment,
                          const std::string& claim,
                          const std::vector<ReportRow>& rows) {
    std::ostringstream out;
    out << "{\n  \"schema\": \"uhcg-bench-v1\",\n  \"experiment\": \""
        << diag::json_escape(experiment) << "\",\n  \"claim\": \""
        << diag::json_escape(claim) << "\",\n  \"rows\": [";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const ReportRow& r = rows[i];
        out << (i ? ",\n    " : "\n    ") << "{\"label\": \""
            << diag::json_escape(r.label) << "\", ";
        if (r.numeric)
            out << "\"number\": " << r.number << '}';
        else
            out << "\"value\": \"" << diag::json_escape(r.text) << "\"}";
    }
    out << "\n  ]\n}\n";
    return out.str();
}

/// What one executed (or replayed) job contributes to the aggregate.
struct JobRun {
    JournalEntry entry;
    bool ok = false;
};

/// Runs one job to completion: model parse, strategy execution,
/// transactional commit of the job directory. Returns the journal entry;
/// never throws for job-local failures (those quarantine), only for
/// campaign-level crashes (CrashInjected) and truly unexpected states.
JobRun execute_job(const JobSpec& job, const CampaignOptions& options) {
    obs::ObsSpan span("campaign.job");
    JobRun run;
    run.entry.job = job.id;
    run.entry.dir = job.dir;
    run.entry.attempts = 1;

    diag::DiagnosticEngine jengine;
    auto quarantine = [&](std::string fallback_code,
                          std::string fallback_message) {
        run.entry.status = "quarantined";
        run.entry.error_code = std::move(fallback_code);
        run.entry.error_message = std::move(fallback_message);
        first_error(jengine, run.entry.error_code, run.entry.error_message);
        run.ok = false;
        obs::counter("campaign.jobs_quarantined").add();
    };

    uml::Model model("empty");
    try {
        model = uml::from_xmi_string(*job.model_bytes, jengine,
                                     job.model_path);
    } catch (const std::exception& e) {
        quarantine(diag::codes::kCampaignJob,
                   std::string("model load failed: ") + e.what());
        return run;
    }
    if (jengine.has_errors()) {
        quarantine(diag::codes::kCampaignJob, "model load failed");
        return run;
    }

    const Manifest& m = *job.manifest;
    std::vector<ReportRow> rows;
    rows.push_back({"strategy", job.strategy, 0, false});
    rows.push_back({"backend", job.backend, 0, false});
    rows.push_back({"cost model", job.cost_model.name, 0, false});
    std::vector<std::pair<std::string, std::string>> files;

    if (job.strategy == "explore") {
        dse::ExploreOptions eopts;
        eopts.max_processors = m.max_processors;
        eopts.random_samples = m.random_samples;
        // The campaign is the parallel layer; inner sweeps stay serial so
        // shard counts never fight the pool (results are identical for
        // any value anyway).
        eopts.jobs = 1;
        eopts.backend = job.backend;
        eopts.cost_model = job.cost_model.params;
        core::CommModel comm = core::analyze_communication(model);
        dse::ExploreResult result;
        try {
            result = dse::explore(model, comm, eopts, &jengine);
        } catch (const flow::fault::CrashInjected&) {
            throw;
        } catch (const std::exception& e) {
            quarantine(diag::codes::kDseModel,
                       "model '" + model.name() +
                           "' is not explorable: " + e.what());
            return run;
        }
        if (result.candidates.empty()) {
            quarantine(diag::codes::kDseEmpty,
                       "nothing to explore: model '" + model.name() +
                           "' has no threads");
            return run;
        }
        const dse::Candidate& best = result.candidates[result.best];
        rows.push_back({"candidates",
                        {},
                        static_cast<double>(result.candidates.size()),
                        true});
        rows.push_back({"unique clusterings",
                        {},
                        static_cast<double>(result.stats.unique_clusterings),
                        true});
        rows.push_back({"pareto points",
                        {},
                        static_cast<double>(result.pareto_front.size()),
                        true});
        rows.push_back({"best makespan", {}, best.makespan, true});
        rows.push_back({"best processors",
                        {},
                        static_cast<double>(best.processors),
                        true});
        rows.push_back({"best strategy", best.strategy, 0, false});
        files.emplace_back("explore.txt", dse::format(result));
    } else {
        flow::GenerateOptions gopts;
        gopts.iterations = m.iterations;
        gopts.with_kpn = m.with_kpn;
        gopts.gen_jobs = options.gen_jobs;
        gopts.sim_backend = job.backend;
        gopts.resilience.retry = options.retry;
        gopts.resilience.pass_budget.wall_ms = options.pass_budget_ms;
        flow::GenerateResult result;
        try {
            result = flow::generate(model, gopts, jengine);
        } catch (const flow::fault::CrashInjected&) {
            throw;
        } catch (const std::exception& e) {
            quarantine(diag::codes::kCampaignJob,
                       std::string("generate failed: ") + e.what());
            return run;
        }
        if (result.status == flow::GenerateStatus::Failed) {
            quarantine(diag::codes::kCampaignJob, "generate failed");
            return run;
        }
        std::size_t file_count = 0, bytes = 0;
        std::uint64_t output_hash = flow::CheckpointStore::fnv1a("");
        for (const flow::StrategyResult& sr : result.results)
            for (const flow::GeneratedFile& f : sr.files) {
                ++file_count;
                bytes += f.contents.size();
                output_hash =
                    flow::CheckpointStore::fnv1a(f.name, output_hash);
                output_hash =
                    flow::CheckpointStore::fnv1a(f.contents, output_hash);
                files.emplace_back(f.name, f.contents);
            }
        rows.push_back(
            {"flow status",
             std::string(flow::to_string(result.status)),
             0,
             false});
        rows.push_back({"units",
                        {},
                        static_cast<double>(result.results.size()),
                        true});
        rows.push_back({"quarantined units",
                        {},
                        static_cast<double>(result.quarantined.size()),
                        true});
        rows.push_back(
            {"files", {}, static_cast<double>(file_count), true});
        rows.push_back({"bytes", {}, static_cast<double>(bytes), true});
        rows.push_back({"output hash", hex16(output_hash), 0, false});
        files.emplace_back("flow-manifest.json",
                           flow::to_manifest_json(result));
    }

    std::string report = render_report(
        job.dir,
        "campaign job: " + job.strategy + " on " + job.model_name +
            " via " + job.backend + " / " + job.cost_model.name,
        rows);

    // Everything or nothing: the job directory appears only complete.
    flow::OutputTransaction tx(options.out_dir / "jobs" / job.dir);
    for (const auto& [name, contents] : files) tx.write(name, contents);
    tx.write("report.json", report);
    tx.commit();

    run.entry.status = "ok";
    run.entry.report_hash = hex16(flow::CheckpointStore::fnv1a(report));
    run.ok = true;
    obs::counter("campaign.jobs_ok").add();
    return run;
}

std::string read_file(const fs::path& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) return {};
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
}

const obs::json::Value* find_row(const obs::json::Value& report,
                                 std::string_view label) {
    const obs::json::Value* rows = report.find("rows");
    if (!rows || !rows->is_array()) return nullptr;
    for (const obs::json::Value& row : rows->array) {
        const obs::json::Value* l = row.find("label");
        if (l && l->is_string() && l->string == label) return &row;
    }
    return nullptr;
}

bool row_number(const obs::json::Value& report, std::string_view label,
                double& out) {
    const obs::json::Value* row = find_row(report, label);
    if (!row) return false;
    const obs::json::Value* n = row->find("number");
    if (!n || !n->is_number()) return false;
    out = n->number;
    return true;
}

std::string row_text(const obs::json::Value& report, std::string_view label) {
    const obs::json::Value* row = find_row(report, label);
    if (!row) return {};
    const obs::json::Value* v = row->find("value");
    return v && v->is_string() ? v->string : std::string();
}

/// One (processors, makespan) point of the cross-backend Pareto table.
struct ParetoPoint {
    std::size_t processors = 0;
    double makespan = 0.0;
    std::string job_dir;
};

}  // namespace

std::string_view to_string(CampaignStatus status) {
    switch (status) {
        case CampaignStatus::Ok: return "ok";
        case CampaignStatus::Partial: return "partial";
        case CampaignStatus::Failed: return "failed";
    }
    return "failed";
}

CampaignResult run_campaign(const Manifest& manifest,
                            const CampaignOptions& options,
                            diag::DiagnosticEngine& engine) {
    obs::ObsSpan span("campaign.run");
    CampaignResult result;

    std::error_code ec;
    fs::create_directories(options.out_dir, ec);
    if (ec) {
        engine.error(diag::codes::kCampaignJournal,
                     "cannot create campaign directory '" +
                         options.out_dir.string() + "': " + ec.message());
        return result;
    }

    // Reclaim debris a previous kill -9 left behind before any job reuses
    // those directories.
    if (options.stale_stage_ttl_s) {
        flow::StaleStageStats pruned = flow::prune_stale_stages(
            options.out_dir, options.stale_stage_ttl_s);
        result.stale_stages_pruned = pruned.pruned;
    }

    std::vector<JobSpec> jobs = expand(manifest, engine);
    if (jobs.empty()) {
        engine.error(diag::codes::kCampaignManifest,
                     "manifest expands to zero jobs");
        return result;
    }
    result.jobs_total = jobs.size();

    flow::fault::Injector::instance().fire_crash("campaign.dispatch");

    // Resume: replay intact journal entries whose jobs still exist and —
    // for ok entries — whose committed report still matches the recorded
    // hash. Anything else re-runs.
    Journal journal(options.out_dir / "campaign-journal.jsonl");
    std::map<std::string, JournalEntry> done;
    if (options.resume) {
        for (JournalEntry& entry : journal.load()) {
            if (entry.status == "ok") {
                std::string report = read_file(options.out_dir / "jobs" /
                                               entry.dir / "report.json");
                if (report.empty() ||
                    hex16(flow::CheckpointStore::fnv1a(report)) !=
                        entry.report_hash)
                    continue;
            }
            done[entry.job] = std::move(entry);  // later lines win
        }
    }
    journal.open_for_append(/*truncate=*/!options.resume);

    std::vector<const JobSpec*> pending;
    for (const JobSpec& job : jobs)
        if (!done.count(job.id)) pending.push_back(&job);
    result.jobs_resumed = jobs.size() - pending.size();
    if (result.jobs_resumed)
        obs::counter("campaign.jobs_resumed").add(result.jobs_resumed);

    // Sharded dispatch: shards are fixed slices of the pending list, so
    // the shard decomposition is deterministic; each shard runs its jobs
    // sequentially on one pool worker.
    const std::size_t shard_size =
        options.shard_size ? options.shard_size : 1;
    const std::size_t shards = (pending.size() + shard_size - 1) / shard_size;
    std::mutex results_mutex;
    std::map<std::string, JournalEntry> fresh;
    core::parallel_for(shards, options.jobs, [&](std::size_t shard) {
        std::size_t begin = shard * shard_size;
        std::size_t end = std::min(pending.size(), begin + shard_size);
        for (std::size_t i = begin; i < end; ++i) {
            const JobSpec& job = *pending[i];
            flow::fault::Injector::instance().fire_crash("campaign.job/" +
                                                         job.dir);
            JobRun run = execute_job(job, options);
            flow::fault::Injector::instance().fire_crash("campaign.journal");
            journal.append(run.entry);
            if (options.halt_after &&
                journal.appended() >= options.halt_after) {
                // The CI chaos hook: die exactly like a kill -9 would,
                // after a deterministic number of finished jobs.
                std::raise(SIGKILL);
            }
            std::lock_guard<std::mutex> lock(results_mutex);
            fresh[job.id] = std::move(run.entry);
        }
    });

    flow::fault::Injector::instance().fire_crash("campaign.aggregate");
    obs::ObsSpan aggregate_span("campaign.aggregate");

    // Final outcomes in canonical expansion order, replayed or fresh.
    for (const JobSpec& job : jobs) {
        const JournalEntry* entry = nullptr;
        if (auto it = fresh.find(job.id); it != fresh.end())
            entry = &it->second;
        else if (auto replayed = done.find(job.id); replayed != done.end())
            entry = &replayed->second;
        if (!entry) continue;  // unreachable: every job ran or was replayed
        result.outcomes.push_back(*entry);
        if (entry->status == "ok")
            ++result.jobs_ok;
        else
            ++result.jobs_quarantined;
    }

    result.status = result.jobs_ok == jobs.size() ? CampaignStatus::Ok
                    : result.jobs_ok              ? CampaignStatus::Partial
                                                  : CampaignStatus::Failed;

    // ---- Aggregation. Every byte below is deterministic: metrics come
    // from the committed per-job reports (identical whether the job ran
    // now or in a previous, interrupted process), never from this run's
    // timings or cache behaviour.
    std::map<std::string, obs::json::Value> reports;
    for (const JournalEntry& entry : result.outcomes) {
        if (entry.status != "ok") continue;
        std::string text = read_file(options.out_dir / "jobs" / entry.dir /
                                     "report.json");
        obs::json::Value doc;
        std::string error;
        if (obs::json::parse(text, doc, error))
            reports.emplace(entry.job, std::move(doc));
    }
    std::map<std::string, const JobSpec*> spec_of;
    for (const JobSpec& job : jobs) spec_of[job.id] = &job;

    std::ostringstream report;
    report << "{\n  \"schema\": \"uhcg-campaign-report-v1\",\n"
           << "  \"status\": \"" << to_string(result.status) << "\",\n"
           << "  \"jobs\": {\"total\": " << result.jobs_total
           << ", \"ok\": " << result.jobs_ok
           << ", \"quarantined\": " << result.jobs_quarantined << "},\n"
           << "  \"summary\": [\n";
    for (std::size_t i = 0; i < result.outcomes.size(); ++i) {
        const JournalEntry& entry = result.outcomes[i];
        const JobSpec& job = *spec_of[entry.job];
        report << "    {\"dir\": \"" << diag::json_escape(entry.dir)
               << "\", \"model\": \"" << diag::json_escape(job.model_name)
               << "\", \"strategy\": \"" << diag::json_escape(job.strategy)
               << "\", \"backend\": \"" << diag::json_escape(job.backend)
               << "\", \"cost_model\": \""
               << diag::json_escape(job.cost_model.name) << "\", \"status\": \""
               << diag::json_escape(entry.status) << "\"";
        auto found = reports.find(entry.job);
        if (found != reports.end()) {
            double value = 0.0;
            if (row_number(found->second, "best makespan", value))
                report << ", \"best_makespan\": " << value;
            if (row_number(found->second, "best processors", value))
                report << ", \"best_processors\": "
                       << static_cast<std::size_t>(value);
            if (row_number(found->second, "files", value))
                report << ", \"files\": " << static_cast<std::size_t>(value);
            if (row_number(found->second, "bytes", value))
                report << ", \"bytes\": " << static_cast<std::size_t>(value);
            std::string hash = row_text(found->second, "output hash");
            if (!hash.empty())
                report << ", \"output_hash\": \"" << diag::json_escape(hash)
                       << "\"";
        }
        if (entry.status != "ok")
            report << ", \"error_code\": \""
                   << diag::json_escape(entry.error_code) << "\"";
        report << "}" << (i + 1 < result.outcomes.size() ? "," : "") << "\n";
    }
    report << "  ],\n  \"pareto\": [\n";

    // Cross-(backend × cost-model) Pareto per model, over the explore
    // jobs' recommended candidates: a point survives when no other point
    // has <= processors and < makespan.
    std::vector<std::string> model_order;
    std::map<std::string, std::vector<ParetoPoint>> points_of;
    for (const JournalEntry& entry : result.outcomes) {
        if (entry.status != "ok") continue;
        const JobSpec& job = *spec_of[entry.job];
        if (job.strategy != "explore") continue;
        auto found = reports.find(entry.job);
        if (found == reports.end()) continue;
        double makespan = 0.0, processors = 0.0;
        if (!row_number(found->second, "best makespan", makespan) ||
            !row_number(found->second, "best processors", processors))
            continue;
        if (!points_of.count(job.model_name))
            model_order.push_back(job.model_name);
        points_of[job.model_name].push_back(
            {static_cast<std::size_t>(processors), makespan, entry.dir});
    }
    for (std::size_t m = 0; m < model_order.size(); ++m) {
        const std::string& model = model_order[m];
        std::vector<ParetoPoint>& points = points_of[model];
        std::sort(points.begin(), points.end(),
                  [](const ParetoPoint& a, const ParetoPoint& b) {
                      if (a.processors != b.processors)
                          return a.processors < b.processors;
                      if (a.makespan != b.makespan)
                          return a.makespan < b.makespan;
                      return a.job_dir < b.job_dir;
                  });
        std::vector<ParetoPoint> front;
        for (const ParetoPoint& p : points) {
            bool dominated = false;
            for (const ParetoPoint& q : points)
                if (q.processors <= p.processors && q.makespan < p.makespan) {
                    dominated = true;
                    break;
                }
            if (!dominated &&
                (front.empty() || front.back().processors != p.processors ||
                 front.back().makespan != p.makespan))
                front.push_back(p);
        }
        report << "    {\"model\": \"" << diag::json_escape(model)
               << "\", \"points\": [";
        for (std::size_t p = 0; p < front.size(); ++p)
            report << (p ? ", " : "") << "{\"processors\": "
                   << front[p].processors << ", \"makespan\": "
                   << front[p].makespan << ", \"job\": \""
                   << diag::json_escape(front[p].job_dir) << "\"}";
        report << "]}" << (m + 1 < model_order.size() ? "," : "") << "\n";
    }
    report << "  ]\n}\n";

    result.report_path = options.out_dir / "campaign-report.json";
    flow::write_file_atomic(result.report_path, report.str());

    // The failure record, schema uhcg-campaign-manifest-v1 — the campaign
    // sibling of the flow's uhcg-flow-manifest-v1.
    std::ostringstream cm;
    cm << "{\n  \"schema\": \"uhcg-campaign-manifest-v1\",\n"
       << "  \"status\": \"" << to_string(result.status) << "\",\n"
       << "  \"jobs\": [\n";
    for (std::size_t i = 0; i < result.outcomes.size(); ++i) {
        const JournalEntry& entry = result.outcomes[i];
        const JobSpec& job = *spec_of[entry.job];
        cm << "    {\"id\": \"" << diag::json_escape(entry.job)
           << "\", \"dir\": \"" << diag::json_escape(entry.dir)
           << "\", \"model\": \"" << diag::json_escape(job.model_name)
           << "\", \"strategy\": \"" << diag::json_escape(job.strategy)
           << "\", \"backend\": \"" << diag::json_escape(job.backend)
           << "\", \"cost_model\": \""
           << diag::json_escape(job.cost_model.name) << "\", \"status\": \""
           << diag::json_escape(entry.status) << "\"";
        if (!entry.report_hash.empty())
            cm << ", \"report_hash\": \""
               << diag::json_escape(entry.report_hash) << "\"";
        cm << "}" << (i + 1 < result.outcomes.size() ? "," : "") << "\n";
    }
    cm << "  ],\n  \"quarantined\": [\n";
    bool first = true;
    for (const JournalEntry& entry : result.outcomes) {
        if (entry.status == "ok") continue;
        const JobSpec& job = *spec_of[entry.job];
        if (!first) cm << ",\n";
        first = false;
        cm << "    {\"id\": \"" << diag::json_escape(entry.job)
           << "\", \"dir\": \"" << diag::json_escape(entry.dir)
           << "\", \"strategy\": \"" << diag::json_escape(job.strategy)
           << "\", \"reason\": \"" << diag::json_escape(entry.error_message)
           << "\", \"error_codes\": [\""
           << diag::json_escape(entry.error_code) << "\"]}";
    }
    if (!first) cm << "\n";
    cm << "  ]\n}\n";

    result.manifest_path = options.out_dir / "campaign-manifest.json";
    flow::write_file_atomic(result.manifest_path, cm.str());

    return result;
}

}  // namespace uhcg::campaign
