#include "campaign/manifest.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include "flow/checkpoint.hpp"
#include "obs/json.hpp"
#include "obs/obs.hpp"
#include "sim/backend.hpp"

namespace uhcg::campaign {

namespace fs = std::filesystem;

namespace {

void manifest_error(diag::DiagnosticEngine& engine, const std::string& origin,
                    const std::string& message) {
    engine.error(diag::codes::kCampaignManifest, origin + ": " + message);
}

/// Pulls an array of strings; a scalar string is accepted as a one-element
/// list (small manifests read better that way).
bool string_list(const obs::json::Value& value, std::vector<std::string>& out) {
    if (value.is_string()) {
        out.push_back(value.string);
        return true;
    }
    if (!value.is_array()) return false;
    for (const obs::json::Value& item : value.array) {
        if (!item.is_string()) return false;
        out.push_back(item.string);
    }
    return true;
}

bool read_size(const obs::json::Value& value, std::size_t& out) {
    if (!value.is_number() || value.number < 0) return false;
    out = static_cast<std::size_t>(value.number);
    return true;
}

/// File-system-safe job directory component.
std::string sanitize(std::string_view text) {
    std::string out;
    for (char c : text) {
        if (std::isalnum(static_cast<unsigned char>(c)) || c == '-' ||
            c == '_')
            out += c;
        else
            out += '_';
    }
    return out.empty() ? std::string("model") : out;
}

std::string hex16(std::uint64_t value) {
    static const char* digits = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[static_cast<std::size_t>(i)] = digits[value & 0xF];
        value >>= 4;
    }
    return out;
}

}  // namespace

std::uint64_t cost_model_fingerprint(const sim::MpsocParams& params) {
    // Canonical text rendering, so equal parameters always hash equally
    // regardless of how the manifest spelled them.
    std::ostringstream canon;
    canon << "cycles_per_work=" << params.cycles_per_work
          << ";swfifo_cost_per_byte=" << params.swfifo_cost_per_byte
          << ";gfifo_cost_per_byte=" << params.gfifo_cost_per_byte
          << ";bus_setup=" << params.bus_setup
          << ";shared_bus=" << (params.shared_bus ? 1 : 0);
    return flow::CheckpointStore::fnv1a(canon.str());
}

Manifest parse_manifest(const std::string& text,
                        diag::DiagnosticEngine& engine,
                        const std::string& origin) {
    Manifest manifest;
    obs::json::Value doc;
    std::string error;
    if (!obs::json::parse(text, doc, error)) {
        manifest_error(engine, origin, "invalid JSON: " + error);
        return manifest;
    }
    if (!doc.is_object()) {
        manifest_error(engine, origin, "manifest must be a JSON object");
        return manifest;
    }
    const obs::json::Value* schema = doc.find("schema");
    if (!schema || !schema->is_string() ||
        schema->string != "uhcg-campaign-v1") {
        manifest_error(engine, origin,
                       "schema must be \"uhcg-campaign-v1\"");
        return manifest;
    }

    const obs::json::Value* models = doc.find("models");
    if (!models || !string_list(*models, manifest.models) ||
        manifest.models.empty()) {
        manifest_error(engine, origin,
                       "\"models\" must be a non-empty list of paths");
        return manifest;
    }

    if (const obs::json::Value* strategies = doc.find("strategies")) {
        if (!string_list(*strategies, manifest.strategies)) {
            manifest_error(engine, origin, "\"strategies\" must be strings");
            return manifest;
        }
        for (const std::string& s : manifest.strategies)
            if (s != "generate" && s != "explore") {
                manifest_error(engine, origin,
                               "unknown strategy '" + s +
                                   "' (want generate or explore)");
                return manifest;
            }
    }
    if (manifest.strategies.empty())
        manifest.strategies = {"generate", "explore"};

    if (const obs::json::Value* backends = doc.find("backends")) {
        if (!string_list(*backends, manifest.backends)) {
            manifest_error(engine, origin, "\"backends\" must be strings");
            return manifest;
        }
        for (const std::string& b : manifest.backends)
            if (!sim::BackendRegistry::builtins().find(b)) {
                manifest_error(engine, origin,
                               "unknown simulation backend '" + b + "'");
                return manifest;
            }
    }
    if (manifest.backends.empty())
        manifest.backends = {std::string(sim::kDefaultBackend)};

    if (const obs::json::Value* cms = doc.find("cost_models")) {
        if (!cms->is_array()) {
            manifest_error(engine, origin, "\"cost_models\" must be a list");
            return manifest;
        }
        for (const obs::json::Value& cm : cms->array) {
            if (!cm.is_object()) {
                manifest_error(engine, origin,
                               "each cost model must be an object");
                return manifest;
            }
            CostModel model;
            for (const auto& [key, value] : cm.object) {
                if (key == "name" && value.is_string()) {
                    model.name = sanitize(value.string);
                } else if (key == "cycles_per_work" && value.is_number()) {
                    model.params.cycles_per_work = value.number;
                } else if (key == "swfifo_cost_per_byte" &&
                           value.is_number()) {
                    model.params.swfifo_cost_per_byte = value.number;
                } else if (key == "gfifo_cost_per_byte" && value.is_number()) {
                    model.params.gfifo_cost_per_byte = value.number;
                } else if (key == "bus_setup" && value.is_number()) {
                    model.params.bus_setup = value.number;
                } else if (key == "shared_bus" && value.is_bool()) {
                    model.params.shared_bus = value.boolean;
                } else {
                    manifest_error(engine, origin,
                                   "unknown cost-model field '" + key + "'");
                    return manifest;
                }
            }
            manifest.cost_models.push_back(std::move(model));
        }
    }
    if (manifest.cost_models.empty()) manifest.cost_models.push_back({});

    if (const obs::json::Value* explore = doc.find("explore")) {
        if (!explore->is_object()) {
            manifest_error(engine, origin, "\"explore\" must be an object");
            return manifest;
        }
        for (const auto& [key, value] : explore->object) {
            bool ok = key == "max_processors"
                          ? read_size(value, manifest.max_processors)
                          : key == "random_samples"
                                ? read_size(value, manifest.random_samples)
                                : false;
            if (!ok) {
                manifest_error(engine, origin,
                               "bad explore option '" + key + "'");
                return manifest;
            }
        }
    }
    if (const obs::json::Value* generate = doc.find("generate")) {
        if (!generate->is_object()) {
            manifest_error(engine, origin, "\"generate\" must be an object");
            return manifest;
        }
        for (const auto& [key, value] : generate->object) {
            bool ok = false;
            if (key == "with_kpn" && value.is_bool()) {
                manifest.with_kpn = value.boolean;
                ok = true;
            } else if (key == "iterations") {
                ok = read_size(value, manifest.iterations);
            }
            if (!ok) {
                manifest_error(engine, origin,
                               "bad generate option '" + key + "'");
                return manifest;
            }
        }
    }
    return manifest;
}

Manifest load_manifest(const std::string& path,
                       diag::DiagnosticEngine& engine) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        engine.error(diag::codes::kCampaignManifest,
                     "cannot read manifest file: " + path);
        return {};
    }
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    return parse_manifest(text, engine, path);
}

std::vector<JobSpec> expand(const Manifest& manifest,
                            diag::DiagnosticEngine& engine) {
    obs::ObsSpan span("campaign.expand");
    // Resolve the model list first: directories scan for *.xmi (sorted,
    // non-recursive), files pass through. Order is canonical.
    std::vector<std::string> model_paths;
    for (const std::string& entry : manifest.models) {
        std::error_code ec;
        if (fs::is_directory(entry, ec)) {
            std::vector<std::string> found;
            for (const fs::directory_entry& file :
                 fs::directory_iterator(entry, ec)) {
                if (file.path().extension() == ".xmi")
                    found.push_back(file.path().string());
            }
            if (ec) {
                engine.error(diag::codes::kCampaignManifest,
                             "cannot scan model directory: " + entry);
                continue;
            }
            std::sort(found.begin(), found.end());
            if (found.empty())
                engine.warning(diag::codes::kCampaignManifest,
                               "model directory holds no .xmi files: " +
                                   entry);
            model_paths.insert(model_paths.end(), found.begin(), found.end());
        } else {
            model_paths.push_back(entry);
        }
    }

    // Options fingerprint: the per-strategy knobs that change job outputs.
    std::ostringstream opts;
    opts << "max_processors=" << manifest.max_processors
         << ";random_samples=" << manifest.random_samples
         << ";with_kpn=" << (manifest.with_kpn ? 1 : 0)
         << ";iterations=" << manifest.iterations;
    const std::string options_canon = opts.str();

    std::vector<JobSpec> jobs;
    for (const std::string& path : model_paths) {
        std::ifstream in(path, std::ios::binary);
        if (!in) {
            engine.error(diag::codes::kCampaignManifest,
                         "cannot read model file: " + path);
            continue;
        }
        auto bytes = std::make_shared<std::string>(
            (std::istreambuf_iterator<char>(in)),
            std::istreambuf_iterator<char>());
        std::string stem = sanitize(fs::path(path).stem().string());
        for (const std::string& strategy : manifest.strategies)
            for (std::size_t ci = 0; ci < manifest.cost_models.size(); ++ci)
                for (const std::string& backend : manifest.backends) {
                    const CostModel& cm = manifest.cost_models[ci];
                    std::uint64_t hash =
                        flow::CheckpointStore::fnv1a(*bytes);
                    hash = flow::CheckpointStore::fnv1a(stem, hash);
                    hash = flow::CheckpointStore::fnv1a(strategy, hash);
                    hash = flow::CheckpointStore::fnv1a(backend, hash);
                    hash = flow::CheckpointStore::fnv1a(cm.name, hash);
                    hash = flow::CheckpointStore::fnv1a(
                        hex16(cost_model_fingerprint(cm.params)), hash);
                    hash = flow::CheckpointStore::fnv1a(options_canon, hash);
                    JobSpec job;
                    job.id = hex16(hash);
                    job.dir = stem + "__" + strategy + "__" +
                              sanitize(backend) + "__" + cm.name + "__" +
                              job.id.substr(0, 8);
                    job.model_path = path;
                    job.model_name = stem;
                    job.strategy = strategy;
                    job.backend = backend;
                    job.cost_model = cm;
                    job.model_bytes = bytes;
                    job.manifest = &manifest;
                    jobs.push_back(std::move(job));
                }
    }
    // Exact duplicates (the same model listed twice, two spellings of one
    // cost model) collapse to one job — two workers must never race on one
    // job directory.
    std::vector<JobSpec> unique;
    std::set<std::string> seen;
    for (JobSpec& job : jobs)
        if (seen.insert(job.id).second) unique.push_back(std::move(job));
    if (unique.size() != jobs.size())
        obs::counter("campaign.jobs_deduped")
            .add(jobs.size() - unique.size());
    obs::counter("campaign.jobs_expanded").add(unique.size());
    return unique;
}

}  // namespace uhcg::campaign
