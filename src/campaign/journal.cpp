#include "campaign/journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "diag/diag.hpp"
#include "flow/checkpoint.hpp"
#include "obs/json.hpp"
#include "obs/obs.hpp"

namespace uhcg::campaign {

namespace {

constexpr const char* kHashSuffix = ",\"h\":\"";

std::string hex16(std::uint64_t value) {
    static const char* digits = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[static_cast<std::size_t>(i)] = digits[value & 0xF];
        value >>= 4;
    }
    return out;
}

/// Serializes everything *before* the `,"h":"…"}` guard. Field order is
/// fixed — the line bytes are part of what resume byte-compares.
std::string serialize_body(const JournalEntry& entry) {
    std::ostringstream out;
    out << "{\"schema\":\"uhcg-campaign-journal-v1\""
        << ",\"job\":\"" << diag::json_escape(entry.job) << "\""
        << ",\"dir\":\"" << diag::json_escape(entry.dir) << "\""
        << ",\"status\":\"" << diag::json_escape(entry.status) << "\""
        << ",\"attempts\":" << entry.attempts;
    if (!entry.report_hash.empty())
        out << ",\"report_hash\":\"" << diag::json_escape(entry.report_hash)
            << "\"";
    if (!entry.error_code.empty())
        out << ",\"error_code\":\"" << diag::json_escape(entry.error_code)
            << "\""
            << ",\"error_message\":\""
            << diag::json_escape(entry.error_message) << "\"";
    return out.str();
}

/// Verifies the `,"h":"<16 hex>"}` guard and parses the line. Returns
/// false for torn, truncated or tampered lines.
bool parse_line(const std::string& line, JournalEntry& out) {
    std::size_t mark = line.rfind(kHashSuffix);
    if (mark == std::string::npos) return false;
    std::string body = line.substr(0, mark);
    std::string tail = line.substr(mark + std::string(kHashSuffix).size());
    if (tail.size() != 16 + 2 || tail.substr(16) != "\"}") return false;
    if (tail.substr(0, 16) !=
        hex16(flow::CheckpointStore::fnv1a(body)))
        return false;

    obs::json::Value doc;
    std::string error;
    if (!obs::json::parse(body + "}", doc, error) || !doc.is_object())
        return false;
    const obs::json::Value* schema = doc.find("schema");
    if (!schema || !schema->is_string() ||
        schema->string != "uhcg-campaign-journal-v1")
        return false;
    auto text = [&doc](const char* key) -> std::string {
        const obs::json::Value* v = doc.find(key);
        return v && v->is_string() ? v->string : std::string();
    };
    out.job = text("job");
    out.dir = text("dir");
    out.status = text("status");
    out.report_hash = text("report_hash");
    out.error_code = text("error_code");
    out.error_message = text("error_message");
    if (const obs::json::Value* attempts = doc.find("attempts"))
        if (attempts->is_number() && attempts->number >= 0)
            out.attempts = static_cast<std::size_t>(attempts->number);
    return !out.job.empty() &&
           (out.status == "ok" || out.status == "quarantined");
}

}  // namespace

Journal::~Journal() { close(); }

std::vector<JournalEntry> Journal::load() const {
    std::vector<JournalEntry> entries;
    std::ifstream in(path_, std::ios::binary);
    if (!in) return entries;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty()) continue;
        JournalEntry entry;
        if (parse_line(line, entry)) {
            entries.push_back(std::move(entry));
        } else {
            obs::counter("campaign.journal_torn").add();
        }
    }
    return entries;
}

void Journal::open_for_append(bool truncate) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (fd_ >= 0) return;
    int flags = O_WRONLY | O_CREAT | O_APPEND | (truncate ? O_TRUNC : 0);
    fd_ = ::open(path_.c_str(), flags, 0644);
    if (fd_ < 0)
        throw std::runtime_error("cannot open campaign journal '" +
                                 path_.string() + "'");
}

void Journal::append(const JournalEntry& entry) {
    std::string body = serialize_body(entry);
    std::string line = body + kHashSuffix +
                       hex16(flow::CheckpointStore::fnv1a(body)) + "\"}\n";
    std::lock_guard<std::mutex> lock(mutex_);
    if (fd_ < 0)
        throw std::logic_error("journal append before open_for_append");
    // One write(2) for the whole line: after a kill -9 the kernel either
    // has the full line or (at worst, mid-syscall) a prefix that the hash
    // guard rejects on load. Never two syscalls — that is how torn lines
    // that *look* intact happen.
    ssize_t written =
        ::write(fd_, line.data(), line.size());
    if (written != static_cast<ssize_t>(line.size()))
        throw std::runtime_error("short write to campaign journal '" +
                                 path_.string() + "'");
    ++appended_;
    obs::counter("campaign.journal_appends").add();
}

void Journal::close() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

}  // namespace uhcg::campaign
