// manifest.hpp — campaign manifest parsing and deterministic expansion.
//
// A campaign manifest (schema `uhcg-campaign-v1`) names the sweep matrix:
// UML models × job strategies × cost-model parameter sets × simulation
// backends (PR 8's registry). `load_manifest` parses + validates it with
// structured `campaign.manifest` diagnostics; `expand` resolves the model
// list (files and directories of .xmi), reads every model's bytes once and
// produces the job list in one canonical order — model-major, then
// strategy, then cost model, then backend — so job identity is stable
// across runs, machines and job counts.
//
// Every job carries a content-hashed id: FNV-1a over (model bytes, model
// stem, strategy, backend, cost-model name + parameter fingerprint,
// campaign options fingerprint). Any input change — a model edit, a
// different cost model, a new backend — changes the id, which is exactly
// what makes the checkpoint journal safe to replay: a journal entry keys
// on the job id, so stale entries simply never match. Exact duplicates in
// the matrix collapse to one job.
//
//   {
//     "schema": "uhcg-campaign-v1",
//     "models": ["corpus", "models/crane.xmi"],
//     "strategies": ["generate", "explore"],
//     "backends": ["dynamic-fifo", "sdf"],
//     "cost_models": [{"name": "default"},
//                     {"name": "slow-bus", "gfifo_cost_per_byte": 40}],
//     "explore": {"max_processors": 4, "random_samples": 3},
//     "generate": {"with_kpn": false, "iterations": 100}
//   }
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "diag/diag.hpp"
#include "sim/mpsoc.hpp"

namespace uhcg::campaign {

/// One named cost-model parameter set (overrides on sim::MpsocParams).
struct CostModel {
    std::string name = "default";
    sim::MpsocParams params;
};

/// Parsed manifest — the sweep matrix plus per-strategy knobs.
struct Manifest {
    /// Model files and/or directories, as written in the manifest.
    std::vector<std::string> models;
    /// Job strategies: "generate" (full heterogeneous codegen through the
    /// resilient flow) and/or "explore" (DSE sweep on the cost model).
    std::vector<std::string> strategies;
    /// Simulation backend names, validated against sim::BackendRegistry.
    std::vector<std::string> backends;
    std::vector<CostModel> cost_models;
    // explore knobs
    std::size_t max_processors = 0;
    std::size_t random_samples = 3;
    // generate knobs
    bool with_kpn = false;
    std::size_t iterations = 100;
};

/// One expanded job. Model bytes are shared across the jobs of one model.
struct JobSpec {
    /// Content-hashed identity, 16 hex digits — the journal key.
    std::string id;
    /// Deterministic, human-readable job directory name (relative to the
    /// campaign output directory): <model-stem>__<strategy>__<backend>__
    /// <cost-model>__<id prefix>.
    std::string dir;
    std::string model_path;  ///< as resolved (for the campaign manifest)
    std::string model_name;  ///< sanitized stem
    std::string strategy;    ///< "generate" | "explore"
    std::string backend;
    CostModel cost_model;
    std::shared_ptr<const std::string> model_bytes;
    const Manifest* manifest = nullptr;  ///< owning manifest (knobs)
};

/// Parses a manifest document. Malformed JSON, a wrong schema, unknown
/// strategies/backends/fields report `campaign.manifest` errors into
/// `engine`; on any error the return is unusable (check
/// engine.has_errors()).
Manifest parse_manifest(const std::string& text,
                        diag::DiagnosticEngine& engine,
                        const std::string& origin = "<manifest>");

/// Reads and parses a manifest file (unreadable file = structured error).
Manifest load_manifest(const std::string& path,
                       diag::DiagnosticEngine& engine);

/// Expands the matrix into jobs in canonical order. Model directory
/// entries are scanned (non-recursively) for `*.xmi`, sorted by name;
/// unreadable models report `campaign.manifest` errors. Returns the jobs
/// of every readable model — callers decide whether a partial expansion
/// is acceptable.
std::vector<JobSpec> expand(const Manifest& manifest,
                            diag::DiagnosticEngine& engine);

/// FNV-1a fingerprint of a cost model's parameters (not its name — two
/// names for the same parameters intentionally collide).
std::uint64_t cost_model_fingerprint(const sim::MpsocParams& params);

}  // namespace uhcg::campaign
