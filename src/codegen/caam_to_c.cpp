#include "codegen/caam_to_c.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <stdexcept>
#include <vector>

#include "simulink/caam.hpp"
#include "transform/text.hpp"

namespace uhcg::codegen {

using simulink::Block;
using simulink::BlockType;
using simulink::CaamRole;
using simulink::Line;
using simulink::PortRef;
using simulink::System;
using transform::CodeWriter;
using transform::sanitize_identifier;

namespace {

int port_number(const Block& b) {
    std::string text = b.parameter_or("Port", "1");
    try {
        std::size_t used = 0;
        int value = std::stoi(text, &used);
        if (used != text.size()) throw std::invalid_argument(text);
        return value;
    } catch (const std::exception&) {
        throw std::runtime_error("block '" + b.name() +
                                 "' has a non-numeric Port parameter ('" + text +
                                 "')");
    }
}

/// Where a thread boundary port connects outside the Thread-SS.
struct Endpoint {
    enum Kind { Channel, Env, Delay } kind = Env;
    const Block* channel = nullptr;  // when kind == Channel
    std::string var;                 // when kind == Env
    std::size_t delay = 0;           // when kind == Delay (boundary index)
};

struct ThreadCode {
    const Block* tss = nullptr;
    std::string fn_name;  // e.g. "CPU1_T1_step"
    std::map<int, Endpoint> input_sources;            // tss input port → source
    std::map<int, std::vector<Endpoint>> output_sinks;  // tss output port → sinks
};

class Generator {
public:
    explicit Generator(const simulink::Model& model) : model_(&model) {}

    GeneratedProgram run() {
        collect_channels();
        collect_threads();
        GeneratedProgram out;
        out.channel_count = channels_.size();
        out.files["uhcg_rt.h"] = runtime_header();
        auto [sf_h, sf_c, count] = sfunction_files();
        out.sfunction_count = count;
        out.files["sfunctions.h"] = sf_h;
        out.files["sfunctions.c"] = sf_c;
        for (const Block* cpu : simulink::cpu_subsystems(*model_))
            out.files["cpu_" + sanitize_identifier(cpu->name()) + ".c"] =
                cpu_file(*cpu);
        out.files["main.c"] = main_file();
        return out;
    }

private:
    // --- structural analysis -------------------------------------------------

    void collect_channels() {
        auto scan = [&](const System& sys, auto&& self) -> void {
            // Boundary delays: UnitDelays at the CPU or architecture layer
            // (§4.2.2 temporal barriers inserted on channel links). Delays
            // inside Thread-SS layers are handled by the thread emitter.
            bool thread_layer = sys.owner_block() != nullptr &&
                                sys.owner_block()->role() ==
                                    CaamRole::ThreadSubsystem;
            for (const Block* b : sys.blocks()) {
                if (b->type() == BlockType::CommChannel)
                    channel_index_[b] = channels_.size(), channels_.push_back(b);
                if (b->type() == BlockType::UnitDelay && !thread_layer)
                    delay_index_[b] = delays_.size(), delays_.push_back(b);
                if (b->system()) self(*b->system(), self);
            }
        };
        scan(model_->root(), scan);
    }

    Endpoint resolve_source(const System& sys, PortRef src) const {
        const Block& b = *src.block;
        if (b.type() == BlockType::CommChannel) return {Endpoint::Channel, &b, ""};
        if (b.type() == BlockType::UnitDelay)
            return {Endpoint::Delay, nullptr, "", delay_index_.at(&b)};
        if (b.type() == BlockType::Inport) {
            if (b.parent() == &model_->root())
                return {Endpoint::Env, nullptr, b.parameter_or("Var", b.name())};
            // CPU boundary marker: surface to the root.
            const Block* cpu = b.parent()->owner_block();
            const Line* line = model_->root().line_into(
                {const_cast<Block*>(cpu), port_number(b)});
            if (!line)
                throw std::runtime_error("undriven CPU input feeding codegen");
            return resolve_source(model_->root(), line->source());
        }
        (void)sys;
        throw std::runtime_error("unexpected driver block '" + b.name() +
                                 "' for a thread input");
    }

    void resolve_sinks(const System& sys, PortRef src,
                       std::vector<Endpoint>& out) const {
        const Line* line = sys.line_from(src);
        if (!line) return;  // dangling output: legal, value unused
        for (const PortRef& dst : line->destinations()) {
            const Block& b = *dst.block;
            if (b.type() == BlockType::CommChannel) {
                out.push_back({Endpoint::Channel, &b, ""});
            } else if (b.type() == BlockType::UnitDelay) {
                out.push_back(
                    {Endpoint::Delay, nullptr, "", delay_index_.at(&b)});
            } else if (b.type() == BlockType::Outport) {
                if (b.parent() == &model_->root()) {
                    out.push_back(
                        {Endpoint::Env, nullptr, b.parameter_or("Var", b.name())});
                } else {
                    const Block* cpu = b.parent()->owner_block();
                    resolve_sinks(*cpu->parent(),
                                  {const_cast<Block*>(cpu), port_number(b)}, out);
                }
            } else if (b.type() == BlockType::SubSystem) {
                // Another CPU fed directly (no channel) — not produced by
                // the mapper, but tolerate by ignoring; sim handles it.
            }
        }
    }

    void collect_threads() {
        for (Block* cpu : simulink::cpu_subsystems(
                 const_cast<simulink::Model&>(*model_))) {
            for (Block* tss : simulink::thread_subsystems(*cpu)) {
                ThreadCode tc;
                tc.tss = tss;
                tc.fn_name = sanitize_identifier(cpu->name()) + "_" +
                             sanitize_identifier(tss->name()) + "_step";
                for (int p = 1; p <= tss->input_count(); ++p)
                    tc.input_sources[p] =
                        resolve_source(*cpu->system(),
                                       source_of_input(*cpu->system(), *tss, p));
                for (int p = 1; p <= tss->output_count(); ++p) {
                    resolve_sinks(*cpu->system(), {tss, p}, tc.output_sinks[p]);
                    for (const Endpoint& e : tc.output_sinks[p])
                        if (e.kind == Endpoint::Delay)
                            delay_fed_by_thread_.insert(delays_[e.delay]);
                }
                threads_.push_back(std::move(tc));
            }
        }
    }

    static PortRef source_of_input(const System& sys, Block& tss, int port) {
        const Line* line = sys.line_into({&tss, port});
        if (!line)
            throw std::runtime_error("thread input " + std::to_string(port) +
                                     " of '" + tss.name() + "' is undriven");
        return line->source();
    }

    // --- emission -------------------------------------------------------------

    std::string runtime_header() const {
        CodeWriter w;
        w.line("/* Generated by uml-hcg CAAM code generator — do not edit. */");
        w.line("#ifndef UHCG_RT_H");
        w.line("#define UHCG_RT_H");
        w.blank();
        w.line("#define UHCG_FIFO_DEPTH 64");
        w.open("typedef struct {");
        w.line("double buf[UHCG_FIFO_DEPTH];");
        w.line("int head, tail, count;");
        w.line("double last;");
        w.close("} uhcg_fifo_t;");
        w.blank();
        w.line("/* Register-backed FIFO: reading an empty FIFO repeats the last");
        w.line(" * value (0.0 initially), matching the single-rate semantics of");
        w.line(" * the execution engine. */");
        w.open("static inline void uhcg_fifo_write(uhcg_fifo_t* f, double v) {");
        w.open("if (f->count < UHCG_FIFO_DEPTH) {");
        w.line("f->buf[f->tail] = v;");
        w.line("f->tail = (f->tail + 1) % UHCG_FIFO_DEPTH;");
        w.line("f->count++;");
        w.close();
        w.close();
        w.blank();
        w.open("static inline double uhcg_fifo_read(uhcg_fifo_t* f) {");
        w.open("if (f->count > 0) {");
        w.line("f->last = f->buf[f->head];");
        w.line("f->head = (f->head + 1) % UHCG_FIFO_DEPTH;");
        w.line("f->count--;");
        w.close();
        w.line("return f->last;");
        w.close();
        w.blank();
        w.line("double uhcg_env_read(const char* var);");
        w.line("void uhcg_env_write(const char* var, double value);");
        w.blank();
        w.line("/* Boundary temporal barriers (UnitDelays on channel links):");
        w.line(" * dstate is the published output, dpend the value latched at");
        w.line(" * the end of each global step. */");
        w.line("extern double uhcg_dstate[];");
        w.line("extern double uhcg_dpend[];");
        w.blank();
        w.line("#endif /* UHCG_RT_H */");
        return w.str();
    }

    std::tuple<std::string, std::string, std::size_t> sfunction_files() const {
        // One prototype per distinct FunctionName; bodies come from the
        // Source parameter (the UML operation's C code) or a stub.
        std::map<std::string, const Block*> sfuns;
        auto scan = [&](const System& sys, auto&& self) -> void {
            for (const Block* b : sys.blocks()) {
                if (b->type() == BlockType::SFunction)
                    sfuns.emplace(b->parameter_or("FunctionName", b->name()), b);
                if (b->system()) self(*b->system(), self);
            }
        };
        scan(model_->root(), scan);

        CodeWriter h;
        h.line("/* Generated by uml-hcg CAAM code generator — do not edit. */");
        h.line("#ifndef UHCG_SFUNCTIONS_H");
        h.line("#define UHCG_SFUNCTIONS_H");
        h.blank();
        for (const auto& [name, block] : sfuns)
            h.line("void sfun_" + sanitize_identifier(name) +
                   "(const double* in, int nin, double* out, int nout);");
        h.blank();
        h.line("#endif /* UHCG_SFUNCTIONS_H */");

        CodeWriter c;
        c.line("/* S-function behaviours (from UML operation bodies). */");
        c.line("#include \"sfunctions.h\"");
        c.blank();
        for (const auto& [name, block] : sfuns) {
            c.line("void sfun_" + sanitize_identifier(name) +
                   "(const double* in, int nin, double* out, int nout)");
            c.open("{");
            c.line("(void)in; (void)nin; (void)out; (void)nout;");
            if (const std::string* src = block->find_parameter("Source")) {
                c.raw(*src);
                c.raw("\n");
            } else {
                c.line("/* TODO: behaviour for '" + name + "' was not modeled */");
                c.line("if (nout > 0) out[0] = (nin > 0) ? in[0] : 0.0;");
            }
            c.close();
            c.blank();
        }
        return {h.str(), c.str(), sfuns.size()};
    }

    std::string channel_ref(const Block& chan) const {
        return "&uhcg_channels[" +
               std::to_string(channel_index_.at(&chan)) + "]";
    }

    /// Emits one thread step function into `w`.
    void emit_thread(CodeWriter& w, const ThreadCode& tc) const {
        const System& sys = *tc.tss->system();

        // Topological order of the thread layer (UnitDelay = source).
        std::vector<const Block*> blocks = sys.blocks();
        std::map<const Block*, std::size_t> idx;
        for (std::size_t i = 0; i < blocks.size(); ++i) idx[blocks[i]] = i;
        std::vector<std::size_t> unmet(blocks.size(), 0);
        std::vector<std::vector<std::size_t>> consumers(blocks.size());
        for (const Line* line : sys.lines()) {
            const Block* src = line->source().block;
            // UnitDelay outputs are state — no ordering constraint. Inport
            // reads DO order: they must be emitted before their consumers.
            if (src->type() == BlockType::UnitDelay) continue;
            for (const PortRef& dst : line->destinations()) {
                consumers[idx[src]].push_back(idx[dst.block]);
                ++unmet[idx[dst.block]];
            }
        }
        std::vector<const Block*> order;
        std::vector<std::size_t> ready;
        for (std::size_t i = 0; i < blocks.size(); ++i)
            if (unmet[i] == 0) ready.push_back(i);
        while (!ready.empty()) {
            auto it = std::min_element(ready.begin(), ready.end());
            std::size_t i = *it;
            ready.erase(it);
            order.push_back(blocks[i]);
            for (std::size_t c : consumers[i])
                if (--unmet[c] == 0) ready.push_back(c);
        }
        if (order.size() != blocks.size())
            throw std::runtime_error("thread '" + tc.tss->name() +
                                     "' still contains a combinational cycle; "
                                     "run insert_temporal_barriers first");

        auto value_name = [&](const Block& b, int port) {
            std::string n = "v_" + sanitize_identifier(b.name());
            if (b.output_count() > 1) n += "_" + std::to_string(port);
            return n;
        };
        auto input_expr = [&](const Block& b, int port) -> std::string {
            const Line* line = sys.line_into({const_cast<Block*>(&b), port});
            if (!line) return "0.0";
            return value_name(*line->source().block, line->source().port);
        };

        w.line("void " + tc.fn_name + "(void)");
        w.open("{");
        for (const Block* b : order) {
            switch (b->type()) {
                case BlockType::Inport: {
                    int tss_port = port_number(*b);
                    const Endpoint& src = tc.input_sources.at(tss_port);
                    std::string rhs;
                    switch (src.kind) {
                        case Endpoint::Channel:
                            rhs = "uhcg_fifo_read(" + channel_ref(*src.channel) +
                                  ")";
                            break;
                        case Endpoint::Delay:
                            rhs = "uhcg_dstate[" + std::to_string(src.delay) + "]";
                            break;
                        case Endpoint::Env:
                            rhs = "uhcg_env_read(\"" + src.var + "\")";
                            break;
                    }
                    w.line("double " + value_name(*b, 1) + " = " + rhs + ";");
                    break;
                }
                case BlockType::Constant:
                    w.line("double " + value_name(*b, 1) + " = " +
                           b->parameter_or("Value", "0") + ";");
                    break;
                case BlockType::Gain:
                    w.line("double " + value_name(*b, 1) + " = " +
                           b->parameter_or("Gain", "1") + " * " +
                           input_expr(*b, 1) + ";");
                    break;
                case BlockType::Product: {
                    std::string signs = b->parameter_or("Inputs", "");
                    std::string expr;
                    for (int p = 1; p <= b->input_count(); ++p) {
                        std::string op =
                            (static_cast<std::size_t>(p - 1) < signs.size() &&
                             signs[p - 1] == '/')
                                ? " / "
                                : " * ";
                        expr += (p == 1 ? (signs.size() > 0 && signs[0] == '/'
                                               ? "1.0 / "
                                               : "")
                                        : op) +
                                input_expr(*b, p);
                    }
                    w.line("double " + value_name(*b, 1) + " = " + expr + ";");
                    break;
                }
                case BlockType::Sum: {
                    std::string signs = b->parameter_or("Inputs", "");
                    std::string expr;
                    for (int p = 1; p <= b->input_count(); ++p) {
                        bool minus = static_cast<std::size_t>(p - 1) < signs.size() &&
                                     signs[p - 1] == '-';
                        expr += (p == 1 ? (minus ? "-" : "")
                                        : (minus ? " - " : " + ")) +
                                input_expr(*b, p);
                    }
                    w.line("double " + value_name(*b, 1) + " = " + expr + ";");
                    break;
                }
                case BlockType::UnitDelay: {
                    // State published at entry; latched at function exit.
                    std::string state = "state_" + tc.fn_name + "_" +
                                        sanitize_identifier(b->name());
                    w.line("double " + value_name(*b, 1) + " = " + state + ";");
                    break;
                }
                case BlockType::SFunction: {
                    std::string fn = "sfun_" +
                                     sanitize_identifier(
                                         b->parameter_or("FunctionName", b->name()));
                    int nin = b->input_count();
                    int nout = std::max(1, b->output_count());
                    std::string ins = "{ ";
                    for (int p = 1; p <= nin; ++p)
                        ins += input_expr(*b, p) + (p == nin ? " }" : ", ");
                    if (nin == 0) ins = "{ 0.0 }";
                    for (int p = 1; p <= b->output_count(); ++p)
                        w.line("double " + value_name(*b, p) + ";");
                    w.open("{");
                    w.line("const double in[] = " + ins + ";");
                    w.line("double out[" + std::to_string(nout) + "] = {0};");
                    w.line(fn + "(in, " + std::to_string(nin) + ", out, " +
                           std::to_string(nout) + ");");
                    for (int p = 1; p <= b->output_count(); ++p)
                        w.line(value_name(*b, p) + " = out[" +
                               std::to_string(p - 1) + "];");
                    w.close();
                    // Unconsumed outputs are legal in the model; keep the
                    // generated unit warning-clean.
                    for (int p = 1; p <= b->output_count(); ++p)
                        if (!sys.line_from({const_cast<Block*>(b), p}))
                            w.line("(void)" + value_name(*b, p) + ";");
                    break;
                }
                case BlockType::Scope:
                    w.line("uhcg_env_write(\"scope:" + b->name() + "\", " +
                           input_expr(*b, 1) + ");");
                    break;
                case BlockType::Outport: {
                    int tss_port = port_number(*b);
                    std::string expr = input_expr(*b, 1);
                    auto sinks = tc.output_sinks.find(tss_port);
                    if (sinks != tc.output_sinks.end()) {
                        for (const Endpoint& s : sinks->second) {
                            if (s.kind == Endpoint::Channel)
                                w.line("uhcg_fifo_write(" +
                                       channel_ref(*s.channel) + ", " + expr +
                                       ");");
                            else if (s.kind == Endpoint::Delay)
                                w.line("uhcg_dpend[" + std::to_string(s.delay) +
                                       "] = " + expr + ";");
                            else
                                w.line("uhcg_env_write(\"" + s.var + "\", " +
                                       expr + ");");
                        }
                    }
                    break;
                }
                case BlockType::CommChannel:
                case BlockType::SubSystem:
                    throw std::runtime_error(
                        "unexpected block type inside a thread layer: " +
                        b->name());
            }
        }
        // Latch delays.
        for (const Block* b : order) {
            if (b->type() != BlockType::UnitDelay) continue;
            std::string state =
                "state_" + tc.fn_name + "_" + sanitize_identifier(b->name());
            w.line(state + " = " + input_expr(*b, 1) + ";");
        }
        w.close();
        w.blank();
    }

    std::string cpu_file(const Block& cpu) const {
        CodeWriter w;
        w.line("/* Generated by uml-hcg CAAM code generator — do not edit. */");
        w.line("#include \"uhcg_rt.h\"");
        w.line("#include \"sfunctions.h\"");
        w.blank();
        w.line("extern uhcg_fifo_t uhcg_channels[];");
        w.blank();
        // Delay state (file scope, one per UnitDelay in this CPU's threads).
        for (const ThreadCode& tc : threads_) {
            if (tc.tss->parent()->owner_block() != &cpu) continue;
            for (const Block* b : tc.tss->system()->blocks())
                if (b->type() == BlockType::UnitDelay)
                    w.line("static double state_" + tc.fn_name + "_" +
                           sanitize_identifier(b->name()) + " = " +
                           b->parameter_or("InitialCondition", "0.0") + ";");
        }
        w.blank();
        for (const ThreadCode& tc : threads_) {
            if (tc.tss->parent()->owner_block() != &cpu) continue;
            emit_thread(w, tc);
        }
        w.line("void " + sanitize_identifier(cpu.name()) + "_step(void)");
        w.open("{");
        for (const ThreadCode& tc : threads_)
            if (tc.tss->parent()->owner_block() == &cpu)
                w.line(tc.fn_name + "();");
        w.close();
        return w.str();
    }

    std::string main_file() const {
        CodeWriter w;
        w.line("/* Generated by uml-hcg CAAM code generator — do not edit. */");
        w.line("#include <stdio.h>");
        w.line("#include \"uhcg_rt.h\"");
        w.blank();
        w.line("uhcg_fifo_t uhcg_channels[" +
               std::to_string(std::max<std::size_t>(1, channels_.size())) +
               "] = {0};");
        w.line("double uhcg_dstate[" +
               std::to_string(std::max<std::size_t>(1, delays_.size())) +
               "] = {0};");
        w.line("double uhcg_dpend[" +
               std::to_string(std::max<std::size_t>(1, delays_.size())) +
               "] = {0};");
        w.blank();
        w.line("/* Default environment: inputs read 0, outputs print. */");
        w.open("double uhcg_env_read(const char* var) {");
        w.line("(void)var;");
        w.line("return 0.0;");
        w.close();
        w.open("void uhcg_env_write(const char* var, double value) {");
        w.line("printf(\"%s = %f\\n\", var, value);");
        w.close();
        w.blank();
        for (const Block* cpu : simulink::cpu_subsystems(*model_))
            w.line("void " + sanitize_identifier(cpu->name()) + "_step(void);");
        w.blank();
        auto steps = static_cast<long>(model_->stop_time / model_->fixed_step);
        w.line("int main(void)");
        w.open("{");
        w.open("for (long k = 0; k < " + std::to_string(std::max(1L, steps)) +
               "; ++k) {");
        for (const Block* cpu : simulink::cpu_subsystems(*model_))
            w.line(sanitize_identifier(cpu->name()) + "_step();");
        // Latch every boundary temporal barrier after the sweep.
        for (std::size_t i = 0; i < delays_.size(); ++i) {
            const Block* d = delays_[i];
            const Line* into = d->parent()->line_into({const_cast<Block*>(d), 1});
            std::string expr = "0.0";
            if (into) {
                Endpoint src = resolve_source(*d->parent(), into->source());
                switch (src.kind) {
                    case Endpoint::Channel:
                        expr = "uhcg_fifo_read(" + channel_ref(*src.channel) + ")";
                        break;
                    case Endpoint::Delay:
                        expr = "uhcg_dstate[" + std::to_string(src.delay) + "]";
                        break;
                    case Endpoint::Env:
                        // Fed by a thread/CPU output: the producer stored the
                        // pending value... or a system input.
                        expr = "uhcg_env_read(\"" + src.var + "\")";
                        break;
                }
            }
            // Thread-output-fed delays use their pending slot instead.
            if (delay_fed_by_thread_.count(d) != 0)
                expr = "uhcg_dpend[" + std::to_string(i) + "]";
            w.line("uhcg_dstate[" + std::to_string(i) + "] = " + expr + ";");
        }
        w.close();
        w.line("return 0;");
        w.close();
        return w.str();
    }

    const simulink::Model* model_;
    std::vector<const Block*> channels_;
    std::map<const Block*, std::size_t> channel_index_;
    std::vector<const Block*> delays_;
    std::map<const Block*, std::size_t> delay_index_;
    std::set<const Block*> delay_fed_by_thread_;
    std::vector<ThreadCode> threads_;
};

}  // namespace

GeneratedProgram generate_c_program(const simulink::Model& model) {
    return Generator(model).run();
}

}  // namespace uhcg::codegen
