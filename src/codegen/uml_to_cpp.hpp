// uml_to_cpp.hpp — the fallback branch of Fig. 1: "in case a Simulink
// compiler is not available, the same UML model can be used to generate
// multithreaded code for other languages". The paper names Java; we emit
// modern C++ (std::thread + blocking queues), which exercises the same
// mapping decisions: one worker per <<SASchedRes>> object, one queue per
// inter-thread data channel, environment hooks for <<IO>> devices, plain
// function calls for passive objects.
#pragma once

#include <string>

#include "diag/diag.hpp"
#include "uml/model.hpp"

namespace uhcg::codegen {

struct CppProgram {
    /// Single translation unit: self-contained, compiles with -std=c++17.
    std::string source;
    std::string file_name;  ///< suggested name, "<model>_threads.cpp"
    std::size_t thread_count = 0;
    std::size_t queue_count = 0;
};

/// Generates the program; `iterations` bounds each thread's main loop so
/// the produced binary terminates (embedded loops are usually endless).
CppProgram generate_cpp_threads(const uml::Model& model,
                                std::size_t iterations = 100);

/// Same generator, reporting lossy decisions (stubbed operation bodies,
/// environment fallbacks for undefined variables, unmatched Set messages)
/// through `engine` under diag::codes::kCodegenThreads. Output is
/// byte-identical to the overload above.
CppProgram generate_cpp_threads(const uml::Model& model, std::size_t iterations,
                                diag::DiagnosticEngine& engine);

}  // namespace uhcg::codegen
