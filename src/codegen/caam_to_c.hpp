// caam_to_c.hpp — Simulink-branch software generation: CAAM → per-CPU C
// code, the multithread code generation step of the Simulink-based MPSoC
// flow the paper targets (one compilation unit per CPU-SS, threads as step
// functions, SWFIFO/GFIFO channel API).
//
// The generated program is self-contained C99: a runtime header with the
// FIFO primitives, one <cpu>.c per processor, an S-function header whose
// implementations come from the UML operation bodies (§4.1: behaviour
// "described in a C code that is compiled and linked"), and a main that
// round-robins the CPU step functions — the software equivalent of the
// fixed-step schedule uhcg::sim executes natively.
#pragma once

#include <map>
#include <string>

#include "simulink/model.hpp"

namespace uhcg::codegen {

struct GeneratedProgram {
    /// File name → contents ("uhcg_rt.h", "sfunctions.h", "sfunctions.c",
    /// "cpu_<name>.c", "main.c").
    std::map<std::string, std::string> files;
    std::size_t channel_count = 0;
    std::size_t sfunction_count = 0;
};

/// Generates the program. Throws std::runtime_error on models that are not
/// valid CAAMs (run simulink::validate_caam first for diagnostics) or that
/// still contain combinational cycles across threads.
GeneratedProgram generate_c_program(const simulink::Model& model);

}  // namespace uhcg::codegen
