// batch.hpp — incremental, batch-oriented MPSoC cost evaluation.
//
// The DSE sweep estimates hundreds of clusterings of the *same* task
// graph under the *same* cost model; `simulate_mpsoc` re-derived the
// topological order and re-priced every edge from scratch for each one.
// This module factors the evaluation the way the sweep consumes it:
//
//  * `MpsocPrep` — the immutable per-(graph, params) precomputation
//    (topological order/positions, per-task compute cycles, per-edge
//    transfer prices), built once and shared read-only by every worker;
//  * `MpsocBatch` — a per-worker evaluator that carries scratch buffers
//    and two reuse layers across consecutive candidates:
//      - per-cluster partial costs (compute cycles, internal traffic, cut
//        traffic/bus occupancy) keyed by the cluster's member set, so a
//        cluster that reappears in a later candidate is never re-priced;
//      - schedule-prefix reuse: neighboring clusterings differ in a few
//        task assignments, and every scan quantity at a topological
//        position depends only on assignments at or before the first
//        affected position — so the timed scan resumes there instead of
//        at zero.
//
// Both layers are exact: an incremental evaluation is bitwise identical
// to a fresh one (the partial of a member set is computed once, in one
// deterministic order; a resumed scan replays the same operations from
// identical state). `simulate_mpsoc` is the chain-free special case, which
// makes it the natural oracle for `dse` verify mode.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/mpsoc.hpp"
#include "taskgraph/clustering.hpp"
#include "taskgraph/graph.hpp"

namespace uhcg::sim {

/// Reuse accounting for one MpsocBatch (one chunk of a sweep).
struct BatchStats {
    std::size_t evaluated = 0;           ///< clusterings priced
    std::size_t partials_computed = 0;   ///< cluster partials priced fresh
    std::size_t partials_reused = 0;     ///< cluster partials served cached
    std::size_t prefix_tasks_reused = 0; ///< scan positions replayed from the
                                         ///< previous candidate's schedule
};

/// Immutable per-(graph, cost-model) precomputation. Throws
/// std::logic_error when the graph is cyclic (no topological order), the
/// same contract the per-candidate simulation had.
class MpsocPrep {
public:
    MpsocPrep(const taskgraph::TaskGraph& graph, const MpsocParams& params);

    const taskgraph::TaskGraph& graph() const { return *graph_; }
    const MpsocParams& params() const { return params_; }

    // The precomputed tables, exposed read-only so alternative pricing
    // backends (sim/backend.hpp) replay the exact arithmetic of the timed
    // scan without re-deriving them.
    const std::vector<taskgraph::TaskIndex>& topo() const { return topo_; }
    const std::vector<std::size_t>& pos() const { return pos_; }
    const std::vector<double>& work() const { return work_; }
    const std::vector<double>& sw_delay() const { return sw_delay_; }
    const std::vector<double>& bus_duration() const { return bus_duration_; }

private:
    friend class MpsocBatch;
    const taskgraph::TaskGraph* graph_;
    MpsocParams params_;
    std::vector<taskgraph::TaskIndex> topo_;  ///< position → task
    std::vector<std::size_t> pos_;            ///< task → position
    std::vector<double> work_;                ///< weight × cycles_per_work
    std::vector<double> sw_delay_;            ///< per edge: cost × swfifo
    std::vector<double> bus_duration_;        ///< per edge: setup + cost × gfifo
};

/// Per-worker incremental evaluator. Not thread-safe; create one per
/// chunk/worker and feed it candidates in locality order (neighbors
/// adjacent) to maximize reuse. Results do not depend on that order.
class MpsocBatch {
public:
    explicit MpsocBatch(const MpsocPrep& prep);

    /// Prices one clustering. Bitwise identical to a fresh
    /// `simulate_mpsoc(prep.graph(), clustering, prep.params())` for any
    /// history of prior calls.
    MpsocResult evaluate(const taskgraph::Clustering& clustering);

    /// Forgets the previous candidate: the next evaluate() runs a full
    /// scan (the per-cluster partial cache is kept — it is history-free).
    void break_chain() { has_prev_ = false; }

    const BatchStats& stats() const { return stats_; }

private:
    /// Costs of one cluster that depend on its member set alone.
    struct ClusterPartial {
        double work = 0.0;           ///< Σ member compute cycles
        double internal_cost = 0.0;  ///< Σ cost of member→member edges
        double cut_cost = 0.0;       ///< Σ cost of member→outside edges
        double cut_bus = 0.0;        ///< Σ bus duration of those edges
        std::size_t cut_edges = 0;   ///< how many cross the boundary
    };

    const ClusterPartial& partial_of(int cluster);
    std::size_t resume_position() const;

    const MpsocPrep& prep_;
    BatchStats stats_;
    std::unordered_map<std::uint64_t, ClusterPartial> partials_;

    // Scratch, persistent across evaluate() calls (the delta chain).
    bool has_prev_ = false;
    std::vector<int> canon_prev_;  ///< previous canonical assignment
    std::vector<int> canon_cur_;
    std::vector<int> dense_;       ///< raw cluster id → canonical id
    std::vector<std::vector<taskgraph::TaskIndex>> members_;
    std::vector<double> finish_;        ///< per task
    std::vector<double> edge_arrival_;  ///< per edge
    std::vector<double> bus_free_at_;   ///< per position, post-pricing
    std::vector<double> cpu_free_;      ///< per cluster, rebuilt on resume
};

}  // namespace uhcg::sim
