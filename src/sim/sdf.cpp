#include "sim/sdf.hpp"

#include <numeric>
#include <queue>

namespace uhcg::sim {

namespace {

/// Positive rational with on-the-fly normalization; rates are uint32 and
/// graphs are small, so uint64 arithmetic never overflows in practice.
struct Rational {
    std::uint64_t num = 1;
    std::uint64_t den = 1;

    void normalize() {
        std::uint64_t g = std::gcd(num, den);
        num /= g;
        den /= g;
    }
};

std::uint64_t lcm(std::uint64_t a, std::uint64_t b) {
    return a / std::gcd(a, b) * b;
}

}  // namespace

SdfAnalysis analyze_sdf(const taskgraph::TaskGraph& graph) {
    using taskgraph::Edge;
    using taskgraph::TaskIndex;
    const std::size_t n = graph.task_count();
    SdfAnalysis out;
    out.consistent = true;
    out.homogeneous = true;
    if (n == 0) return out;

    // Propagate rational firing rates over the undirected connectivity of
    // the graph: fixing rate(seed) = 1, an edge e forces
    // rate(to) = rate(from) * produce(e) / consume(e). A revisited task
    // whose propagated rate disagrees with its stored one witnesses an
    // inconsistency (the balance equations have no solution).
    std::vector<Rational> rate(n);
    std::vector<char> seen(n, 0);
    std::vector<std::vector<TaskIndex>> components;
    for (TaskIndex seed = 0; seed < n; ++seed) {
        if (seen[seed]) continue;
        seen[seed] = 1;
        rate[seed] = Rational{1, 1};
        components.emplace_back();
        std::vector<TaskIndex>& component = components.back();
        component.push_back(seed);
        std::queue<TaskIndex> frontier;
        frontier.push(seed);
        while (!frontier.empty()) {
            TaskIndex t = frontier.front();
            frontier.pop();
            auto visit = [&](std::size_t e, bool forward) {
                const Edge& edge = graph.edge(e);
                TaskIndex other = forward ? edge.to : edge.from;
                // rate(to)*consume == rate(from)*produce.
                Rational implied;
                if (forward) {
                    implied.num = rate[t].num * edge.produce;
                    implied.den = rate[t].den * edge.consume;
                } else {
                    implied.num = rate[t].num * edge.consume;
                    implied.den = rate[t].den * edge.produce;
                }
                implied.normalize();
                if (!seen[other]) {
                    seen[other] = 1;
                    rate[other] = implied;
                    component.push_back(other);
                    frontier.push(other);
                    return;
                }
                if (rate[other].num != implied.num ||
                    rate[other].den != implied.den) {
                    out.consistent = false;
                    if (out.reason.empty())
                        out.reason = "inconsistent token rates around edge " +
                                     graph.name(edge.from) + " -> " +
                                     graph.name(edge.to) + " (" +
                                     std::to_string(edge.produce) + "/" +
                                     std::to_string(edge.consume) + ")";
                }
            };
            for (std::size_t e : graph.out_edges(t)) visit(e, true);
            for (std::size_t e : graph.in_edges(t)) visit(e, false);
        }
    }
    if (!out.consistent) {
        out.homogeneous = false;
        return out;
    }

    // Scale each component's rationals to its minimal integer vector:
    // multiply by the LCM of the component's denominators, then divide by
    // the component's GCD. Per component, because each was seeded
    // independently and disconnected SDF components iterate independently.
    out.repetition.resize(n);
    for (const std::vector<TaskIndex>& component : components) {
        std::uint64_t den_lcm = 1;
        for (TaskIndex t : component) den_lcm = lcm(den_lcm, rate[t].den);
        std::uint64_t g = 0;
        for (TaskIndex t : component) {
            out.repetition[t] = rate[t].num * (den_lcm / rate[t].den);
            g = std::gcd(g, out.repetition[t]);
        }
        if (g > 1)
            for (TaskIndex t : component) out.repetition[t] /= g;
    }

    for (TaskIndex t = 0; t < n; ++t) {
        if (out.repetition[t] == 1) continue;
        out.homogeneous = false;
        out.reason = "task " + graph.name(t) + " fires " +
                     std::to_string(out.repetition[t]) +
                     " time(s) per iteration (multirate graph)";
        break;
    }
    return out;
}

}  // namespace uhcg::sim
