#include "sim/backend.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/obs.hpp"
#include "sim/sdf.hpp"

namespace uhcg::sim {

using taskgraph::Clustering;
using taskgraph::Edge;
using taskgraph::TaskGraph;
using taskgraph::TaskIndex;

namespace {

// ---------------------------------------------------------------------------
// Shared per-candidate scratch: canonical dense labels + member lists, the
// exact renumbering MpsocBatch performs (first-appearance order by task
// index), so every backend agrees on cluster numbering and cpu_busy order.

struct CanonicalScratch {
    std::vector<int> canon;    ///< task → dense canonical cluster id
    std::vector<int> dense;    ///< raw cluster id → canonical id
    std::vector<std::vector<TaskIndex>> members;
    int clusters = 0;

    void build(const Clustering& clustering, std::size_t n) {
        if (n != clustering.task_count())
            throw std::invalid_argument(
                "clustering does not match graph size");
        canon.assign(n, -1);
        int max_raw = -1;
        for (TaskIndex t = 0; t < n; ++t)
            max_raw = std::max(max_raw, clustering.cluster_of(t));
        dense.assign(static_cast<std::size_t>(max_raw + 1), -1);
        int k = 0;
        for (TaskIndex t = 0; t < n; ++t) {
            int& label = dense[static_cast<std::size_t>(clustering.cluster_of(t))];
            if (label < 0) label = k++;
            canon[t] = label;
        }
        clusters = k;
        members.resize(static_cast<std::size_t>(k));
        for (auto& m : members) m.clear();
        for (TaskIndex t = 0; t < n; ++t)
            members[static_cast<std::size_t>(canon[t])].push_back(t);
    }
};

/// Per-cluster aggregates accumulated exactly like MpsocBatch: per-cluster
/// locals summed member-ascending, then added to the result in canonical
/// cluster order — the one deterministic FP summation order both the
/// dynamic engine and the exact backends share.
void accumulate_aggregates(const MpsocPrep& prep, const CanonicalScratch& s,
                           MpsocResult& result) {
    const TaskGraph& graph = prep.graph();
    result.cpu_busy.assign(static_cast<std::size_t>(s.clusters), 0.0);
    for (int ci = 0; ci < s.clusters; ++ci) {
        double work = 0.0, internal_cost = 0.0, cut_cost = 0.0, cut_bus = 0.0;
        std::size_t cut_edges = 0;
        for (TaskIndex t : s.members[static_cast<std::size_t>(ci)]) {
            work += prep.work()[t];
            for (std::size_t e : graph.out_edges(t)) {
                const Edge& edge = graph.edge(e);
                if (s.canon[edge.to] == ci) {
                    internal_cost += edge.cost;
                } else {
                    cut_cost += edge.cost;
                    cut_bus += prep.bus_duration()[e];
                    ++cut_edges;
                }
            }
        }
        result.cpu_busy[static_cast<std::size_t>(ci)] = work;
        result.intra_traffic += internal_cost;
        result.inter_traffic += cut_cost;
        result.bus_busy += cut_bus;
        result.bus_transfers += cut_edges;
    }
}

// ---------------------------------------------------------------------------
// dynamic-fifo: the reference engine, wrapped.

class DynamicFifoEvaluator final : public BackendEvaluator {
public:
    explicit DynamicFifoEvaluator(const MpsocPrep& prep) : batch_(prep) {}
    MpsocResult evaluate(const Clustering& clustering) override {
        return batch_.evaluate(clustering);
    }
    void break_chain() override { batch_.break_chain(); }
    BatchStats stats() const override { return batch_.stats(); }

private:
    MpsocBatch batch_;
};

class DynamicFifoCompiled final : public CompiledModel {
public:
    DynamicFifoCompiled(const TaskGraph& graph, const MpsocParams& params)
        : prep_(graph, params) {}
    std::string_view effective_backend() const override {
        return kDefaultBackend;
    }
    bool exact() const override { return true; }
    std::unique_ptr<BackendEvaluator> evaluator() const override {
        return std::make_unique<DynamicFifoEvaluator>(prep_);
    }

private:
    MpsocPrep prep_;
};

class DynamicFifoBackend final : public Backend {
public:
    std::string_view name() const override { return kDefaultBackend; }
    std::string_view description() const override {
        return "event-driven dynamic-FIFO engine (reference semantics)";
    }
    std::unique_ptr<CompiledModel> compile(
        const TaskGraph& graph, const MpsocParams& params,
        diag::DiagnosticEngine*) const override {
        return std::make_unique<DynamicFifoCompiled>(graph, params);
    }
};

// ---------------------------------------------------------------------------
// analytic: closed-form bound, no event loop. Deliberately inexact — a
// deterministic lower bound combining the three classic limits: the
// dependency critical path (with the clustering's SWFIFO/GFIFO delays but
// no bus serialization), the busiest CPU, and total shared-bus occupancy.

class AnalyticEvaluator final : public BackendEvaluator {
public:
    explicit AnalyticEvaluator(const MpsocPrep& prep) : prep_(prep) {}

    MpsocResult evaluate(const Clustering& clustering) override {
        static obs::Counter& evals = obs::counter("sim.analytic_evals");
        evals.add(1);
        const TaskGraph& graph = prep_.graph();
        const std::size_t n = graph.task_count();
        scratch_.build(clustering, n);
        MpsocResult result;
        accumulate_aggregates(prep_, scratch_, result);

        // Path bound: earliest finish ignoring CPU and bus contention.
        finish_.assign(n, 0.0);
        for (TaskIndex t : prep_.topo()) {
            double ready = 0.0;
            for (std::size_t e : graph.in_edges(t)) {
                const Edge& edge = graph.edge(e);
                double delay = scratch_.canon[edge.from] == scratch_.canon[t]
                                   ? prep_.sw_delay()[e]
                                   : prep_.bus_duration()[e];
                ready = std::max(ready, finish_[edge.from] + delay);
            }
            finish_[t] = ready + prep_.work()[t];
        }
        double path = 0.0;
        for (double f : finish_) path = std::max(path, f);
        double busiest = 0.0;
        for (double w : result.cpu_busy) busiest = std::max(busiest, w);
        result.makespan = std::max(path, busiest);
        if (prep_.params().shared_bus)
            result.makespan = std::max(result.makespan, result.bus_busy);
        return result;
    }

private:
    const MpsocPrep& prep_;
    CanonicalScratch scratch_;
    std::vector<double> finish_;
};

class AnalyticCompiled final : public CompiledModel {
public:
    AnalyticCompiled(const TaskGraph& graph, const MpsocParams& params)
        : prep_(graph, params) {}
    std::string_view effective_backend() const override { return "analytic"; }
    bool exact() const override { return false; }
    std::unique_ptr<BackendEvaluator> evaluator() const override {
        return std::make_unique<AnalyticEvaluator>(prep_);
    }

private:
    MpsocPrep prep_;
};

class AnalyticBackend final : public Backend {
public:
    std::string_view name() const override { return "analytic"; }
    std::string_view description() const override {
        return "closed-form critical-path/contention lower bound (inexact)";
    }
    std::unique_ptr<CompiledModel> compile(
        const TaskGraph& graph, const MpsocParams& params,
        diag::DiagnosticEngine*) const override {
        return std::make_unique<AnalyticCompiled>(graph, params);
    }
};

// ---------------------------------------------------------------------------
// sdf: static-schedule pricing. compile() solves the balance equations;
// a homogeneous graph fixes the periodic schedule (= the topological
// order, one firing per actor per iteration) once, and the evaluator
// replays it per candidate. The replay performs the *same arithmetic in
// the same order* as MpsocBatch — canonical labels, per-cluster aggregate
// locals in canonical order, the identical timed scan with prefix resume —
// so results are bitwise identical to dynamic-fifo; what it drops is the
// member-set FNV fingerprinting and hash-map traffic of the partial cache,
// which is pure overhead once the schedule is known to be static.

class SdfEvaluator final : public BackendEvaluator {
public:
    explicit SdfEvaluator(const MpsocPrep& prep) : prep_(prep) {}

    MpsocResult evaluate(const Clustering& clustering) override {
        const TaskGraph& graph = prep_.graph();
        const std::size_t n = graph.task_count();
        canon_prev_.swap(scratch_.canon);  // keep previous labels for resume
        scratch_.build(clustering, n);
        ++stats_.evaluated;

        MpsocResult result;
        accumulate_aggregates(prep_, scratch_, result);

        // Identical timed scan to MpsocBatch::evaluate step 4, resuming at
        // the earliest position whose pricing could have changed.
        const std::size_t start = resume_position();
        stats_.prefix_tasks_reused += start;
        finish_.resize(n);
        edge_arrival_.resize(graph.edge_count());
        bus_free_at_.resize(n);
        cpu_free_.assign(static_cast<std::size_t>(scratch_.clusters), 0.0);
        for (std::size_t q = 0; q < start; ++q) {
            TaskIndex t = prep_.topo()[q];
            cpu_free_[static_cast<std::size_t>(scratch_.canon[t])] = finish_[t];
        }
        double bus_free = start > 0 ? bus_free_at_[start - 1] : 0.0;
        for (std::size_t q = start; q < n; ++q) {
            TaskIndex t = prep_.topo()[q];
            int c = scratch_.canon[t];
            double ready = cpu_free_[static_cast<std::size_t>(c)];
            for (std::size_t e : graph.in_edges(t))
                ready = std::max(ready, edge_arrival_[e]);
            finish_[t] = ready + prep_.work()[t];
            cpu_free_[static_cast<std::size_t>(c)] = finish_[t];
            for (std::size_t e : graph.out_edges(t)) {
                const Edge& edge = graph.edge(e);
                if (scratch_.canon[edge.to] == c) {
                    edge_arrival_[e] = finish_[t] + prep_.sw_delay()[e];
                } else {
                    double duration = prep_.bus_duration()[e];
                    double transfer_start = finish_[t];
                    if (prep_.params().shared_bus) {
                        transfer_start = std::max(transfer_start, bus_free);
                        bus_free = transfer_start + duration;
                    }
                    edge_arrival_[e] = transfer_start + duration;
                }
            }
            bus_free_at_[q] = bus_free;
        }
        for (TaskIndex t = 0; t < n; ++t)
            result.makespan = std::max(result.makespan, finish_[t]);
        has_prev_ = true;
        return result;
    }

    void break_chain() override { has_prev_ = false; }
    BatchStats stats() const override { return stats_; }

private:
    std::size_t resume_position() const {
        if (!has_prev_ || canon_prev_.size() != scratch_.canon.size()) return 0;
        const TaskGraph& graph = prep_.graph();
        const std::size_t n = scratch_.canon.size();
        std::size_t start = n;
        for (TaskIndex t = 0; t < n; ++t) {
            if (canon_prev_[t] == scratch_.canon[t]) continue;
            start = std::min(start, prep_.pos()[t]);
            for (std::size_t e : graph.in_edges(t))
                start = std::min(start, prep_.pos()[graph.edge(e).from]);
        }
        return start;
    }

    const MpsocPrep& prep_;
    BatchStats stats_;
    CanonicalScratch scratch_;
    bool has_prev_ = false;
    std::vector<int> canon_prev_;
    std::vector<double> finish_;
    std::vector<double> edge_arrival_;
    std::vector<double> bus_free_at_;
    std::vector<double> cpu_free_;
};

class SdfCompiled final : public CompiledModel {
public:
    SdfCompiled(const TaskGraph& graph, const MpsocParams& params,
                std::vector<std::uint64_t> repetition)
        : prep_(graph, params), repetition_(std::move(repetition)) {}
    std::string_view effective_backend() const override { return "sdf"; }
    bool exact() const override { return true; }
    std::unique_ptr<BackendEvaluator> evaluator() const override {
        return std::make_unique<SdfEvaluator>(prep_);
    }
    /// One firing per actor per iteration — all-ones by construction.
    const std::vector<std::uint64_t>& repetition() const { return repetition_; }

private:
    MpsocPrep prep_;
    std::vector<std::uint64_t> repetition_;
};

class SdfBackend final : public Backend {
public:
    std::string_view name() const override { return "sdf"; }
    std::string_view description() const override {
        return "SDF static-schedule pricing (falls back on multirate graphs)";
    }
    std::unique_ptr<CompiledModel> compile(
        const TaskGraph& graph, const MpsocParams& params,
        diag::DiagnosticEngine* engine) const override {
        SdfAnalysis analysis = analyze_sdf(graph);
        if (analysis.homogeneous) {
            // Validate schedulability up front (cyclic graphs throw here,
            // matching the simulate_mpsoc contract), then freeze the
            // periodic schedule for the whole sweep.
            auto compiled = std::make_unique<SdfCompiled>(
                graph, params, std::move(analysis.repetition));
            obs::counter("sim.sdf_schedules_built").add(1);
            return compiled;
        }
        obs::counter("sim.backend_fallbacks").add(1);
        if (engine) {
            std::vector<std::string> notes;
            if (analysis.consistent) {
                std::string vec;
                for (std::size_t t = 0; t < analysis.repetition.size(); ++t)
                    vec += (t ? ", " : "") + graph.name(t) + "=" +
                           std::to_string(analysis.repetition[t]);
                notes.push_back("repetition vector: [" + vec + "]");
            }
            notes.push_back(
                "candidates are priced by the dynamic-fifo engine instead");
            engine->report(
                diag::Severity::Warning, diag::codes::kSimBackendFallback,
                "sdf backend cannot build a static schedule: " +
                    analysis.reason,
                {}, std::move(notes));
        }
        return std::make_unique<DynamicFifoCompiled>(graph, params);
    }
};

}  // namespace

// ---------------------------------------------------------------------------
// Registry.

BackendRegistry& BackendRegistry::add(std::unique_ptr<Backend> backend) {
    backends_.push_back(std::move(backend));
    return *this;
}

const Backend* BackendRegistry::find(std::string_view name) const {
    for (const auto& b : backends_)
        if (b->name() == name) return b.get();
    return nullptr;
}

const BackendRegistry& BackendRegistry::builtins() {
    static const BackendRegistry registry = [] {
        BackendRegistry r;
        r.add(std::make_unique<DynamicFifoBackend>())
            .add(std::make_unique<AnalyticBackend>())
            .add(std::make_unique<SdfBackend>());
        return r;
    }();
    return registry;
}

const Backend* find_backend(std::string_view name) {
    return BackendRegistry::builtins().find(name.empty() ? kDefaultBackend
                                                         : name);
}

const Backend& backend_or_throw(std::string_view name) {
    if (const Backend* backend = find_backend(name)) return *backend;
    std::string known;
    for (const auto& b : BackendRegistry::builtins().backends())
        known += (known.empty() ? "" : ", ") + std::string(b->name());
    throw std::invalid_argument("unknown simulation backend '" +
                                std::string(name) + "' (known: " + known +
                                ")");
}

MpsocResult simulate_backend(const TaskGraph& graph,
                             const Clustering& clustering,
                             const MpsocParams& params,
                             std::string_view backend,
                             diag::DiagnosticEngine* engine) {
    obs::ObsSpan span("sim.backend");
    const Backend& be = backend_or_throw(backend);
    std::unique_ptr<CompiledModel> compiled = be.compile(graph, params, engine);
    span.annotate("sim.backend", compiled->effective_backend());
    return compiled->evaluator()->evaluate(clustering);
}

}  // namespace uhcg::sim
