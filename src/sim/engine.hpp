// engine.hpp — fixed-step discrete-time execution of a simulink::Model.
//
// This is the stand-in for MathWorks Simulink's solver: it makes the
// generated CAAM *executable*, which is what lets the test-suite and the
// crane experiment demonstrate §4.2.2 — a cyclic dataflow model without
// temporal barriers cannot be scheduled (DeadlockError names the cycle),
// while the same model after insert_temporal_barriers runs.
//
// Semantics:
//  * the hierarchy is flattened: subsystem boundaries are resolved through
//    their Inport/Outport marker blocks, so only functional blocks are
//    scheduled;
//  * each step evaluates blocks in a static topological order of the
//    combinational dependency graph; UnitDelay blocks publish their state
//    *before* the sweep and latch their input *after* it — they are the
//    temporal barriers;
//  * communication channels are pass-through within a step (a FIFO write
//    and read in the same iteration), matching the SWFIFO/GFIFO blocks of
//    the MPSoC flow — which is exactly why they do not break cycles;
//  * S-functions dispatch through a registry keyed by the block's
//    FunctionName parameter, with per-instance state (the C-coded
//    behaviours of §4.1, bound natively).
#pragma once

#include <functional>
#include <map>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "simulink/model.hpp"

namespace uhcg::sim {

/// Behaviour of one S-function instance. `state` persists across steps
/// (sized by `state_size` at registration).
using SFunction = std::function<void(std::span<const double> inputs,
                                     std::span<double> outputs, double t,
                                     std::vector<double>& state)>;

/// Registry of S-function behaviours, keyed by FunctionName.
class SFunctionRegistry {
public:
    void register_function(std::string name, SFunction fn,
                           std::size_t state_size = 0);
    bool contains(const std::string& name) const;
    const SFunction& function(const std::string& name) const;
    std::size_t state_size(const std::string& name) const;

private:
    struct Entry {
        SFunction fn;
        std::size_t state_size;
    };
    std::map<std::string, Entry> entries_;
};

/// Thrown when the model contains a combinational cycle: the scheduler
/// cannot order the blocks and a dataflow implementation would deadlock.
class DeadlockError : public std::runtime_error {
public:
    explicit DeadlockError(std::vector<std::string> cycle);
    /// Names of blocks on the unschedulable cycle.
    const std::vector<std::string>& cycle() const { return cycle_; }

private:
    std::vector<std::string> cycle_;
};

/// External input: value as a function of simulation time.
using InputSignal = std::function<double(double t)>;

struct SimResult {
    std::vector<double> time;
    /// Root Outport name → recorded values (one per step).
    std::map<std::string, std::vector<double>> outputs;
    /// Scope block full-path name → recorded values.
    std::map<std::string, std::vector<double>> scopes;
    std::size_t steps = 0;
    /// Total values pushed through CommChannel blocks, by protocol.
    std::map<std::string, std::size_t> channel_traffic;
};

class Simulator {
public:
    /// Builds the schedule; throws DeadlockError on combinational cycles
    /// and std::runtime_error on unresolvable structure (undriven inputs,
    /// unregistered S-functions).
    Simulator(const simulink::Model& model, const SFunctionRegistry& registry);

    /// Binds the root Inport block named `name` (its Var parameter or block
    /// name) to a signal. Unbound inputs read 0.0.
    void set_input(const std::string& name, InputSignal signal);

    /// Runs `steps` fixed-size steps (model.fixed_step each).
    SimResult run(std::size_t steps);
    /// Runs until model.stop_time.
    SimResult run();

    /// Static schedule (block full paths, evaluation order) — for tests.
    std::vector<std::string> schedule() const;

private:
    struct Net;  // internal flattened representation
    std::shared_ptr<Net> net_;
    std::map<std::string, InputSignal> inputs_;
};

}  // namespace uhcg::sim
