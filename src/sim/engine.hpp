// engine.hpp — fixed-step discrete-time execution of a simulink::Model.
//
// This is the stand-in for MathWorks Simulink's solver: it makes the
// generated CAAM *executable*, which is what lets the test-suite and the
// crane experiment demonstrate §4.2.2 — a cyclic dataflow model without
// temporal barriers cannot be scheduled (DeadlockError names the cycle),
// while the same model after insert_temporal_barriers runs.
//
// Semantics:
//  * the hierarchy is flattened: subsystem boundaries are resolved through
//    their Inport/Outport marker blocks, so only functional blocks are
//    scheduled;
//  * each step evaluates blocks in a static topological order of the
//    combinational dependency graph; UnitDelay blocks publish their state
//    *before* the sweep and latch their input *after* it — they are the
//    temporal barriers;
//  * communication channels are pass-through within a step (a FIFO write
//    and read in the same iteration), matching the SWFIFO/GFIFO blocks of
//    the MPSoC flow — which is exactly why they do not break cycles;
//  * S-functions dispatch through a registry keyed by the block's
//    FunctionName parameter, with per-instance state (the C-coded
//    behaviours of §4.1, bound natively).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "diag/diag.hpp"
#include "simulink/model.hpp"

namespace uhcg::sim {

/// Behaviour of one S-function instance. `state` persists across steps
/// (sized by `state_size` at registration).
using SFunction = std::function<void(std::span<const double> inputs,
                                     std::span<double> outputs, double t,
                                     std::vector<double>& state)>;

/// Registry of S-function behaviours, keyed by FunctionName.
class SFunctionRegistry {
public:
    void register_function(std::string name, SFunction fn,
                           std::size_t state_size = 0);
    bool contains(const std::string& name) const;
    const SFunction& function(const std::string& name) const;
    std::size_t state_size(const std::string& name) const;

private:
    struct Entry {
        SFunction fn;
        std::size_t state_size;
    };
    std::map<std::string, Entry> entries_;
};

/// One combinational dependency between two blocks stuck on the cycle.
struct CycleEdge {
    std::string from;  // driver block full path
    std::string to;    // consumer block full path
};

/// Thrown when the model contains a combinational cycle: the scheduler
/// cannot order the blocks and a dataflow implementation would deadlock.
/// Carries both the stuck blocks and the dependency edges among them so a
/// driver can print the actual loop, not just its membership.
class DeadlockError : public std::runtime_error {
public:
    explicit DeadlockError(std::vector<std::string> cycle,
                           std::vector<CycleEdge> edges = {});
    /// Names of blocks on the unschedulable cycle.
    const std::vector<std::string>& cycle() const { return cycle_; }
    /// Combinational dependencies among the stuck blocks.
    const std::vector<CycleEdge>& edges() const { return edges_; }

private:
    std::vector<std::string> cycle_;
    std::vector<CycleEdge> edges_;
};

/// External input: value as a function of simulation time.
using InputSignal = std::function<double(double t)>;

/// Step budget for watchdogged execution; 0 = unlimited.
struct WatchdogBudget {
    /// Simulation steps allowed in one run() call.
    std::size_t max_steps = 0;
    /// Block evaluations allowed in one run() call (steps × blocks).
    std::size_t max_block_evals = 0;
};

struct SimResult {
    std::vector<double> time;
    /// Root Outport name → recorded values (one per step).
    std::map<std::string, std::vector<double>> outputs;
    /// Scope block full-path name → recorded values.
    std::map<std::string, std::vector<double>> scopes;
    std::size_t steps = 0;
    /// Total values pushed through CommChannel blocks, by protocol.
    std::map<std::string, std::size_t> channel_traffic;
    /// Set by the watchdogged run(): the budget cut the run short.
    bool budget_exhausted = false;
};

class Simulator {
public:
    /// Builds the schedule; throws DeadlockError on combinational cycles
    /// and std::runtime_error on unresolvable structure (undriven inputs,
    /// unregistered S-functions).
    Simulator(const simulink::Model& model, const SFunctionRegistry& registry);

    /// Non-throwing factory: scheduling failures (combinational cycles,
    /// undriven inputs, unregistered S-functions) become structured
    /// diagnostics — sim.deadlock carries the stuck blocks and their
    /// dependency edges as notes — and nullopt is returned.
    static std::optional<Simulator> build(const simulink::Model& model,
                                          const SFunctionRegistry& registry,
                                          diag::DiagnosticEngine& engine);

    /// Binds the root Inport block named `name` (its Var parameter or block
    /// name) to a signal. Unbound inputs read 0.0.
    void set_input(const std::string& name, InputSignal signal);

    /// Runs `steps` fixed-size steps (model.fixed_step each).
    SimResult run(std::size_t steps);
    /// Runs until model.stop_time.
    SimResult run();

    /// Watchdogged run: executes at most the budgeted steps/evaluations.
    /// When the budget trips, the partial result is returned with
    /// `budget_exhausted` set and a sim.watchdog diagnostic reported.
    SimResult run(std::size_t steps, diag::DiagnosticEngine& engine,
                  const WatchdogBudget& budget = {});

    /// Static schedule (block full paths, evaluation order) — for tests.
    std::vector<std::string> schedule() const;

private:
    struct Net;  // internal flattened representation
    std::shared_ptr<Net> net_;
    std::map<std::string, InputSignal> inputs_;
};

}  // namespace uhcg::sim
