#include "sim/batch.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/obs.hpp"

namespace uhcg::sim {

using taskgraph::Clustering;
using taskgraph::Edge;
using taskgraph::TaskGraph;
using taskgraph::TaskIndex;

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t fnv1a(std::uint64_t hash, std::uint64_t value) {
    for (int i = 0; i < 8; ++i) {
        hash ^= (value >> (i * 8)) & 0xffu;
        hash *= kFnvPrime;
    }
    return hash;
}

}  // namespace

MpsocPrep::MpsocPrep(const TaskGraph& graph, const MpsocParams& params)
    : graph_(&graph), params_(params), topo_(graph.topological_order()) {
    const std::size_t n = graph.task_count();
    pos_.resize(n);
    for (std::size_t q = 0; q < n; ++q) pos_[topo_[q]] = q;
    work_.resize(n);
    for (TaskIndex t = 0; t < n; ++t)
        work_[t] = graph.weight(t) * params.cycles_per_work;
    const std::size_t m = graph.edge_count();
    sw_delay_.resize(m);
    bus_duration_.resize(m);
    for (std::size_t e = 0; e < m; ++e) {
        const Edge& edge = graph.edge(e);
        sw_delay_[e] = edge.cost * params.swfifo_cost_per_byte;
        bus_duration_[e] = params.bus_setup + edge.cost * params.gfifo_cost_per_byte;
    }
}

MpsocBatch::MpsocBatch(const MpsocPrep& prep) : prep_(prep) {}

const MpsocBatch::ClusterPartial& MpsocBatch::partial_of(int cluster) {
    const std::vector<TaskIndex>& members =
        members_[static_cast<std::size_t>(cluster)];
    std::uint64_t fp = fnv1a(kFnvOffset, members.size());
    for (TaskIndex t : members) fp = fnv1a(fp, t);
    auto it = partials_.find(fp);
    if (it != partials_.end()) {
        ++stats_.partials_reused;
        return it->second;
    }
    ++stats_.partials_computed;
    const TaskGraph& graph = *prep_.graph_;
    ClusterPartial p;
    for (TaskIndex t : members) {
        p.work += prep_.work_[t];
        for (std::size_t e : graph.out_edges(t)) {
            const Edge& edge = graph.edge(e);
            // Internality depends only on the member set (is `to` one of
            // us?), which is exactly what the cache key fingerprints — so
            // a cached partial stays valid across candidates.
            if (canon_cur_[edge.to] == cluster) {
                p.internal_cost += edge.cost;
            } else {
                p.cut_cost += edge.cost;
                p.cut_bus += prep_.bus_duration_[e];
                ++p.cut_edges;
            }
        }
    }
    return partials_.emplace(fp, p).first->second;
}

std::size_t MpsocBatch::resume_position() const {
    if (!has_prev_ || canon_prev_.size() != canon_cur_.size()) return 0;
    const TaskGraph& graph = *prep_.graph_;
    const std::size_t n = canon_cur_.size();
    std::size_t start = n;
    for (TaskIndex t = 0; t < n; ++t) {
        if (canon_prev_[t] == canon_cur_[t]) continue;
        // A changed task invalidates its own position *and* every producer
        // position feeding it: an in-edge is priced when the producer runs,
        // and that price reads the consumer's cluster.
        start = std::min(start, prep_.pos_[t]);
        for (std::size_t e : graph.in_edges(t))
            start = std::min(start, prep_.pos_[graph.edge(e).from]);
    }
    return start;
}

MpsocResult MpsocBatch::evaluate(const Clustering& clustering) {
    static obs::Counter& runs = obs::counter("sim.mpsoc_runs");
    runs.add(1);
    const TaskGraph& graph = *prep_.graph_;
    const std::size_t n = graph.task_count();
    if (n != clustering.task_count())
        throw std::invalid_argument("clustering does not match graph size");
    ++stats_.evaluated;

    // 1. Canonical dense labels, first-appearance order by task index.
    //    (Clustering::merge can leave sparse raw ids, so never assume the
    //    raw assignment is dense.)
    canon_cur_.assign(n, -1);
    int max_raw = -1;
    for (TaskIndex t = 0; t < n; ++t)
        max_raw = std::max(max_raw, clustering.cluster_of(t));
    dense_.assign(static_cast<std::size_t>(max_raw + 1), -1);
    int k = 0;
    for (TaskIndex t = 0; t < n; ++t) {
        int& label = dense_[static_cast<std::size_t>(clustering.cluster_of(t))];
        if (label < 0) label = k++;
        canon_cur_[t] = label;
    }

    // 2. Member lists per canonical cluster (ascending task index).
    members_.resize(static_cast<std::size_t>(k));
    for (auto& m : members_) m.clear();
    for (TaskIndex t = 0; t < n; ++t)
        members_[static_cast<std::size_t>(canon_cur_[t])].push_back(t);

    // 3. Aggregates from per-cluster partials, summed in canonical cluster
    //    order — one deterministic order shared by fresh and incremental
    //    evaluation, and no subtractions: a clustering with no cut edges
    //    reports inter_traffic exactly 0.0.
    MpsocResult result;
    result.cpu_busy.assign(static_cast<std::size_t>(k), 0.0);
    for (int ci = 0; ci < k; ++ci) {
        const ClusterPartial& p = partial_of(ci);
        result.cpu_busy[static_cast<std::size_t>(ci)] = p.work;
        result.intra_traffic += p.internal_cost;
        result.inter_traffic += p.cut_cost;
        result.bus_busy += p.cut_bus;
        result.bus_transfers += p.cut_edges;
    }

    // 4. Timed scan with prefix resume. Every quantity at topological
    //    position q (finish, edge arrivals, bus_free) depends only on the
    //    labels of tasks involved in pricing at positions <= q, and
    //    resume_position() guarantees all of those are unchanged below it —
    //    so replaying the stored prefix is bitwise exact.
    const std::size_t start = resume_position();
    stats_.prefix_tasks_reused += start;
    finish_.resize(n);
    edge_arrival_.resize(graph.edge_count());
    bus_free_at_.resize(n);
    cpu_free_.assign(static_cast<std::size_t>(k), 0.0);
    for (std::size_t q = 0; q < start; ++q) {
        TaskIndex t = prep_.topo_[q];
        cpu_free_[static_cast<std::size_t>(canon_cur_[t])] = finish_[t];
    }
    double bus_free = start > 0 ? bus_free_at_[start - 1] : 0.0;
    for (std::size_t q = start; q < n; ++q) {
        TaskIndex t = prep_.topo_[q];
        int c = canon_cur_[t];
        double ready = cpu_free_[static_cast<std::size_t>(c)];
        for (std::size_t e : graph.in_edges(t))
            ready = std::max(ready, edge_arrival_[e]);
        finish_[t] = ready + prep_.work_[t];
        cpu_free_[static_cast<std::size_t>(c)] = finish_[t];
        for (std::size_t e : graph.out_edges(t)) {
            const Edge& edge = graph.edge(e);
            if (canon_cur_[edge.to] == c) {
                edge_arrival_[e] = finish_[t] + prep_.sw_delay_[e];
            } else {
                double duration = prep_.bus_duration_[e];
                double transfer_start = finish_[t];
                if (prep_.params_.shared_bus) {
                    transfer_start = std::max(transfer_start, bus_free);
                    bus_free = transfer_start + duration;
                }
                edge_arrival_[e] = transfer_start + duration;
            }
        }
        bus_free_at_[q] = bus_free;
    }
    for (TaskIndex t = 0; t < n; ++t)
        result.makespan = std::max(result.makespan, finish_[t]);

    canon_prev_.swap(canon_cur_);
    has_prev_ = true;
    return result;
}

}  // namespace uhcg::sim
