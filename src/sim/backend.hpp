// backend.hpp — pluggable pricing backends behind one simulation contract.
//
// Virtuoso's pitch — "built on Sniper but can be plugged into multiple
// simulators" — applied to our cost layer: every consumer of the MPSoC
// cost model (the DSE sweep, the flow's advisory estimate pass, the CLI,
// the serve daemon) prices candidates through a named `Backend` instead of
// calling the dynamic-FIFO engine directly. Three builtins:
//
//   dynamic-fifo   the event-driven engine of sim/mpsoc + sim/batch — the
//                  reference semantics every exact backend must reproduce;
//   analytic       closed-form critical-path/contention bound, no event
//                  loop: max(dependency-path bound, per-CPU work bound,
//                  shared-bus occupancy bound). Orders of magnitude cheaper
//                  and deliberately *inexact* (a lower bound, for triage
//                  sweeps) — never cross-verified bitwise;
//   sdf            SDF static-schedule pricing (Fakih et al., PAPERS.md):
//                  `compile` solves the balance equations (sim/sdf.hpp);
//                  on a homogeneous (single-rate) graph it fixes the
//                  periodic schedule at compile time and prices candidates
//                  by replaying it — bitwise identical to dynamic-fifo,
//                  but with no per-cluster fingerprint hashing in the
//                  inner loop. Non-static rates fall back to dynamic-fifo
//                  with a structured `sim.backend-fallback` diagnostic.
//
// Split mirrors sim/batch: `Backend::compile` is the per-(graph, params)
// precomputation, shared read-only across workers; `CompiledModel::
// evaluator` mints the per-worker mutable evaluator. The registry mirrors
// flow::StrategyRegistry (name-keyed, registration order).
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "diag/diag.hpp"
#include "sim/batch.hpp"
#include "sim/mpsoc.hpp"
#include "taskgraph/clustering.hpp"
#include "taskgraph/graph.hpp"

namespace uhcg::sim {

/// The default backend — the engine `simulate_mpsoc` has always used.
inline constexpr std::string_view kDefaultBackend = "dynamic-fifo";

/// Per-worker pricing state. Not thread-safe; mint one per worker/chunk
/// (CompiledModel::evaluator) and feed it candidates in locality order.
class BackendEvaluator {
public:
    virtual ~BackendEvaluator() = default;
    /// Prices one clustering of the compiled graph.
    virtual MpsocResult evaluate(const taskgraph::Clustering& clustering) = 0;
    /// Forgets incremental state from the previous candidate, if any.
    virtual void break_chain() {}
    /// Reuse accounting (all-zero for backends without reuse layers).
    virtual BatchStats stats() const { return {}; }
};

/// Immutable per-(graph, params) compilation, shared read-only by every
/// worker of a sweep — the backend-generic face of sim::MpsocPrep.
class CompiledModel {
public:
    virtual ~CompiledModel() = default;
    /// The backend actually pricing candidates. Differs from the requested
    /// backend after a fallback ("sdf" on a multirate graph compiles to
    /// "dynamic-fifo") — memo caches must key on *this* name.
    virtual std::string_view effective_backend() const = 0;
    /// True when results are bitwise identical to dynamic-fifo makespans
    /// (the cross-backend verify contract). False for bounds (analytic).
    virtual bool exact() const = 0;
    virtual std::unique_ptr<BackendEvaluator> evaluator() const = 0;
};

class Backend {
public:
    virtual ~Backend() = default;
    virtual std::string_view name() const = 0;
    /// One-line description for --help and the docs.
    virtual std::string_view description() const = 0;
    /// Compiles `graph` under `params`. A backend that cannot honour its
    /// own semantics falls back (see CompiledModel::effective_backend),
    /// reporting a `sim.backend-fallback` warning into `engine` when one
    /// is given; it never fails compile for rate reasons. A cyclic graph
    /// still throws std::logic_error — the contract simulate_mpsoc had.
    virtual std::unique_ptr<CompiledModel> compile(
        const taskgraph::TaskGraph& graph, const MpsocParams& params,
        diag::DiagnosticEngine* engine = nullptr) const = 0;
};

/// Name-keyed backend registry; iteration order is registration order.
class BackendRegistry {
public:
    BackendRegistry& add(std::unique_ptr<Backend> backend);
    const Backend* find(std::string_view name) const;
    const std::vector<std::unique_ptr<Backend>>& backends() const {
        return backends_;
    }
    /// The process-wide registry of builtins, registration order:
    /// dynamic-fifo, analytic, sdf.
    static const BackendRegistry& builtins();

private:
    std::vector<std::unique_ptr<Backend>> backends_;
};

/// Builtin lookup: empty name resolves to kDefaultBackend; an unknown
/// name throws std::invalid_argument listing the registered backends.
const Backend& backend_or_throw(std::string_view name);
/// Builtin lookup without the throw; nullptr for unknown (empty name
/// still resolves to the default).
const Backend* find_backend(std::string_view name);

/// One-shot convenience mirroring simulate_mpsoc: compile + price one
/// clustering on the named builtin backend.
MpsocResult simulate_backend(const taskgraph::TaskGraph& graph,
                             const taskgraph::Clustering& clustering,
                             const MpsocParams& params,
                             std::string_view backend,
                             diag::DiagnosticEngine* engine = nullptr);

}  // namespace uhcg::sim
