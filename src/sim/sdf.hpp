// sdf.hpp — synchronous-dataflow rate analysis of CAAM task graphs.
//
// Fakih et al. ("Automatic SDF-based Code Generation from Simulink
// Models", PAPERS.md) observe that static-rate CAAMs admit a compile-time
// periodic schedule, eliminating dynamic simulation from the pricing loop.
// This module does the rate half of that argument: solve the SDF balance
// equations
//
//     rep[from] * produce(e) == rep[to] * consume(e)   for every edge e
//
// for the repetition vector `rep` (the per-task firing counts of one
// periodic iteration). A graph is *consistent* when a solution exists and
// *homogeneous* (single-rate, HSDF) when the minimal solution is all-ones
// — the case where one firing per task per iteration makes the
// topological order itself the static schedule. The SDF simulation
// backend commits to a compile-time schedule only for homogeneous graphs
// and falls back to the dynamic engine otherwise (see sim/backend.hpp).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "taskgraph/graph.hpp"

namespace uhcg::sim {

struct SdfAnalysis {
    /// The balance equations have a solution (every connected component
    /// propagates one consistent rational rate).
    bool consistent = false;
    /// Consistent and the minimal repetition vector is all-ones: one
    /// firing per task per iteration, so the topological order is a valid
    /// periodic schedule.
    bool homogeneous = false;
    /// Minimal integer repetition vector, per task (empty when
    /// inconsistent). All-ones iff `homogeneous`.
    std::vector<std::uint64_t> repetition;
    /// Human-readable reason when !homogeneous (names the offending edge
    /// or task) — the payload of the backend-fallback diagnostic.
    std::string reason;
};

/// Solves the balance equations of `graph`. Pure structural analysis: it
/// never throws on cyclic graphs (rates are about tokens, not
/// schedulability) and costs O(tasks + edges).
SdfAnalysis analyze_sdf(const taskgraph::TaskGraph& graph);

}  // namespace uhcg::sim
