#include "sim/engine.hpp"

#include <algorithm>
#include <sstream>

#include "obs/obs.hpp"

namespace uhcg::sim {

using simulink::Block;
using simulink::BlockType;
using simulink::Line;
using simulink::PortRef;
using simulink::System;

void SFunctionRegistry::register_function(std::string name, SFunction fn,
                                          std::size_t state_size) {
    entries_[std::move(name)] = {std::move(fn), state_size};
}

bool SFunctionRegistry::contains(const std::string& name) const {
    return entries_.count(name) != 0;
}

const SFunction& SFunctionRegistry::function(const std::string& name) const {
    auto it = entries_.find(name);
    if (it == entries_.end())
        throw std::runtime_error("no S-function registered for '" + name + "'");
    return it->second.fn;
}

std::size_t SFunctionRegistry::state_size(const std::string& name) const {
    auto it = entries_.find(name);
    return it == entries_.end() ? 0 : it->second.state_size;
}

DeadlockError::DeadlockError(std::vector<std::string> cycle,
                             std::vector<CycleEdge> edges)
    : std::runtime_error([&cycle] {
          std::ostringstream msg;
          msg << "combinational cycle — dataflow deadlock through:";
          for (const auto& b : cycle) msg << ' ' << b;
          return msg.str();
      }()),
      cycle_(std::move(cycle)),
      edges_(std::move(edges)) {}

namespace {

bool is_marker(const Block& b, const System& root) {
    // Inport/Outport blocks below the root are hierarchy markers; at the
    // root they are the model's external interface.
    if (b.type() != BlockType::Inport && b.type() != BlockType::Outport)
        return false;
    return b.parent() != &root;
}

std::string full_path(const Block& b) {
    std::string path = b.name();
    for (const System* s = b.parent(); s && s->owner_block();
         s = s->owner_block()->parent())
        path = s->owner_block()->name() + "/" + path;
    return path;
}

/// Numeric block parameters parsed with context: a corrupt model file must
/// name the block and parameter at fault, not die in a bare std::stod.
double param_double(const Block& b, const char* name, const char* fallback) {
    std::string v = b.parameter_or(name, fallback);
    try {
        std::size_t used = 0;
        double parsed = std::stod(v, &used);
        if (used != v.size()) throw std::invalid_argument(v);
        return parsed;
    } catch (const std::exception&) {
        throw std::runtime_error("block '" + full_path(b) + "' parameter '" +
                                 name + "' is not a number (got '" + v + "')");
    }
}

int port_number(const Block& b) {
    std::string v = b.parameter_or("Port", "1");
    try {
        std::size_t used = 0;
        int parsed = std::stoi(v, &used);
        if (used != v.size()) throw std::invalid_argument(v);
        return parsed;
    } catch (const std::exception&) {
        throw std::runtime_error("block '" + full_path(b) +
                                 "' has a non-numeric Port (got '" + v + "')");
    }
}

}  // namespace

/// Flattened network: atomic blocks, resolved drivers, static schedule.
struct Simulator::Net {
    struct AtomicBlock {
        const Block* block = nullptr;
        std::string path;
        // Resolved driver of each input: index into values_ (>=0), external
        // input (-2 - external index), or unconnected (-1, reads 0).
        std::vector<int> input_slots;
        int first_output_slot = 0;
        std::vector<double> state;  // UnitDelay / S-function state
        const SFunction* sfun = nullptr;
    };

    const simulink::Model* model = nullptr;
    std::vector<AtomicBlock> blocks;         // schedule order
    std::vector<std::string> external_names; // root Inport names
    std::map<std::string, int> external_index;
    std::size_t value_count = 0;
    std::vector<std::size_t> delay_indices;  // blocks[] indices of UnitDelays
    std::vector<std::size_t> recorder_indices;  // root Outports + Scopes

    /// Resolved atomic driver of an output endpoint, or external input.
    struct Driver {
        int slot = -1;  // semantics as AtomicBlock::input_slots
    };

    std::map<const Block*, int> first_slot_of;  // atomic block → output slot

    Driver resolve_output(const System& sys, PortRef src, const System& root) {
        (void)sys;  // kept for symmetry with callers resolving within a system
        Block& b = *src.block;
        if (b.type() == BlockType::SubSystem) {
            // Dive: the inner Outport with Port == src.port.
            for (Block* inner : b.system()->blocks()) {
                if (inner->type() == BlockType::Outport &&
                    port_number(*inner) == src.port) {
                    const Line* line = b.system()->line_into({inner, 1});
                    if (!line)
                        throw std::runtime_error("undriven Outport '" +
                                                 full_path(*inner) + "'");
                    return resolve_output(*b.system(), line->source(), root);
                }
            }
            throw std::runtime_error("subsystem '" + full_path(b) +
                                     "' lacks Outport " + std::to_string(src.port));
        }
        if (b.type() == BlockType::Inport && is_marker(b, root)) {
            // Surface: the owning subsystem's input port in the parent.
            Block* owner = b.parent()->owner_block();
            const System* parent = owner->parent();
            const Line* line = parent->line_into({owner, port_number(b)});
            if (!line)
                throw std::runtime_error("undriven subsystem input " +
                                         std::to_string(port_number(b)) + " of '" +
                                         full_path(*owner) + "'");
            return resolve_output(*parent, line->source(), root);
        }
        if (b.type() == BlockType::Inport) {
            // Root Inport: external input.
            std::string name = b.parameter_or("Var", b.name());
            auto [it, inserted] =
                external_index.emplace(name, static_cast<int>(external_names.size()));
            if (inserted) external_names.push_back(name);
            return {-2 - it->second};
        }
        auto slot = first_slot_of.find(&b);
        if (slot == first_slot_of.end())
            throw std::logic_error("driver block '" + full_path(b) +
                                   "' was not collected");
        return {slot->second + src.port - 1};
    }
};

Simulator::Simulator(const simulink::Model& model,
                     const SFunctionRegistry& registry)
    : net_(std::make_shared<Net>()) {
    Net& net = *net_;
    net.model = &model;
    const System& root = model.root();

    // Pass 1: collect atomic blocks (everything functional, plus root
    // Inports/Outports and Scopes) and assign output value slots.
    std::vector<const Block*> atomics;
    auto collect = [&](const System& sys, auto&& self) -> void {
        for (const Block* b : sys.blocks()) {
            if (b->type() == BlockType::SubSystem) {
                self(*b->system(), self);
                continue;
            }
            if (is_marker(*b, root)) continue;
            atomics.push_back(b);
        }
    };
    collect(root, collect);

    for (const Block* b : atomics) {
        net.first_slot_of[b] = static_cast<int>(net.value_count);
        net.value_count += static_cast<std::size_t>(std::max(1, b->output_count()));
    }

    // Pass 2: resolve every atomic input to its driver.
    struct Pending {
        const Block* block;
        std::vector<int> input_slots;
    };
    std::vector<Pending> pending;
    for (const Block* b : atomics) {
        Pending p{b, {}};
        for (int port = 1; port <= b->input_count(); ++port) {
            const System& sys = *b->parent();
            const Line* line = sys.line_into({const_cast<Block*>(b), port});
            if (!line) {
                p.input_slots.push_back(-1);
                continue;
            }
            p.input_slots.push_back(
                net.resolve_output(sys, line->source(), root).slot);
        }
        pending.push_back(std::move(p));
    }

    // Pass 3: topological order of the combinational dependency graph.
    // UnitDelay outputs are state, so they impose no ordering as drivers.
    std::map<const Block*, std::size_t> index_of;
    for (std::size_t i = 0; i < atomics.size(); ++i) index_of[atomics[i]] = i;
    std::vector<std::vector<std::size_t>> consumers(atomics.size());
    std::vector<std::size_t> unmet(atomics.size(), 0);
    // Slot → owning block, built once (slots are contiguous per block).
    std::vector<const Block*> slot_owner(net.value_count, nullptr);
    for (const auto& [b, first] : net.first_slot_of) {
        int count = std::max(1, b->output_count());
        for (int s = 0; s < count; ++s)
            slot_owner[static_cast<std::size_t>(first + s)] = b;
    }
    auto block_of_slot = [&](int slot) -> const Block* {
        return slot_owner[static_cast<std::size_t>(slot)];
    };
    for (std::size_t i = 0; i < pending.size(); ++i) {
        for (int slot : pending[i].input_slots) {
            if (slot < 0) continue;
            const Block* driver = block_of_slot(slot);
            if (!driver || driver->type() == BlockType::UnitDelay) continue;
            consumers[index_of[driver]].push_back(i);
            ++unmet[i];
        }
    }
    std::vector<std::size_t> order;
    std::vector<std::size_t> ready;
    for (std::size_t i = 0; i < atomics.size(); ++i)
        if (unmet[i] == 0) ready.push_back(i);
    while (!ready.empty()) {
        // Deterministic: lowest index first.
        auto it = std::min_element(ready.begin(), ready.end());
        std::size_t i = *it;
        ready.erase(it);
        order.push_back(i);
        for (std::size_t c : consumers[i])
            if (--unmet[c] == 0) ready.push_back(c);
    }
    if (order.size() != atomics.size()) {
        std::vector<std::string> cycle;
        std::vector<CycleEdge> edges;
        for (std::size_t i = 0; i < atomics.size(); ++i) {
            if (unmet[i] == 0) continue;
            cycle.push_back(full_path(*atomics[i]));
            // Edges among the stuck blocks show the actual loop.
            for (int slot : pending[i].input_slots) {
                if (slot < 0) continue;
                const Block* driver = block_of_slot(slot);
                if (!driver || driver->type() == BlockType::UnitDelay) continue;
                auto di = index_of.find(driver);
                if (di != index_of.end() && unmet[di->second] != 0)
                    edges.push_back({full_path(*driver), full_path(*atomics[i])});
            }
        }
        throw DeadlockError(std::move(cycle), std::move(edges));
    }

    // Pass 4: materialize schedule-ordered atomic records.
    for (std::size_t i : order) {
        const Block* b = atomics[i];
        Net::AtomicBlock rec;
        rec.block = b;
        rec.path = full_path(*b);
        rec.input_slots = pending[i].input_slots;
        rec.first_output_slot = net.first_slot_of[b];
        if (b->type() == BlockType::UnitDelay) {
            rec.state.assign(1, param_double(*b, "InitialCondition", "0"));
            net.delay_indices.push_back(net.blocks.size());
        } else if (b->type() == BlockType::SFunction) {
            std::string fn = b->parameter_or("FunctionName", b->name());
            if (!registry.contains(fn))
                throw std::runtime_error("S-function '" + fn + "' (block '" +
                                         rec.path + "') is not registered");
            rec.sfun = &registry.function(fn);
            rec.state.assign(registry.state_size(fn), 0.0);
        } else if ((b->type() == BlockType::Outport &&
                    b->parent() == &model.root()) ||
                   b->type() == BlockType::Scope) {
            net.recorder_indices.push_back(net.blocks.size());
        }
        net.blocks.push_back(std::move(rec));
    }
}

std::optional<Simulator> Simulator::build(const simulink::Model& model,
                                          const SFunctionRegistry& registry,
                                          diag::DiagnosticEngine& engine) {
    try {
        return Simulator(model, registry);
    } catch (const DeadlockError& e) {
        std::vector<std::string> notes;
        {
            std::ostringstream b;
            b << "blocked block(s):";
            for (const auto& p : e.cycle()) b << ' ' << p;
            notes.push_back(b.str());
        }
        for (const CycleEdge& edge : e.edges())
            notes.push_back("combinational dependency: " + edge.from + " -> " +
                            edge.to);
        notes.push_back(
            "insert a temporal barrier (UnitDelay) on the loop — §4.2.2");
        engine.report(diag::Severity::Error, diag::codes::kSimDeadlock,
                      "model '" + model.name() +
                          "' has a combinational cycle through " +
                          std::to_string(e.cycle().size()) +
                          " block(s) — dataflow deadlock",
                      {}, std::move(notes));
        return std::nullopt;
    } catch (const std::exception& e) {
        engine.report(diag::Severity::Error, diag::codes::kSimStructure,
                      std::string("model '") + model.name() +
                          "' cannot be scheduled: " + e.what());
        return std::nullopt;
    }
}

void Simulator::set_input(const std::string& name, InputSignal signal) {
    inputs_[name] = std::move(signal);
}

std::vector<std::string> Simulator::schedule() const {
    std::vector<std::string> out;
    for (const auto& b : net_->blocks) out.push_back(b.path);
    return out;
}

SimResult Simulator::run() {
    const double step = net_->model->fixed_step;
    auto steps = static_cast<std::size_t>(net_->model->stop_time / step);
    return run(std::max<std::size_t>(steps, 1));
}

SimResult Simulator::run(std::size_t steps, diag::DiagnosticEngine& engine,
                         const WatchdogBudget& budget) {
    // Clamp the request to the budget up front: the sweep is statically
    // scheduled, so bounding the step count bounds all work.
    std::size_t allowed = steps;
    if (budget.max_steps) allowed = std::min(allowed, budget.max_steps);
    if (budget.max_block_evals) {
        std::size_t per_step = std::max<std::size_t>(net_->blocks.size(), 1);
        allowed = std::min(allowed, budget.max_block_evals / per_step);
    }
    SimResult result = run(allowed);
    if (allowed < steps) {
        result.budget_exhausted = true;
        engine.report(
            diag::Severity::Error, diag::codes::kSimWatchdog,
            "simulation of '" + net_->model->name() + "' stopped by watchdog: " +
                std::to_string(steps) + " step(s) requested, budget allows " +
                std::to_string(allowed),
            {},
            {"executed " + std::to_string(result.steps) + " step(s) across " +
             std::to_string(net_->blocks.size()) + " scheduled block(s)"});
    }
    return result;
}

SimResult Simulator::run(std::size_t steps) {
    obs::ObsSpan span("sim.run");
    Net& net = *net_;
    SimResult result;
    std::vector<double> values(net.value_count, 0.0);
    std::vector<double> externals(net.external_names.size(), 0.0);

    auto read = [&](int slot, double fallback = 0.0) {
        if (slot >= 0) return values[static_cast<std::size_t>(slot)];
        if (slot <= -2) return externals[static_cast<std::size_t>(-2 - slot)];
        return fallback;
    };

    const double dt = net.model->fixed_step;
    for (std::size_t k = 0; k < steps; ++k) {
        double t = static_cast<double>(k) * dt;
        result.time.push_back(t);

        for (std::size_t e = 0; e < externals.size(); ++e) {
            auto it = inputs_.find(net.external_names[e]);
            externals[e] = (it != inputs_.end()) ? it->second(t) : 0.0;
        }

        // Delays publish state before the sweep.
        for (std::size_t i : net.delay_indices) {
            auto& d = net.blocks[i];
            values[static_cast<std::size_t>(d.first_output_slot)] = d.state[0];
        }

        for (auto& b : net.blocks) {
            const Block& blk = *b.block;
            double* out = &values[static_cast<std::size_t>(b.first_output_slot)];
            switch (blk.type()) {
                case BlockType::Product: {
                    std::string signs = blk.parameter_or("Inputs", "");
                    double v = 1.0;
                    for (std::size_t i = 0; i < b.input_slots.size(); ++i) {
                        double x = read(b.input_slots[i]);
                        if (i < signs.size() && signs[i] == '/')
                            v /= x;
                        else
                            v *= x;
                    }
                    out[0] = v;
                    break;
                }
                case BlockType::Sum: {
                    std::string signs = blk.parameter_or("Inputs", "");
                    double v = 0.0;
                    for (std::size_t i = 0; i < b.input_slots.size(); ++i) {
                        double x = read(b.input_slots[i]);
                        if (i < signs.size() && signs[i] == '-')
                            v -= x;
                        else
                            v += x;
                    }
                    out[0] = v;
                    break;
                }
                case BlockType::Gain:
                    out[0] = param_double(blk, "Gain", "1") *
                             read(b.input_slots.empty() ? -1 : b.input_slots[0]);
                    break;
                case BlockType::Constant:
                    out[0] = param_double(blk, "Value", "0");
                    break;
                case BlockType::UnitDelay:
                    break;  // published above, latched below
                case BlockType::CommChannel: {
                    out[0] = read(b.input_slots[0]);
                    ++result.channel_traffic[blk.parameter_or("Protocol", "RAW")];
                    break;
                }
                case BlockType::SFunction: {
                    std::vector<double> ins(b.input_slots.size());
                    for (std::size_t i = 0; i < ins.size(); ++i)
                        ins[i] = read(b.input_slots[i]);
                    std::span<double> outs(
                        out, static_cast<std::size_t>(
                                 std::max(1, blk.output_count())));
                    (*b.sfun)(ins, outs, t, b.state);
                    break;
                }
                case BlockType::Inport:
                    // Root Inport: mirror the external value into its slot.
                    out[0] = externals[static_cast<std::size_t>(
                        net.external_index.at(blk.parameter_or("Var", blk.name())))];
                    break;
                case BlockType::Outport:
                case BlockType::Scope: {
                    double v = read(b.input_slots.empty() ? -1 : b.input_slots[0]);
                    out[0] = v;
                    break;
                }
                case BlockType::SubSystem:
                    break;  // never atomic
            }
        }

        // Record and latch.
        for (std::size_t i : net.recorder_indices) {
            auto& r = net.blocks[i];
            double v = values[static_cast<std::size_t>(r.first_output_slot)];
            if (r.block->type() == BlockType::Scope)
                result.scopes[r.path].push_back(v);
            else
                result.outputs[r.block->parameter_or("Var", r.block->name())]
                    .push_back(v);
        }
        for (std::size_t i : net.delay_indices) {
            auto& d = net.blocks[i];
            d.state[0] = read(d.input_slots.empty() ? -1 : d.input_slots[0]);
        }
        ++result.steps;
    }
    static obs::Counter& sim_steps = obs::counter("sim.steps");
    sim_steps.add(result.steps);
    return result;
}

}  // namespace uhcg::sim
