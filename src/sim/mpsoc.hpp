// mpsoc.hpp — MPSoC cost simulator.
//
// The paper feeds the generated CAAM into the Simulink-based MPSoC design
// flow (Huang et al., DAC'07), whose hardware we do not have. This module
// substitutes the flow's *observable* behaviour for our experiments: given
// a task graph and a thread-to-CPU mapping, it simulates execution on a
// bus-based MPSoC where intra-CPU communication uses cheap SWFIFOs and
// inter-CPU communication crosses a single shared bus using GFIFOs —
// reproducing the cost asymmetry §4.2.3's allocation optimizes ("the cost
// for intra-CPU communication is lower than the cost for communication
// between different CPUs").
#pragma once

#include <cstddef>
#include <vector>

#include "taskgraph/clustering.hpp"
#include "taskgraph/graph.hpp"

namespace uhcg::sim {

struct MpsocParams {
    /// Cycles per unit of task weight.
    double cycles_per_work = 100.0;
    /// Cycles per unit of data over an intra-CPU SWFIFO.
    double swfifo_cost_per_byte = 1.0;
    /// Cycles per unit of data over the shared bus (GFIFO).
    double gfifo_cost_per_byte = 10.0;
    /// Fixed per-transfer setup cost on the bus.
    double bus_setup = 20.0;
    /// true = inter-CPU transfers serialize on one shared bus (contention);
    /// false = ideal point-to-point links.
    bool shared_bus = true;
};

struct MpsocResult {
    double makespan = 0.0;           ///< cycles until the last task finishes
    double bus_busy = 0.0;           ///< cycles the shared bus was occupied
    double inter_traffic = 0.0;      ///< data units crossing CPUs
    double intra_traffic = 0.0;      ///< data units staying on-CPU
    std::vector<double> cpu_busy;    ///< per-CPU compute cycles
    std::size_t bus_transfers = 0;   ///< number of inter-CPU messages
};

/// Simulates one execution of `graph` mapped by `clustering` (one CPU per
/// cluster). Tasks run non-preemptively in topological order on their CPU;
/// each edge becomes a FIFO transfer that must complete before the
/// consumer starts.
MpsocResult simulate_mpsoc(const taskgraph::TaskGraph& graph,
                           const taskgraph::Clustering& clustering,
                           const MpsocParams& params = {});

}  // namespace uhcg::sim
