#include "sim/mpsoc.hpp"

#include "obs/obs.hpp"
#include "sim/batch.hpp"

namespace uhcg::sim {

MpsocResult simulate_mpsoc(const taskgraph::TaskGraph& graph,
                           const taskgraph::Clustering& clustering,
                           const MpsocParams& params) {
    // Runs on pool workers during the DSE sweep; parallel_for's context
    // propagation parents this span under the submitting sweep span.
    obs::ObsSpan span("sim.mpsoc");
    // One-shot = a batch of one. There is a single pricing implementation,
    // which is what lets `--dse-verify-full` treat this call as the
    // from-scratch oracle for incremental results.
    MpsocPrep prep(graph, params);
    MpsocBatch batch(prep);
    return batch.evaluate(clustering);
}

}  // namespace uhcg::sim
