#include "sim/mpsoc.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/obs.hpp"

namespace uhcg::sim {

using taskgraph::Clustering;
using taskgraph::Edge;
using taskgraph::TaskGraph;
using taskgraph::TaskIndex;

MpsocResult simulate_mpsoc(const TaskGraph& graph, const Clustering& clustering,
                           const MpsocParams& params) {
    // Runs on pool workers during the DSE sweep; parallel_for's context
    // propagation parents this span under the submitting sweep span.
    obs::ObsSpan span("sim.mpsoc");
    static obs::Counter& runs = obs::counter("sim.mpsoc_runs");
    runs.add(1);
    if (graph.task_count() != clustering.task_count())
        throw std::invalid_argument("clustering does not match graph size");

    MpsocResult result;
    result.cpu_busy.assign(static_cast<std::size_t>(clustering.cluster_count()),
                           0.0);
    std::vector<double> cpu_free(result.cpu_busy.size(), 0.0);
    std::vector<double> finish(graph.task_count(), 0.0);
    // Arrival time of each edge's data at the consumer.
    std::vector<double> edge_arrival(graph.edge_count(), 0.0);
    double bus_free = 0.0;

    for (TaskIndex t : graph.topological_order()) {
        auto cpu = static_cast<std::size_t>(clustering.cluster_of(t));

        // All input data must have arrived; transfers were scheduled when
        // the producers finished (producer order = topological order, so
        // every in-edge is already priced).
        double ready = cpu_free[cpu];
        for (std::size_t e : graph.in_edges(t))
            ready = std::max(ready, edge_arrival[e]);

        double work = graph.weight(t) * params.cycles_per_work;
        finish[t] = ready + work;
        cpu_free[cpu] = finish[t];
        result.cpu_busy[cpu] += work;

        // Price the outgoing transfers now (data leaves when t finishes).
        for (std::size_t e : graph.out_edges(t)) {
            const Edge& edge = graph.edge(e);
            auto dst_cpu = static_cast<std::size_t>(clustering.cluster_of(edge.to));
            if (dst_cpu == cpu) {
                edge_arrival[e] =
                    finish[t] + edge.cost * params.swfifo_cost_per_byte;
                result.intra_traffic += edge.cost;
            } else {
                double duration =
                    params.bus_setup + edge.cost * params.gfifo_cost_per_byte;
                double start = finish[t];
                if (params.shared_bus) {
                    start = std::max(start, bus_free);
                    bus_free = start + duration;
                }
                edge_arrival[e] = start + duration;
                result.bus_busy += duration;
                result.inter_traffic += edge.cost;
                ++result.bus_transfers;
            }
        }
    }

    for (double f : finish) result.makespan = std::max(result.makespan, f);
    return result;
}

}  // namespace uhcg::sim
