#include "kpn/execute.hpp"

#include <algorithm>
#include <sstream>

#include "obs/obs.hpp"

namespace uhcg::kpn {

void KernelRegistry::register_kernel(std::string name, Kernel kernel,
                                     std::size_t state_size) {
    entries_[std::move(name)] = {std::move(kernel), state_size};
}

const KernelRegistry::Entry* KernelRegistry::find(
    const std::string& name) const {
    auto it = entries_.find(name);
    return it == entries_.end() ? nullptr : &it->second;
}

const Kernel& KernelRegistry::kernel(const std::string& name) const {
    const Entry* entry = find(name);
    if (!entry)
        throw std::runtime_error("no kernel registered for '" + name + "'");
    return entry->kernel;
}

std::size_t KernelRegistry::state_size(const std::string& name) const {
    const Entry* entry = find(name);
    return entry ? entry->state_size : 0;
}

ReadBlockedError::ReadBlockedError(std::vector<std::string> blocked,
                                   std::vector<ChannelState> channels)
    : std::runtime_error([&blocked] {
          std::ostringstream msg;
          msg << "KPN read-blocked — no process can fire; blocked:";
          for (const auto& p : blocked) msg << ' ' << p;
          msg << " (cyclic network without initial tokens?)";
          return msg.str();
      }()),
      blocked_(std::move(blocked)),
      channels_(std::move(channels)) {}

Executor::Executor(const Network& network, const KernelRegistry& registry)
    : network_(&network), registry_(&registry) {
    auto problems = network.check();
    if (!problems.empty()) {
        // Report every problem, not just the first: a malformed network
        // usually has several, and refixing one per run wastes cycles.
        std::ostringstream msg;
        msg << "malformed KPN (" << problems.size() << " problem(s)):";
        for (const auto& p : problems) msg << "\n  " << p;
        throw std::runtime_error(msg.str());
    }
    kernels_.reserve(network.processes().size());
    for (const Process* p : network.processes()) {
        const KernelRegistry::Entry* entry = registry.find(p->kernel());
        if (!entry)
            throw std::runtime_error("process '" + p->name() +
                                     "' needs unregistered kernel '" +
                                     p->kernel() + "'");
        kernels_.push_back(entry);
    }
}

void Executor::set_input(const std::string& var,
                         std::function<double(std::size_t)> signal) {
    inputs_[var] = std::move(signal);
}

KpnResult Executor::run(std::size_t rounds) {
    return run_impl(rounds, nullptr, {});
}

KpnResult Executor::run(std::size_t rounds, diag::DiagnosticEngine& engine,
                        const WatchdogBudget& budget) {
    return run_impl(rounds, &engine, budget);
}

KpnResult Executor::run_impl(std::size_t rounds, diag::DiagnosticEngine* engine,
                             const WatchdogBudget& budget) {
    obs::ObsSpan span("kpn.run");
    const auto processes = network_->processes();
    const auto& channels = network_->channels();

    // Channel queues, seeded with initial tokens (value 0.0).
    std::vector<std::deque<double>> queues(channels.size());
    for (std::size_t c = 0; c < channels.size(); ++c)
        for (std::size_t t = 0; t < channels[c].initial_tokens; ++t)
            queues[c].push_back(0.0);

    // Per process: which channel feeds each input (-1 = network boundary)
    // and which sinks each output fans out to (several channels and/or a
    // network output may share one port).
    std::map<const Process*, std::vector<int>> in_chan;
    std::map<const Process*, std::vector<std::vector<int>>> out_chans;
    std::map<const Process*, std::vector<bool>> out_is_network;
    for (const Process* p : processes) {
        in_chan[p].assign(p->input_count(), -1);
        out_chans[p].assign(p->output_count(), {});
        out_is_network[p].assign(p->output_count(), false);
    }
    for (std::size_t c = 0; c < channels.size(); ++c) {
        in_chan[channels[c].consumer][channels[c].consumer_port] =
            static_cast<int>(c);
        out_chans[channels[c].producer][channels[c].producer_port].push_back(
            static_cast<int>(c));
    }
    for (const NetworkPort& p : network_->network_outputs())
        out_is_network[p.process][p.port] = true;
    // Network boundary queues keyed by (process, port).
    std::map<std::pair<const Process*, std::size_t>, std::deque<double>> env_in;
    for (const NetworkPort& p : network_->network_inputs())
        env_in[{p.process, p.port}];

    std::map<const Process*, std::vector<double>> state;
    for (std::size_t i = 0; i < processes.size(); ++i)
        state[processes[i]].assign(kernels_[i]->state_size, 0.0);

    KpnResult result;
    auto track_depth = [&] {
        for (const auto& q : queues)
            result.max_queue_depth = std::max(result.max_queue_depth, q.size());
    };
    auto snapshot_channels = [&] {
        std::vector<ChannelState> states;
        states.reserve(channels.size());
        for (std::size_t c = 0; c < channels.size(); ++c)
            states.push_back({channels[c].variable, channels[c].producer->name(),
                              channels[c].consumer->name(), queues[c].size()});
        return states;
    };

    for (std::size_t round = 0; round < rounds; ++round) {
        // Environment delivers one token per network input.
        for (const NetworkPort& p : network_->network_inputs()) {
            auto it = inputs_.find(p.variable);
            env_in[{p.process, p.port}].push_back(
                it != inputs_.end() ? it->second(round) : 0.0);
        }

        std::vector<bool> fired(processes.size(), false);
        std::size_t fired_count = 0;
        while (fired_count < processes.size()) {
            bool progress = false;
            for (std::size_t i = 0; i < processes.size(); ++i) {
                if (fired[i]) continue;
                const Process* p = processes[i];
                // Blocking-read semantics: fire only when every input has
                // a token available.
                bool ready = true;
                for (std::size_t port = 0; port < p->input_count(); ++port) {
                    int c = in_chan[p][port];
                    bool has = c >= 0 ? !queues[static_cast<std::size_t>(c)].empty()
                                      : !env_in[{p, port}].empty();
                    if (!has) {
                        ready = false;
                        break;
                    }
                }
                if (!ready) continue;

                std::vector<double> ins(p->input_count());
                for (std::size_t port = 0; port < p->input_count(); ++port) {
                    int c = in_chan[p][port];
                    auto& q = c >= 0 ? queues[static_cast<std::size_t>(c)]
                                     : env_in[{p, port}];
                    ins[port] = q.front();
                    q.pop_front();
                    if (c >= 0)
                        ++result.channel_tokens[channels[static_cast<std::size_t>(c)]
                                                    .variable];
                }
                std::vector<double> outs(p->output_count(), 0.0);
                kernels_[i]->kernel(ins, outs, state[p]);
                for (std::size_t port = 0; port < p->output_count(); ++port) {
                    for (int c : out_chans[p][port])
                        queues[static_cast<std::size_t>(c)].push_back(outs[port]);
                    if (out_is_network[p][port] || out_chans[p][port].empty())
                        result.outputs[p->output_name(port)].push_back(outs[port]);
                }
                fired[i] = true;
                ++fired_count;
                ++result.firings;
                static obs::Counter& firings = obs::counter("kpn.firings");
                firings.add(1);
                progress = true;
                track_depth();
                if (budget.max_firings && result.firings >= budget.max_firings &&
                    engine) {
                    // Livelock watchdog: the budget bounds total work even
                    // if the schedule keeps finding fireable processes.
                    result.budget_exhausted = true;
                    result.channel_states = snapshot_channels();
                    engine->report(
                        diag::Severity::Error, diag::codes::kKpnWatchdog,
                        "KPN execution exceeded the firing budget (" +
                            std::to_string(budget.max_firings) +
                            " firings) — stopping after round " +
                            std::to_string(result.rounds),
                        {}, {"network '" + network_->name() + "'"});
                    return result;
                }
            }
            if (!progress) {
                std::vector<std::string> blocked;
                for (std::size_t i = 0; i < processes.size(); ++i)
                    if (!fired[i]) blocked.push_back(processes[i]->name());
                std::vector<ChannelState> states = snapshot_channels();
                if (!engine) throw ReadBlockedError(std::move(blocked), std::move(states));
                // Watchdogged mode: degrade to a structured diagnostic and
                // hand back the partial result.
                result.deadlocked = true;
                result.blocked = blocked;
                result.channel_states = states;
                std::vector<std::string> notes;
                {
                    std::ostringstream b;
                    b << "blocked process(es):";
                    for (const auto& p : blocked) b << ' ' << p;
                    notes.push_back(b.str());
                }
                for (const ChannelState& cs : states)
                    notes.push_back("channel '" + cs.variable + "' (" +
                                    cs.producer + " -> " + cs.consumer + "): " +
                                    std::to_string(cs.tokens) + " token(s)");
                notes.push_back("cyclic network without initial tokens?");
                engine->report(diag::Severity::Error, diag::codes::kKpnReadBlocked,
                               "KPN read-blocked in round " +
                                   std::to_string(result.rounds + 1) + " — " +
                                   std::to_string(blocked.size()) +
                                   " process(es) cannot fire",
                               {}, std::move(notes));
                return result;
            }
        }
        ++result.rounds;
    }
    return result;
}

}  // namespace uhcg::kpn
