// model.hpp — Kahn Process Network metamodel.
//
// §3 promises the transformation approach "can be extended to support
// mappings to other languages, such as UML state diagrams, other FSM-like
// languages, or KPN (Kahn Process Network)". This module delivers the KPN
// target: a network of deterministic processes connected by unbounded
// (here: boundedly-simulated) FIFO channels with blocking reads.
//
// The correspondence with the CAAM target is deliberate and testable:
// threads ↔ processes, inferred data channels ↔ KPN channels, §4.2.2
// UnitDelay barriers ↔ initial tokens on cycle-breaking channels.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace uhcg::kpn {

class Network;

/// One process of the network. Ports are named (the UML variable names);
/// indices are stable and 0-based.
class Process {
public:
    friend class Network;
    Process(std::string name, Network* owner)
        : name_(std::move(name)), owner_(owner) {}

    const std::string& name() const { return name_; }

    std::size_t add_input(std::string var);
    std::size_t add_output(std::string var);
    std::size_t input_count() const { return inputs_.size(); }
    std::size_t output_count() const { return outputs_.size(); }
    const std::string& input_name(std::size_t i) const { return inputs_.at(i); }
    const std::string& output_name(std::size_t i) const { return outputs_.at(i); }
    /// Index of the port carrying `var`, if any.
    std::optional<std::size_t> input_named(std::string_view var) const;
    std::optional<std::size_t> output_named(std::string_view var) const;

    /// Kernel identifier dispatched through the KernelRegistry at
    /// execution time (defaults to the process name).
    const std::string& kernel() const { return kernel_; }
    void set_kernel(std::string name) { kernel_ = std::move(name); }

private:
    std::string name_;
    Network* owner_;
    std::string kernel_;
    std::vector<std::string> inputs_;
    std::vector<std::string> outputs_;
};

/// A FIFO channel between two process ports. `initial_tokens` seed the
/// channel (the KPN equivalent of a UnitDelay temporal barrier).
struct ChannelDecl {
    Process* producer = nullptr;
    std::size_t producer_port = 0;
    Process* consumer = nullptr;
    std::size_t consumer_port = 0;
    std::string variable;
    std::size_t initial_tokens = 0;
};

/// Environment-facing ports of the network.
struct NetworkPort {
    Process* process = nullptr;
    std::size_t port = 0;  // input index for outputs-to-env? see is_input
    bool is_input = false; ///< true: environment feeds process input
    std::string variable;
};

class Network {
public:
    explicit Network(std::string name) : name_(std::move(name)) {}
    Network(const Network&) = delete;
    Network& operator=(const Network&) = delete;
    Network(Network&& other) noexcept { *this = std::move(other); }
    Network& operator=(Network&& other) noexcept;

    const std::string& name() const { return name_; }

    Process& add_process(std::string name);
    Process* find_process(std::string_view name);
    const Process* find_process(std::string_view name) const;
    std::vector<const Process*> processes() const;
    std::vector<Process*> processes();

    ChannelDecl& connect(Process& producer, std::size_t out_port,
                         Process& consumer, std::size_t in_port,
                         std::string variable);
    const std::vector<ChannelDecl>& channels() const { return channels_; }
    std::vector<ChannelDecl>& channels() { return channels_; }

    void add_network_input(Process& process, std::size_t port, std::string var);
    void add_network_output(Process& process, std::size_t port, std::string var);
    const std::vector<NetworkPort>& network_inputs() const { return inputs_; }
    const std::vector<NetworkPort>& network_outputs() const { return outputs_; }

    /// Structural checks: every process input is fed by exactly one
    /// channel or network input; channel ports in range; port/variable
    /// names consistent. Empty = well-formed.
    std::vector<std::string> check() const;

private:
    std::string name_;
    std::vector<std::unique_ptr<Process>> processes_;
    std::vector<ChannelDecl> channels_;
    std::vector<NetworkPort> inputs_;
    std::vector<NetworkPort> outputs_;
};

}  // namespace uhcg::kpn
