#include "kpn/from_uml.hpp"

#include <map>
#include <set>

#include "kpn/generic.hpp"
#include "uml/generic.hpp"

namespace uhcg::kpn {
namespace {

using model::Object;
using model::ObjectModel;

/// One deduplicated data link (Set and Get sides merged).
struct Link {
    const uml::ObjectInstance* producer;
    const uml::ObjectInstance* consumer;
    std::string variable;
};

std::vector<Link> dedup_links(const core::CommModel& comm) {
    std::vector<Link> out;
    std::set<std::string> seen;
    for (const core::Channel& c : comm.channels()) {
        std::string key =
            c.producer->name() + ">" + c.consumer->name() + ":" + c.variable;
        if (seen.insert(key).second)
            out.push_back({c.producer, c.consumer, c.variable});
    }
    return out;
}

}  // namespace

KpnMappingOutput map_to_kpn(const uml::Model& model,
                            const KpnMappingOptions& options) {
    return map_to_kpn(model, core::analyze_communication(model), options);
}

KpnMappingOutput map_to_kpn(const uml::Model& model, const core::CommModel& comm,
                            const KpnMappingOptions& options) {
    ObjectModel source = uml::to_generic(model);
    const std::vector<Link> links = dedup_links(comm);

    struct State {
        const uml::Model* um;
        const core::CommModel* comm;
        const std::vector<Link>* links;
        Object* network = nullptr;
        std::map<const uml::ObjectInstance*, Object*> processes;
        std::size_t counter = 0;
    };
    auto st = std::make_shared<State>();
    st->um = &model;
    st->comm = &comm;
    st->links = &links;

    transform::Engine engine(kpn_metamodel());

    // Rule 1: Model → Network.
    engine.add_rule({"Model2Network", "Model", nullptr,
                     [st](transform::Context& ctx, const Object& src) {
                         Object& n = ctx.create(src, "Model2Network", "Network",
                                                "kpn." + src.get_string("name"));
                         n.set("name", src.get_string("name"));
                         st->network = &n;
                     }});

    // Rule 2: <<SASchedRes>> → Process. Ports come from the communication
    // analysis: every distinct received/produced variable plus <<IO>>
    // accesses; the thread's internal block layer abstracts into the
    // kernel.
    engine.add_rule(
        {"Thread2Process", "ObjectInstance",
         [](const Object& o) { return o.get_bool("isThread"); },
         [st](transform::Context& ctx, const Object& src) {
             const uml::ObjectInstance* typed =
                 st->um->find_object(src.get_string("name"));
             if (!typed) return;
             Object& p = ctx.create(src, "Thread2Process", "Process",
                                    "proc." + typed->name());
             p.set("name", typed->name());
             p.set("kernel", typed->name());
             std::set<std::string> in_vars, out_vars;
             std::int64_t in_index = 0, out_index = 0;
             auto add_port = [&](const std::string& var, bool is_input) {
                 auto& seen = is_input ? in_vars : out_vars;
                 if (!seen.insert(var).second) return;
                 Object& port = ctx.target().create(
                     "Port", p.id() + (is_input ? ".in" : ".out") +
                                 std::to_string(st->counter++));
                 port.set("index", is_input ? in_index++ : out_index++);
                 port.set("isInput", is_input);
                 port.set("var", var);
                 p.add_ref("ports", port);
             };
             for (const Link& l : *st->links) {
                 if (l.consumer == typed) add_port(l.variable, true);
                 if (l.producer == typed) add_port(l.variable, false);
             }
             for (const core::IoAccess* a : st->comm->io_inputs(*typed))
                 add_port(a->variable, true);
             for (const core::IoAccess* a : st->comm->io_outputs(*typed))
                 add_port(a->variable, false);
             st->processes[typed] = &p;
         }});

    // Rule 3: data links → channels; <<IO>> accesses → network ports.
    engine.add_rule(
        {"Links2Channels", "Model", nullptr,
         [st](transform::Context& ctx, const Object& src) {
             auto port_index = [&](Object& proc, const std::string& var,
                                   bool is_input) -> std::int64_t {
                 for (const Object* port : proc.refs("ports"))
                     if (port->get_bool("isInput") == is_input &&
                         port->get_string("var") == var)
                         return port->get_int("index");
                 return -1;
             };
             std::size_t index = 0;
             for (const Link& l : *st->links) {
                 Object& producer = *st->processes.at(l.producer);
                 Object& consumer = *st->processes.at(l.consumer);
                 Object& c = ctx.create(src, "Links2Channels", "Channel",
                                        "chan." + std::to_string(index++));
                 c.set("variable", l.variable);
                 c.set("producerPort", port_index(producer, l.variable, false));
                 c.set("consumerPort", port_index(consumer, l.variable, true));
                 c.set_ref("producer", &producer);
                 c.set_ref("consumer", &consumer);
                 st->network->add_ref("channels", c);
             }
             std::size_t nport = 0;
             for (const core::IoAccess& a : st->comm->io_accesses()) {
                 auto it = st->processes.find(a.thread);
                 if (it == st->processes.end()) continue;
                 Object& p = ctx.create(src, "Links2Channels", "NetworkPort",
                                        "nport." + std::to_string(nport++));
                 p.set("var", a.variable);
                 p.set("isInput", a.is_input);
                 p.set("port", port_index(*it->second, a.variable, a.is_input));
                 p.set_ref("process", it->second);
                 st->network->add_ref("ports", p);
             }
             // Deterministic network order: model thread declaration order
             // (pointer-keyed map order would vary run to run, changing
             // DFS seeds and diffs).
             for (const uml::ObjectInstance* t : st->um->threads()) {
                 auto it = st->processes.find(t);
                 if (it != st->processes.end())
                     st->network->add_ref("processes", *it->second);
             }
         }});

    KpnMappingOutput out{Network("unset"), {}, 0, {}};
    ObjectModel generic = engine.run(source, nullptr, &out.stats);
    out.network = from_generic(generic);

    // §4.2.2 analogue: seed initial tokens on cycle-breaking channels of
    // the process graph (DFS back edges).
    if (options.auto_initial_tokens) {
        auto procs = out.network.processes();
        std::map<const Process*, std::size_t> index;
        for (std::size_t i = 0; i < procs.size(); ++i) index[procs[i]] = i;
        enum Color { White, Gray, Black };
        std::vector<Color> color(procs.size(), White);
        auto dfs = [&](auto&& self, std::size_t p) -> void {
            color[p] = Gray;
            for (ChannelDecl& c : out.network.channels()) {
                if (index.at(c.producer) != p) continue;
                std::size_t q = index.at(c.consumer);
                if (color[q] == Gray) {
                    if (c.initial_tokens == 0) {
                        c.initial_tokens = 1;  // break the cycle
                        ++out.initial_tokens_inserted;
                    }
                } else if (color[q] == White) {
                    self(self, q);
                }
            }
            color[p] = Black;
        };
        for (std::size_t p = 0; p < procs.size(); ++p)
            if (color[p] == White) dfs(dfs, p);
    }

    auto problems = out.network.check();
    for (const std::string& p : problems) out.warnings.push_back("kpn: " + p);
    return out;
}

}  // namespace uhcg::kpn
