// from_uml.hpp — UML → KPN mapping, the §3 retargeting of the Fig. 2 flow.
//
// The same front-end analyses drive it: <<SASchedRes>> objects become KPN
// processes (their internal block layer abstracts into the process
// kernel), the inferred inter-thread data channels become KPN channels,
// and <<IO>> accesses become network-boundary ports. When the thread graph
// is cyclic the mapping seeds one initial token per broken cycle — the KPN
// equivalent of §4.2.2's UnitDelay temporal barriers (without it, a cyclic
// network suffers a read-blocked startup deadlock, which kpn::Executor
// detects and reports).
//
// Like the CAAM branch, the mapping is expressed as rules on the
// transformation engine against the registered KPN meta-model.
#pragma once

#include "core/comm.hpp"
#include "kpn/model.hpp"
#include "transform/engine.hpp"
#include "uml/model.hpp"

namespace uhcg::kpn {

struct KpnMappingOptions {
    /// Seed initial tokens to break cyclic thread graphs (§4.2.2 analogue).
    bool auto_initial_tokens = true;
};

struct KpnMappingOutput {
    Network network;
    transform::RunStats stats;
    std::size_t initial_tokens_inserted = 0;
    std::vector<std::string> warnings;
};

/// Maps `model` (must pass uml::check) to a KPN. The communication
/// analysis is recomputed internally; use the overload to share one.
KpnMappingOutput map_to_kpn(const uml::Model& model,
                            const KpnMappingOptions& options = {});
KpnMappingOutput map_to_kpn(const uml::Model& model, const core::CommModel& comm,
                            const KpnMappingOptions& options = {});

}  // namespace uhcg::kpn
