#include "kpn/model.hpp"

#include <set>
#include <stdexcept>

namespace uhcg::kpn {

std::size_t Process::add_input(std::string var) {
    inputs_.push_back(std::move(var));
    return inputs_.size() - 1;
}

std::size_t Process::add_output(std::string var) {
    outputs_.push_back(std::move(var));
    return outputs_.size() - 1;
}

std::optional<std::size_t> Process::input_named(std::string_view var) const {
    for (std::size_t i = 0; i < inputs_.size(); ++i)
        if (inputs_[i] == var) return i;
    return std::nullopt;
}

std::optional<std::size_t> Process::output_named(std::string_view var) const {
    for (std::size_t i = 0; i < outputs_.size(); ++i)
        if (outputs_[i] == var) return i;
    return std::nullopt;
}

Network& Network::operator=(Network&& other) noexcept {
    name_ = std::move(other.name_);
    processes_ = std::move(other.processes_);
    channels_ = std::move(other.channels_);
    inputs_ = std::move(other.inputs_);
    outputs_ = std::move(other.outputs_);
    for (auto& p : processes_) p->owner_ = this;
    return *this;
}

Process& Network::add_process(std::string name) {
    if (find_process(name))
        throw std::invalid_argument("duplicate process '" + name + "'");
    processes_.push_back(std::make_unique<Process>(std::move(name), this));
    Process& p = *processes_.back();
    if (p.kernel().empty()) p.set_kernel(p.name());
    return p;
}

Process* Network::find_process(std::string_view name) {
    for (const auto& p : processes_)
        if (p->name() == name) return p.get();
    return nullptr;
}

const Process* Network::find_process(std::string_view name) const {
    for (const auto& p : processes_)
        if (p->name() == name) return p.get();
    return nullptr;
}

std::vector<const Process*> Network::processes() const {
    std::vector<const Process*> out;
    for (const auto& p : processes_) out.push_back(p.get());
    return out;
}

std::vector<Process*> Network::processes() {
    std::vector<Process*> out;
    for (const auto& p : processes_) out.push_back(p.get());
    return out;
}

ChannelDecl& Network::connect(Process& producer, std::size_t out_port,
                              Process& consumer, std::size_t in_port,
                              std::string variable) {
    if (out_port >= producer.output_count())
        throw std::out_of_range("producer port out of range on " +
                                producer.name());
    if (in_port >= consumer.input_count())
        throw std::out_of_range("consumer port out of range on " +
                                consumer.name());
    channels_.push_back(
        {&producer, out_port, &consumer, in_port, std::move(variable), 0});
    return channels_.back();
}

void Network::add_network_input(Process& process, std::size_t port,
                                std::string var) {
    inputs_.push_back({&process, port, true, std::move(var)});
}

void Network::add_network_output(Process& process, std::size_t port,
                                 std::string var) {
    outputs_.push_back({&process, port, false, std::move(var)});
}

std::vector<std::string> Network::check() const {
    std::vector<std::string> problems;
    // Every process input fed exactly once (channel or network input).
    std::map<std::pair<const Process*, std::size_t>, int> feeds;
    for (const ChannelDecl& c : channels_)
        ++feeds[{c.consumer, c.consumer_port}];
    for (const NetworkPort& p : inputs_)
        if (p.is_input) ++feeds[{p.process, p.port}];
    for (const auto& proc : processes_) {
        for (std::size_t i = 0; i < proc->input_count(); ++i) {
            int n = feeds[{proc.get(), i}];
            if (n == 0)
                problems.push_back("input '" + proc->input_name(i) + "' of '" +
                                   proc->name() + "' is unfed");
            if (n > 1)
                problems.push_back("input '" + proc->input_name(i) + "' of '" +
                                   proc->name() + "' is fed " +
                                   std::to_string(n) + " times");
        }
    }
    for (const ChannelDecl& c : channels_) {
        if (c.producer_port >= c.producer->output_count() ||
            c.consumer_port >= c.consumer->input_count())
            problems.push_back("channel '" + c.variable + "' has out-of-range ports");
    }
    return problems;
}

}  // namespace uhcg::kpn
