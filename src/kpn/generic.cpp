#include "kpn/generic.hpp"

#include <map>
#include <stdexcept>

namespace uhcg::kpn {
namespace {

using model::AttrType;
using model::Metamodel;
using model::Object;
using model::ObjectModel;

Metamodel build_metamodel() {
    Metamodel mm("KPN");

    auto& n = mm.add_class("Network");
    n.add_attribute({"name", AttrType::String, {}, std::nullopt});
    n.add_reference({"processes", "Process", true, true, false});
    n.add_reference({"channels", "Channel", true, true, false});
    n.add_reference({"ports", "NetworkPort", true, true, false});

    auto& p = mm.add_class("Process");
    p.add_attribute({"name", AttrType::String, {}, std::nullopt});
    p.add_attribute({"kernel", AttrType::String, {}, ""});
    p.add_reference({"ports", "Port", true, true, false});

    auto& port = mm.add_class("Port");
    port.add_attribute({"index", AttrType::Int, {}, std::nullopt});
    port.add_attribute({"isInput", AttrType::Bool, {}, std::nullopt});
    port.add_attribute({"var", AttrType::String, {}, std::nullopt});

    auto& c = mm.add_class("Channel");
    c.add_attribute({"variable", AttrType::String, {}, std::nullopt});
    c.add_attribute({"initialTokens", AttrType::Int, {}, "0"});
    c.add_attribute({"producerPort", AttrType::Int, {}, std::nullopt});
    c.add_attribute({"consumerPort", AttrType::Int, {}, std::nullopt});
    c.add_reference({"producer", "Process", false, false, true});
    c.add_reference({"consumer", "Process", false, false, true});

    auto& np = mm.add_class("NetworkPort");
    np.add_attribute({"var", AttrType::String, {}, std::nullopt});
    np.add_attribute({"isInput", AttrType::Bool, {}, std::nullopt});
    np.add_attribute({"port", AttrType::Int, {}, std::nullopt});
    np.add_reference({"process", "Process", false, false, true});

    return mm;
}

}  // namespace

const Metamodel& kpn_metamodel() {
    static const Metamodel mm = build_metamodel();
    return mm;
}

ObjectModel to_generic(const Network& network) {
    ObjectModel out(kpn_metamodel());
    Object& gn = out.create("Network", "kpn." + network.name());
    gn.set("name", network.name());
    std::map<const Process*, Object*> pmap;
    for (const Process* p : network.processes()) {
        Object& gp = out.create("Process", "proc." + p->name());
        gp.set("name", p->name());
        gp.set("kernel", p->kernel());
        for (std::size_t i = 0; i < p->input_count(); ++i) {
            Object& gport = out.create("Port", gp.id() + ".in" + std::to_string(i));
            gport.set("index", static_cast<std::int64_t>(i));
            gport.set("isInput", true);
            gport.set("var", p->input_name(i));
            gp.add_ref("ports", gport);
        }
        for (std::size_t i = 0; i < p->output_count(); ++i) {
            Object& gport = out.create("Port", gp.id() + ".out" + std::to_string(i));
            gport.set("index", static_cast<std::int64_t>(i));
            gport.set("isInput", false);
            gport.set("var", p->output_name(i));
            gp.add_ref("ports", gport);
        }
        gn.add_ref("processes", gp);
        pmap[p] = &gp;
    }
    std::size_t index = 0;
    for (const ChannelDecl& c : network.channels()) {
        Object& gc = out.create("Channel", "chan." + std::to_string(index++));
        gc.set("variable", c.variable);
        gc.set("initialTokens", static_cast<std::int64_t>(c.initial_tokens));
        gc.set("producerPort", static_cast<std::int64_t>(c.producer_port));
        gc.set("consumerPort", static_cast<std::int64_t>(c.consumer_port));
        gc.set_ref("producer", pmap.at(c.producer));
        gc.set_ref("consumer", pmap.at(c.consumer));
        gn.add_ref("channels", gc);
    }
    index = 0;
    auto emit_port = [&](const NetworkPort& p) {
        Object& gp = out.create("NetworkPort", "nport." + std::to_string(index++));
        gp.set("var", p.variable);
        gp.set("isInput", p.is_input);
        gp.set("port", static_cast<std::int64_t>(p.port));
        gp.set_ref("process", pmap.at(p.process));
        gn.add_ref("ports", gp);
    };
    for (const NetworkPort& p : network.network_inputs()) emit_port(p);
    for (const NetworkPort& p : network.network_outputs()) emit_port(p);
    return out;
}

Network from_generic(const ObjectModel& generic) {
    auto roots = generic.all_of("Network");
    if (roots.size() != 1)
        throw std::runtime_error("generic KPN must contain exactly one Network");
    const Object& gn = *roots.front();
    Network out(gn.get_string("name"));
    std::map<const Object*, Process*> pmap;
    for (const Object* gp : gn.refs("processes")) {
        Process& p = out.add_process(gp->get_string("name"));
        p.set_kernel(gp->get_string("kernel"));
        // Ports are recorded with indices; replay in index order per side.
        std::map<std::int64_t, std::string> ins, outs;
        for (const Object* gport : gp->refs("ports")) {
            if (gport->get_bool("isInput"))
                ins[gport->get_int("index")] = gport->get_string("var");
            else
                outs[gport->get_int("index")] = gport->get_string("var");
        }
        for (auto& [i, var] : ins) p.add_input(var);
        for (auto& [i, var] : outs) p.add_output(var);
        pmap[gp] = &p;
    }
    for (const Object* gc : gn.refs("channels")) {
        ChannelDecl& c = out.connect(
            *pmap.at(gc->ref("producer")),
            static_cast<std::size_t>(gc->get_int("producerPort")),
            *pmap.at(gc->ref("consumer")),
            static_cast<std::size_t>(gc->get_int("consumerPort")),
            gc->get_string("variable"));
        c.initial_tokens = static_cast<std::size_t>(gc->get_int("initialTokens"));
    }
    for (const Object* gp : gn.refs("ports")) {
        Process& proc = *pmap.at(gp->ref("process"));
        auto port = static_cast<std::size_t>(gp->get_int("port"));
        if (gp->get_bool("isInput"))
            out.add_network_input(proc, port, gp->get_string("var"));
        else
            out.add_network_output(proc, port, gp->get_string("var"));
    }
    return out;
}

}  // namespace uhcg::kpn
