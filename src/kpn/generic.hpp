// generic.hpp — the KPN meta-model registered with the reflective layer,
// plus typed↔generic conversion. Fig. 2's transformation engine targets a
// meta-model; registering KPN here is what makes the UML front-end
// retargetable to it with ordinary mapping rules (kpn/from_uml.cpp).
#pragma once

#include "kpn/model.hpp"
#include "model/metamodel.hpp"
#include "model/object.hpp"

namespace uhcg::kpn {

/// The KPN metamodel, registered once.
const model::Metamodel& kpn_metamodel();

/// Deep copies between the typed API and generic object graphs.
model::ObjectModel to_generic(const Network& network);
Network from_generic(const model::ObjectModel& generic);

}  // namespace uhcg::kpn
