// execute.hpp — KPN execution with blocking-read (Kahn) semantics.
//
// Processes fire when every input channel holds at least one token; each
// firing consumes one token per input and produces one per output
// (homogeneous rates — the single-rate discipline the CAAM branch also
// uses). Network inputs receive one token per round from bound signals.
//
// A cyclic network without initial tokens read-blocks at startup: the
// executor detects the global standstill and reports the blocked
// processes — the KPN mirror of sim::DeadlockError, demonstrating why the
// mapping's initial-token insertion (↔ §4.2.2 temporal barriers) is
// required.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <span>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "diag/diag.hpp"
#include "kpn/model.hpp"

namespace uhcg::kpn {

/// Snapshot of one channel at the moment execution stalled.
struct ChannelState {
    std::string variable;
    std::string producer;
    std::string consumer;
    std::size_t tokens = 0;
};

/// Behaviour of one process: consumes one token per input, produces one
/// per output. `state` persists across firings.
using Kernel = std::function<void(std::span<const double> inputs,
                                  std::span<double> outputs,
                                  std::vector<double>& state)>;

class KernelRegistry {
public:
    struct Entry {
        Kernel kernel;
        std::size_t state_size = 0;
    };

    void register_kernel(std::string name, Kernel kernel,
                         std::size_t state_size = 0);
    /// One hash probe; nullptr when unregistered. The pointer stays valid
    /// for the registry's lifetime (rehashing never moves mapped values),
    /// so executors resolve each process's kernel once and fire through
    /// the cached entry instead of looking the name up per firing.
    const Entry* find(const std::string& name) const;
    bool contains(const std::string& name) const {
        return find(name) != nullptr;
    }
    const Kernel& kernel(const std::string& name) const;
    std::size_t state_size(const std::string& name) const;

private:
    std::unordered_map<std::string, Entry> entries_;
};

/// Thrown when no process can fire and the round is incomplete. Carries a
/// structured payload — the blocked processes and every channel's fill
/// level at the standstill — so drivers can print an actionable report
/// instead of a flat string.
class ReadBlockedError : public std::runtime_error {
public:
    explicit ReadBlockedError(std::vector<std::string> blocked,
                              std::vector<ChannelState> channels = {});
    const std::vector<std::string>& blocked() const { return blocked_; }
    const std::vector<ChannelState>& channels() const { return channels_; }

private:
    std::vector<std::string> blocked_;
    std::vector<ChannelState> channels_;
};

/// Iteration budget for watchdogged execution; 0 = unlimited.
struct WatchdogBudget {
    /// Kernel firings allowed across the whole run (livelock guard).
    std::size_t max_firings = 0;
};

struct KpnResult {
    std::size_t rounds = 0;
    std::size_t firings = 0;
    /// Network output variable → one value per produced token.
    std::map<std::string, std::vector<double>> outputs;
    /// Channel variable → tokens transported.
    std::map<std::string, std::size_t> channel_tokens;
    /// Largest queue depth observed on any channel (boundedness evidence).
    std::size_t max_queue_depth = 0;
    /// Set by the watchdogged run(): execution stalled mid-round.
    bool deadlocked = false;
    /// Set by the watchdogged run(): the firing budget ran out.
    bool budget_exhausted = false;
    /// Processes that could not fire when the run stalled.
    std::vector<std::string> blocked;
    /// Channel fill levels when the run stalled.
    std::vector<ChannelState> channel_states;
};

class Executor {
public:
    /// Validates the network and binds kernels. Throws std::runtime_error
    /// on malformed networks or missing kernels.
    Executor(const Network& network, const KernelRegistry& registry);

    /// Binds a network input to a per-round signal (round index → value).
    /// Unbound inputs feed 0.0.
    void set_input(const std::string& var,
                   std::function<double(std::size_t round)> signal);

    /// Runs `rounds` rounds; in each, every process fires exactly once
    /// (dataflow order). Throws ReadBlockedError on startup deadlock.
    KpnResult run(std::size_t rounds);

    /// Watchdogged run: never throws on deadlock or budget exhaustion.
    /// Instead it reports a structured diagnostic (kpn.read-blocked /
    /// kpn.watchdog, with blocked processes and channel fills as notes)
    /// into `engine`, flags the result, and returns what executed so far.
    KpnResult run(std::size_t rounds, diag::DiagnosticEngine& engine,
                  const WatchdogBudget& budget = {});

private:
    KpnResult run_impl(std::size_t rounds, diag::DiagnosticEngine* engine,
                       const WatchdogBudget& budget);

    const Network* network_;
    const KernelRegistry* registry_;
    /// Kernel entry per process (network process order), resolved once at
    /// construction — firings touch no map at all.
    std::vector<const KernelRegistry::Entry*> kernels_;
    std::map<std::string, std::function<double(std::size_t)>> inputs_;
};

}  // namespace uhcg::kpn
