// bench_pipeline — Fig. 2: the four-step mapping flow, timed per step and
// swept over model sizes.
//
// Paper claim: the flow is (1) UML construction, (2) model-to-model
// transformation against the Simulink meta-model, (3) optimization
// (channels, barriers, allocation), (4) model-to-text (.mdl). This bench
// measures each step and reports the rule-application statistics of the
// transformation engine for growing applications.
#include "bench_common.hpp"
#include "cases/cases.hpp"
#include "core/mapping.hpp"
#include "core/optimize.hpp"
#include "core/pipeline.hpp"
#include "simulink/generic.hpp"
#include "simulink/mdl.hpp"
#include "uml/generic.hpp"
#include "uml/xmi.hpp"

namespace {

using namespace uhcg;

void print_reproduction() {
    bench::banner("Fig. 2 — the mapping flow, step by step",
                  "model-to-model transformation with rule tracing, then "
                  "optimization, then model-to-text");
    for (std::size_t threads : {8u, 16u, 32u, 64u}) {
        uml::Model app = cases::random_application(7, threads, 4);
        core::CommModel comm = core::analyze_communication(app);
        core::Allocation alloc = core::auto_allocate(app, comm);
        core::MappingOutput mapped = core::run_mapping(app, comm, alloc);
        simulink::Model caam = simulink::from_generic(mapped.caam);
        core::ChannelReport channels = core::infer_channels(caam, comm);
        std::string mdl = simulink::write_mdl(caam);
        std::printf(
            "threads=%-3zu  rules fired: Model2Caam=%zu Thread2ThreadSS=%zu "
            "Interaction2Layer=%zu trace-links=%zu  CAAM objects=%zu  "
            "channels=%zu+%zu  mdl=%zu B\n",
            threads, mapped.stats.applications.at("Model2Caam"),
            mapped.stats.applications.at("Thread2ThreadSS"),
            mapped.stats.applications.at("Interaction2Layer"),
            mapped.stats.trace_links, mapped.stats.target_objects,
            channels.intra_channels, channels.inter_channels, mdl.size());
    }
}

void BM_Step1_UmlConstruction(benchmark::State& state) {
    auto threads = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        uml::Model app = cases::random_application(7, threads, 4);
        benchmark::DoNotOptimize(&app);
    }
}
BENCHMARK(BM_Step1_UmlConstruction)->Arg(8)->Arg(32)->Arg(128);

void BM_Step1b_XmiIngestion(benchmark::State& state) {
    uml::Model app =
        cases::random_application(7, static_cast<std::size_t>(state.range(0)), 4);
    std::string xmi = uml::to_xmi_string(app);
    for (auto _ : state) {
        uml::Model loaded = uml::from_xmi_string(xmi);
        benchmark::DoNotOptimize(&loaded);
    }
    state.SetBytesProcessed(state.iterations() * xmi.size());
}
BENCHMARK(BM_Step1b_XmiIngestion)->Arg(8)->Arg(32)->Arg(128);

void BM_Step2_ModelToModel(benchmark::State& state) {
    uml::Model app =
        cases::random_application(7, static_cast<std::size_t>(state.range(0)), 4);
    core::CommModel comm = core::analyze_communication(app);
    core::Allocation alloc = core::auto_allocate(app, comm);
    for (auto _ : state) {
        core::MappingOutput mapped = core::run_mapping(app, comm, alloc);
        benchmark::DoNotOptimize(mapped.stats.trace_links);
    }
}
BENCHMARK(BM_Step2_ModelToModel)->Arg(8)->Arg(32)->Arg(128);

void BM_Step3_Optimization(benchmark::State& state) {
    uml::Model app =
        cases::random_application(7, static_cast<std::size_t>(state.range(0)), 4);
    core::CommModel comm = core::analyze_communication(app);
    core::Allocation alloc = core::auto_allocate(app, comm);
    core::MappingOutput mapped = core::run_mapping(app, comm, alloc);
    for (auto _ : state) {
        state.PauseTiming();
        simulink::Model caam = simulink::from_generic(mapped.caam);
        state.ResumeTiming();
        core::ChannelReport channels = core::infer_channels(caam, comm);
        core::DelayReport delays = core::insert_temporal_barriers(caam);
        benchmark::DoNotOptimize(channels.inter_channels + delays.inserted);
    }
}
BENCHMARK(BM_Step3_Optimization)->Arg(8)->Arg(32)->Arg(128);

void BM_Step4_ModelToText(benchmark::State& state) {
    uml::Model app =
        cases::random_application(7, static_cast<std::size_t>(state.range(0)), 4);
    core::MapperOptions options;
    options.auto_allocate = true;
    simulink::Model caam = core::map_to_caam(app, options);
    for (auto _ : state) {
        std::string mdl = simulink::write_mdl(caam);
        benchmark::DoNotOptimize(mdl.data());
    }
}
BENCHMARK(BM_Step4_ModelToText)->Arg(8)->Arg(32)->Arg(128);

void BM_FullPipeline(benchmark::State& state) {
    uml::Model app =
        cases::random_application(7, static_cast<std::size_t>(state.range(0)), 4);
    core::MapperOptions options;
    options.auto_allocate = true;
    for (auto _ : state) {
        std::string mdl = core::generate_mdl(app, options);
        benchmark::DoNotOptimize(mdl.data());
    }
    state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_FullPipeline)->RangeMultiplier(2)->Range(8, 128)->Complexity();

}  // namespace

UHCG_BENCH_MAIN(print_reproduction)
