// bench_serve — the daemon's reason to exist: a warm `uhcg serve` answers
// without re-running the XMI front-end.
//
// Claim: a cold request pays xml.parse + uml.xmi-load + comm analysis
// before any real work; a warm request against the resident model cache
// skips all three (the xml.nodes_parsed counter stays flat across warm
// requests) and answers from the content-hash hit. The reproduction rows
// print cold-vs-warm wall time for the same request plus the cache and
// parse counters that prove where the time went.
#include <algorithm>
#include <chrono>
#include <functional>
#include <string>

#include "bench_common.hpp"
#include "cases/cases.hpp"
#include "obs/obs.hpp"
#include "serve/engine.hpp"
#include "uml/xmi.hpp"

namespace {

using namespace uhcg;

std::string escape_json(const std::string& text) {
    std::string out;
    out.reserve(text.size() + 16);
    for (char c : text) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            case '\r': out += "\\r"; break;
            default: out += c;
        }
    }
    return out;
}

std::string simulate_request(const std::string& xmi) {
    return "{\"method\":\"simulate\",\"id\":1,\"model_xmi\":\"" +
           escape_json(xmi) + "\"}";
}

double best_of(int reps, int iters, const std::function<void()>& body) {
    double best = 1e300;
    for (int rep = 0; rep < reps; ++rep) {
        auto start = std::chrono::steady_clock::now();
        for (int i = 0; i < iters; ++i) body();
        auto stop = std::chrono::steady_clock::now();
        best = std::min(
            best,
            std::chrono::duration<double, std::milli>(stop - start).count() /
                iters);
    }
    return best;
}

void print_reproduction() {
    bench::banner(
        "uhcg serve — resident model cache vs per-request front-end",
        "a warm daemon answers simulate/explore without re-parsing the "
        "model: xml.nodes_parsed stays flat, serve.cache_hits grows");

    std::string xmi = uml::to_xmi_string(cases::crane_model());
    std::string request = simulate_request(xmi);
    bench::row("request bytes (XMI embedded)", request.size());

    constexpr int kReps = 5;
    constexpr int kIters = 20;

    // Cold: a fresh engine per request — every request pays the parse,
    // exactly like one-shot `uhcg` CLI invocations.
    double cold_ms = best_of(kReps, kIters, [&] {
        serve::Engine engine{serve::EngineOptions{}};
        std::string response = engine.handle(request);
        benchmark::DoNotOptimize(response.data());
    });

    // Warm: one long-lived engine; the first request admits the model,
    // the rest hit the resident cache.
    serve::Engine warm_engine{serve::EngineOptions{}};
    (void)warm_engine.handle(request);  // admit
    obs::Counter& nodes_parsed = obs::counter("xml.nodes_parsed");
    std::uint64_t parsed_before_warm = nodes_parsed.value();
    double warm_ms = best_of(kReps, kIters, [&] {
        std::string response = warm_engine.handle(request);
        benchmark::DoNotOptimize(response.data());
    });
    std::uint64_t parsed_during_warm = nodes_parsed.value() - parsed_before_warm;

    bench::row("cold request (fresh engine, ms)", cold_ms);
    bench::row("warm request (resident cache, ms)", warm_ms);
    bench::row("warm speedup (x)", warm_ms > 0 ? cold_ms / warm_ms : 0.0);
    bench::row("xml nodes parsed during warm requests",
               std::size_t(parsed_during_warm));

    serve::ModelCache::Stats stats = warm_engine.cache().stats();
    bench::row("cache hits", std::size_t(stats.hits));
    bench::row("cache misses", std::size_t(stats.misses));
    bench::row("resident models", stats.entries);
}

void BM_ServeCold(benchmark::State& state) {
    std::string request = simulate_request(uml::to_xmi_string(cases::crane_model()));
    for (auto _ : state) {
        serve::Engine engine{serve::EngineOptions{}};
        std::string response = engine.handle(request);
        benchmark::DoNotOptimize(response.data());
    }
}
BENCHMARK(BM_ServeCold);

void BM_ServeWarm(benchmark::State& state) {
    std::string request = simulate_request(uml::to_xmi_string(cases::crane_model()));
    serve::Engine engine{serve::EngineOptions{}};
    (void)engine.handle(request);
    for (auto _ : state) {
        std::string response = engine.handle(request);
        benchmark::DoNotOptimize(response.data());
    }
}
BENCHMARK(BM_ServeWarm);

void BM_ServeWarmExplore(benchmark::State& state) {
    serve::Engine engine{serve::EngineOptions{}};
    std::string request = simulate_request(uml::to_xmi_string(cases::crane_model()));
    (void)engine.handle(request);
    std::string hash = serve::ModelCache::hash_bytes(
        uml::to_xmi_string(cases::crane_model()));
    std::string explore = "{\"method\":\"explore\",\"id\":2,\"model_hash\":\"" +
                          hash + "\",\"params\":{\"jobs\":1}}";
    for (auto _ : state) {
        std::string response = engine.handle(explore);
        benchmark::DoNotOptimize(response.data());
    }
}
BENCHMARK(BM_ServeWarmExplore);

}  // namespace

UHCG_BENCH_MAIN(print_reproduction)
