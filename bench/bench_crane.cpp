// bench_crane — Fig. 4/5 + §5.1: the crane control system case study.
//
// Paper claim: the crane's three threads map to one CPU; the generated
// Simulink model contains the thread's S-function and subsystems, and "our
// tool automatically inserts the required temporal barriers" — a Delay
// appears on the cyclic path (Fig. 5) making the model executable.
#include "bench_common.hpp"
#include "cases/cases.hpp"
#include "core/delays.hpp"
#include "core/pipeline.hpp"
#include "sim/engine.hpp"
#include "simulink/caam.hpp"

namespace {

using namespace uhcg;

void print_reproduction() {
    bench::banner("Fig. 4/5 — crane control system (§5.1)",
                  "3 threads on one CPU; a Delay is inserted automatically "
                  "on the detected cyclic path; the model executes");
    uml::Model crane = cases::crane_model();
    core::MapperReport report;
    simulink::Model caam = core::map_to_caam(crane, {}, &report);
    simulink::CaamStats s = simulink::caam_stats(caam);
    bench::row("threads on CPU1", s.threads);
    bench::row("CPU subsystems", s.cpus);
    bench::row("S-functions (plant/filter/control)", s.sfunctions);
    bench::row("intra-SS channels (SWFIFO)", s.intra_channels);
    bench::row("delays inserted automatically", report.delays.inserted);
    for (const std::string& loc : report.delays.locations)
        bench::row("  barrier location", loc);

    // The §4.2.2 point: without barriers the dataflow deadlocks.
    core::MapperOptions no_delays;
    no_delays.insert_delays = false;
    simulink::Model cyclic = core::map_to_caam(crane, no_delays);
    sim::SFunctionRegistry registry;
    cases::register_crane_sfunctions(registry);
    bool deadlocked = false;
    try {
        sim::Simulator doomed(cyclic, registry);
    } catch (const sim::DeadlockError&) {
        deadlocked = true;
    }
    bench::row("without barriers", deadlocked ? "DEADLOCK (as expected)"
                                              : "unexpectedly schedulable");

    sim::Simulator simulator(caam, registry);
    sim::SimResult result = simulator.run(600);
    const auto& pos = result.outputs.at("pos_f");
    bench::row("with barriers: steps executed", result.steps);
    bench::row("crane position t=5s", pos[100]);
    bench::row("crane position t=15s", pos[300]);
    bench::row("crane position t=30s (setpoint 1.0)", pos.back());
}

void BM_CraneMapping(benchmark::State& state) {
    uml::Model crane = cases::crane_model();
    for (auto _ : state) {
        simulink::Model caam = core::map_to_caam(crane);
        benchmark::DoNotOptimize(&caam);
    }
}
BENCHMARK(BM_CraneMapping);

void BM_CraneDelayInsertion(benchmark::State& state) {
    uml::Model crane = cases::crane_model();
    core::MapperOptions no_delays;
    no_delays.insert_delays = false;
    for (auto _ : state) {
        state.PauseTiming();
        simulink::Model caam = core::map_to_caam(crane, no_delays);
        state.ResumeTiming();
        core::DelayReport report = core::insert_temporal_barriers(caam);
        benchmark::DoNotOptimize(report.inserted);
    }
}
BENCHMARK(BM_CraneDelayInsertion);

void BM_CraneSimulationPerStep(benchmark::State& state) {
    simulink::Model caam = core::map_to_caam(cases::crane_model());
    sim::SFunctionRegistry registry;
    cases::register_crane_sfunctions(registry);
    sim::Simulator simulator(caam, registry);
    for (auto _ : state) {
        sim::SimResult r = simulator.run(static_cast<std::size_t>(state.range(0)));
        benchmark::DoNotOptimize(r.steps);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CraneSimulationPerStep)->Arg(100)->Arg(1000);

}  // namespace

UHCG_BENCH_MAIN(print_reproduction)
