// bench_flow — Fig. 1: one UML model, heterogeneous generation strategies.
//
// Paper claim: the *same* UML front-end feeds (a) the Simulink-based flow
// for dataflow subsystems, (b) FSM-based generation for control-flow
// subsystems, and (c) plain multithreaded code generation when no Simulink
// compiler is available. This bench runs all branches and reports the
// artifacts each produces.
#include <algorithm>
#include <chrono>

#include "bench_common.hpp"
#include "cases/cases.hpp"
#include "codegen/caam_to_c.hpp"
#include "codegen/uml_to_cpp.hpp"
#include "core/pipeline.hpp"
#include "fsm/codegen.hpp"
#include "fsm/from_uml.hpp"
#include "obs/obs.hpp"
#include "simulink/mdl.hpp"
#include "uml/xmi.hpp"

namespace {

using namespace uhcg;

// Observability acceptance check: tracing the full front-end-to-CAAM
// pass must cost under a few percent of wall time. The workload is the
// instrumented path (XMI parse → UML load → comm analysis → CAAM
// mapping), run back-to-back with spans disabled and enabled. Span
// buffers are cleared every iteration so the enabled run measures
// steady-state recording, not unbounded buffer growth.
void obs_overhead_section() {
    uml::Model crane = cases::crane_model();
    std::string xmi = uml::to_xmi_string(crane);
    auto pass_once = [&] {
        uml::Model parsed = uml::from_xmi_string(xmi);
        simulink::Model caam = core::map_to_caam(parsed);
        std::string mdl = simulink::write_mdl(caam);
        benchmark::DoNotOptimize(mdl.data());
    };

    constexpr int kIters = 40;
    constexpr int kReps = 5;
    auto timed_once = [&](bool enable) {
        obs::set_enabled(enable);
        pass_once();  // warm-up, outside the clock
        auto start = std::chrono::steady_clock::now();
        for (int i = 0; i < kIters; ++i) {
            pass_once();
            if (enable) obs::reset_spans();
        }
        auto stop = std::chrono::steady_clock::now();
        obs::set_enabled(false);
        obs::reset_spans();
        return std::chrono::duration<double, std::milli>(stop - start)
                   .count() /
               kIters;
    };
    // Best-of-N with the two modes interleaved: the minimum is the
    // least-noisy estimate of each mode's true cost, and interleaving
    // keeps frequency/cache drift from biasing one side.
    double disabled_ms = timed_once(false), enabled_ms = timed_once(true);
    for (int rep = 1; rep < kReps; ++rep) {
        disabled_ms = std::min(disabled_ms, timed_once(false));
        enabled_ms = std::min(enabled_ms, timed_once(true));
    }
    bench::row("flow pass, tracing off (ms)", disabled_ms);
    bench::row("flow pass, tracing on (ms)", enabled_ms);
    bench::row("tracing overhead (pct)",
               (enabled_ms / disabled_ms - 1.0) * 100.0);
}

void print_reproduction() {
    bench::banner("Fig. 1 — heterogeneous code generation from one front-end",
                  "UML model → Simulink-branch (CAAM + C per CPU), "
                  "FSM-branch (C), and multithread fallback (C++)");
    uml::Model crane = cases::crane_model();
    bench::row("front-end XMI bytes", uml::to_xmi_string(crane).size());

    // Branch (a): Simulink-based flow.
    core::MapperReport report;
    simulink::Model caam = core::map_to_caam(crane, {}, &report);
    std::string mdl = simulink::write_mdl(caam);
    codegen::GeneratedProgram c_program = codegen::generate_c_program(caam);
    std::size_t c_bytes = 0;
    for (const auto& [_, contents] : c_program.files) c_bytes += contents.size();
    bench::row("Simulink branch: .mdl bytes", mdl.size());
    bench::row("Simulink branch: C files / bytes",
               std::to_string(c_program.files.size()) + " / " +
                   std::to_string(c_bytes));
    bench::row("Simulink branch: channels",
               std::to_string(report.channels.intra_channels) + " SWFIFO + " +
                   std::to_string(report.channels.inter_channels) + " GFIFO");

    // Branch (b): control-flow → FSM → C.
    fsm::Machine elevator = fsm::from_uml(cases::elevator_state_machine());
    fsm::GeneratedC fsm_code = fsm::generate_c(elevator);
    bench::row("FSM branch: states / transitions",
               std::to_string(elevator.state_count()) + " / " +
                   std::to_string(elevator.transitions().size()));
    bench::row("FSM branch: C bytes",
               fsm_code.header.size() + fsm_code.source.size());

    // Branch (c): multithread fallback.
    codegen::CppProgram cpp = codegen::generate_cpp_threads(crane, 100);
    bench::row("fallback branch: C++ bytes", cpp.source.size());
    bench::row("fallback branch: threads / queues",
               std::to_string(cpp.thread_count) + " / " +
                   std::to_string(cpp.queue_count));

    obs_overhead_section();
}

void BM_SimulinkBranch(benchmark::State& state) {
    uml::Model crane = cases::crane_model();
    for (auto _ : state) {
        simulink::Model caam = core::map_to_caam(crane);
        std::string mdl = simulink::write_mdl(caam);
        benchmark::DoNotOptimize(mdl.data());
    }
}
BENCHMARK(BM_SimulinkBranch);

void BM_FsmBranch(benchmark::State& state) {
    uml::StateMachine elevator = cases::elevator_state_machine();
    for (auto _ : state) {
        fsm::GeneratedC code = fsm::generate_c(fsm::from_uml(elevator));
        benchmark::DoNotOptimize(code.source.data());
    }
}
BENCHMARK(BM_FsmBranch);

void BM_FallbackBranch(benchmark::State& state) {
    uml::Model crane = cases::crane_model();
    for (auto _ : state) {
        codegen::CppProgram cpp = codegen::generate_cpp_threads(crane, 100);
        benchmark::DoNotOptimize(cpp.source.data());
    }
}
BENCHMARK(BM_FallbackBranch);

void BM_CaamToCProgram(benchmark::State& state) {
    simulink::Model caam = core::map_to_caam(cases::crane_model());
    for (auto _ : state) {
        codegen::GeneratedProgram program = codegen::generate_c_program(caam);
        benchmark::DoNotOptimize(program.files.size());
    }
}
BENCHMARK(BM_CaamToCProgram);

}  // namespace

UHCG_BENCH_MAIN(print_reproduction)
