// bench_kpn — §3's retargeting promise: "the proposed transformation
// approach can be extended to support mappings to other languages, such as
// ... KPN (Kahn Process Network)".
//
// The same front-end models map to KPNs through the same transformation
// engine; the structural correspondence with the CAAM branch (threads ↔
// processes, channels ↔ channels, UnitDelays ↔ initial tokens) is printed
// for the paper's case studies.
#include <algorithm>
#include <chrono>

#include "bench_common.hpp"
#include "cases/cases.hpp"
#include "core/pipeline.hpp"
#include "kpn/execute.hpp"
#include "kpn/from_uml.hpp"
#include "simulink/caam.hpp"

namespace {

using namespace uhcg;

kpn::KernelRegistry sum_registry(const uml::Model& model) {
    kpn::KernelRegistry reg;
    kpn::Kernel sum = [](std::span<const double> in, std::span<double> out,
                         std::vector<double>&) {
        double s = 0.0;
        for (double v : in) s += v;
        if (!out.empty()) out[0] = s + 1.0;
    };
    for (const uml::ObjectInstance* t : model.threads())
        reg.register_kernel(t->name(), sum);
    return reg;
}

void compare(const char* name, const uml::Model& model, bool auto_allocate) {
    core::MapperOptions options;
    options.auto_allocate = auto_allocate;
    core::MapperReport report;
    simulink::Model caam = core::map_to_caam(model, options, &report);
    simulink::CaamStats stats = simulink::caam_stats(caam);
    kpn::KpnMappingOutput out = kpn::map_to_kpn(model);
    std::printf(
        "%-12s CAAM: %zu threads, %zu channels, %zu delays | KPN: %zu "
        "processes, %zu channels, %zu initial tokens\n",
        name, stats.threads, stats.inter_channels + stats.intra_channels,
        report.delays.inserted, out.network.processes().size(),
        out.network.channels().size(), out.initial_tokens_inserted);
}

void print_reproduction() {
    bench::banner("KPN retargeting (§3)",
                  "the transformation approach extends to KPN: same rules "
                  "engine, structural correspondence with the CAAM branch");
    {
        uml::Model m = cases::didactic_model();
        compare("didactic", m, false);
    }
    {
        uml::Model m = cases::crane_model();
        compare("crane", m, false);
    }
    {
        uml::Model m = cases::synthetic_model();
        compare("synthetic", m, true);
    }

    // Execute the crane KPN: read-blocked without seeds, runs with them.
    uml::Model crane = cases::crane_model();
    kpn::KernelRegistry reg = sum_registry(crane);
    kpn::KpnMappingOptions no_seeds;
    no_seeds.auto_initial_tokens = false;
    kpn::KpnMappingOutput blocked = kpn::map_to_kpn(crane, no_seeds);
    bool read_blocked = false;
    try {
        kpn::Executor doomed(blocked.network, reg);
        doomed.run(1);
    } catch (const kpn::ReadBlockedError&) {
        read_blocked = true;
    }
    bench::row("crane KPN without initial tokens",
               read_blocked ? "READ-BLOCKED (as expected)" : "unexpectedly ran");
    kpn::KpnMappingOutput seeded = kpn::map_to_kpn(crane);
    kpn::Executor exec(seeded.network, reg);
    auto start = std::chrono::steady_clock::now();
    kpn::KpnResult r = exec.run(100);
    double run_ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count();
    bench::row("crane KPN with initial tokens: firings", r.firings);
    bench::row("max channel queue depth (bounded)", r.max_queue_depth);
    // Absolute throughput for the perf gate's uncalibrated budget floor
    // (see src/obs/gate.hpp): a uniform machine slowdown that median-ratio
    // calibration would absorb still shows up as collapsed firings/ms.
    // Always emitted (clamped denominator) so the baseline row never goes
    // missing on a fast run.
    bench::row("kpn firings (/ms)", static_cast<double>(r.firings) /
                                        std::max(run_ms, 1e-6));
}

void BM_KpnMappingSynthetic(benchmark::State& state) {
    uml::Model syn = cases::synthetic_model();
    core::CommModel comm = core::analyze_communication(syn);
    for (auto _ : state) {
        kpn::KpnMappingOutput out = kpn::map_to_kpn(syn, comm);
        benchmark::DoNotOptimize(out.network.processes().size());
    }
}
BENCHMARK(BM_KpnMappingSynthetic);

void BM_KpnExecutionPerRound(benchmark::State& state) {
    uml::Model syn = cases::synthetic_model();
    kpn::KpnMappingOutput out = kpn::map_to_kpn(syn);
    kpn::KernelRegistry reg = sum_registry(syn);
    kpn::Executor exec(out.network, reg);
    for (auto _ : state) {
        kpn::KpnResult r = exec.run(static_cast<std::size_t>(state.range(0)));
        benchmark::DoNotOptimize(r.firings);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0) * 12);
}
BENCHMARK(BM_KpnExecutionPerRound)->Arg(100);

}  // namespace

UHCG_BENCH_MAIN(print_reproduction)
