// bench_synthetic_caam — Fig. 8: the CAAM top level generated for the
// synthetic example with automatic allocation.
//
// Paper claim: "four CPU subsystems communicate through inter-SS channels";
// channel inference runs automatically; the deployment diagram is not
// needed.
#include "bench_common.hpp"
#include "cases/cases.hpp"
#include "core/pipeline.hpp"
#include "sim/engine.hpp"
#include "simulink/caam.hpp"
#include "simulink/mdl.hpp"

namespace {

using namespace uhcg;

void print_reproduction() {
    bench::banner("Fig. 8 — synthetic CAAM top level",
                  "4 CPU subsystems communicating through inter-SS (GFIFO) "
                  "channels, generated without a deployment diagram");
    uml::Model syn = cases::synthetic_model();
    core::MapperOptions options;
    options.auto_allocate = true;
    core::MapperReport report;
    simulink::Model caam = core::map_to_caam(syn, options, &report);
    simulink::CaamStats s = simulink::caam_stats(caam);
    bench::row("CPU subsystems at top level", s.cpus);
    for (const simulink::Block* cpu :
         simulink::cpu_subsystems(const_cast<const simulink::Model&>(caam))) {
        std::string threads;
        for (const simulink::Block* t : simulink::thread_subsystems(*cpu))
            threads += t->name() + " ";
        bench::row("  " + cpu->name(), threads);
    }
    bench::row("inter-SS channels (GFIFO)", s.inter_channels);
    bench::row("intra-SS channels (SWFIFO)", s.intra_channels);
    bench::row("validation problems", simulink::validate_caam(caam).size());

    sim::SFunctionRegistry registry;
    cases::register_synthetic_sfunctions(registry);
    sim::Simulator simulator(caam, registry);
    sim::SimResult r = simulator.run(100);
    bench::row("executed steps", r.steps);
    bench::row("GFIFO transfers (100 steps)", r.channel_traffic.at("GFIFO"));
    bench::row("SWFIFO transfers (100 steps)", r.channel_traffic.at("SWFIFO"));
}

void BM_SyntheticFullFlow(benchmark::State& state) {
    uml::Model syn = cases::synthetic_model();
    core::MapperOptions options;
    options.auto_allocate = true;
    for (auto _ : state) {
        simulink::Model caam = core::map_to_caam(syn, options);
        benchmark::DoNotOptimize(&caam);
    }
}
BENCHMARK(BM_SyntheticFullFlow);

void BM_SyntheticChannelInference(benchmark::State& state) {
    uml::Model syn = cases::synthetic_model();
    core::CommModel comm = core::analyze_communication(syn);
    core::MapperOptions bare;
    bare.auto_allocate = true;
    bare.infer_channels = false;
    bare.insert_delays = false;
    for (auto _ : state) {
        state.PauseTiming();
        simulink::Model caam = core::map_to_caam(syn, bare);
        state.ResumeTiming();
        core::ChannelReport report = core::infer_channels(caam, comm);
        benchmark::DoNotOptimize(report.inter_channels);
    }
}
BENCHMARK(BM_SyntheticChannelInference);

void BM_SyntheticSimulation(benchmark::State& state) {
    uml::Model syn = cases::synthetic_model();
    core::MapperOptions options;
    options.auto_allocate = true;
    simulink::Model caam = core::map_to_caam(syn, options);
    sim::SFunctionRegistry registry;
    cases::register_synthetic_sfunctions(registry);
    sim::Simulator simulator(caam, registry);
    for (auto _ : state) {
        sim::SimResult r = simulator.run(100);
        benchmark::DoNotOptimize(r.steps);
    }
    state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_SyntheticSimulation);

}  // namespace

UHCG_BENCH_MAIN(print_reproduction)
