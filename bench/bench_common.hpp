// bench_common.hpp — shared plumbing for the experiment harness.
//
// Every bench binary reproduces one figure/experiment of the paper: it
// first prints the qualitative result the paper reports (the "shape"),
// then runs google-benchmark timings of the machinery involved. Binaries
// run standalone with no arguments.
//
// Machine-readable pipeline: every banner/row also lands in a process-wide
// Report; `--uhcg_report=<path>` (stripped before google-benchmark sees
// argv) writes it as `uhcg-bench-v1` JSON next to google-benchmark's own
// `--benchmark_out` file. `uhcg_bench_report` aggregates those artifacts
// into one BENCH_*.json (see bench/CMakeLists.txt `bench_dse_report`).
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "diag/diag.hpp"

namespace uhcg::bench {

/// Collects the reproduction table for the machine-readable report.
class Report {
public:
    static Report& instance() {
        static Report report;
        return report;
    }

    void begin(std::string experiment, std::string claim) {
        experiment_ = std::move(experiment);
        claim_ = std::move(claim);
    }

    void add(std::string label, std::string value) {
        rows_.push_back({std::move(label), std::move(value), 0.0, false});
    }

    void add(std::string label, double number) {
        rows_.push_back({std::move(label), {}, number, true});
    }

    bool write_json(const std::string& path) const {
        std::ofstream out(path);
        if (!out) return false;
        out << "{\n  \"schema\": \"uhcg-bench-v1\",\n  \"experiment\": \""
            << diag::json_escape(experiment_) << "\",\n  \"claim\": \""
            << diag::json_escape(claim_) << "\",\n  \"rows\": [";
        for (std::size_t i = 0; i < rows_.size(); ++i) {
            const Row& r = rows_[i];
            out << (i ? ",\n    " : "\n    ") << "{\"label\": \""
                << diag::json_escape(r.label) << "\", ";
            if (r.numeric)
                out << "\"number\": " << r.number << '}';
            else
                out << "\"value\": \"" << diag::json_escape(r.text) << "\"}";
        }
        out << "\n  ]\n}\n";
        return out.good();
    }

private:
    struct Row {
        std::string label;
        std::string text;
        double number;
        bool numeric;
    };
    std::string experiment_;
    std::string claim_;
    std::vector<Row> rows_;
};

/// Prints a section header for the reproduction table.
inline void banner(const std::string& experiment, const std::string& claim) {
    std::printf("\n=== %s ===\n--- paper: %s\n", experiment.c_str(),
                claim.c_str());
    Report::instance().begin(experiment, claim);
}

inline void row(const std::string& label, const std::string& value) {
    std::printf("%-38s %s\n", label.c_str(), value.c_str());
    Report::instance().add(label, value);
}

inline void row(const std::string& label, double value) {
    std::printf("%-38s %g\n", label.c_str(), value);
    Report::instance().add(label, value);
}

inline void row(const std::string& label, std::size_t value) {
    std::printf("%-38s %zu\n", label.c_str(), value);
    Report::instance().add(label, static_cast<double>(value));
}

/// Worker count for the parallel reproduction sections: `UHCG_JOBS` env
/// override (CI pins it for stable timings), else the hardware.
inline std::size_t jobs() {
    if (const char* env = std::getenv("UHCG_JOBS")) {
        char* end = nullptr;
        unsigned long parsed = std::strtoul(env, &end, 10);
        if (end != env && *end == '\0' && parsed > 0)
            return static_cast<std::size_t>(parsed);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

/// Pulls `--uhcg_report=<path>` out of argv (google-benchmark rejects
/// flags it does not know). Returns the path, or "" when absent.
inline std::string extract_report_path(int& argc, char** argv) {
    constexpr const char* kFlag = "--uhcg_report=";
    std::string path;
    int write = 1;
    for (int read = 1; read < argc; ++read) {
        if (std::strncmp(argv[read], kFlag, std::strlen(kFlag)) == 0)
            path = argv[read] + std::strlen(kFlag);
        else
            argv[write++] = argv[read];
    }
    argc = write;
    return path;
}

/// Standard main: print the reproduction table, run the timings, then
/// write the machine-readable report when requested.
#define UHCG_BENCH_MAIN(print_reproduction)                                  \
    int main(int argc, char** argv) {                                        \
        std::string report_path =                                            \
            ::uhcg::bench::extract_report_path(argc, argv);                  \
        print_reproduction();                                                \
        ::benchmark::Initialize(&argc, argv);                                \
        if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;  \
        ::benchmark::RunSpecifiedBenchmarks();                               \
        ::benchmark::Shutdown();                                             \
        if (!report_path.empty() &&                                          \
            !::uhcg::bench::Report::instance().write_json(report_path)) {    \
            std::fprintf(stderr, "cannot write bench report: %s\n",          \
                         report_path.c_str());                               \
            return 1;                                                        \
        }                                                                    \
        return 0;                                                            \
    }

}  // namespace uhcg::bench
