// bench_common.hpp — shared plumbing for the experiment harness.
//
// Every bench binary reproduces one figure/experiment of the paper: it
// first prints the qualitative result the paper reports (the "shape"),
// then runs google-benchmark timings of the machinery involved. Binaries
// run standalone with no arguments.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

namespace uhcg::bench {

/// Prints a section header for the reproduction table.
inline void banner(const std::string& experiment, const std::string& claim) {
    std::printf("\n=== %s ===\n--- paper: %s\n", experiment.c_str(),
                claim.c_str());
}

inline void row(const std::string& label, const std::string& value) {
    std::printf("%-38s %s\n", label.c_str(), value.c_str());
}

inline void row(const std::string& label, double value) {
    std::printf("%-38s %g\n", label.c_str(), value);
}

inline void row(const std::string& label, std::size_t value) {
    std::printf("%-38s %zu\n", label.c_str(), value);
}

/// Standard main: print the reproduction table, then run the timings.
#define UHCG_BENCH_MAIN(print_reproduction)                 \
    int main(int argc, char** argv) {                       \
        print_reproduction();                               \
        ::benchmark::Initialize(&argc, argv);               \
        if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
        ::benchmark::RunSpecifiedBenchmarks();              \
        ::benchmark::Shutdown();                            \
        return 0;                                           \
    }

}  // namespace uhcg::bench
